//! # rhchme-repro
//!
//! Umbrella crate for the RHCHME reproduction (Hou & Nayak, ICDE 2015:
//! *Robust Clustering of Multi-type Relational Data via a Heterogeneous
//! Manifold Ensemble*).
//!
//! This crate re-exports the workspace libraries and hosts the runnable
//! examples (`cargo run --release --example quickstart`,
//! `--example serve_demo`) and the cross-crate integration tests. See
//! README.md for the architecture overview (including the serving
//! layer); the bench targets write paper-vs-measured JSON records under
//! `target/bench-results/`.

pub use mtrl_datagen as datagen;
pub use mtrl_eval as eval;
pub use mtrl_gateway as gateway;
pub use mtrl_graph as graph;
pub use mtrl_linalg as linalg;
pub use mtrl_metrics as metrics;
pub use mtrl_obs as obs;
pub use mtrl_serve as serve;
pub use mtrl_sparse as sparse;
pub use mtrl_stream as stream;
pub use mtrl_subspace as subspace;
pub use rhchme as core;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use mtrl_datagen::datasets::{load, DatasetId, Scale};
    pub use mtrl_datagen::stream::{generate_stream, StreamBatch, StreamConfig};
    pub use mtrl_datagen::{
        split_corpus, CorpusConfig, CorruptionKind, CorruptionSpec, HeldOutDoc, MultiTypeCorpus,
    };
    pub use mtrl_eval::{
        quick_matrix, quick_params, run_scenario, CorpusShape, EvalPath, RunOptions, Scenario,
    };
    pub use mtrl_gateway::{Gateway, GatewayConfig, GatewayStats};
    pub use mtrl_metrics::{adjusted_rand_index, fscore, nmi, purity};
    pub use mtrl_serve::{
        AssignRequest, AssignResponse, Assigner, FittedModel, ServeEngine, ServeError, SparseVec,
        StatsSnapshot,
    };
    pub use mtrl_stream::{
        BatchTelemetry, DynamicGraph, DynamicGraphConfig, PushReport, RefitReport, RefitTrigger,
        RefreshDecision, RefreshPolicy, SessionTelemetry, StreamError, StreamSession,
    };
    pub use rhchme::pipeline::{run_method, Method, MethodOutput, PipelineParams};
    pub use rhchme::rhchme::{Rhchme, RhchmeConfig, RhchmeResult, WarmStart};
    pub use rhchme::MultiTypeData;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let corpus = load(DatasetId::D1, Scale::Tiny);
        assert_eq!(corpus.num_classes, 5);
    }
}
