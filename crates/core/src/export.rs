//! Fitted-model export: everything serving needs, nothing it doesn't.
//!
//! A fitted RHCHME run is summarised by the factor matrices of Eq. (15) —
//! per-type membership blocks `G_k` and the cluster association `S` —
//! plus per-type *feature centroids* derived from them. Luong & Nayak
//! ("Learning Inter- and Intra-manifolds for Matrix Factorization-based
//! Multi-Aspect Data Clustering") identify exactly these factors as the
//! artifact to persist for multi-aspect assignment of unseen objects: a
//! new document folds into the learned clustering by similarity against
//! the centroids in the learned subspace, with no re-optimisation.
//!
//! [`FittedModel`] is that bundle, with a schema version and shape
//! metadata so the serving layer (`mtrl-serve`) can validate a loaded
//! bundle before trusting it. See `mtrl_serve::persist` for the on-disk
//! JSON envelope (version + content digest + this struct).

use crate::error::RhchmeError;
use crate::multitype::MultiTypeData;
use crate::rhchme::{RhchmeConfig, RhchmeResult};
use crate::Result;
use mtrl_linalg::Mat;
use serde::{Deserialize, Serialize};

/// Version of the serialized [`FittedModel`] schema.
///
/// Bump on any breaking change to the JSON layout; loaders refuse
/// bundles whose `schema_version` differs from the version they were
/// built against (see `mtrl_serve::persist::load`).
pub const SCHEMA_VERSION: u32 = 1;

/// A fitted RHCHME model in serving form.
///
/// All matrices are dense row-major `f64`; `g_blocks[k]` is `n_k x c_k`,
/// `s` is `c x c` over the stacked cluster dimension, and `centroids[k]`
/// is `c_k x D_k` over type `k`'s feature view (row-ℓ2 normalised, the
/// pre-normalisation norms kept in `centroid_norms`).
///
/// Serialization is hand-written (not derived) so the optional
/// [`FittedModel::method`] provenance field can be *omitted* when absent:
/// bundles saved before the field existed deserialize unchanged, and
/// models without provenance serialize byte-identically to the old
/// layout — the v1 JSON and v2 binary loaders both tolerate its absence.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// Schema version of this bundle ([`SCHEMA_VERSION`] at save time).
    pub schema_version: u32,
    /// Which method produced this model, as a [`crate::MethodSpec::key`]
    /// string (`"rhchme"`, `"ensemble"`, …). Optional provenance: absent
    /// in bundles saved before the field existed.
    pub method: Option<String>,
    /// The hyper-parameters the model was fitted with.
    pub config: RhchmeConfig,
    /// Per-type object counts at fit time.
    pub sizes: Vec<usize>,
    /// Per-type cluster counts.
    pub cluster_counts: Vec<usize>,
    /// Per-type feature-view widths `D_k` (what fold-in vectors must match).
    pub feature_dims: Vec<usize>,
    /// Per-type membership blocks `G_k` (`n_k x c_k`).
    pub g_blocks: Vec<Mat>,
    /// Cluster association matrix `S` (`c x c`).
    pub s: Mat,
    /// Per-type cluster centroids in feature space, row-ℓ2 normalised.
    pub centroids: Vec<Mat>,
    /// Pre-normalisation ℓ2 norm of every centroid row (normalisation
    /// stats; near-zero entries mark clusters that captured no mass).
    pub centroid_norms: Vec<Vec<f64>>,
}

impl FittedModel {
    /// Number of object types.
    pub fn num_types(&self) -> usize {
        self.sizes.len()
    }

    /// Structural integrity check: shape consistency across every field
    /// and finiteness of all matrix data.
    ///
    /// # Errors
    /// Returns [`RhchmeError::InvalidData`] naming the first violation.
    pub fn validate(&self) -> Result<()> {
        let k = self.num_types();
        let err = |msg: String| Err(RhchmeError::InvalidData(msg));
        if k == 0 {
            return err("model has no object types".into());
        }
        for (name, len) in [
            ("cluster_counts", self.cluster_counts.len()),
            ("feature_dims", self.feature_dims.len()),
            ("g_blocks", self.g_blocks.len()),
            ("centroids", self.centroids.len()),
            ("centroid_norms", self.centroid_norms.len()),
        ] {
            if len != k {
                return err(format!("{name} has {len} entries for {k} types"));
            }
        }
        let c_total: usize = self.cluster_counts.iter().sum();
        if self.s.shape() != (c_total, c_total) {
            return err(format!(
                "S is {:?}, expected ({c_total}, {c_total})",
                self.s.shape()
            ));
        }
        for t in 0..k {
            let (nk, ck, dk) = (self.sizes[t], self.cluster_counts[t], self.feature_dims[t]);
            // Same invariants MultiTypeData enforces at fit time — a
            // degenerate type would break the posterior contract in
            // serving (empty posteriors, fabricated labels).
            if ck < 2 {
                return err(format!("type {t}: {ck} clusters (need at least 2)"));
            }
            if nk < ck {
                return err(format!("type {t}: {ck} clusters for {nk} objects"));
            }
            if self.g_blocks[t].shape() != (nk, ck) {
                return err(format!(
                    "G block {t} is {:?}, expected ({nk}, {ck})",
                    self.g_blocks[t].shape()
                ));
            }
            if self.centroids[t].shape() != (ck, dk) {
                return err(format!(
                    "centroid block {t} is {:?}, expected ({ck}, {dk})",
                    self.centroids[t].shape()
                ));
            }
            if self.centroid_norms[t].len() != ck {
                return err(format!(
                    "centroid_norms[{t}] has {} entries for {ck} clusters",
                    self.centroid_norms[t].len()
                ));
            }
        }
        for (name, mats) in [("G", &self.g_blocks), ("centroids", &self.centroids)] {
            if mats.iter().any(Mat::has_non_finite) {
                return err(format!("non-finite values in {name}"));
            }
        }
        if self.s.has_non_finite() {
            return err("non-finite values in S".into());
        }
        Ok(())
    }

    /// FNV-1a digest over the model's full content — schema version,
    /// configuration, shape metadata and matrix data bit patterns — used
    /// by the persistence envelope to detect silent corruption of a saved
    /// bundle (including corruption of the stored hyper-parameters).
    pub fn content_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv_eat(&mut h, &(self.schema_version as u64).to_le_bytes());
        fnv_eat_value(&mut h, &serde::Serialize::to_value(&self.config));
        for &n in self
            .sizes
            .iter()
            .chain(&self.cluster_counts)
            .chain(&self.feature_dims)
        {
            fnv_eat(&mut h, &(n as u64).to_le_bytes());
        }
        let mats = self
            .g_blocks
            .iter()
            .chain(std::iter::once(&self.s))
            .chain(&self.centroids);
        for m in mats {
            for &x in m.as_slice() {
                fnv_eat(&mut h, &x.to_bits().to_le_bytes());
            }
        }
        for norms in &self.centroid_norms {
            for &x in norms {
                fnv_eat(&mut h, &x.to_bits().to_le_bytes());
            }
        }
        // Provenance is folded in only when present, so bundles saved
        // before the field existed keep their original digests.
        if let Some(m) = &self.method {
            fnv_eat(&mut h, &[6]);
            fnv_eat(&mut h, m.as_bytes());
        }
        h
    }

    /// Tag this model with method provenance (builder style).
    #[must_use]
    pub fn with_method(mut self, method: &str) -> Self {
        self.method = Some(method.to_string());
        self
    }
}

impl Serialize for FittedModel {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![("schema_version".to_string(), self.schema_version.to_value())];
        // Omitted (not null) when absent: models without provenance
        // serialize byte-identically to the pre-`method` layout.
        if let Some(m) = &self.method {
            pairs.push(("method".to_string(), m.to_value()));
        }
        pairs.extend([
            ("config".to_string(), self.config.to_value()),
            ("sizes".to_string(), self.sizes.to_value()),
            ("cluster_counts".to_string(), self.cluster_counts.to_value()),
            ("feature_dims".to_string(), self.feature_dims.to_value()),
            ("g_blocks".to_string(), self.g_blocks.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("centroids".to_string(), self.centroids.to_value()),
            ("centroid_norms".to_string(), self.centroid_norms.to_value()),
        ]);
        serde::Value::Object(pairs)
    }
}

impl Deserialize for FittedModel {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(FittedModel {
            schema_version: Deserialize::from_value(v.get_field("schema_version")?)?,
            method: match v.get("method") {
                None | Some(serde::Value::Null) => None,
                Some(m) => Some(Deserialize::from_value(m)?),
            },
            config: Deserialize::from_value(v.get_field("config")?)?,
            sizes: Deserialize::from_value(v.get_field("sizes")?)?,
            cluster_counts: Deserialize::from_value(v.get_field("cluster_counts")?)?,
            feature_dims: Deserialize::from_value(v.get_field("feature_dims")?)?,
            g_blocks: Deserialize::from_value(v.get_field("g_blocks")?)?,
            s: Deserialize::from_value(v.get_field("s")?)?,
            centroids: Deserialize::from_value(v.get_field("centroids")?)?,
            centroid_norms: Deserialize::from_value(v.get_field("centroid_norms")?)?,
        })
    }
}

#[inline]
fn fnv_eat(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Fold a serde value tree into the digest deterministically: a tag byte
/// per variant, then the content (number bit patterns, string bytes,
/// object keys in stored order).
fn fnv_eat_value(h: &mut u64, v: &serde::Value) {
    match v {
        serde::Value::Null => fnv_eat(h, &[0]),
        serde::Value::Bool(b) => fnv_eat(h, &[1, u8::from(*b)]),
        serde::Value::Number(n) => {
            fnv_eat(h, &[2]);
            fnv_eat(h, &n.to_bits().to_le_bytes());
        }
        serde::Value::String(s) => {
            fnv_eat(h, &[3]);
            fnv_eat(h, s.as_bytes());
        }
        serde::Value::Array(items) => {
            fnv_eat(h, &[4]);
            for item in items {
                fnv_eat_value(h, item);
            }
        }
        serde::Value::Object(pairs) => {
            fnv_eat(h, &[5]);
            for (key, val) in pairs {
                fnv_eat(h, key.as_bytes());
                fnv_eat_value(h, val);
            }
        }
    }
}

/// Assemble a [`FittedModel`] from a finished optimisation.
///
/// Splits the stacked `G` into per-type blocks and derives each type's
/// cluster centroids as the membership-weighted mean of its feature rows
/// (then row-ℓ2 normalises them, keeping the raw norms as stats).
///
/// # Errors
/// Returns [`RhchmeError::InvalidData`] when `result` does not match
/// `data`'s block layout.
pub fn build_model(
    config: RhchmeConfig,
    result: &RhchmeResult,
    data: &MultiTypeData,
) -> Result<FittedModel> {
    let (n, c) = (data.total_objects(), data.total_clusters());
    if result.g.shape() != (n, c) {
        return Err(RhchmeError::InvalidData(format!(
            "result G is {:?} but the data has layout ({n}, {c})",
            result.g.shape()
        )));
    }
    if result.s.shape() != (c, c) {
        return Err(RhchmeError::InvalidData(format!(
            "result S is {:?}, expected ({c}, {c})",
            result.s.shape()
        )));
    }
    let k = data.num_types();
    let mut g_blocks = Vec::with_capacity(k);
    let mut centroids = Vec::with_capacity(k);
    let mut centroid_norms = Vec::with_capacity(k);
    let mut feature_dims = Vec::with_capacity(k);
    for t in 0..k {
        let g_k = result.g.submatrix(
            data.spec().offset(t),
            data.cluster_spec().offset(t),
            data.sizes()[t],
            data.cluster_counts()[t],
        );
        let features = data.features(t);
        let (centroid, norms) = weighted_centroids(&features, &g_k);
        feature_dims.push(features.cols());
        g_blocks.push(g_k);
        centroids.push(centroid);
        centroid_norms.push(norms);
    }
    let model = FittedModel {
        schema_version: SCHEMA_VERSION,
        method: None,
        config,
        sizes: data.sizes().to_vec(),
        cluster_counts: data.cluster_counts().to_vec(),
        feature_dims,
        g_blocks,
        s: result.s.clone(),
        centroids,
        centroid_norms,
    };
    model.validate()?;
    Ok(model)
}

/// Membership-weighted cluster centroids: row `c` of the output is
/// `Σ_i w[i,c] x_i / Σ_i w[i,c]`, row-ℓ2 normalised afterwards. Returns
/// the centroid matrix and the pre-normalisation row norms.
fn weighted_centroids(features: &Mat, weights: &Mat) -> (Mat, Vec<f64>) {
    let (n, d) = features.shape();
    let c = weights.cols();
    debug_assert_eq!(weights.rows(), n);
    let mut centroid = Mat::zeros(c, d);
    let mut mass = vec![0.0f64; c];
    for i in 0..n {
        let x = features.row(i);
        let w = weights.row(i);
        for (cluster, &wc) in w.iter().enumerate() {
            if wc <= 0.0 {
                continue;
            }
            mass[cluster] += wc;
            let row = centroid.row_mut(cluster);
            mtrl_linalg::vecops::axpy(wc, x, row);
        }
    }
    for (cluster, &m) in mass.iter().enumerate() {
        if m > 1e-300 {
            let inv = 1.0 / m;
            for x in centroid.row_mut(cluster) {
                *x *= inv;
            }
        }
    }
    let norms: Vec<f64> = (0..c)
        .map(|cluster| mtrl_linalg::vecops::norm2(centroid.row(cluster)))
        .collect();
    centroid.normalize_rows_l2(1e-300);
    (centroid, norms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rhchme::Rhchme;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn fitted() -> (mtrl_datagen::MultiTypeCorpus, Rhchme, RhchmeResult) {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![8, 8, 8],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.25,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 77,
        });
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let result = model.fit_corpus(&corpus).unwrap();
        (corpus, model, result)
    }

    #[test]
    fn export_shapes_and_validation() {
        let (corpus, model, result) = fitted();
        let fitted = model.export_model(&result, &corpus).unwrap();
        assert_eq!(fitted.schema_version, SCHEMA_VERSION);
        assert_eq!(fitted.num_types(), 3);
        assert_eq!(fitted.sizes, vec![24, 60, 15]);
        assert_eq!(fitted.g_blocks[0].shape(), (24, fitted.cluster_counts[0]));
        // Doc view = terms + concepts.
        assert_eq!(fitted.feature_dims[0], 75);
        assert_eq!(fitted.centroids[0].shape(), (fitted.cluster_counts[0], 75));
        fitted.validate().unwrap();
        // Centroid rows are unit length (or zero for empty clusters).
        for t in 0..3 {
            for c in 0..fitted.cluster_counts[t] {
                let n = mtrl_linalg::vecops::norm2(fitted.centroids[t].row(c));
                assert!(n < 1.0 + 1e-9, "type {t} cluster {c} norm {n}");
            }
        }
    }

    #[test]
    fn digest_detects_mutation() {
        let (corpus, model, result) = fitted();
        let fitted = model.export_model(&result, &corpus).unwrap();
        let d0 = fitted.content_digest();
        assert_eq!(d0, fitted.clone().content_digest());
        let mut tampered = fitted.clone();
        let v = tampered.s[(0, 0)];
        tampered.s[(0, 0)] = v + 1e-9;
        assert_ne!(d0, tampered.content_digest());
        // Hyper-parameter corruption must change the digest too.
        let mut config_tampered = fitted.clone();
        config_tampered.config.lambda += 1.0;
        assert_ne!(d0, config_tampered.content_digest());
    }

    #[test]
    fn method_provenance_is_optional_and_tolerated() {
        let (corpus, model, result) = fitted();
        let exported = model.export_model(&result, &corpus).unwrap();
        // The RHCHME export path tags its provenance.
        assert_eq!(exported.method.as_deref(), Some("rhchme"));

        // A model without provenance serializes byte-identically to the
        // pre-`method` layout, and its digest is unchanged by the field's
        // existence.
        let mut untagged = exported.clone();
        untagged.method = None;
        let tree = untagged.to_value();
        assert!(tree.get("method").is_none(), "absent, not null");
        let reloaded = FittedModel::from_value(&tree).unwrap();
        assert_eq!(reloaded.method, None);
        assert_eq!(reloaded.content_digest(), untagged.content_digest());

        // Tagged models round-trip the provenance and fold it into the
        // digest.
        assert_ne!(exported.content_digest(), untagged.content_digest());
        let reloaded = FittedModel::from_value(&exported.to_value()).unwrap();
        assert_eq!(reloaded.method.as_deref(), Some("rhchme"));

        // with_method is builder-style retagging.
        let retagged = untagged.with_method("ensemble");
        assert_eq!(retagged.method.as_deref(), Some("ensemble"));
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let (corpus, model, result) = fitted();
        let mut fitted = model.export_model(&result, &corpus).unwrap();
        fitted.cluster_counts[1] += 1;
        assert!(fitted.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_types() {
        let (corpus, model, result) = fitted();
        let exported = model.export_model(&result, &corpus).unwrap();
        // Zero clusters for a type: internally consistent shapes, but a
        // serving dead end — must be rejected.
        let mut degenerate = exported.clone();
        degenerate.cluster_counts[0] = 0;
        degenerate.g_blocks[0] = Mat::zeros(degenerate.sizes[0], 0);
        degenerate.centroids[0] = Mat::zeros(0, degenerate.feature_dims[0]);
        degenerate.centroid_norms[0].clear();
        let c: usize = degenerate.cluster_counts.iter().sum();
        degenerate.s = Mat::zeros(c, c);
        assert!(degenerate.validate().is_err());
        // More clusters than objects is equally unfit.
        let mut oversized = exported;
        oversized.sizes[0] = 1;
        oversized.g_blocks[0] = Mat::zeros(1, oversized.cluster_counts[0]);
        assert!(oversized.validate().is_err());
    }

    #[test]
    fn centroids_separate_classes() {
        // On a clean corpus, each doc should be closest to its own
        // cluster's centroid far more often than chance.
        let (corpus, model, result) = fitted();
        let fitted = model.export_model(&result, &corpus).unwrap();
        let data =
            MultiTypeData::from_corpus(&corpus, model.config().feature_cluster_divisor).unwrap();
        let docs = data.features(0);
        let mut agree = 0;
        for i in 0..docs.rows() {
            let mut x = docs.row(i).to_vec();
            mtrl_linalg::vecops::normalize_l1(&mut x);
            let sims: Vec<f64> = (0..fitted.cluster_counts[0])
                .map(|c| mtrl_linalg::vecops::dot(&x, fitted.centroids[0].row(c)))
                .collect();
            if mtrl_linalg::vecops::argmax(&sims) == Some(result.doc_labels[i]) {
                agree += 1;
            }
        }
        assert!(agree * 10 >= docs.rows() * 7, "{agree}/{}", docs.rows());
    }
}
