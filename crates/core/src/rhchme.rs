//! The end-to-end RHCHME estimator.
//!
//! Wires together the full pipeline of the paper:
//!
//! 1. assemble `R` and the per-type feature views (Sec. I-A);
//! 2. learn *complete* intra-type relationships with SPG subspace
//!    learning (Sec. III-A);
//! 3. learn *accurate* intra-type relationships by combining them with a
//!    pNN graph into the heterogeneous manifold ensemble (Sec. III-B,
//!    Eq. 12);
//! 4. initialise `G` by per-type k-means;
//! 5. optimise the robust objective (Eq. 15) with Algorithm 2 — sparse
//!    error matrix `E_R`, row-ℓ1 normalised `G`.

use crate::engine::{run_engine, EngineConfig, EngineResult, GraphRegularizer};
use crate::export::FittedModel;
use crate::intra::{hetero_laplacian, pnn_laplacians_backend_prec, subspace_laplacians};
use crate::kmeans::{kmeans, labels_to_membership};
use crate::multitype::MultiTypeData;
use crate::Result;
use mtrl_graph::{LaplacianKind, WeightScheme};
use mtrl_linalg::block::stack_membership;
use mtrl_linalg::{Mat, Precision};
use mtrl_subspace::SpgConfig;

/// RHCHME hyper-parameters.
///
/// Defaults are tuned for this workspace's data conventions and map onto
/// the paper's tuned values (Sec. IV-E: λ ≈ 250, γ ∈ [10, 50], α = 1,
/// β = 50, p = 5) as follows: the paper decomposes *raw tf-idf* co-occurrence
/// matrices under an *unnormalized* Laplacian `D − W`, so its fidelity
/// term is orders of magnitude larger than its trace term and λ must be
/// in the hundreds. Here `R` rows are l2-normalised and the Laplacian is
/// symmetric-normalised (spectrum in `[0, 2]`), putting both terms on the
/// same `O(n)` scale — the equivalent operating point is λ ≈ 0.1.
/// Likewise γ trades reconstruction against the `‖WWᵀ‖₁` sparsity on
/// unit-norm rows, shifting its sweet spot from ~25 to ~5. The Fig. 2
/// bench sweeps both grids and EXPERIMENTS.md records the mapping.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RhchmeConfig {
    /// Laplacian regularisation weight λ.
    pub lambda: f64,
    /// Subspace-learning noise tolerance γ (Eq. 9).
    pub gamma: f64,
    /// Ensemble trade-off α (Eq. 12).
    pub alpha: f64,
    /// Error-matrix trade-off β (Eq. 15).
    pub beta: f64,
    /// pNN neighbour count `p` (paper sets 5).
    pub p: usize,
    /// pNN weighting (paper uses cosine for `L_E`).
    pub weight_scheme: WeightScheme,
    /// Neighbour-search backend for the pNN graphs (`L_E`): the exact
    /// blocked kernel, or an approximate index (`mtrl_ann`) for large
    /// corpora. Approximate backends change candidate generation only;
    /// distances and selection stay bit-identical to the exact kernel.
    pub graph_backend: mtrl_ann::GraphBackend,
    /// Kernel storage precision for the hot loops: the pNN Gram chain
    /// and the engine's SpMM / low-rank / residual kernels
    /// ([`Precision::F32`] stores their operands in `f32`, accumulates
    /// in `f64`). SPG subspace learning and all small dense algebra stay
    /// `f64` in both modes. Composes with `graph_backend` exactly like
    /// that knob: per-thread-count determinism holds within each mode.
    pub precision: Precision,
    /// Laplacian normalisation (see `mtrl_graph::laplacian`).
    pub laplacian_kind: LaplacianKind,
    /// SPG iteration budget for stage 1.
    pub spg_max_iter: usize,
    /// Multiplicative-update iteration budget.
    pub max_iter: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed (k-means init + SPG init).
    pub seed: u64,
    /// Term/concept cluster count divisor (`m / divisor`, clamped to
    /// `[2, 30]`; the paper explores `m/10` – `m/100`).
    pub feature_cluster_divisor: usize,
    /// Record per-iteration document labels (Fig. 3 traces).
    pub record_doc_labels: bool,
}

impl Default for RhchmeConfig {
    fn default() -> Self {
        RhchmeConfig {
            lambda: 0.05,
            gamma: 5.0,
            alpha: 1.0,
            beta: 50.0,
            p: 5,
            weight_scheme: WeightScheme::Cosine,
            graph_backend: mtrl_ann::GraphBackend::Exact,
            precision: Precision::F64,
            laplacian_kind: LaplacianKind::SymNormalized,
            spg_max_iter: 80,
            max_iter: 100,
            tol: 1e-6,
            seed: 2015,
            feature_cluster_divisor: 20,
            record_doc_labels: false,
        }
    }
}

impl RhchmeConfig {
    /// A budget-reduced configuration for tests and doc examples.
    pub fn fast() -> Self {
        RhchmeConfig {
            spg_max_iter: 30,
            max_iter: 30,
            ..RhchmeConfig::default()
        }
    }
}

/// Fitted RHCHME model output.
#[derive(Debug, Clone)]
pub struct RhchmeResult {
    /// Cluster labels of the primary type (documents).
    pub doc_labels: Vec<usize>,
    /// Cluster labels for every type, in type order.
    pub labels_per_type: Vec<Vec<usize>>,
    /// Final membership matrix `G`.
    pub g: Mat,
    /// Final association matrix `S`.
    pub s: Mat,
    /// Objective `J₄` per iteration.
    pub objective_trace: Vec<f64>,
    /// Per-iteration document labels (empty unless requested).
    pub label_trace: Vec<Vec<usize>>,
    /// Row l2 norms of the final error matrix `E_R`.
    pub error_row_norms: Vec<f64>,
    /// The shrunk-active rows of the final `E_R`, stored row-sparsely
    /// (see [`crate::engine::EngineResult::error_rows`]).
    pub error_rows: mtrl_sparse::RowSparse,
    /// Multiplicative-update iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iter`.
    pub converged: bool,
}

/// Warm-start specification for [`Rhchme::fit_warm`].
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Initial stacked membership `G₀` (block-structured, nonnegative):
    /// rows copied from a previous solution for surviving objects,
    /// fold-in posteriors for new ones.
    pub g0: Mat,
    /// Prebuilt heterogeneous Laplacian to reuse (e.g. maintained
    /// incrementally by `mtrl-stream`); `None` recomputes stages 1–2
    /// from the configuration exactly as [`Rhchme::fit_data`] does.
    pub laplacian: Option<mtrl_sparse::SparseBlockDiag>,
    /// Iteration cap for the refresh (clamped to the configuration's
    /// `max_iter` and at least 1).
    pub max_iter: usize,
}

/// The RHCHME estimator.
#[derive(Debug, Clone)]
pub struct Rhchme {
    config: RhchmeConfig,
}

impl Rhchme {
    /// Create an estimator with the given configuration.
    pub fn new(config: RhchmeConfig) -> Self {
        Rhchme { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &RhchmeConfig {
        &self.config
    }

    /// Fit on a generated corpus (documents / terms / concepts).
    ///
    /// # Errors
    /// Propagates data-assembly and optimisation errors.
    pub fn fit_corpus(&self, corpus: &mtrl_datagen::MultiTypeCorpus) -> Result<RhchmeResult> {
        let data = MultiTypeData::from_corpus(corpus, self.config.feature_cluster_divisor)?;
        self.fit_data(&data)
    }

    /// Fit on arbitrary K-type relational data.
    ///
    /// # Errors
    /// Propagates optimisation errors ([`crate::RhchmeError`]).
    pub fn fit_data(&self, data: &MultiTypeData) -> Result<RhchmeResult> {
        let _span = mtrl_obs::span!("rhchme.fit");
        let cfg = &self.config;
        let features = data.all_features();
        let l = self.full_laplacian(&features)?;
        let g0 = {
            let _init_span = mtrl_obs::span!("rhchme.kmeans_init");
            init_membership(data, &features, cfg.seed)
        };
        self.run_with(data, l, g0, cfg.max_iter)
    }

    /// Warm-started mini-batch refresh: re-optimise on updated data from
    /// a previous solution instead of a cold k-means initialisation.
    ///
    /// The multiplicative update of Algorithm 2 is a fixed-point
    /// iteration, so a `G₀` seeded from a previous factorisation (rows
    /// copied for surviving objects, fold-in posteriors for new ones —
    /// see `mtrl_stream::warm_membership`) starts close to the optimum
    /// and `warm.max_iter` can be a fraction of a cold run's budget —
    /// the warm-start property matrix-factorisation multi-aspect
    /// clustering inherits (Luong & Nayak). `warm.laplacian` lets the
    /// caller reuse incrementally maintained graph artifacts (e.g. a
    /// `DynamicGraph` Laplacian) instead of recomputing stages 1–2; when
    /// `None`, both stages run exactly as in [`Self::fit_data`].
    ///
    /// # Errors
    /// Returns [`crate::RhchmeError::InvalidData`] when `warm.g0` does
    /// not match `data`'s layout (or is negative), and propagates
    /// optimisation errors.
    pub fn fit_warm(&self, data: &MultiTypeData, warm: WarmStart) -> Result<RhchmeResult> {
        let _span = mtrl_obs::span!("rhchme.fit_warm");
        let l = match warm.laplacian {
            Some(l) => l,
            None => self.full_laplacian(&data.all_features())?,
        };
        let max_iter = warm.max_iter.min(self.config.max_iter).max(1);
        self.run_with(data, l, warm.g0, max_iter)
    }

    /// Stages 1 & 2 of the paper: subspace Laplacians, pNN Laplacians,
    /// and their heterogeneous ensemble (Eq. 12), per this config.
    fn full_laplacian(&self, features: &[Mat]) -> Result<mtrl_sparse::SparseBlockDiag> {
        let _span = mtrl_obs::span!("rhchme.laplacian");
        let cfg = &self.config;
        let spg_cfg = SpgConfig {
            gamma: cfg.gamma,
            max_iter: cfg.spg_max_iter,
            seed: cfg.seed,
            ..SpgConfig::default()
        };
        let l_s = subspace_laplacians(features, &spg_cfg, cfg.laplacian_kind)?;
        let l_e = pnn_laplacians_backend_prec(
            features,
            cfg.p,
            cfg.weight_scheme,
            cfg.laplacian_kind,
            &cfg.graph_backend,
            cfg.precision,
        )?;
        hetero_laplacian(&l_s, &l_e, cfg.alpha)
    }

    /// Shared optimisation tail: assemble `R` (sparse — the engine is
    /// sparse-first and no `n x n` dense matrix is formed), run
    /// Algorithm 2 with the given regulariser, initial membership and
    /// iteration budget.
    fn run_with(
        &self,
        data: &MultiTypeData,
        l: mtrl_sparse::SparseBlockDiag,
        g0: Mat,
        max_iter: usize,
    ) -> Result<RhchmeResult> {
        let cfg = &self.config;
        let r = data.assemble_r_csr();
        let engine_cfg = EngineConfig {
            lambda: cfg.lambda,
            beta: cfg.beta,
            use_error_matrix: true,
            l1_row_normalize: true,
            max_iter,
            tol: cfg.tol,
            record_labels_for_type: cfg.record_doc_labels.then_some(0),
            precision: cfg.precision,
            ..EngineConfig::default()
        };
        let engine_out = run_engine(&r, data, &GraphRegularizer::Fixed(l), g0, &engine_cfg)?;
        Ok(package_result(data, engine_out))
    }

    /// Export a fitted result as a serving-ready [`FittedModel`]
    /// (membership blocks, association matrix, feature centroids) for the
    /// corpus it was fitted on.
    ///
    /// # Errors
    /// Propagates data-assembly errors and shape mismatches between
    /// `result` and the corpus layout.
    pub fn export_model(
        &self,
        result: &RhchmeResult,
        corpus: &mtrl_datagen::MultiTypeCorpus,
    ) -> Result<FittedModel> {
        let data = MultiTypeData::from_corpus(corpus, self.config.feature_cluster_divisor)?;
        self.export_model_from_data(result, &data)
    }

    /// [`Self::export_model`] for arbitrary K-type relational data.
    ///
    /// # Errors
    /// Returns [`crate::RhchmeError::InvalidData`] when `result` does not
    /// match `data`'s block layout.
    pub fn export_model_from_data(
        &self,
        result: &RhchmeResult,
        data: &MultiTypeData,
    ) -> Result<FittedModel> {
        Ok(crate::export::build_model(self.config.clone(), result, data)?.with_method("rhchme"))
    }
}

/// k-means++ initialisation of the stacked membership matrix (Algorithm 2
/// input), one block per type.
pub fn init_membership(data: &MultiTypeData, features: &[Mat], seed: u64) -> Mat {
    let blocks: Vec<Mat> = features
        .iter()
        .zip(data.cluster_counts())
        .enumerate()
        .map(|(k, (f, &ck))| {
            let km = kmeans(f, ck, seed.wrapping_add(k as u64), 50);
            labels_to_membership(&km.labels, ck, 0.2)
        })
        .collect();
    stack_membership(&blocks)
}

/// Convert an engine result into the public result type. Public so
/// method layers built on [`crate::engine::run_engine`] (the baselines
/// here, the `mtrl-ensemble` generator) can package their fits uniformly.
pub fn package_result(data: &MultiTypeData, out: EngineResult) -> RhchmeResult {
    let labels_per_type: Vec<Vec<usize>> = (0..data.num_types())
        .map(|k| data.labels_from_membership(&out.g, k))
        .collect();
    RhchmeResult {
        doc_labels: labels_per_type[0].clone(),
        labels_per_type,
        g: out.g,
        s: out.s,
        objective_trace: out.objective_trace,
        label_trace: out.label_trace,
        error_row_norms: out.error_row_norms,
        error_rows: out.error_rows,
        iterations: out.iterations,
        converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn tiny_corpus(corrupt: f64, seed: u64) -> mtrl_datagen::MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![8, 8, 8],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.25,
            concept_map_noise: 0.1,
            corrupt_frac: corrupt,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed,
        })
    }

    #[test]
    fn fits_tiny_corpus_reasonably() {
        let corpus = tiny_corpus(0.0, 31);
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let res = model.fit_corpus(&corpus).unwrap();
        assert_eq!(res.doc_labels.len(), 24);
        assert_eq!(res.labels_per_type.len(), 3);
        let f = mtrl_metrics::fscore(&corpus.labels, &res.doc_labels);
        assert!(f > 0.6, "fscore {f}");
        // Objective decreases overall.
        let t = &res.objective_trace;
        assert!(t.last().unwrap() <= t.first().unwrap());
    }

    #[test]
    fn label_trace_when_requested() {
        let corpus = tiny_corpus(0.0, 32);
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            max_iter: 5,
            tol: 0.0,
            record_doc_labels: true,
            ..RhchmeConfig::fast()
        });
        let res = model.fit_corpus(&corpus).unwrap();
        assert_eq!(res.label_trace.len(), res.iterations);
    }

    #[test]
    fn warm_fit_from_previous_solution_converges_fast() {
        let corpus = tiny_corpus(0.0, 34);
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let cold = model.fit_corpus(&corpus).unwrap();
        let data = crate::multitype::MultiTypeData::from_corpus(&corpus, 20).unwrap();
        // Seeding from the cold solution, a handful of iterations keeps
        // the solution: same labels, objective no worse than the cold end
        // (within the engine's surrogate-descent slack).
        let warm = model
            .fit_warm(
                &data,
                WarmStart {
                    g0: cold.g.clone(),
                    laplacian: None,
                    max_iter: 5,
                },
            )
            .unwrap();
        assert!(warm.iterations <= 5);
        assert_eq!(warm.doc_labels, cold.doc_labels);
        let cold_final = *cold.objective_trace.last().unwrap();
        let warm_final = *warm.objective_trace.last().unwrap();
        assert!(
            warm_final <= cold_final * 1.01 + 1e-9,
            "warm {warm_final} vs cold {cold_final}"
        );
    }

    #[test]
    fn warm_fit_accepts_prebuilt_laplacian() {
        let corpus = tiny_corpus(0.0, 35);
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let data = crate::multitype::MultiTypeData::from_corpus(&corpus, 20).unwrap();
        let features = data.all_features();
        let l = crate::intra::pnn_laplacians(
            &features,
            5,
            mtrl_graph::WeightScheme::Cosine,
            mtrl_graph::LaplacianKind::SymNormalized,
        )
        .unwrap();
        let g0 = init_membership(&data, &features, 35);
        let res = model
            .fit_warm(
                &data,
                WarmStart {
                    g0,
                    laplacian: Some(l),
                    max_iter: 10,
                },
            )
            .unwrap();
        assert!(res.iterations <= 10);
        assert_eq!(res.doc_labels.len(), 24);
        // Bad G0 shape is rejected.
        assert!(model
            .fit_warm(
                &data,
                WarmStart {
                    g0: Mat::zeros(3, 3),
                    laplacian: None,
                    max_iter: 5
                }
            )
            .is_err());
    }

    #[test]
    fn deterministic() {
        let corpus = tiny_corpus(0.05, 33);
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            max_iter: 10,
            ..RhchmeConfig::fast()
        });
        let a = model.fit_corpus(&corpus).unwrap();
        let b = model.fit_corpus(&corpus).unwrap();
        assert_eq!(a.doc_labels, b.doc_labels);
        assert_eq!(a.objective_trace, b.objective_trace);
    }
}
