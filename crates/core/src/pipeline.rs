//! One-call experiment runners.
//!
//! [`run_method`] executes any of the seven compared methods on a corpus
//! with a single parameter bundle and returns labels, traces and wall
//! time — exactly what the table/figure benches need. The heavyweight
//! intermediates (assembled `R`, feature views, pNN Laplacians, subspace
//! Laplacians) are also exposed through [`Artifacts`] so parameter sweeps
//! recompute only what a swept parameter actually touches (Fig. 2).

use crate::baselines::{
    run_drcc, run_rmc, run_snmtf, run_src, DrccConfig, DrccVariant, RmcConfig, SnmtfConfig,
    SrcConfig,
};
use crate::engine::{run_engine, EngineConfig, GraphRegularizer};
use crate::intra::{hetero_laplacian, pnn_laplacians_backend, subspace_laplacians};
use crate::multitype::MultiTypeData;
use crate::rhchme::{init_membership, package_result, Rhchme, RhchmeConfig};
use crate::Result;
use mtrl_datagen::MultiTypeCorpus;
use mtrl_graph::{LaplacianKind, WeightScheme};
use mtrl_linalg::Mat;
use mtrl_sparse::SparseBlockDiag;
use mtrl_subspace::SpgConfig;
use std::time::{Duration, Instant};

/// The seven methods of Tables III–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// DRCC on document–term (two-way baseline).
    DrT,
    /// DRCC on document–concept.
    DrC,
    /// DRCC on the concatenated feature space.
    DrTC,
    /// Spectral Relational Clustering (inter-type only).
    Src,
    /// Symmetric NMTF with a single pNN Laplacian.
    Snmtf,
    /// Relational multi-manifold co-clustering (pNN ensemble).
    Rmc,
    /// The paper's method.
    Rhchme,
}

impl Method {
    /// All methods in the paper's table order.
    pub fn all() -> [Method; 7] {
        [
            Method::DrT,
            Method::DrC,
            Method::DrTC,
            Method::Src,
            Method::Snmtf,
            Method::Rmc,
            Method::Rhchme,
        ]
    }

    /// Paper row label.
    pub fn paper_name(self) -> &'static str {
        match self {
            Method::DrT => "DR-T",
            Method::DrC => "DR-C",
            Method::DrTC => "DR-TC",
            Method::Src => "SRC",
            Method::Snmtf => "SNMTF",
            Method::Rmc => "RMC",
            Method::Rhchme => "RHCHME",
        }
    }

    /// Whether this is a high-order (multi-type) method.
    pub fn is_hocc(self) -> bool {
        !matches!(self, Method::DrT | Method::DrC | Method::DrTC)
    }
}

/// Shared parameter bundle for all methods (tuned defaults from
/// Sec. IV-B/E; per-method interpretations documented inline).
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Laplacian weight λ for SNMTF/RMC/RHCHME (DRCC uses `drcc_lambda`).
    pub lambda: f64,
    /// Subspace-learning γ (RHCHME only).
    pub gamma: f64,
    /// Ensemble trade-off α (RHCHME only).
    pub alpha: f64,
    /// Error-matrix β (RHCHME only).
    pub beta: f64,
    /// pNN neighbour count for SNMTF/RHCHME/DRCC graphs.
    pub p: usize,
    /// Neighbour-search backend for RHCHME's pNN graphs (exact blocked
    /// kernel or an approximate `mtrl_ann` index; other methods keep the
    /// exact kernel — their corpora are baseline-sized by construction).
    pub graph_backend: mtrl_ann::GraphBackend,
    /// Kernel storage precision for RHCHME's hot loops (pNN Gram chain,
    /// engine SpMM / low-rank / residual kernels); see
    /// [`RhchmeConfig::precision`]. Baseline methods always run `f64`.
    pub precision: mtrl_linalg::Precision,
    /// RMC's quadratic penalty μ on ensemble weights.
    pub rmc_mu: f64,
    /// DRCC document-side graph weight.
    pub drcc_lambda: f64,
    /// DRCC feature-side graph weight.
    pub drcc_mu: f64,
    /// Multiplicative-update iteration budget (all NMTF methods).
    pub max_iter: usize,
    /// Relative objective tolerance.
    pub tol: f64,
    /// SPG iteration budget (RHCHME stage 1).
    pub spg_max_iter: usize,
    /// Term/concept cluster divisor (`m / divisor`, clamped to `[2, 30]`).
    pub feature_cluster_divisor: usize,
    /// Seed for k-means / SPG initialisation.
    pub seed: u64,
    /// Record per-iteration document labels (Fig. 3).
    pub record_doc_labels: bool,
    /// Export a serving-ready [`crate::FittedModel`] with the result
    /// (RHCHME only; other methods ignore this flag).
    pub export_model: bool,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            lambda: 0.05,
            gamma: 5.0,
            alpha: 1.0,
            beta: 50.0,
            p: 5,
            graph_backend: mtrl_ann::GraphBackend::Exact,
            precision: mtrl_linalg::Precision::F64,
            rmc_mu: 1.0,
            drcc_lambda: 0.1,
            drcc_mu: 0.1,
            max_iter: 100,
            tol: 1e-6,
            spg_max_iter: 60,
            feature_cluster_divisor: 20,
            seed: 2015,
            record_doc_labels: false,
            export_model: false,
        }
    }
}

/// Unified method output for the benches.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Which method produced this output.
    pub method: Method,
    /// Document cluster labels.
    pub doc_labels: Vec<usize>,
    /// Objective per iteration.
    pub objective_trace: Vec<f64>,
    /// Per-iteration document labels (empty unless requested).
    pub label_trace: Vec<Vec<usize>>,
    /// Wall-clock time of the full run (including intra-type learning).
    pub elapsed: Duration,
    /// Iterations performed by the main optimisation.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Serving-ready export of the fitted model (present only when
    /// [`PipelineParams::export_model`] is set and the method supports it).
    pub model: Option<crate::FittedModel>,
}

impl MethodOutput {
    /// Score the document labels against a ground truth — the report
    /// hook the evaluation layer (`mtrl-eval`) aggregates per scenario.
    ///
    /// # Panics
    /// Panics if `truth` and the document labels differ in length.
    pub fn quality(&self, truth: &[usize]) -> mtrl_metrics::QualityScores {
        mtrl_metrics::quality_scores(truth, &self.doc_labels)
    }
}

/// Run one method end to end on a corpus.
///
/// # Errors
/// Propagates data-assembly and optimisation errors.
pub fn run_method(
    corpus: &MultiTypeCorpus,
    method: Method,
    params: &PipelineParams,
) -> Result<MethodOutput> {
    let start = Instant::now();
    let out = match method {
        Method::DrT | Method::DrC | Method::DrTC => {
            let variant = match method {
                Method::DrT => DrccVariant::Terms,
                Method::DrC => DrccVariant::Concepts,
                _ => DrccVariant::TermsAndConcepts,
            };
            let r = crate::baselines::drcc::variant_matrix(corpus, variant);
            let div = params.feature_cluster_divisor.max(1);
            let res = run_drcc(
                &r,
                &DrccConfig {
                    lambda: params.drcc_lambda,
                    mu: params.drcc_mu,
                    doc_clusters: corpus.num_classes,
                    feature_clusters: (r.cols() / div).clamp(2, 30),
                    p: params.p,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                },
            )?;
            MethodOutput {
                method,
                doc_labels: res.doc_labels,
                objective_trace: res.objective_trace,
                label_trace: res.label_trace,
                elapsed: start.elapsed(),
                iterations: res.iterations,
                converged: res.converged,
                model: None,
            }
        }
        Method::Src => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_src(
                &data,
                &SrcConfig {
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                },
            )?;
            to_output(method, res, start)
        }
        Method::Snmtf => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_snmtf(
                &data,
                &SnmtfConfig {
                    lambda: params.lambda,
                    p: params.p,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                    ..SnmtfConfig::default()
                },
            )?;
            to_output(method, res, start)
        }
        Method::Rmc => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_rmc(
                &data,
                &RmcConfig {
                    lambda: params.lambda,
                    mu: params.rmc_mu,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                    ..RmcConfig::default()
                },
            )?;
            to_output(method, res.clustering, start)
        }
        Method::Rhchme => {
            let model = Rhchme::new(RhchmeConfig {
                lambda: params.lambda,
                gamma: params.gamma,
                alpha: params.alpha,
                beta: params.beta,
                p: params.p,
                graph_backend: params.graph_backend,
                precision: params.precision,
                spg_max_iter: params.spg_max_iter,
                max_iter: params.max_iter,
                tol: params.tol,
                seed: params.seed,
                feature_cluster_divisor: params.feature_cluster_divisor,
                record_doc_labels: params.record_doc_labels,
                ..RhchmeConfig::default()
            });
            // Assemble the multi-type data once and share it between the
            // fit and the export (export_model would rebuild it).
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = model.fit_data(&data)?;
            let exported = if params.export_model {
                Some(model.export_model_from_data(&res, &data)?)
            } else {
                None
            };
            let mut out = to_output(method, res, start);
            out.model = exported;
            out
        }
    };
    Ok(out)
}

fn to_output(method: Method, res: crate::rhchme::RhchmeResult, start: Instant) -> MethodOutput {
    MethodOutput {
        method,
        doc_labels: res.doc_labels,
        objective_trace: res.objective_trace,
        label_trace: res.label_trace,
        elapsed: start.elapsed(),
        iterations: res.iterations,
        converged: res.converged,
        model: None,
    }
}

/// Precomputed heavyweight intermediates for parameter sweeps (Fig. 2).
///
/// A full RHCHME run decomposes into cacheable stages:
///
/// | swept parameter | must recompute                     |
/// |-----------------|------------------------------------|
/// | λ, β            | nothing (reuse `l_hetero(α)`)      |
/// | α               | only the linear combination        |
/// | γ               | the subspace Laplacians            |
pub struct Artifacts {
    /// Assembled multi-type dataset.
    pub data: MultiTypeData,
    /// Symmetric block `R` in CSR form (never densified; the engine is
    /// sparse-first).
    pub r: mtrl_sparse::Csr,
    /// Per-type feature views.
    pub features: Vec<Mat>,
    /// k-means initial membership.
    pub g0: Mat,
    /// pNN Laplacian ensemble member `L_E` (sparse block diagonal).
    pub l_pnn: SparseBlockDiag,
}

impl Artifacts {
    /// Build the sweep-invariant artifacts once.
    ///
    /// # Errors
    /// Propagates data-assembly errors.
    pub fn new(corpus: &MultiTypeCorpus, params: &PipelineParams) -> Result<Self> {
        let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
        let features = data.all_features();
        let g0 = init_membership(&data, &features, params.seed);
        let r = data.assemble_r_csr();
        let l_pnn = pnn_laplacians_backend(
            &features,
            params.p,
            WeightScheme::Cosine,
            LaplacianKind::SymNormalized,
            &params.graph_backend,
        )?;
        Ok(Artifacts {
            data,
            r,
            features,
            g0,
            l_pnn,
        })
    }

    /// Subspace Laplacians for a given γ (the only γ-dependent stage).
    ///
    /// # Errors
    /// Propagates SPG failures.
    pub fn subspace_laplacian(
        &self,
        gamma: f64,
        spg_max_iter: usize,
        seed: u64,
    ) -> Result<SparseBlockDiag> {
        subspace_laplacians(
            &self.features,
            &SpgConfig {
                gamma,
                max_iter: spg_max_iter,
                seed,
                ..SpgConfig::default()
            },
            LaplacianKind::SymNormalized,
        )
    }

    /// Run the RHCHME engine stage on cached artifacts with an explicit
    /// heterogeneous ensemble (`l_sub` from [`Self::subspace_laplacian`]).
    ///
    /// The argument list mirrors the four swept hyper-parameters plus the
    /// iteration budget — a struct would only restate `PipelineParams`.
    ///
    /// # Errors
    /// Propagates engine failures.
    #[allow(clippy::too_many_arguments)]
    pub fn run_rhchme_engine(
        &self,
        l_sub: &SparseBlockDiag,
        alpha: f64,
        lambda: f64,
        beta: f64,
        max_iter: usize,
        tol: f64,
        record_doc_labels: bool,
    ) -> Result<crate::rhchme::RhchmeResult> {
        let l = hetero_laplacian(l_sub, &self.l_pnn, alpha)?;
        let cfg = EngineConfig {
            lambda,
            beta,
            use_error_matrix: true,
            l1_row_normalize: true,
            max_iter,
            tol,
            record_labels_for_type: record_doc_labels.then_some(0),
            ..EngineConfig::default()
        };
        let out = run_engine(
            &self.r,
            &self.data,
            &GraphRegularizer::Fixed(l),
            self.g0.clone(),
            &cfg,
        )?;
        Ok(package_result(&self.data, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn corpus() -> MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![8, 8],
            vocab_size: 48,
            concept_count: 12,
            doc_len_range: (25, 40),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 55,
        })
    }

    fn fast_params() -> PipelineParams {
        PipelineParams {
            lambda: 0.5,
            max_iter: 20,
            spg_max_iter: 20,
            feature_cluster_divisor: 10,
            ..PipelineParams::default()
        }
    }

    #[test]
    fn every_method_runs() {
        let c = corpus();
        let params = fast_params();
        for method in Method::all() {
            let out = run_method(&c, method, &params).unwrap();
            assert_eq!(out.doc_labels.len(), 16, "{method:?}");
            assert!(!out.objective_trace.is_empty(), "{method:?}");
            assert!(out.elapsed.as_nanos() > 0);
            let q = out.quality(&c.labels);
            assert!(q.fscore > 0.5, "{method:?} fscore {}", q.fscore);
            assert!(q.nmi >= 0.0 && q.ari.is_finite(), "{method:?}");
        }
    }

    #[test]
    fn method_names_and_order() {
        let names: Vec<_> = Method::all().iter().map(|m| m.paper_name()).collect();
        assert_eq!(
            names,
            vec!["DR-T", "DR-C", "DR-TC", "SRC", "SNMTF", "RMC", "RHCHME"]
        );
        assert!(!Method::DrT.is_hocc());
        assert!(Method::Rhchme.is_hocc());
    }

    #[test]
    fn artifacts_sweep_reuse_matches_direct_run() {
        let c = corpus();
        let params = fast_params();
        let arts = Artifacts::new(&c, &params).unwrap();
        let l_sub = arts
            .subspace_laplacian(params.gamma, params.spg_max_iter, params.seed)
            .unwrap();
        let res = arts
            .run_rhchme_engine(&l_sub, 1.0, params.lambda, params.beta, 20, 1e-6, false)
            .unwrap();
        assert_eq!(res.doc_labels.len(), 16);
        let f = mtrl_metrics::fscore(&c.labels, &res.doc_labels);
        assert!(f > 0.5, "fscore {f}");
    }
}
