//! One-call experiment runners behind the open method-dispatch API.
//!
//! [`run_spec`] executes a [`MethodSpec`] — the open, non-`Copy` method
//! specification — on a corpus with a single parameter bundle and returns
//! labels, traces and wall time; [`FitRequest`] is its fluent builder
//! front end. The heavyweight intermediates (assembled `R`, feature
//! views, pNN Laplacians, subspace Laplacians) are also exposed through
//! [`Artifacts`] so parameter sweeps recompute only what a swept
//! parameter actually touches (Fig. 2).
//!
//! # Method-dispatch API contract (the `Method` → `MethodSpec` migration)
//!
//! Through PR 9 the dispatch type was the closed `Copy` enum [`Method`]
//! and the entry point was `run_method(corpus, method, params)`. A method
//! that carries its *own* configuration — the consensus-ensemble layer's
//! generator pool, ensemble size and merge strategy — cannot be a unit
//! variant of a `Copy` enum, so the dispatch surface was redesigned:
//!
//! * [`MethodSpec`] is the specification type: `MethodSpec::Base(Method)`
//!   wraps the seven paper methods unchanged; [`MethodSpec::Ensemble`]
//!   carries an [`EnsembleSpec`] (the consensus-ensemble configuration).
//!   New method families add variants here, keeping one spec type across
//!   the pipeline, the evaluation matrix and serving provenance.
//! * [`run_spec`] is the dispatcher for everything *this* crate
//!   implements (the seven base methods). Method families that live in
//!   their own crates layer on top: `mtrl_ensemble::run_spec` executes
//!   [`MethodSpec::Ensemble`] and delegates every base spec back here.
//!   Callers that may receive an ensemble spec (the eval runner, demos)
//!   dispatch through `mtrl_ensemble::run_spec`; callers that only ever
//!   run base methods may use this function directly.
//! * [`run_method`] is **kept, not deprecated**: it is a thin shim over
//!   `run_spec(corpus, &MethodSpec::from(method), params)` via the
//!   [`From<Method>`] impl, so the `Method::all()` table-order benches
//!   and every existing call site compile unchanged.
//! * [`MethodOutput::method`] is now a [`MethodSpec`] (it was a
//!   [`Method`]); use [`MethodSpec::key`] for stable report keys and
//!   [`MethodSpec::as_base`] to recover the old enum where one applies.

use crate::baselines::{
    run_drcc, run_rmc, run_snmtf, run_src, DrccConfig, DrccVariant, RmcConfig, SnmtfConfig,
    SrcConfig,
};
use crate::engine::{run_engine, EngineConfig, GraphRegularizer};
use crate::intra::{hetero_laplacian, pnn_laplacians_backend, subspace_laplacians};
use crate::multitype::MultiTypeData;
use crate::rhchme::{init_membership, package_result, Rhchme, RhchmeConfig};
use crate::Result;
use mtrl_datagen::MultiTypeCorpus;
use mtrl_graph::{LaplacianKind, WeightScheme};
use mtrl_linalg::Mat;
use mtrl_sparse::SparseBlockDiag;
use mtrl_subspace::SpgConfig;
use std::time::{Duration, Instant};

/// The seven methods of Tables III–V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// DRCC on document–term (two-way baseline).
    DrT,
    /// DRCC on document–concept.
    DrC,
    /// DRCC on the concatenated feature space.
    DrTC,
    /// Spectral Relational Clustering (inter-type only).
    Src,
    /// Symmetric NMTF with a single pNN Laplacian.
    Snmtf,
    /// Relational multi-manifold co-clustering (pNN ensemble).
    Rmc,
    /// The paper's method.
    Rhchme,
}

impl Method {
    /// All methods in the paper's table order.
    pub fn all() -> [Method; 7] {
        [
            Method::DrT,
            Method::DrC,
            Method::DrTC,
            Method::Src,
            Method::Snmtf,
            Method::Rmc,
            Method::Rhchme,
        ]
    }

    /// Paper row label.
    pub fn paper_name(self) -> &'static str {
        match self {
            Method::DrT => "DR-T",
            Method::DrC => "DR-C",
            Method::DrTC => "DR-TC",
            Method::Src => "SRC",
            Method::Snmtf => "SNMTF",
            Method::Rmc => "RMC",
            Method::Rhchme => "RHCHME",
        }
    }

    /// Whether this is a high-order (multi-type) method.
    pub fn is_hocc(self) -> bool {
        !matches!(self, Method::DrT | Method::DrC | Method::DrTC)
    }

    /// Stable lower-case key used in reports and scenario names.
    pub fn key(self) -> &'static str {
        match self {
            Method::DrT => "dr_t",
            Method::DrC => "dr_c",
            Method::DrTC => "dr_tc",
            Method::Src => "src",
            Method::Snmtf => "snmtf",
            Method::Rmc => "rmc",
            Method::Rhchme => "rhchme",
        }
    }
}

/// How the consensus-ensemble layer merges base partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeStrategy {
    /// Probability-trajectory random walk over the sparse co-association
    /// graph (the robust default); falls back to [`Self::HyperedgeMedoid`]
    /// when the walk degenerates (fewer than two consensus clusters).
    ProbabilityTrajectory,
    /// k-hyperedge-medoid consensus: greedily select one base cluster per
    /// consensus cluster by coverage, then assign objects by co-association
    /// affinity to the selected hyperedges.
    HyperedgeMedoid,
}

/// Configuration of the consensus-ensemble method layer (`mtrl-ensemble`).
///
/// This is plain specification data: `crates/core` defines it so one
/// [`MethodSpec`] type spans the whole workspace, while the execution
/// lives in the `mtrl-ensemble` crate (`mtrl_ensemble::run_spec`). All
/// `with_*` methods are fluent builders over [`EnsembleSpec::default`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSpec {
    /// Number of base partitions to generate.
    pub members: usize,
    /// Method pool cycled round-robin across members. Member 0 always
    /// uses `pool[0]` with the canonical seed and cluster counts, so the
    /// merge has at least one same-k anchor candidate; the merge then
    /// selects the best-scoring anchor among all same-k members.
    pub pool: Vec<Method>,
    /// Perturb the document cluster count of odd-indexed members by
    /// drawing k uniformly from `[c, 2c]` (clamped to the corpus size);
    /// even-indexed members keep the canonical count so the merge always
    /// has same-k anchor candidates.
    pub random_k: bool,
    /// Co-cluster neighbours kept per object in the sparse
    /// co-association structure (its row budget; no n×n is built).
    pub coassoc_p: usize,
    /// Probability-trajectory walk length T.
    pub walk_steps: usize,
    /// Per-step decay θ of the trajectory vote memory
    /// `E_t = θ·E_{t-1} + W·onehot(labels_{t-1})`.
    pub walk_decay: f64,
    /// Merge strategy for turning co-associations into consensus labels.
    pub merge: MergeStrategy,
    /// Posterior smoothing of the exported consensus membership blocks.
    pub smoothing: f64,
}

impl Default for EnsembleSpec {
    fn default() -> Self {
        EnsembleSpec {
            members: 8,
            pool: vec![Method::Rhchme, Method::Snmtf, Method::Rmc, Method::Src],
            random_k: true,
            coassoc_p: 12,
            walk_steps: 3,
            walk_decay: 0.8,
            merge: MergeStrategy::ProbabilityTrajectory,
            smoothing: 0.2,
        }
    }
}

impl EnsembleSpec {
    /// Set the number of base partitions.
    #[must_use]
    pub fn with_members(mut self, members: usize) -> Self {
        self.members = members;
        self
    }

    /// Set the base-method pool (cycled round-robin; `pool[0]` anchors).
    #[must_use]
    pub fn with_pool(mut self, pool: Vec<Method>) -> Self {
        self.pool = pool;
        self
    }

    /// Enable or disable random-k perturbation of members `1..`.
    #[must_use]
    pub fn with_random_k(mut self, random_k: bool) -> Self {
        self.random_k = random_k;
        self
    }

    /// Set the co-association neighbour budget per object.
    #[must_use]
    pub fn with_coassoc_p(mut self, p: usize) -> Self {
        self.coassoc_p = p;
        self
    }

    /// Set the probability-trajectory walk length and decay.
    #[must_use]
    pub fn with_walk(mut self, steps: usize, decay: f64) -> Self {
        self.walk_steps = steps;
        self.walk_decay = decay;
        self
    }

    /// Set the merge strategy.
    #[must_use]
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        self.merge = merge;
        self
    }
}

/// Open method specification — see the module docs for the
/// `Method` → `MethodSpec` migration contract.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodSpec {
    /// One of the seven paper methods, executed by [`run_spec`] here.
    Base(Method),
    /// The consensus-ensemble layer, executed by `mtrl_ensemble::run_spec`.
    Ensemble(EnsembleSpec),
}

impl From<Method> for MethodSpec {
    fn from(method: Method) -> Self {
        MethodSpec::Base(method)
    }
}

impl From<EnsembleSpec> for MethodSpec {
    fn from(spec: EnsembleSpec) -> Self {
        MethodSpec::Ensemble(spec)
    }
}

impl MethodSpec {
    /// The default consensus-ensemble spec.
    pub fn ensemble() -> Self {
        MethodSpec::Ensemble(EnsembleSpec::default())
    }

    /// Stable lower-case key used in reports, scenario names and model
    /// provenance (`FittedModel::method`).
    pub fn key(&self) -> &'static str {
        match self {
            MethodSpec::Base(m) => m.key(),
            MethodSpec::Ensemble(_) => "ensemble",
        }
    }

    /// Human-readable table label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodSpec::Base(m) => m.paper_name(),
            MethodSpec::Ensemble(_) => "ENSEMBLE",
        }
    }

    /// Whether this spec is a high-order (multi-type) method.
    pub fn is_hocc(&self) -> bool {
        match self {
            MethodSpec::Base(m) => m.is_hocc(),
            MethodSpec::Ensemble(_) => true,
        }
    }

    /// The wrapped base [`Method`], when this spec is one.
    pub fn as_base(&self) -> Option<Method> {
        match self {
            MethodSpec::Base(m) => Some(*m),
            MethodSpec::Ensemble(_) => None,
        }
    }
}

/// Shared parameter bundle for all methods (tuned defaults from
/// Sec. IV-B/E; per-method interpretations documented inline).
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Laplacian weight λ for SNMTF/RMC/RHCHME (DRCC uses `drcc_lambda`).
    pub lambda: f64,
    /// Subspace-learning γ (RHCHME only).
    pub gamma: f64,
    /// Ensemble trade-off α (RHCHME only).
    pub alpha: f64,
    /// Error-matrix β (RHCHME only).
    pub beta: f64,
    /// pNN neighbour count for SNMTF/RHCHME/DRCC graphs.
    pub p: usize,
    /// Neighbour-search backend for RHCHME's pNN graphs (exact blocked
    /// kernel or an approximate `mtrl_ann` index; other methods keep the
    /// exact kernel — their corpora are baseline-sized by construction).
    pub graph_backend: mtrl_ann::GraphBackend,
    /// Kernel storage precision for RHCHME's hot loops (pNN Gram chain,
    /// engine SpMM / low-rank / residual kernels); see
    /// [`RhchmeConfig::precision`]. Baseline methods always run `f64`.
    pub precision: mtrl_linalg::Precision,
    /// RMC's quadratic penalty μ on ensemble weights.
    pub rmc_mu: f64,
    /// DRCC document-side graph weight.
    pub drcc_lambda: f64,
    /// DRCC feature-side graph weight.
    pub drcc_mu: f64,
    /// Multiplicative-update iteration budget (all NMTF methods).
    pub max_iter: usize,
    /// Relative objective tolerance.
    pub tol: f64,
    /// SPG iteration budget (RHCHME stage 1).
    pub spg_max_iter: usize,
    /// Term/concept cluster divisor (`m / divisor`, clamped to `[2, 30]`).
    pub feature_cluster_divisor: usize,
    /// Seed for k-means / SPG initialisation.
    pub seed: u64,
    /// Record per-iteration document labels (Fig. 3).
    pub record_doc_labels: bool,
    /// Export a serving-ready [`crate::FittedModel`] with the result
    /// (RHCHME only; other methods ignore this flag).
    pub export_model: bool,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            lambda: 0.05,
            gamma: 5.0,
            alpha: 1.0,
            beta: 50.0,
            p: 5,
            graph_backend: mtrl_ann::GraphBackend::Exact,
            precision: mtrl_linalg::Precision::F64,
            rmc_mu: 1.0,
            drcc_lambda: 0.1,
            drcc_mu: 0.1,
            max_iter: 100,
            tol: 1e-6,
            spg_max_iter: 60,
            feature_cluster_divisor: 20,
            seed: 2015,
            record_doc_labels: false,
            export_model: false,
        }
    }
}

/// Unified method output for the benches.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Which method produced this output.
    pub method: MethodSpec,
    /// Document cluster labels.
    pub doc_labels: Vec<usize>,
    /// Objective per iteration.
    pub objective_trace: Vec<f64>,
    /// Per-iteration document labels (empty unless requested).
    pub label_trace: Vec<Vec<usize>>,
    /// Wall-clock time of the full run (including intra-type learning).
    pub elapsed: Duration,
    /// Iterations performed by the main optimisation.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Serving-ready export of the fitted model (present only when
    /// [`PipelineParams::export_model`] is set and the method supports it).
    pub model: Option<crate::FittedModel>,
}

impl MethodOutput {
    /// Score the document labels against a ground truth — the report
    /// hook the evaluation layer (`mtrl-eval`) aggregates per scenario.
    ///
    /// # Panics
    /// Panics if `truth` and the document labels differ in length.
    pub fn quality(&self, truth: &[usize]) -> mtrl_metrics::QualityScores {
        mtrl_metrics::quality_scores(truth, &self.doc_labels)
    }
}

/// Run one method end to end on a corpus — the compatibility shim over
/// [`run_spec`] kept for the `Method::all()` table-order benches (see the
/// module-level API contract).
///
/// # Errors
/// Propagates data-assembly and optimisation errors.
pub fn run_method(
    corpus: &MultiTypeCorpus,
    method: Method,
    params: &PipelineParams,
) -> Result<MethodOutput> {
    run_spec(corpus, &MethodSpec::from(method), params)
}

/// Run a [`MethodSpec`] end to end on a corpus.
///
/// This crate executes the seven base methods. [`MethodSpec::Ensemble`]
/// is implemented by the `mtrl-ensemble` crate; pass ensemble specs to
/// `mtrl_ensemble::run_spec` (which delegates base specs back here) —
/// this function returns [`crate::RhchmeError::InvalidConfig`] for them.
///
/// # Errors
/// Propagates data-assembly and optimisation errors, and rejects
/// [`MethodSpec::Ensemble`] as described above.
pub fn run_spec(
    corpus: &MultiTypeCorpus,
    spec: &MethodSpec,
    params: &PipelineParams,
) -> Result<MethodOutput> {
    let method = match spec {
        MethodSpec::Base(m) => *m,
        MethodSpec::Ensemble(_) => {
            return Err(crate::RhchmeError::InvalidConfig(
                "MethodSpec::Ensemble is executed by mtrl_ensemble::run_spec; \
                 rhchme::pipeline::run_spec dispatches only the seven base methods"
                    .into(),
            ))
        }
    };
    let start = Instant::now();
    let out = match method {
        Method::DrT | Method::DrC | Method::DrTC => {
            let variant = match method {
                Method::DrT => DrccVariant::Terms,
                Method::DrC => DrccVariant::Concepts,
                _ => DrccVariant::TermsAndConcepts,
            };
            let r = crate::baselines::drcc::variant_matrix(corpus, variant);
            let div = params.feature_cluster_divisor.max(1);
            let res = run_drcc(
                &r,
                &DrccConfig {
                    lambda: params.drcc_lambda,
                    mu: params.drcc_mu,
                    doc_clusters: corpus.num_classes,
                    feature_clusters: (r.cols() / div).clamp(2, 30),
                    p: params.p,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                },
            )?;
            MethodOutput {
                method: MethodSpec::Base(method),
                doc_labels: res.doc_labels,
                objective_trace: res.objective_trace,
                label_trace: res.label_trace,
                elapsed: start.elapsed(),
                iterations: res.iterations,
                converged: res.converged,
                model: None,
            }
        }
        Method::Src => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_src(
                &data,
                &SrcConfig {
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                },
            )?;
            to_output(method, res, start)
        }
        Method::Snmtf => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_snmtf(
                &data,
                &SnmtfConfig {
                    lambda: params.lambda,
                    p: params.p,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                    ..SnmtfConfig::default()
                },
            )?;
            to_output(method, res, start)
        }
        Method::Rmc => {
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = run_rmc(
                &data,
                &RmcConfig {
                    lambda: params.lambda,
                    mu: params.rmc_mu,
                    max_iter: params.max_iter,
                    tol: params.tol,
                    seed: params.seed,
                    record_doc_labels: params.record_doc_labels,
                    ..RmcConfig::default()
                },
            )?;
            to_output(method, res.clustering, start)
        }
        Method::Rhchme => {
            let model = Rhchme::new(RhchmeConfig {
                lambda: params.lambda,
                gamma: params.gamma,
                alpha: params.alpha,
                beta: params.beta,
                p: params.p,
                graph_backend: params.graph_backend,
                precision: params.precision,
                spg_max_iter: params.spg_max_iter,
                max_iter: params.max_iter,
                tol: params.tol,
                seed: params.seed,
                feature_cluster_divisor: params.feature_cluster_divisor,
                record_doc_labels: params.record_doc_labels,
                ..RhchmeConfig::default()
            });
            // Assemble the multi-type data once and share it between the
            // fit and the export (export_model would rebuild it).
            let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
            let res = model.fit_data(&data)?;
            let exported = if params.export_model {
                Some(model.export_model_from_data(&res, &data)?)
            } else {
                None
            };
            let mut out = to_output(method, res, start);
            out.model = exported;
            out
        }
    };
    Ok(out)
}

fn to_output(method: Method, res: crate::rhchme::RhchmeResult, start: Instant) -> MethodOutput {
    MethodOutput {
        method: MethodSpec::Base(method),
        doc_labels: res.doc_labels,
        objective_trace: res.objective_trace,
        label_trace: res.label_trace,
        elapsed: start.elapsed(),
        iterations: res.iterations,
        converged: res.converged,
        model: None,
    }
}

/// Fluent builder front end for [`run_spec`], mirroring the serve layer's
/// `AssignRequest` builder: start from a corpus, layer on a spec and
/// parameter overrides, then [`FitRequest::run`].
///
/// ```no_run
/// # use rhchme::pipeline::{FitRequest, Method};
/// # fn demo(corpus: &mtrl_datagen::MultiTypeCorpus) -> rhchme::Result<()> {
/// let out = FitRequest::new(corpus)
///     .spec(Method::Snmtf)
///     .seed(7)
///     .export_model(true)
///     .run()?;
/// # let _ = out; Ok(()) }
/// ```
///
/// Like [`run_spec`], `run` executes base methods only; build ensemble
/// requests here too, but execute them with `mtrl_ensemble::run_spec`
/// via [`FitRequest::into_parts`].
pub struct FitRequest<'c> {
    corpus: &'c MultiTypeCorpus,
    spec: MethodSpec,
    params: PipelineParams,
}

impl<'c> FitRequest<'c> {
    /// Start a request with the paper's method and default parameters.
    pub fn new(corpus: &'c MultiTypeCorpus) -> Self {
        FitRequest {
            corpus,
            spec: MethodSpec::Base(Method::Rhchme),
            params: PipelineParams::default(),
        }
    }

    /// Set the method spec (accepts `Method`, `EnsembleSpec` or
    /// `MethodSpec` via `Into`).
    #[must_use]
    pub fn spec(mut self, spec: impl Into<MethodSpec>) -> Self {
        self.spec = spec.into();
        self
    }

    /// Replace the whole parameter bundle.
    #[must_use]
    pub fn params(mut self, params: PipelineParams) -> Self {
        self.params = params;
        self
    }

    /// Set the initialisation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Request a serving-ready [`crate::FittedModel`] with the result.
    #[must_use]
    pub fn export_model(mut self, export: bool) -> Self {
        self.params.export_model = export;
        self
    }

    /// Execute the request (base methods; see [`run_spec`]).
    ///
    /// # Errors
    /// Propagates [`run_spec`] errors.
    pub fn run(self) -> Result<MethodOutput> {
        run_spec(self.corpus, &self.spec, &self.params)
    }

    /// Decompose into `(corpus, spec, params)` for an external dispatcher
    /// such as `mtrl_ensemble::run_spec`.
    pub fn into_parts(self) -> (&'c MultiTypeCorpus, MethodSpec, PipelineParams) {
        (self.corpus, self.spec, self.params)
    }
}

/// Precomputed heavyweight intermediates for parameter sweeps (Fig. 2).
///
/// A full RHCHME run decomposes into cacheable stages:
///
/// | swept parameter | must recompute                     |
/// |-----------------|------------------------------------|
/// | λ, β            | nothing (reuse `l_hetero(α)`)      |
/// | α               | only the linear combination        |
/// | γ               | the subspace Laplacians            |
pub struct Artifacts {
    /// Assembled multi-type dataset.
    pub data: MultiTypeData,
    /// Symmetric block `R` in CSR form (never densified; the engine is
    /// sparse-first).
    pub r: mtrl_sparse::Csr,
    /// Per-type feature views.
    pub features: Vec<Mat>,
    /// k-means initial membership.
    pub g0: Mat,
    /// pNN Laplacian ensemble member `L_E` (sparse block diagonal).
    pub l_pnn: SparseBlockDiag,
}

impl Artifacts {
    /// Build the sweep-invariant artifacts once.
    ///
    /// # Errors
    /// Propagates data-assembly errors.
    pub fn new(corpus: &MultiTypeCorpus, params: &PipelineParams) -> Result<Self> {
        let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
        let features = data.all_features();
        let g0 = init_membership(&data, &features, params.seed);
        let r = data.assemble_r_csr();
        let l_pnn = pnn_laplacians_backend(
            &features,
            params.p,
            WeightScheme::Cosine,
            LaplacianKind::SymNormalized,
            &params.graph_backend,
        )?;
        Ok(Artifacts {
            data,
            r,
            features,
            g0,
            l_pnn,
        })
    }

    /// Subspace Laplacians for a given γ (the only γ-dependent stage).
    ///
    /// # Errors
    /// Propagates SPG failures.
    pub fn subspace_laplacian(
        &self,
        gamma: f64,
        spg_max_iter: usize,
        seed: u64,
    ) -> Result<SparseBlockDiag> {
        subspace_laplacians(
            &self.features,
            &SpgConfig {
                gamma,
                max_iter: spg_max_iter,
                seed,
                ..SpgConfig::default()
            },
            LaplacianKind::SymNormalized,
        )
    }

    /// Run the RHCHME engine stage on cached artifacts with an explicit
    /// heterogeneous ensemble (`l_sub` from [`Self::subspace_laplacian`]).
    ///
    /// The argument list mirrors the four swept hyper-parameters plus the
    /// iteration budget — a struct would only restate `PipelineParams`.
    ///
    /// # Errors
    /// Propagates engine failures.
    #[allow(clippy::too_many_arguments)]
    pub fn run_rhchme_engine(
        &self,
        l_sub: &SparseBlockDiag,
        alpha: f64,
        lambda: f64,
        beta: f64,
        max_iter: usize,
        tol: f64,
        record_doc_labels: bool,
    ) -> Result<crate::rhchme::RhchmeResult> {
        let l = hetero_laplacian(l_sub, &self.l_pnn, alpha)?;
        let cfg = EngineConfig {
            lambda,
            beta,
            use_error_matrix: true,
            l1_row_normalize: true,
            max_iter,
            tol,
            record_labels_for_type: record_doc_labels.then_some(0),
            ..EngineConfig::default()
        };
        let out = run_engine(
            &self.r,
            &self.data,
            &GraphRegularizer::Fixed(l),
            self.g0.clone(),
            &cfg,
        )?;
        Ok(package_result(&self.data, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn corpus() -> MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![8, 8],
            vocab_size: 48,
            concept_count: 12,
            doc_len_range: (25, 40),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 55,
        })
    }

    fn fast_params() -> PipelineParams {
        PipelineParams {
            lambda: 0.5,
            max_iter: 20,
            spg_max_iter: 20,
            feature_cluster_divisor: 10,
            ..PipelineParams::default()
        }
    }

    #[test]
    fn every_method_runs() {
        let c = corpus();
        let params = fast_params();
        for method in Method::all() {
            let out = run_method(&c, method, &params).unwrap();
            assert_eq!(out.doc_labels.len(), 16, "{method:?}");
            assert!(!out.objective_trace.is_empty(), "{method:?}");
            assert!(out.elapsed.as_nanos() > 0);
            let q = out.quality(&c.labels);
            assert!(q.fscore > 0.5, "{method:?} fscore {}", q.fscore);
            assert!(q.nmi >= 0.0 && q.ari.is_finite(), "{method:?}");
        }
    }

    #[test]
    fn method_names_and_order() {
        let names: Vec<_> = Method::all().iter().map(|m| m.paper_name()).collect();
        assert_eq!(
            names,
            vec!["DR-T", "DR-C", "DR-TC", "SRC", "SNMTF", "RMC", "RHCHME"]
        );
        assert!(!Method::DrT.is_hocc());
        assert!(Method::Rhchme.is_hocc());
    }

    #[test]
    fn spec_shim_matches_run_method_and_rejects_ensemble() {
        let c = corpus();
        let params = fast_params();
        let via_method = run_method(&c, Method::Src, &params).unwrap();
        let via_spec = run_spec(&c, &MethodSpec::from(Method::Src), &params).unwrap();
        assert_eq!(via_method.doc_labels, via_spec.doc_labels);
        assert_eq!(via_spec.method, MethodSpec::Base(Method::Src));
        assert_eq!(via_spec.method.as_base(), Some(Method::Src));

        let err = run_spec(&c, &MethodSpec::ensemble(), &params).unwrap_err();
        assert!(
            err.to_string().contains("mtrl_ensemble"),
            "error should point at the ensemble dispatcher: {err}"
        );
    }

    #[test]
    fn spec_keys_and_builder() {
        assert_eq!(MethodSpec::from(Method::Rhchme).key(), "rhchme");
        assert_eq!(MethodSpec::ensemble().key(), "ensemble");
        assert_eq!(MethodSpec::ensemble().label(), "ENSEMBLE");
        assert!(MethodSpec::ensemble().is_hocc());
        assert!(MethodSpec::ensemble().as_base().is_none());

        let spec = EnsembleSpec::default()
            .with_members(5)
            .with_pool(vec![Method::Snmtf, Method::Src])
            .with_random_k(false)
            .with_coassoc_p(7)
            .with_walk(4, 0.5)
            .with_merge(MergeStrategy::HyperedgeMedoid);
        assert_eq!(spec.members, 5);
        assert_eq!(spec.pool, vec![Method::Snmtf, Method::Src]);
        assert!(!spec.random_k);
        assert_eq!(spec.coassoc_p, 7);
        assert_eq!((spec.walk_steps, spec.walk_decay), (4, 0.5));
        assert_eq!(spec.merge, MergeStrategy::HyperedgeMedoid);
    }

    #[test]
    fn fit_request_builder_runs() {
        let c = corpus();
        let out = FitRequest::new(&c)
            .spec(Method::Snmtf)
            .params(fast_params())
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(out.doc_labels.len(), 16);
        assert_eq!(out.method.key(), "snmtf");

        let (corpus_ref, spec, params) = FitRequest::new(&c)
            .spec(EnsembleSpec::default())
            .export_model(true)
            .into_parts();
        assert_eq!(corpus_ref.labels.len(), 16);
        assert_eq!(spec.key(), "ensemble");
        assert!(params.export_model);
    }

    #[test]
    fn artifacts_sweep_reuse_matches_direct_run() {
        let c = corpus();
        let params = fast_params();
        let arts = Artifacts::new(&c, &params).unwrap();
        let l_sub = arts
            .subspace_laplacian(params.gamma, params.spg_max_iter, params.seed)
            .unwrap();
        let res = arts
            .run_rhchme_engine(&l_sub, 1.0, params.lambda, params.beta, 20, 1e-6, false)
            .unwrap();
        assert_eq!(res.doc_labels.len(), 16);
        let f = mtrl_metrics::fscore(&c.labels, &res.doc_labels);
        assert!(f > 0.5, "fscore {f}");
    }
}
