//! The NMTF multiplicative-update engine — paper Algorithm 2,
//! **sparse-first**.
//!
//! One engine drives RHCHME and the NMTF-based baselines; they differ only
//! in configuration:
//!
//! | method  | graph regulariser            | `E_R` | row ℓ1 |
//! |---------|------------------------------|-------|--------|
//! | SRC     | [`GraphRegularizer::None`]   | off   | off    |
//! | SNMTF   | [`GraphRegularizer::Fixed`] (pNN) | off | off |
//! | RMC     | [`GraphRegularizer::Ensemble`] (6 pNN candidates) | off | off |
//! | RHCHME  | [`GraphRegularizer::Fixed`] (heterogeneous, Eq. 12) | on | on |
//!
//! # The sparse formulation
//!
//! The decomposition target `R` is a symmetric block matrix of
//! inter-type co-occurrences — inherently sparse (`z = nnz(R) ≪ n²`,
//! the quantity the paper's own complexity analysis in Sec. III-F is
//! written in). [`run_engine`] therefore takes `R` as a
//! [`mtrl_sparse::Csr`] (from [`MultiTypeData::assemble_r_csr`]) and
//! never forms an `n x n` dense matrix:
//!
//! * **`E_R` is implicit.** Eq. 27's row shrinkage is
//!   `(E_R)_i = f_i·q_i` with `f_i = 1/(1 + β/(2‖q_i‖ + ζ))` and
//!   `Q = R − G S Gᵀ`, so
//!   `R − E_R = D_{1−f}·R + D_f·U·Hᵀ` where `U = G S` and `H = G` are
//!   the previous iterate's factors — a diagonal scaling of sparse `R`
//!   plus a rank-`c` correction. The engine stores only `f` and the two
//!   `n x c` factors; [`mtrl_linalg::lowrank::diag_lowrank_combine`]
//!   applies the correction directly to `R·G`.
//! * **`G S Gᵀ` is never materialised.** `A = (R − E_R)·G·Sᵀ` runs as
//!   one sparse SpMM (`R·G`, reused across steps) plus the low-rank
//!   correction; the Eq. 27 row residuals come from the trace identity
//!   `‖q_i‖² = ‖r_i‖² − 2·(R G Sᵀ)_i·g_i + g_i (S GᵀG Sᵀ) g_iᵀ`
//!   evaluated per row block
//!   ([`mtrl_linalg::lowrank::row_dots`] / [`row_quad_forms`]).
//! * **The objective is trace-form.** `J₄`'s fit term is
//!   `Σ_i (1 − f_i)²‖q_i‖²` (equivalently
//!   `tr((R−E)ᵀ(R−E)) − 2·tr(Gᵀ(R−E)G Sᵀ) + tr(SᵀGᵀG S GᵀG)` — the
//!   identities `tr((R−E)ᵀGSGᵀ) = tr(Gᵀ(R−E)G Sᵀ)` and
//!   `‖GSGᵀ‖²_F = tr(SᵀGᵀG S GᵀG)` folded into the row residuals), so
//!   no `n x n` temporary survives anywhere in the loop.
//!
//! Per-iteration cost is `O(nnz·c + n·c²)` (was `O(n²·c)`) and resident
//! memory is `O(nnz + n·c)` (was three `n x n` buffers). The original
//! dense loop is kept verbatim as [`run_engine_dense_reference`] for
//! tests and benches; a cross-implementation proptest
//! (`tests/integration_engine.rs`) pins the two to the same objective
//! trace (1e-9 relative) and identical argmax labels across method
//! configurations and thread counts.
//!
//! Per iteration (Algorithm 2 steps 3–7):
//!
//! 1. `S = (GᵀG)⁻¹ Gᵀ (R − E_R) G (GᵀG)⁻¹` (Eq. 18), ridge-stabilised;
//! 2. multiplicative `G` update (Eq. 21) with positive/negative part
//!    splits of `L`, `A = (R − E_R) G Sᵀ` and `B = Sᵀ GᵀG S`;
//! 3. row-ℓ1 normalisation of `G` (Eq. 22) when enabled;
//! 4. `E_R` update (Eq. 27) as the shrinkage factors `f` above;
//! 5. objective `J₄` (Eq. 15) evaluation and convergence check.
//!
//! The final `E_R` is reported two ways: `error_row_norms` (every row's
//! `‖(E_R)_i‖`, the corruption indicator) and `error_rows` — a
//! [`mtrl_sparse::RowSparse`] materialising only the *shrunk-active*
//! rows (norm ≥ [`EngineConfig::error_export_rel`] of the largest),
//! matching the ℓ2,1 model: most rows shrink to near-zero, corrupted
//! samples stay large.
//!
//! # Observability (stable metric-name contract)
//!
//! With `MTRL_OBS=1` (see `mtrl-obs`), every [`run_engine`] call reports
//! into the global registry. The names below are a **stable contract** —
//! exporters, dashboards, and the CI manifest rely on them:
//!
//! * span `engine.fit` — wall time of the whole call (nested under any
//!   caller spans, e.g. `rhchme.fit/engine.fit`);
//! * span aggregates `engine.fit.spmm`, `engine.fit.lowrank`,
//!   `engine.fit.update`, `engine.fit.residual` — cumulative per-phase
//!   kernel time across the iteration loop (`count` = iterations):
//!   `spmm` is the `R·G` / `GᵀG` refresh, `lowrank` the regulariser
//!   resolve + implicit-`E_R` correction + Eq. 18 `S` solve, `update`
//!   the Eq. 21 multiplicative `G` update + row normalisation,
//!   `residual` the trace-identity `‖q_i‖` / `E_R` / objective
//!   evaluation;
//! * counters `engine.fits` (calls) and `engine.iterations` (total
//!   iterations across calls);
//! * a `FitTelemetry` record (label `engine.fit`) with the problem shape
//!   (`n`, `c`, `nnz`), convergence outcome, the four phase totals, and
//!   a per-iteration trace of `objective`, `rel_change`, and
//!   `er_active_rows` (rows clearing the
//!   [`EngineConfig::error_export_rel`] threshold — Fig. 3's
//!   convergence evidence, machine-readable).
//!
//! Instrumentation only reads iterates and the monotonic clock; it is
//! exactly skipped when `MTRL_OBS` is off and never changes the
//! floating-point computation, so fits are byte-identical either way
//! (CI pins this with `determinism_probe`). The dense reference path is
//! deliberately uninstrumented.

use crate::error::RhchmeError;
use crate::multitype::MultiTypeData;
use crate::Result;
use mtrl_linalg::lowrank::{
    diag_lowrank_combine, diag_lowrank_combine_f32, row_dots, row_dots_f32, row_quad_forms,
    row_quad_forms_f32,
};
use mtrl_linalg::norms::row_l2_norms;
use mtrl_linalg::ops::{g_s_gt, gram, matmul, matmul_tn};
use mtrl_linalg::simplex::project_simplex;
use mtrl_linalg::solve::ridge_inverse;
use mtrl_linalg::{Mat, MatF32, Precision, EPS};
use mtrl_obs::{FitTelemetry, IterTelemetry};
use mtrl_sparse::{Csr, CsrF32, RowSparse, SparseBlockDiag, SparseBlockDiagF32};
use std::time::Instant;

/// Kernel-phase indices for [`PhaseClock`] (see the module docs'
/// observability section for what each phase covers).
const PHASE_SPMM: usize = 0;
const PHASE_LOWRANK: usize = 1;
const PHASE_UPDATE: usize = 2;
const PHASE_RESIDUAL: usize = 3;

/// Cumulative per-phase wall clock for the iteration loop. Inert (no
/// clock reads at all) when observability is off.
struct PhaseClock {
    lap_start: Option<Instant>,
    ns: [u64; 4],
}

impl PhaseClock {
    fn new(enabled: bool) -> Self {
        PhaseClock {
            lap_start: enabled.then(Instant::now),
            ns: [0; 4],
        }
    }

    /// Restart the lap timer (top of each iteration).
    fn mark(&mut self) {
        if self.lap_start.is_some() {
            self.lap_start = Some(Instant::now());
        }
    }

    /// Charge the time since the last mark/lap to `phase`.
    fn lap(&mut self, phase: usize) {
        if let Some(start) = self.lap_start {
            let now = Instant::now();
            self.ns[phase] += u64::try_from(now.duration_since(start).as_nanos()).unwrap_or(0);
            self.lap_start = Some(now);
        }
    }
}

/// Graph regulariser attached to the trace term `λ·tr(GᵀLG)`.
#[derive(Debug, Clone)]
pub enum GraphRegularizer {
    /// No intra-type information (SRC).
    None,
    /// A fixed Laplacian — single pNN (SNMTF) or the heterogeneous
    /// ensemble of Eq. 12 (RHCHME). Kept sparse: a pNN Laplacian has
    /// `O(p·n)` entries and the update only ever needs `L·G` products.
    Fixed(SparseBlockDiag),
    /// RMC's pre-given candidate ensemble (Eq. 2): `L = Σ βᵢ L̂ᵢ` with `β`
    /// re-optimised every iteration by minimising
    /// `Σ βᵢ tr(GᵀL̂ᵢG) + μ‖β‖²` over the probability simplex.
    Ensemble {
        /// Candidate Laplacians `L̂ᵢ` (same block layout).
        candidates: Vec<SparseBlockDiag>,
        /// Quadratic penalty μ keeping `β` away from the vertices.
        mu: f64,
    },
}

/// Engine configuration (one struct drives all four NMTF methods).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Graph regularisation weight λ (Eq. 15).
    pub lambda: f64,
    /// Error-matrix trade-off β (Eq. 15); ignored when
    /// `use_error_matrix` is false.
    pub beta: f64,
    /// Enable the sample-wise sparse error matrix `E_R`.
    pub use_error_matrix: bool,
    /// Enable row-ℓ1 normalisation of `G` (Eq. 22).
    pub l1_row_normalize: bool,
    /// Maximum multiplicative-update iterations.
    pub max_iter: usize,
    /// Relative objective-change convergence threshold.
    pub tol: f64,
    /// Record per-iteration argmax labels of this type (Fig. 3 traces).
    pub record_labels_for_type: Option<usize>,
    /// Ridge added to `GᵀG` before inversion (empty-cluster protection).
    pub ridge: f64,
    /// The ζ perturbation regularising `D_ii` when `‖q_i‖ = 0`
    /// (Sec. III-D3).
    pub zeta: f64,
    /// Activity threshold for materialising final `E_R` rows into
    /// [`EngineResult::error_rows`], relative to the largest row norm:
    /// rows with `‖(E_R)_i‖ ≥ error_export_rel · max_j ‖(E_R)_j‖` are
    /// stored. Keeps the export at `O(active · n)` — under the ℓ2,1
    /// model only outlier (corrupted) rows clear half the maximum.
    pub error_export_rel: f64,
    /// Storage precision of the iteration hot loops. [`Precision::F32`]
    /// stores the SpMM / low-rank / residual / regulariser operands
    /// (`R`, a fixed `L` and its part split, the per-iteration `G`
    /// snapshot and low-rank factors) in `f32` and accumulates every
    /// product in `f64`, halving the memory traffic of the
    /// bandwidth-bound kernels. Iterates (`G`, `S`) and the small dense
    /// algebra stay `f64`. The RMC ensemble regulariser re-optimises its
    /// combination every iteration and stays `f64` in both modes. Runs
    /// remain bit-identical across thread counts *within* each mode;
    /// the two modes produce different (both valid) descent paths.
    pub precision: Precision,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            lambda: 0.05,
            beta: 50.0,
            use_error_matrix: true,
            l1_row_normalize: true,
            max_iter: 100,
            tol: 1e-6,
            record_labels_for_type: None,
            ridge: 1e-10,
            zeta: 1e-8,
            error_export_rel: 0.5,
            precision: Precision::F64,
        }
    }
}

/// Output of an engine run.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Final stacked membership matrix `G` (`n x c`).
    pub g: Mat,
    /// Final association matrix `S` (`c x c`).
    pub s: Mat,
    /// Objective `J₄` after every iteration.
    pub objective_trace: Vec<f64>,
    /// Recorded labels per iteration (empty unless requested).
    pub label_trace: Vec<Vec<usize>>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative-change criterion was met.
    pub converged: bool,
    /// Final ensemble weights `β` (RMC only).
    pub ensemble_weights: Option<Vec<f64>>,
    /// Row l2 norms of the final `E_R` (empty when disabled) — corrupted
    /// samples show up as the large entries.
    pub error_row_norms: Vec<f64>,
    /// The shrunk-active rows of the final `E_R` (rows whose norm clears
    /// [`EngineConfig::error_export_rel`] of the maximum), stored
    /// row-sparsely; an all-zero `n x n` when `E_R` is disabled.
    pub error_rows: RowSparse,
}

/// Shared validation of everything except the `R` operand.
fn validate_common(
    n: usize,
    c: usize,
    g0: &Mat,
    reg: &GraphRegularizer,
    cfg: &EngineConfig,
) -> Result<()> {
    if g0.shape() != (n, c) {
        return Err(RhchmeError::InvalidData(format!(
            "G0 is {:?}, expected ({n}, {c})",
            g0.shape()
        )));
    }
    if cfg.lambda < 0.0 || cfg.beta < 0.0 {
        return Err(RhchmeError::InvalidConfig(
            "lambda and beta must be nonnegative".into(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.error_export_rel) {
        return Err(RhchmeError::InvalidConfig(format!(
            "error_export_rel {} outside [0, 1]",
            cfg.error_export_rel
        )));
    }
    if g0.min() < 0.0 {
        return Err(RhchmeError::InvalidData("G0 has negative entries".into()));
    }
    match reg {
        GraphRegularizer::Fixed(l) if l.n() != n => Err(RhchmeError::InvalidData(format!(
            "Laplacian is {}x{0}, expected {n}x{n}",
            l.n()
        ))),
        GraphRegularizer::Ensemble { candidates, mu } => {
            if candidates.is_empty() {
                return Err(RhchmeError::InvalidConfig(
                    "ensemble regulariser with no candidates".into(),
                ));
            }
            if *mu <= 0.0 {
                return Err(RhchmeError::InvalidConfig("mu must be positive".into()));
            }
            if candidates.iter().any(|l| l.n() != n) {
                return Err(RhchmeError::InvalidData(
                    "ensemble candidate with wrong dimension".into(),
                ));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// The per-iteration regulariser state shared by both engine paths.
struct RegState<'a> {
    /// Fixed case: borrowed Laplacian + its part split, computed once.
    /// The Laplacian itself is **borrowed** from the caller's
    /// [`GraphRegularizer`] — a fit never deep-copies the `O(p·n)`
    /// triplets (the split parts are new matrices by necessity).
    fixed: Option<(&'a SparseBlockDiag, (SparseBlockDiag, SparseBlockDiag))>,
}

impl<'a> RegState<'a> {
    fn new(reg: &'a GraphRegularizer) -> Self {
        RegState {
            fixed: match reg {
                GraphRegularizer::Fixed(l) => Some((l, l.split_parts())),
                _ => None,
            },
        }
    }

    /// Resolve this iteration's `(L, L⁺, L⁻)`; the ensemble case
    /// re-optimises `β` against the current `G` and stores the combined
    /// Laplacian in `storage` so references stay borrowable.
    #[allow(clippy::type_complexity)]
    fn resolve<'b>(
        &'b self,
        reg: &'b GraphRegularizer,
        g: &Mat,
        storage: &'b mut Option<(SparseBlockDiag, SparseBlockDiag, SparseBlockDiag)>,
        ensemble_weights: &mut Option<Vec<f64>>,
    ) -> Result<(
        Option<&'b SparseBlockDiag>,
        Option<&'b SparseBlockDiag>,
        Option<&'b SparseBlockDiag>,
    )> {
        match (&self.fixed, reg) {
            (Some((l, (lp, lm))), _) => Ok((Some(*l), Some(lp), Some(lm))),
            (None, GraphRegularizer::Ensemble { candidates, mu }) => {
                let traces: Vec<f64> = candidates
                    .iter()
                    .map(|cand| cand.trace_quad(g))
                    .collect::<std::result::Result<_, _>>()?;
                let target: Vec<f64> = traces.iter().map(|&t| -t / (2.0 * mu)).collect();
                let beta_w = project_simplex(&target, 1.0);
                // L = Σ β L̂ over the shared block layout (sparse
                // patterns merge; the combination never densifies).
                let mut acc = candidates[0].scaled(beta_w[0]);
                for (cand, &b) in candidates.iter().zip(&beta_w).skip(1) {
                    acc = acc.lin_comb(1.0, cand, b).expect("same layout");
                }
                *ensemble_weights = Some(beta_w);
                let (lp, lm) = acc.split_parts();
                *storage = Some((acc, lp, lm));
                let (l, lp, lm) = storage.as_ref().expect("just stored");
                Ok((Some(l), Some(lp), Some(lm)))
            }
            (None, _) => Ok((None, None, None)),
        }
    }
}

/// The multiplicative `G` update of Eq. 21, shared by both paths: each
/// entry scales by `sqrt(num/den)`; structural zeros stay zero.
fn multiplicative_update(
    g: &mut Mat,
    a: &Mat,
    gb_pos: &Mat,
    gb_neg: &Mat,
    lp_g: Option<&Mat>,
    lm_g: Option<&Mat>,
    lambda: f64,
) {
    let (n, c) = g.shape();
    for i in 0..n {
        let a_row = a.row(i);
        let gbp = gb_pos.row(i);
        let gbn = gb_neg.row(i);
        let lpg = lp_g.as_ref().map(|m| m.row(i));
        let lmg = lm_g.as_ref().map(|m| m.row(i));
        let grow = g.row_mut(i);
        for j in 0..c {
            let gv = grow[j];
            if gv == 0.0 {
                continue; // structural zero (block layout) stays zero
            }
            let a_pos = a_row[j].max(0.0);
            let a_neg = (-a_row[j]).max(0.0);
            let (l_num, l_den) = match (lmg, lpg) {
                (Some(lm), Some(lp)) => (lambda * lm[j], lambda * lp[j]),
                _ => (0.0, 0.0),
            };
            let num = l_num + a_pos + gbn[j];
            let den = l_den + a_neg + gbp[j];
            grow[j] = gv * ((num + EPS) / (den + EPS)).sqrt();
        }
    }
}

/// Run the multiplicative-update engine — the **sparse-first** default
/// path.
///
/// * `r` — symmetric block CSR from
///   [`MultiTypeData::assemble_r_csr`] (relations are never densified);
/// * `data` — block layouts (and label extraction);
/// * `reg` — graph regulariser (see [`GraphRegularizer`]); a
///   [`GraphRegularizer::Fixed`] Laplacian is borrowed, not cloned;
/// * `g0` — initial membership (from
///   [`crate::kmeans::labels_to_membership`], block-structured).
///
/// Per iteration `O(nnz·c + n·c²)` work, `O(nnz + n·c)` memory; see the
/// module docs for the implicit `E_R` / trace-identity formulation. The
/// row-parallel kernels run on the [`mtrl_linalg::par`] pool and are
/// bit-identical for every thread count.
///
/// # Errors
/// * [`RhchmeError::InvalidData`] / [`RhchmeError::InvalidConfig`] on
///   shape or parameter violations;
/// * [`RhchmeError::Diverged`] if an iterate becomes non-finite.
pub fn run_engine(
    r: &Csr,
    data: &MultiTypeData,
    reg: &GraphRegularizer,
    g0: Mat,
    cfg: &EngineConfig,
) -> Result<EngineResult> {
    let n = data.total_objects();
    let c = data.total_clusters();
    if r.shape() != (n, n) {
        return Err(RhchmeError::InvalidData(format!(
            "R is {:?}, expected ({n}, {n})",
            r.shape()
        )));
    }
    validate_common(n, c, &g0, reg, cfg)?;

    // Observability (reads-only; skipped entirely when MTRL_OBS is off —
    // the fit itself is byte-identical either way).
    let obs = mtrl_obs::enabled();
    let _fit_span = mtrl_obs::span!("engine.fit");
    let mut clock = PhaseClock::new(obs);
    let mut iter_telemetry: Vec<IterTelemetry> = Vec::new();

    let mut g = g0;
    let mut s = Mat::zeros(c, c);
    let reg_state = RegState::new(reg);
    let mut ensemble_weights: Option<Vec<f64>> = None;

    // F32 mode: quantised storage twins of the loop-invariant sparse
    // operands, built once. `R` feeds every SpMM; a fixed regulariser's
    // `(L, L⁺, L⁻)` feed the update products and the objective trace
    // term. The ensemble (RMC) regulariser rebuilds its combination
    // every iteration and stays f64 (see [`EngineConfig::precision`]).
    let f32_mode = !cfg.precision.is_f64();
    let r32 = f32_mode.then(|| CsrF32::from_csr(r));
    let fixed_f32: Option<(SparseBlockDiagF32, SparseBlockDiagF32, SparseBlockDiagF32)> = match reg
    {
        GraphRegularizer::Fixed(l) if f32_mode => {
            let (lp, lm) = l.split_parts();
            Some((
                SparseBlockDiagF32::from_block_diag(l),
                SparseBlockDiagF32::from_block_diag(&lp),
                SparseBlockDiagF32::from_block_diag(&lm),
            ))
        }
        _ => None,
    };

    // Row structure of R for the residual trace identity — of the
    // quantised R in f32 mode, so the identity's three terms see one
    // consistent operand.
    let r_row_sq: Vec<f64> = match &r32 {
        Some(r32) => r32.row_sq_sums(),
        None => (0..n)
            .map(|i| r.row(i).1.iter().map(|v| v * v).sum())
            .collect(),
    };

    // Implicit E_R: shrinkage factors f plus the previous iterate's
    // low-rank factors (U = G·S, H = G), so that
    // R − E_R = D_{1−f}·R + D_f·U·Hᵀ.
    let mut f_er: Vec<f64> = vec![0.0; n];
    let mut one_minus_f: Vec<f64> = vec![1.0; n];
    let mut prev_lowrank: Option<(Mat, Mat)> = None;
    let mut prev_u32: Option<MatF32> = None;
    let mut error_row_norms: Vec<f64> = Vec::new();
    let mut final_q_norms: Vec<f64> = Vec::new();

    // R·G and GᵀG for the *current* G — computed before the loop,
    // refreshed after every G update, and shared between the residual
    // identity of iteration t and step 3 of iteration t+1 (one SpMM and
    // one gram per iteration). In f32 mode the SpMM streams the
    // quantised `R` against an f32 snapshot of `G` (accumulating in
    // f64); `g32` tracks `G` across the update.
    let mut g32 = f32_mode.then(|| MatF32::from_mat(&g));
    let mut rg = match (&r32, &g32) {
        (Some(r32), Some(g32)) => r32.spmm_dense(g32),
        _ => r.spmm_dense(&g),
    };
    let mut gram_cur = gram(&g);

    let mut objective_trace = Vec::with_capacity(cfg.max_iter);
    let mut label_trace = Vec::new();
    let mut prev_obj = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;
    // Per-iteration storage for the (recomputed) ensemble Laplacian so the
    // fixed case can hand out references without cloning.
    #[allow(unused_assignments)]
    let mut ens_storage: Option<(SparseBlockDiag, SparseBlockDiag, SparseBlockDiag)> = None;

    for t in 0..cfg.max_iter {
        iterations = t + 1;
        clock.mark();

        // ---- Regulariser for this iteration -------------------------
        ens_storage = None;
        let (l_current, l_plus, l_minus) =
            reg_state.resolve(reg, &g, &mut ens_storage, &mut ensemble_weights)?;

        // ---- Step 3: S update (Eq. 18) ------------------------------
        // m1 = (R − E_R)·G = D_{1−f}·(R·G) + D_f·U·(Hᵀ·G); before the
        // first shrinkage E_R = 0 and m1 is R·G itself.
        let m1_corrected = match &prev_lowrank {
            Some((u, h)) => {
                let w = matmul_tn(h, &g)?; // Hᵀ·G, c x c
                Some(match &prev_u32 {
                    Some(u32) => {
                        let rg32 = MatF32::from_mat(&rg);
                        diag_lowrank_combine_f32(&one_minus_f, &rg32, &f_er, u32, &w)?
                    }
                    None => diag_lowrank_combine(&one_minus_f, &rg, &f_er, u, &w)?,
                })
            }
            None => None,
        };
        let m1: &Mat = m1_corrected.as_ref().unwrap_or(&rg);
        let gram_g = &gram_cur; // GᵀG of the pre-update G, c x c
        let ginv = ridge_inverse(gram_g, cfg.ridge)?;
        let gtm = matmul_tn(&g, m1)?; // Gᵀ(R − E_R)G, c x c
        s = matmul(&matmul(&ginv, &gtm)?, &ginv)?;
        clock.lap(PHASE_LOWRANK);

        // ---- Step 4: multiplicative G update (Eq. 21) ---------------
        let a = matmul(m1, &s.transpose())?; // (R − E_R) G Sᵀ, n x c
        let b = matmul_tn(&s, &matmul(gram_g, &s)?)?; // Sᵀ GᵀG S, c x c
        let (b_pos, b_neg) = mtrl_linalg::parts::split_parts(&b);
        let gb_pos = matmul(&g, &b_pos)?;
        let gb_neg = matmul(&g, &b_neg)?;
        let (lp_g, lm_g) = match (&fixed_f32, &g32) {
            (Some((_, lp32, lm32)), Some(g32c)) => {
                (Some(lp32.mul_dense(g32c)?), Some(lm32.mul_dense(g32c)?))
            }
            _ => match (&l_plus, &l_minus) {
                (Some(lp), Some(lm)) => (Some(lp.mul_dense(&g)?), Some(lm.mul_dense(&g)?)),
                _ => (None, None),
            },
        };
        multiplicative_update(
            &mut g,
            &a,
            &gb_pos,
            &gb_neg,
            lp_g.as_ref(),
            lm_g.as_ref(),
            cfg.lambda,
        );
        if g.has_non_finite() {
            return Err(RhchmeError::Diverged { iteration: t });
        }

        // ---- Step 5: row-l1 normalisation (Eq. 22) ------------------
        if cfg.l1_row_normalize {
            g.normalize_rows_l1(1e-300);
        }
        clock.lap(PHASE_UPDATE);

        // ---- Steps 6-7: E_R update (Eqs. 25-27), trace form ----------
        // Refresh R·G and GᵀG for the updated G (also next iteration's
        // step 3 — neither is recomputed there).
        if let Some(g32m) = &mut g32 {
            *g32m = MatF32::from_mat(&g);
        }
        rg = match (&r32, &g32) {
            (Some(r32), Some(g32c)) => r32.spmm_dense(g32c),
            _ => r.spmm_dense(&g),
        };
        gram_cur = gram(&g);
        clock.lap(PHASE_SPMM);
        // ‖q_i‖² = ‖r_i‖² − 2·(R G Sᵀ)_i·g_i + g_i (S GᵀG Sᵀ) g_iᵀ —
        // per row block, no Q matrix. Cancellation is clamped at zero.
        let m_q = matmul(&matmul(&s, &gram_cur)?, &s.transpose())?; // S K Sᵀ
        let rgst = matmul(&rg, &s.transpose())?;
        let (cross, quad) = match &g32 {
            Some(g32c) => {
                let rgst32 = MatF32::from_mat(&rgst);
                (
                    row_dots_f32(&rgst32, g32c)?,
                    row_quad_forms_f32(g32c, &m_q)?,
                )
            }
            None => (row_dots(&rgst, &g)?, row_quad_forms(&g, &m_q)?),
        };
        let q_norms: Vec<f64> = (0..n)
            .map(|i| (r_row_sq[i] - 2.0 * cross[i] + quad[i]).max(0.0).sqrt())
            .collect();
        let mut fit = 0.0;
        let mut l21 = 0.0;
        if cfg.use_error_matrix {
            for i in 0..n {
                // (βD + I)⁻¹ row factor: f = 1 / (1 + β / (2‖q_i‖ + ζ)).
                f_er[i] = 1.0 / (1.0 + cfg.beta / (2.0 * q_norms[i] + cfg.zeta));
                one_minus_f[i] = 1.0 - f_er[i];
                // ‖Q − E_R‖² = Σ (1−f)²‖q‖², ‖E_R‖₂,₁ = Σ f‖q‖.
                let residual = one_minus_f[i] * q_norms[i];
                fit += residual * residual;
                l21 += f_er[i] * q_norms[i];
            }
            error_row_norms = f_er.iter().zip(&q_norms).map(|(f, qn)| f * qn).collect();
            // Next iteration's low-rank factors of R − E_R.
            let u = matmul(&g, &s)?;
            if f32_mode {
                prev_u32 = Some(MatF32::from_mat(&u));
            }
            prev_lowrank = Some((u, g.clone()));
            final_q_norms = q_norms;
        } else {
            fit = q_norms.iter().map(|x| x * x).sum();
        }

        // ---- Objective J₄ (Eq. 15) ----------------------------------
        let reg_term = match (&fixed_f32, &g32) {
            (Some((l32, _, _)), Some(g32c)) => l32.trace_quad(g32c)?,
            _ => match &l_current {
                Some(l) => l.trace_quad(&g)?,
                None => 0.0,
            },
        };
        let l21_term = if cfg.use_error_matrix {
            cfg.beta * l21
        } else {
            0.0
        };
        let obj = fit + l21_term + cfg.lambda * reg_term;
        objective_trace.push(obj);
        clock.lap(PHASE_RESIDUAL);

        if obs {
            let rel_change = if t > 0 {
                (prev_obj - obj).abs() / prev_obj.abs().max(1.0)
            } else {
                0.0
            };
            let er_active_rows = if error_row_norms.is_empty() {
                0
            } else {
                let max = error_row_norms.iter().cloned().fold(0.0, f64::max);
                let threshold = cfg.error_export_rel * max;
                if max > 0.0 {
                    error_row_norms.iter().filter(|&&x| x >= threshold).count()
                } else {
                    0
                }
            };
            iter_telemetry.push(IterTelemetry {
                objective: obj,
                rel_change,
                er_active_rows,
            });
        }

        if let Some(ty) = cfg.record_labels_for_type {
            label_trace.push(data.labels_from_membership(&g, ty));
        }

        // ---- Convergence ---------------------------------------------
        if t > 0 {
            let denom = prev_obj.abs().max(1.0);
            if (prev_obj - obj).abs() / denom < cfg.tol {
                converged = true;
                break;
            }
        }
        prev_obj = obj;
    }

    if obs {
        let reg_handle = mtrl_obs::global();
        let iters = iterations as u64;
        reg_handle.record_span_agg("engine.fit.spmm", iters, clock.ns[PHASE_SPMM], 0);
        reg_handle.record_span_agg("engine.fit.lowrank", iters, clock.ns[PHASE_LOWRANK], 0);
        reg_handle.record_span_agg("engine.fit.update", iters, clock.ns[PHASE_UPDATE], 0);
        reg_handle.record_span_agg("engine.fit.residual", iters, clock.ns[PHASE_RESIDUAL], 0);
        reg_handle.add("engine.fits", 1);
        reg_handle.add("engine.iterations", iters);
        reg_handle.record_fit(FitTelemetry {
            label: "engine.fit".to_string(),
            n,
            c,
            nnz: r.nnz(),
            iterations,
            converged,
            spmm_ns: clock.ns[PHASE_SPMM],
            lowrank_ns: clock.ns[PHASE_LOWRANK],
            update_ns: clock.ns[PHASE_UPDATE],
            residual_ns: clock.ns[PHASE_RESIDUAL],
            iters: iter_telemetry,
        });
    }

    let error_rows = if cfg.use_error_matrix {
        materialize_error_rows(
            r,
            &g,
            &s,
            &f_er,
            &final_q_norms,
            &error_row_norms,
            cfg.error_export_rel,
        )?
    } else {
        RowSparse::new(n, n)
    };

    Ok(EngineResult {
        g,
        s,
        objective_trace,
        label_trace,
        iterations,
        converged,
        ensemble_weights,
        error_row_norms,
        error_rows,
    })
}

/// Materialise the shrunk-active rows of `E_R = D_f·(R − G S Gᵀ)`: rows
/// whose final norm clears `rel` of the maximum. `O(active · n · c)` —
/// each active row reconstructs `q_i = r_i − (G S)_i Gᵀ` on the fly.
fn materialize_error_rows(
    r: &Csr,
    g: &Mat,
    s: &Mat,
    f_er: &[f64],
    q_norms: &[f64],
    row_norms: &[f64],
    rel: f64,
) -> Result<RowSparse> {
    let n = r.rows();
    let mut out = RowSparse::new(n, n);
    let max = row_norms.iter().cloned().fold(0.0, f64::max);
    if max <= 0.0 {
        return Ok(out);
    }
    let threshold = rel * max;
    let gs = matmul(g, s)?;
    for i in 0..n {
        if row_norms[i] < threshold || q_norms[i] == 0.0 {
            continue;
        }
        let fi = f_er[i];
        let gsi = gs.row(i);
        let mut row: Vec<f64> = (0..n)
            .map(|j| {
                let dot: f64 = gsi.iter().zip(g.row(j)).map(|(a, b)| a * b).sum();
                -fi * dot
            })
            .collect();
        let (cols, vals) = r.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            row[j] += fi * v;
        }
        out.push_row(i, row);
    }
    Ok(out)
}

/// The original dense loop of Algorithm 2, kept as the cross-check
/// reference for [`run_engine`] (tests, benches, numerical debugging).
///
/// Takes the dense `R` from [`MultiTypeData::assemble_r`]; keeps two
/// `n x n` buffers (`Q` and `R − E_R`) resident — `O(n²·c)` per
/// iteration. Not used by any fit path.
///
/// # Errors
/// Same contract as [`run_engine`].
pub fn run_engine_dense_reference(
    r: &Mat,
    data: &MultiTypeData,
    reg: &GraphRegularizer,
    g0: Mat,
    cfg: &EngineConfig,
) -> Result<EngineResult> {
    let n = data.total_objects();
    let c = data.total_clusters();
    if r.shape() != (n, n) {
        return Err(RhchmeError::InvalidData(format!(
            "R is {:?}, expected ({n}, {n})",
            r.shape()
        )));
    }
    validate_common(n, c, &g0, reg, cfg)?;

    let mut g = g0;
    let mut s = Mat::zeros(c, c);
    let reg_state = RegState::new(reg);
    let mut ensemble_weights: Option<Vec<f64>> = None;

    // Workhorse n x n buffers.
    let mut r_eff = r.clone(); // R − E_R (E_R starts at zero)
    let mut q = Mat::zeros(0, 0); // R − G S Gᵀ
    let mut error_row_norms: Vec<f64> = Vec::new();
    let mut final_q_norms: Vec<f64> = Vec::new();
    let mut er_factors: Vec<f64> = vec![0.0; n];

    let mut objective_trace = Vec::with_capacity(cfg.max_iter);
    let mut label_trace = Vec::new();
    let mut prev_obj = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;
    #[allow(unused_assignments)]
    let mut ens_storage: Option<(SparseBlockDiag, SparseBlockDiag, SparseBlockDiag)> = None;

    for t in 0..cfg.max_iter {
        iterations = t + 1;

        // ---- Regulariser for this iteration -------------------------
        ens_storage = None;
        let (l_current, l_plus, l_minus) =
            reg_state.resolve(reg, &g, &mut ens_storage, &mut ensemble_weights)?;

        // ---- Step 3: S update (Eq. 18) ------------------------------
        let m1 = matmul(&r_eff, &g)?; // (R − E_R)·G, n x c
        let gram_g = gram(&g); // c x c
        let ginv = ridge_inverse(&gram_g, cfg.ridge)?;
        let gtm = matmul_tn(&g, &m1)?; // Gᵀ(R − E_R)G, c x c
        s = matmul(&matmul(&ginv, &gtm)?, &ginv)?;

        // ---- Step 4: multiplicative G update (Eq. 21) ---------------
        let a = matmul(&m1, &s.transpose())?; // (R − E_R) G Sᵀ, n x c
        let b = matmul_tn(&s, &matmul(&gram_g, &s)?)?; // Sᵀ GᵀG S, c x c
        let (b_pos, b_neg) = mtrl_linalg::parts::split_parts(&b);
        let gb_pos = matmul(&g, &b_pos)?;
        let gb_neg = matmul(&g, &b_neg)?;
        let (lp_g, lm_g) = match (&l_plus, &l_minus) {
            (Some(lp), Some(lm)) => (Some(lp.mul_dense(&g)?), Some(lm.mul_dense(&g)?)),
            _ => (None, None),
        };
        multiplicative_update(
            &mut g,
            &a,
            &gb_pos,
            &gb_neg,
            lp_g.as_ref(),
            lm_g.as_ref(),
            cfg.lambda,
        );
        if g.has_non_finite() {
            return Err(RhchmeError::Diverged { iteration: t });
        }

        // ---- Step 5: row-l1 normalisation (Eq. 22) ------------------
        if cfg.l1_row_normalize {
            g.normalize_rows_l1(1e-300);
        }

        // ---- Steps 6-7: E_R update (Eqs. 25-27) ----------------------
        q = r.sub(&g_s_gt(&g, &s)?)?;
        let q_norms = row_l2_norms(&q);
        let mut fit = 0.0;
        let mut l21 = 0.0;
        if cfg.use_error_matrix {
            for (i, f) in er_factors.iter_mut().enumerate() {
                // (βD + I)⁻¹ row factor: f = 1 / (1 + β / (2‖q_i‖ + ζ)).
                *f = 1.0 / (1.0 + cfg.beta / (2.0 * q_norms[i] + cfg.zeta));
            }
            // R − E_R for the next iteration, and objective pieces:
            // ‖Q − E_R‖² = Σ (1−f)²‖q‖², ‖E_R‖₂,₁ = Σ f‖q‖.
            for i in 0..n {
                let f = er_factors[i];
                let q_row = q.row(i);
                let r_row = r.row(i);
                let dst = r_eff.row_mut(i);
                for ((d, &rv), &qv) in dst.iter_mut().zip(r_row).zip(q_row) {
                    *d = rv - f * qv;
                }
                let residual = (1.0 - f) * q_norms[i];
                fit += residual * residual;
                l21 += f * q_norms[i];
            }
            error_row_norms = er_factors
                .iter()
                .zip(&q_norms)
                .map(|(f, qn)| f * qn)
                .collect();
            final_q_norms = q_norms;
        } else {
            fit = q_norms.iter().map(|x| x * x).sum();
        }

        // ---- Objective J₄ (Eq. 15) ----------------------------------
        let reg_term = match &l_current {
            Some(l) => l.trace_quad(&g)?,
            None => 0.0,
        };
        let l21_term = if cfg.use_error_matrix {
            cfg.beta * l21
        } else {
            0.0
        };
        let obj = fit + l21_term + cfg.lambda * reg_term;
        objective_trace.push(obj);

        if let Some(ty) = cfg.record_labels_for_type {
            label_trace.push(data.labels_from_membership(&g, ty));
        }

        // ---- Convergence ---------------------------------------------
        if t > 0 {
            let denom = prev_obj.abs().max(1.0);
            if (prev_obj - obj).abs() / denom < cfg.tol {
                converged = true;
                break;
            }
        }
        prev_obj = obj;
    }

    // Materialise the final E_R's active rows straight from Q.
    let error_rows = if cfg.use_error_matrix && !error_row_norms.is_empty() {
        let max = error_row_norms.iter().cloned().fold(0.0, f64::max);
        let mut rows = RowSparse::new(n, n);
        if max > 0.0 {
            let threshold = cfg.error_export_rel * max;
            for i in 0..n {
                if error_row_norms[i] < threshold || final_q_norms[i] == 0.0 {
                    continue;
                }
                let f = er_factors[i];
                rows.push_row(i, q.row(i).iter().map(|&v| f * v).collect());
            }
        }
        rows
    } else {
        RowSparse::new(n, n)
    };

    Ok(EngineResult {
        g,
        s,
        objective_trace,
        label_trace,
        iterations,
        converged,
        ensemble_weights,
        error_row_norms,
        error_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, labels_to_membership};
    use mtrl_datagen::corpus::{generate, CorpusConfig};
    use mtrl_graph::{laplacian_csr, pnn_graph, LaplacianKind, WeightScheme};
    use mtrl_linalg::block::stack_membership;

    fn tiny_data() -> (MultiTypeData, mtrl_datagen::MultiTypeCorpus) {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![8, 8],
            vocab_size: 48,
            concept_count: 12,
            doc_len_range: (25, 40),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 11,
        });
        let data = MultiTypeData::from_corpus(&corpus, 10).unwrap();
        (data, corpus)
    }

    fn init_g(data: &MultiTypeData, seed: u64) -> Mat {
        let feats = data.all_features();
        let blocks: Vec<Mat> = feats
            .iter()
            .zip(data.cluster_counts())
            .enumerate()
            .map(|(k, (f, &ck))| {
                let km = kmeans(f, ck, seed + k as u64, 50);
                labels_to_membership(&km.labels, ck, 0.2)
            })
            .collect();
        stack_membership(&blocks)
    }

    fn pnn_block_laplacian(data: &MultiTypeData) -> SparseBlockDiag {
        let blocks = data
            .all_features()
            .iter()
            .map(|f| {
                let w = pnn_graph(f, 5, WeightScheme::Cosine);
                laplacian_csr(&w, LaplacianKind::SymNormalized)
            })
            .collect();
        SparseBlockDiag::new(blocks).unwrap()
    }

    #[test]
    fn src_configuration_runs_and_descends() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 1);
        let cfg = EngineConfig {
            lambda: 0.0,
            use_error_matrix: false,
            l1_row_normalize: false,
            max_iter: 30,
            record_labels_for_type: None,
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::None, g0, &cfg).unwrap();
        let t = &res.objective_trace;
        assert!(t.len() >= 2);
        // Monotone decrease (Theorem 1) within numerical slack.
        for w in t.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-6) + 1e-9,
                "objective rose: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(res.g.min() >= 0.0);
        assert!(res.error_row_norms.is_empty());
        assert!(res.error_rows.is_empty());
    }

    #[test]
    fn rhchme_configuration_descends_and_normalises() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 2);
        let lap = pnn_block_laplacian(&data);
        let cfg = EngineConfig {
            lambda: 1.0,
            beta: 10.0,
            max_iter: 40,
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::Fixed(lap), g0, &cfg).unwrap();
        let t = &res.objective_trace;
        for w in t.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-5) + 1e-9,
                "objective rose: {} -> {}",
                w[0],
                w[1]
            );
        }
        // Rows of G sum to 1 (Eq. 22).
        for i in 0..res.g.rows() {
            let s: f64 = res.g.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
        assert_eq!(res.error_row_norms.len(), data.total_objects());
    }

    #[test]
    fn sparse_path_matches_dense_reference() {
        // The unit-level pin; the integration proptest fuzzes this over
        // corpora, configurations and thread counts.
        let (data, _) = tiny_data();
        let r_sparse = data.assemble_r_csr();
        let r_dense = data.assemble_r();
        let lap = pnn_block_laplacian(&data);
        let g0 = init_g(&data, 9);
        let cfg = EngineConfig {
            lambda: 0.8,
            beta: 10.0,
            max_iter: 25,
            tol: 0.0,
            ..EngineConfig::default()
        };
        let reg = GraphRegularizer::Fixed(lap);
        let sparse = run_engine(&r_sparse, &data, &reg, g0.clone(), &cfg).unwrap();
        let dense = run_engine_dense_reference(&r_dense, &data, &reg, g0, &cfg).unwrap();
        assert_eq!(sparse.iterations, dense.iterations);
        for (a, b) in sparse.objective_trace.iter().zip(&dense.objective_trace) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "objective diverged: {a} vs {b}"
            );
        }
        for ty in 0..data.num_types() {
            assert_eq!(
                data.labels_from_membership(&sparse.g, ty),
                data.labels_from_membership(&dense.g, ty),
                "labels diverged for type {ty}"
            );
        }
        for (a, b) in sparse.error_row_norms.iter().zip(&dense.error_row_norms) {
            assert!((a - b).abs() < 1e-8, "error norms diverged: {a} vs {b}");
        }
    }

    #[test]
    fn f32_mode_descends_and_agrees_with_f64() {
        let (data, corpus) = tiny_data();
        let r = data.assemble_r_csr();
        let lap = pnn_block_laplacian(&data);
        let g0 = init_g(&data, 2);
        let cfg64 = EngineConfig {
            lambda: 1.0,
            beta: 10.0,
            max_iter: 40,
            ..EngineConfig::default()
        };
        let cfg32 = EngineConfig {
            precision: Precision::F32,
            ..cfg64.clone()
        };
        let reg = GraphRegularizer::Fixed(lap);
        let r64 = run_engine(&r, &data, &reg, g0.clone(), &cfg64).unwrap();
        let r32 = run_engine(&r, &data, &reg, g0, &cfg32).unwrap();
        // Monotone descent within the same numerical slack as f64 mode.
        for w in r32.objective_trace.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-5) + 1e-9,
                "f32 objective rose: {} -> {}",
                w[0],
                w[1]
            );
        }
        // Quantisation perturbs the descent path, not the clustering:
        // both modes recover the two-class structure.
        let labels64 = data.labels_from_membership(&r64.g, 0);
        let labels32 = data.labels_from_membership(&r32.g, 0);
        let f64_score = mtrl_metrics::fscore(&corpus.labels, &labels64);
        let f32_score = mtrl_metrics::fscore(&corpus.labels, &labels32);
        assert!(
            (f64_score - f32_score).abs() < 0.02,
            "quality drifted: f64 {f64_score} vs f32 {f32_score}"
        );
        // Rows of G still sum to 1 and stay nonnegative in f32 mode.
        for i in 0..r32.g.rows() {
            let s: f64 = r32.g.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
        assert!(r32.g.min() >= 0.0);
    }

    #[test]
    fn f32_mode_is_reproducible() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let lap = pnn_block_laplacian(&data);
        let g0 = init_g(&data, 3);
        let cfg = EngineConfig {
            lambda: 0.5,
            beta: 10.0,
            max_iter: 15,
            tol: 0.0,
            precision: Precision::F32,
            ..EngineConfig::default()
        };
        let reg = GraphRegularizer::Fixed(lap);
        let a = run_engine(&r, &data, &reg, g0.clone(), &cfg).unwrap();
        let b = run_engine(&r, &data, &reg, g0, &cfg).unwrap();
        assert_eq!(a.g.as_slice(), b.g.as_slice());
        assert_eq!(a.objective_trace, b.objective_trace);
    }

    #[test]
    fn block_structure_preserved() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 3);
        let cfg = EngineConfig {
            lambda: 0.0,
            use_error_matrix: false,
            max_iter: 10,
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::None, g0, &cfg).unwrap();
        // Entries outside a type's cluster columns must remain exactly 0.
        for k in 0..data.num_types() {
            let rows = data.spec().range(k);
            let cols = data.cluster_spec().range(k);
            for i in rows {
                for j in 0..data.total_clusters() {
                    if !cols.contains(&j) {
                        assert_eq!(res.g[(i, j)], 0.0, "leak at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn clusters_two_class_corpus_well() {
        let (data, corpus) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 4);
        let lap = pnn_block_laplacian(&data);
        let cfg = EngineConfig {
            lambda: 0.5,
            beta: 20.0,
            max_iter: 60,
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::Fixed(lap), g0, &cfg).unwrap();
        let labels = data.labels_from_membership(&res.g, 0);
        let f = mtrl_metrics::fscore(&corpus.labels, &labels);
        assert!(f > 0.8, "fscore {f}");
    }

    #[test]
    fn ensemble_regulariser_produces_simplex_weights() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 5);
        let feats = data.all_features();
        let mut candidates = Vec::new();
        for p in [3usize, 5] {
            for scheme in [WeightScheme::Binary, WeightScheme::Cosine] {
                let blocks = feats
                    .iter()
                    .map(|f| laplacian_csr(&pnn_graph(f, p, scheme), LaplacianKind::SymNormalized))
                    .collect();
                candidates.push(SparseBlockDiag::new(blocks).unwrap());
            }
        }
        let cfg = EngineConfig {
            lambda: 0.5,
            use_error_matrix: false,
            l1_row_normalize: false,
            max_iter: 15,
            ..EngineConfig::default()
        };
        let reg = GraphRegularizer::Ensemble {
            candidates,
            mu: 1.0,
        };
        let res = run_engine(&r, &data, &reg, g0, &cfg).unwrap();
        let w = res.ensemble_weights.expect("ensemble weights");
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&b| b >= 0.0));
    }

    #[test]
    fn error_matrix_targets_corrupted_rows() {
        // Corrupt some documents; their E_R row norms should dominate,
        // and the row-sparse export should store (a superset of) them.
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![10, 10],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 40),
            background_frac: 0.25,
            topic_noise: 0.15,
            concept_map_noise: 0.1,
            corrupt_frac: 0.15,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 21,
        });
        let data = MultiTypeData::from_corpus(&corpus, 10).unwrap();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 6);
        let cfg = EngineConfig {
            lambda: 0.0,
            beta: 2.0,
            max_iter: 40,
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::None, g0, &cfg).unwrap();
        assert!(!corpus.corrupted_docs.is_empty());
        let norms = &res.error_row_norms;
        let doc_range = data.spec().range(0);
        let corrupt_mean = mtrl_linalg::vecops::mean(
            &corpus
                .corrupted_docs
                .iter()
                .map(|&d| norms[d])
                .collect::<Vec<_>>(),
        );
        let clean_mean = mtrl_linalg::vecops::mean(
            &doc_range
                .filter(|d| !corpus.corrupted_docs.contains(d))
                .map(|d| norms[d])
                .collect::<Vec<_>>(),
        );
        assert!(
            corrupt_mean > clean_mean,
            "corrupted rows not captured: {corrupt_mean} vs {clean_mean}"
        );
        // The exported active rows agree with the reported norms and
        // stay a strict subset of all rows (the ℓ2,1 point).
        let n = data.total_objects();
        assert_eq!(res.error_rows.shape(), (n, n));
        assert!(res.error_rows.num_active() > 0);
        assert!(res.error_rows.num_active() < n);
        let max = norms.iter().cloned().fold(0.0, f64::max);
        for (i, row) in res.error_rows.active_iter() {
            assert!(norms[i] >= 0.5 * max, "inactive row {i} exported");
            let rebuilt: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                (rebuilt - norms[i]).abs() <= 1e-6 * norms[i].max(1e-12),
                "row {i}: materialised norm {rebuilt} vs reported {}",
                norms[i]
            );
        }
    }

    #[test]
    fn fit_telemetry_recorded_when_obs_enabled() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 12);
        let cfg = EngineConfig {
            lambda: 0.0,
            beta: 10.0,
            max_iter: 6,
            tol: 0.0,
            ..EngineConfig::default()
        };
        mtrl_obs::force_enable();
        let res = run_engine(&r, &data, &GraphRegularizer::None, g0, &cfg).unwrap();
        let fits = mtrl_obs::global().fits_snapshot();
        // Other tests in this binary may also have recorded fits; find ours
        // by shape.
        let fit = fits
            .iter()
            .rev()
            .find(|f| f.n == data.total_objects() && f.iterations == res.iterations)
            .expect("telemetry for this fit");
        assert_eq!(fit.label, "engine.fit");
        assert_eq!(fit.c, data.total_clusters());
        assert_eq!(fit.nnz, r.nnz());
        assert_eq!(fit.iters.len(), res.iterations);
        for (it, &obj) in fit.iters.iter().zip(&res.objective_trace) {
            assert_eq!(it.objective, obj);
        }
        assert_eq!(fit.iters[0].rel_change, 0.0);
        for it in &fit.iters[1..] {
            assert!(it.rel_change.is_finite() && it.rel_change >= 0.0);
            assert!(it.er_active_rows <= data.total_objects());
        }
        let spans = mtrl_obs::global().spans_snapshot();
        for phase in [
            "engine.fit.spmm",
            "engine.fit.lowrank",
            "engine.fit.update",
            "engine.fit.residual",
        ] {
            assert!(
                spans.iter().any(|(p, st)| p == phase && st.count > 0),
                "missing phase aggregate {phase}"
            );
        }
    }

    #[test]
    fn label_trace_recorded() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g0 = init_g(&data, 7);
        let cfg = EngineConfig {
            lambda: 0.0,
            use_error_matrix: false,
            max_iter: 8,
            tol: 0.0, // run all iterations
            record_labels_for_type: Some(0),
            ..EngineConfig::default()
        };
        let res = run_engine(&r, &data, &GraphRegularizer::None, g0, &cfg).unwrap();
        assert_eq!(res.label_trace.len(), res.iterations);
        assert_eq!(res.label_trace[0].len(), data.sizes()[0]);
    }

    #[test]
    fn rejects_bad_shapes_and_params() {
        let (data, _) = tiny_data();
        let r = data.assemble_r_csr();
        let g_bad = Mat::zeros(3, 3);
        let cfg = EngineConfig::default();
        assert!(run_engine(&r, &data, &GraphRegularizer::None, g_bad, &cfg).is_err());
        let g0 = init_g(&data, 8);
        let bad_cfg = EngineConfig {
            lambda: -1.0,
            ..EngineConfig::default()
        };
        assert!(run_engine(&r, &data, &GraphRegularizer::None, g0.clone(), &bad_cfg).is_err());
        let bad_export = EngineConfig {
            error_export_rel: 1.5,
            ..EngineConfig::default()
        };
        assert!(run_engine(&r, &data, &GraphRegularizer::None, g0.clone(), &bad_export).is_err());
        let wrong_r = Csr::zeros(3, 3);
        assert!(run_engine(&wrong_r, &data, &GraphRegularizer::None, g0.clone(), &cfg).is_err());
        // The dense reference enforces the same contracts.
        let wrong_r_dense = Mat::zeros(3, 3);
        assert!(run_engine_dense_reference(
            &wrong_r_dense,
            &data,
            &GraphRegularizer::None,
            g0,
            &cfg
        )
        .is_err());
    }
}
