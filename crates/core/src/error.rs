//! Error type for the clustering crate.

use std::fmt;

/// Errors surfaced by the clustering algorithms.
#[derive(Debug)]
pub enum RhchmeError {
    /// A linear-algebra primitive failed (shape mismatch, singularity…).
    Linalg(mtrl_linalg::LinalgError),
    /// The input data is unusable for the requested operation.
    InvalidData(String),
    /// A configuration value is out of its legal range.
    InvalidConfig(String),
    /// An iterate became non-finite (diverged); carries the iteration.
    Diverged {
        /// Iteration at which non-finite values appeared.
        iteration: usize,
    },
}

impl fmt::Display for RhchmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhchmeError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            RhchmeError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            RhchmeError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            RhchmeError::Diverged { iteration } => {
                write!(f, "optimisation diverged at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for RhchmeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RhchmeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mtrl_linalg::LinalgError> for RhchmeError {
    fn from(e: mtrl_linalg::LinalgError) -> Self {
        RhchmeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RhchmeError::InvalidConfig("lambda < 0".into());
        assert!(e.to_string().contains("lambda"));
        let e = RhchmeError::Diverged { iteration: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn from_linalg() {
        let le = mtrl_linalg::LinalgError::InvalidArgument("x".into());
        let e: RhchmeError = le.into();
        assert!(matches!(e, RhchmeError::Linalg(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
