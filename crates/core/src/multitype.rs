//! Multi-type relational data assembly (paper Sec. I-A).
//!
//! `MultiTypeData` holds `K` object types and the observed inter-type
//! co-occurrence matrices `R_kl` (`k < l`). From it the engine obtains:
//!
//! * the symmetric block matrix `R ∈ R^{n x n}` with zero diagonal blocks
//!   and `R_lk = R_klᵀ`;
//! * per-type *feature views* `X_k` — the concatenation of object `k`'s
//!   relations to every other type — used for k-means initialisation, pNN
//!   graphs and subspace learning (the paper's `x_i^k ∈ R^D`);
//! * the block layouts of the object dimension (`n = Σ n_k`) and the
//!   cluster dimension (`c = Σ c_k`).

use crate::error::RhchmeError;
use crate::Result;
use mtrl_linalg::block::BlockSpec;
use mtrl_linalg::Mat;
use mtrl_sparse::Csr;
use std::collections::HashMap;

/// A multi-type relational dataset: `K` types plus pairwise relations.
#[derive(Debug, Clone)]
pub struct MultiTypeData {
    sizes: Vec<usize>,
    cluster_counts: Vec<usize>,
    /// Relations keyed by `(k, l)` with `k < l`; matrix is `n_k x n_l`.
    relations: HashMap<(usize, usize), Csr>,
    spec: BlockSpec,
    cluster_spec: BlockSpec,
}

impl MultiTypeData {
    /// Create a dataset from per-type sizes, requested per-type cluster
    /// counts, and the list of observed relations `(k, l, R_kl)` with
    /// `k < l`.
    ///
    /// # Errors
    /// Returns [`RhchmeError::InvalidData`] for inconsistent shapes,
    /// out-of-range type indices, duplicate or self relations, and
    /// [`RhchmeError::InvalidConfig`] for cluster counts `< 2` or larger
    /// than the type size.
    pub fn new(
        sizes: Vec<usize>,
        cluster_counts: Vec<usize>,
        relations: Vec<(usize, usize, Csr)>,
    ) -> Result<Self> {
        let k_types = sizes.len();
        if k_types < 2 {
            return Err(RhchmeError::InvalidData(
                "need at least 2 object types".into(),
            ));
        }
        if cluster_counts.len() != k_types {
            return Err(RhchmeError::InvalidConfig(format!(
                "{} cluster counts for {} types",
                cluster_counts.len(),
                k_types
            )));
        }
        for (k, (&nk, &ck)) in sizes.iter().zip(&cluster_counts).enumerate() {
            if ck < 2 {
                return Err(RhchmeError::InvalidConfig(format!(
                    "type {k}: need at least 2 clusters"
                )));
            }
            if ck > nk {
                return Err(RhchmeError::InvalidConfig(format!(
                    "type {k}: {ck} clusters for {nk} objects"
                )));
            }
        }
        let mut map = HashMap::new();
        for (k, l, m) in relations {
            if k >= l || l >= k_types {
                return Err(RhchmeError::InvalidData(format!(
                    "relation ({k},{l}) out of order or out of range"
                )));
            }
            if m.shape() != (sizes[k], sizes[l]) {
                return Err(RhchmeError::InvalidData(format!(
                    "relation ({k},{l}) has shape {:?}, expected ({}, {})",
                    m.shape(),
                    sizes[k],
                    sizes[l]
                )));
            }
            if map.insert((k, l), m).is_some() {
                return Err(RhchmeError::InvalidData(format!(
                    "duplicate relation ({k},{l})"
                )));
            }
        }
        if map.is_empty() {
            return Err(RhchmeError::InvalidData("no relations supplied".into()));
        }
        let spec = BlockSpec::from_sizes(&sizes);
        let cluster_spec = BlockSpec::from_sizes(&cluster_counts);
        Ok(MultiTypeData {
            sizes,
            cluster_counts,
            relations: map,
            spec,
            cluster_spec,
        })
    }

    /// Build the canonical three-type dataset (documents, terms, concepts)
    /// from a generated corpus. Term/concept cluster counts follow the
    /// paper's rule of thumb (`m/divisor`, clamped to `[2, 30]`; the paper
    /// explores `m/10` to `m/100`).
    pub fn from_corpus(
        corpus: &mtrl_datagen::MultiTypeCorpus,
        feature_cluster_divisor: usize,
    ) -> Result<Self> {
        let div = feature_cluster_divisor.max(1);
        let clamp = |m: usize| (m / div).clamp(2, 30);
        MultiTypeData::new(
            vec![corpus.num_docs(), corpus.num_terms(), corpus.num_concepts()],
            vec![
                corpus.num_classes,
                clamp(corpus.num_terms()),
                clamp(corpus.num_concepts()),
            ],
            vec![
                (0, 1, corpus.doc_term.clone()),
                (0, 2, corpus.doc_concept.clone()),
                (1, 2, corpus.term_concept.clone()),
            ],
        )
    }

    /// The same dataset with different requested cluster counts — the
    /// cheap re-spec used by the consensus-ensemble generator's random-k
    /// perturbation. Relations (and therefore `R`, feature views and all
    /// object-dimension graphs) are shared content; only the cluster
    /// block layout changes.
    ///
    /// # Errors
    /// Returns [`RhchmeError::InvalidConfig`] for counts `< 2`, larger
    /// than the type size, or of the wrong length.
    pub fn with_cluster_counts(&self, cluster_counts: Vec<usize>) -> Result<Self> {
        if cluster_counts.len() != self.sizes.len() {
            return Err(RhchmeError::InvalidConfig(format!(
                "{} cluster counts for {} types",
                cluster_counts.len(),
                self.sizes.len()
            )));
        }
        for (k, (&nk, &ck)) in self.sizes.iter().zip(&cluster_counts).enumerate() {
            if ck < 2 {
                return Err(RhchmeError::InvalidConfig(format!(
                    "type {k}: need at least 2 clusters"
                )));
            }
            if ck > nk {
                return Err(RhchmeError::InvalidConfig(format!(
                    "type {k}: {ck} clusters for {nk} objects"
                )));
            }
        }
        let cluster_spec = BlockSpec::from_sizes(&cluster_counts);
        Ok(MultiTypeData {
            sizes: self.sizes.clone(),
            cluster_counts,
            relations: self.relations.clone(),
            spec: self.spec.clone(),
            cluster_spec,
        })
    }

    /// Number of object types `K`.
    pub fn num_types(&self) -> usize {
        self.sizes.len()
    }

    /// Per-type object counts.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Per-type cluster counts.
    pub fn cluster_counts(&self) -> &[usize] {
        &self.cluster_counts
    }

    /// Total object count `n`.
    pub fn total_objects(&self) -> usize {
        self.spec.total()
    }

    /// Total cluster count `c`.
    pub fn total_clusters(&self) -> usize {
        self.cluster_spec.total()
    }

    /// Object-dimension block layout.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// Cluster-dimension block layout.
    pub fn cluster_spec(&self) -> &BlockSpec {
        &self.cluster_spec
    }

    /// The relation `R_kl` (`k < l`) if observed.
    pub fn relation(&self, k: usize, l: usize) -> Option<&Csr> {
        self.relations.get(&(k, l))
    }

    /// Assemble the dense symmetric inter-type matrix `R` (zero diagonal
    /// blocks, `R_lk = R_klᵀ`) — the decomposition target of Eq. (15).
    ///
    /// Kept for the `*_dense_reference` engine path and small problems;
    /// the default fit path uses [`Self::assemble_r_csr`], which never
    /// materialises the `n x n` buffer.
    pub fn assemble_r(&self) -> Mat {
        let n = self.total_objects();
        let mut r = Mat::zeros(n, n);
        for (&(k, l), m) in &self.relations {
            let (ro, co) = (self.spec.offset(k), self.spec.offset(l));
            for (i, j, v) in m.iter() {
                r[(ro + i, co + j)] = v;
                r[(co + j, ro + i)] = v;
            }
        }
        r
    }

    /// [`Self::assemble_r`] as CSR, `O(nnz)` storage: relations are
    /// placed block-wise (and transposed for the lower triangle) without
    /// ever densifying. This is what the sparse-first engine consumes —
    /// the stored entries are exactly the dense assembly's nonzeros, in
    /// the same row-major order, so the two assemblies are bit-equal.
    pub fn assemble_r_csr(&self) -> Csr {
        let n = self.total_objects();
        let k_types = self.num_types();
        // Per (row-type, col-type) block: the relation, transposed when
        // it is stored the other way. Transposes cost O(nnz) once.
        let mut blocks: HashMap<(usize, usize), Csr> = HashMap::new();
        for (&(k, l), m) in &self.relations {
            blocks.insert((l, k), m.transpose());
        }
        let nnz = 2 * self.relations.values().map(Csr::nnz).sum::<usize>();
        let mut b = mtrl_sparse::CsrBuilder::with_capacity(n, n, nnz);
        for k in 0..k_types {
            for i in 0..self.sizes[k] {
                // Partner blocks in ascending type order means strictly
                // ascending column offsets within the row.
                for l in 0..k_types {
                    if l == k {
                        continue;
                    }
                    let co = self.spec.offset(l);
                    let (cols, vals) = if k < l {
                        match self.relations.get(&(k, l)) {
                            Some(rel) => rel.row(i),
                            None => continue,
                        }
                    } else {
                        match blocks.get(&(k, l)) {
                            Some(t) => t.row(i),
                            None => continue,
                        }
                    };
                    for (&j, &v) in cols.iter().zip(vals) {
                        b.push(co + j, v);
                    }
                }
                b.finish_row();
            }
        }
        b.build()
    }

    /// Dense feature view of type `k`: the horizontal concatenation of all
    /// its observed relations (transposed where needed), one object per
    /// row. This is the `x_i^k ∈ R^D` representation the paper feeds to
    /// both the pNN graph and the subspace learner.
    pub fn features(&self, k: usize) -> Mat {
        assert!(k < self.num_types(), "type index out of range");
        let mut blocks: Vec<Mat> = Vec::new();
        for l in 0..self.num_types() {
            if l == k {
                continue;
            }
            let (a, b) = if k < l { (k, l) } else { (l, k) };
            if let Some(rel) = self.relations.get(&(a, b)) {
                let dense = if k < l {
                    rel.to_dense()
                } else {
                    rel.transpose().to_dense()
                };
                blocks.push(dense);
            }
        }
        assert!(!blocks.is_empty(), "type {k} participates in no relations");
        let mut out = blocks[0].clone();
        for b in &blocks[1..] {
            out = out.hstack(b).expect("row counts agree by construction");
        }
        out
    }

    /// All feature views, indexable by type.
    pub fn all_features(&self) -> Vec<Mat> {
        (0..self.num_types()).map(|k| self.features(k)).collect()
    }

    /// Extract per-type labels from a stacked membership matrix `G`:
    /// object `i` of type `k` is assigned to the argmax entry within its
    /// type's cluster columns.
    pub fn labels_from_membership(&self, g: &Mat, k: usize) -> Vec<usize> {
        let rows = self.spec.range(k);
        let cols = self.cluster_spec.range(k);
        rows.map(|i| {
            let row = &g.row(i)[cols.clone()];
            mtrl_linalg::vecops::argmax(row).unwrap_or(0)
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn tiny_corpus() -> mtrl_datagen::MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![6, 6],
            vocab_size: 40,
            concept_count: 10,
            doc_len_range: (20, 30),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 5,
        })
    }

    fn small_relation(rows: usize, cols: usize, seed: u64) -> Csr {
        let dense = mtrl_linalg::random::rand_uniform(rows, cols, 0.0, 1.0, seed);
        Csr::from_dense(&dense, 0.5) // ~50% sparse
    }

    #[test]
    fn from_corpus_shapes() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        assert_eq!(d.num_types(), 3);
        assert_eq!(d.sizes(), &[12, 40, 10]);
        assert_eq!(d.total_objects(), 62);
        assert_eq!(d.cluster_counts()[0], 2);
        assert!(d.cluster_counts()[1] >= 2);
    }

    #[test]
    fn assemble_r_symmetric_zero_diag_blocks() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        let r = d.assemble_r();
        assert_eq!(r.shape(), (62, 62));
        // Symmetry.
        let rt = r.transpose();
        assert!(r.approx_eq(&rt, 1e-12));
        // Diagonal blocks are zero.
        for k in 0..3 {
            let range = d.spec().range(k);
            for i in range.clone() {
                for j in range.clone() {
                    assert_eq!(r[(i, j)], 0.0);
                }
            }
        }
        // Off-diagonal block content matches the relation.
        let dt = c.doc_term.to_dense();
        for i in 0..12 {
            for j in 0..40 {
                assert_eq!(r[(i, 12 + j)], dt[(i, j)]);
            }
        }
    }

    #[test]
    fn assemble_r_csr_bit_equal_to_dense_assembly() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        let sparse = d.assemble_r_csr();
        let dense = d.assemble_r();
        assert_eq!(sparse.shape(), (62, 62));
        // Same nonzeros, same order, bit-equal values.
        assert_eq!(sparse, Csr::from_dense(&dense, 0.0));
        assert!(sparse.is_symmetric(0.0));
        // Two-type datasets assemble too.
        let r = small_relation(5, 7, 9);
        let two = MultiTypeData::new(vec![5, 7], vec![2, 3], vec![(0, 1, r)]).unwrap();
        assert_eq!(
            two.assemble_r_csr(),
            Csr::from_dense(&two.assemble_r(), 0.0)
        );
    }

    #[test]
    fn features_concatenate_relations() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        let fd = d.features(0); // docs: [doc_term | doc_concept]
        assert_eq!(fd.shape(), (12, 50));
        let ft = d.features(1); // terms: [doc_termᵀ | term_concept]
        assert_eq!(ft.shape(), (40, 22));
        let fc = d.features(2); // concepts: [doc_conceptᵀ | term_conceptᵀ]
        assert_eq!(fc.shape(), (10, 52));
        // Spot-check content equivalence.
        let dt = c.doc_term.to_dense();
        assert_eq!(fd[(3, 7)], dt[(3, 7)]);
        assert_eq!(ft[(7, 3)], dt[(3, 7)]);
    }

    #[test]
    fn validation_errors() {
        // Too few types.
        assert!(MultiTypeData::new(vec![5], vec![2], vec![]).is_err());
        // Bad cluster count.
        let r = small_relation(5, 6, 1);
        assert!(MultiTypeData::new(vec![5, 6], vec![1, 2], vec![(0, 1, r.clone())]).is_err());
        assert!(MultiTypeData::new(vec![5, 6], vec![2, 7], vec![(0, 1, r.clone())]).is_err());
        // Relation shape mismatch.
        assert!(MultiTypeData::new(vec![6, 6], vec![2, 2], vec![(0, 1, r.clone())]).is_err());
        // Out-of-order key.
        assert!(MultiTypeData::new(vec![6, 5], vec![2, 2], vec![(1, 0, r.clone())]).is_err());
        // Duplicate.
        assert!(
            MultiTypeData::new(vec![5, 6], vec![2, 2], vec![(0, 1, r.clone()), (0, 1, r)]).is_err()
        );
        // Empty relations.
        assert!(MultiTypeData::new(vec![5, 6], vec![2, 2], vec![]).is_err());
    }

    #[test]
    fn labels_from_membership_blocks() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        let n = d.total_objects();
        let cc = d.total_clusters();
        let mut g = Mat::zeros(n, cc);
        // Put every doc in its class cluster.
        for i in 0..12 {
            g[(i, usize::from(i >= 6))] = 1.0;
        }
        let labels = d.labels_from_membership(&g, 0);
        assert_eq!(labels.len(), 12);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[11], 1);
    }

    #[test]
    fn with_cluster_counts_respects_relations() {
        let c = tiny_corpus();
        let d = MultiTypeData::from_corpus(&c, 10).unwrap();
        let mut counts = d.cluster_counts().to_vec();
        counts[0] = 4;
        let d4 = d.with_cluster_counts(counts.clone()).unwrap();
        assert_eq!(d4.cluster_counts(), counts.as_slice());
        assert_eq!(d4.sizes(), d.sizes());
        assert_eq!(d4.total_clusters(), d.total_clusters() + 2);
        // Object-side data is unchanged.
        assert_eq!(d4.assemble_r_csr(), d.assemble_r_csr());
        // Validation still applies.
        assert!(d.with_cluster_counts(vec![2, 2]).is_err());
        assert!(d.with_cluster_counts(vec![1, 2, 2]).is_err());
        assert!(d.with_cluster_counts(vec![2, 2, 99]).is_err());
    }

    #[test]
    fn two_type_dataset_supported() {
        let r = small_relation(8, 10, 2);
        let d = MultiTypeData::new(vec![8, 10], vec![2, 3], vec![(0, 1, r)]).unwrap();
        assert_eq!(d.total_objects(), 18);
        assert_eq!(d.total_clusters(), 5);
        let f0 = d.features(0);
        assert_eq!(f0.shape(), (8, 10));
        let f1 = d.features(1);
        assert_eq!(f1.shape(), (10, 8));
    }
}
