//! DRCC — Dual Regularized Co-Clustering (Gu & Zhou, ref \[1\]).
//!
//! The paper's two-way baseline: co-cluster documents against a *single*
//! feature space with graph regularisation on both sides,
//!
//! ```text
//! min ‖R − G S Fᵀ‖²_F + λ·tr(Gᵀ L_G G) + μ·tr(Fᵀ L_F F),   G, F ≥ 0
//! ```
//!
//! run in three flavours (Sec. IV-B): **DR-T** on document–term, **DR-C**
//! on document–concept, and **DR-TC** on the concatenated feature space.
//! Unlike HOCC it cannot exploit the inter-relatedness between the term
//! and concept cluster structures — which is precisely the paper's point.

use crate::engine::EngineConfig;
use crate::error::RhchmeError;
use crate::kmeans::{kmeans, labels_to_membership};
use crate::Result;
use mtrl_graph::{laplacian_csr, pnn_graph, LaplacianKind, WeightScheme};
use mtrl_linalg::norms::frobenius_sq_diff;
use mtrl_linalg::ops::{gram, matmul, matmul_tn};
use mtrl_linalg::parts::split_parts;
use mtrl_linalg::solve::ridge_inverse;
use mtrl_linalg::{Mat, EPS};
use mtrl_sparse::Csr;

/// Which feature space DRCC clusters against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrccVariant {
    /// Document–term matrix (DR-T).
    Terms,
    /// Document–concept matrix (DR-C).
    Concepts,
    /// Concatenated `[terms | concepts]` (DR-TC).
    TermsAndConcepts,
}

impl DrccVariant {
    /// Paper row label for the variant.
    pub fn paper_name(self) -> &'static str {
        match self {
            DrccVariant::Terms => "DR-T",
            DrccVariant::Concepts => "DR-C",
            DrccVariant::TermsAndConcepts => "DR-TC",
        }
    }
}

/// DRCC configuration.
#[derive(Debug, Clone)]
pub struct DrccConfig {
    /// Sample-side (document) graph weight λ.
    pub lambda: f64,
    /// Feature-side graph weight μ.
    pub mu: f64,
    /// Number of document clusters.
    pub doc_clusters: usize,
    /// Number of feature clusters.
    pub feature_clusters: usize,
    /// pNN neighbour count for both graphs.
    pub p: usize,
    /// Iteration budget.
    pub max_iter: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed for the k-means initialisations.
    pub seed: u64,
    /// Record per-iteration document labels.
    pub record_doc_labels: bool,
}

impl Default for DrccConfig {
    fn default() -> Self {
        DrccConfig {
            lambda: 0.5,
            mu: 0.5,
            doc_clusters: 2,
            feature_clusters: 10,
            p: 5,
            max_iter: 100,
            tol: 1e-6,
            seed: 2015,
            record_doc_labels: false,
        }
    }
}

/// DRCC output.
#[derive(Debug, Clone)]
pub struct DrccResult {
    /// Document cluster labels.
    pub doc_labels: Vec<usize>,
    /// Feature cluster labels.
    pub feature_labels: Vec<usize>,
    /// Objective per iteration.
    pub objective_trace: Vec<f64>,
    /// Per-iteration document labels (empty unless requested).
    pub label_trace: Vec<Vec<usize>>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Build the DRCC input matrix for a variant from a corpus.
pub fn variant_matrix(corpus: &mtrl_datagen::MultiTypeCorpus, variant: DrccVariant) -> Mat {
    match variant {
        DrccVariant::Terms => corpus.doc_term.to_dense(),
        DrccVariant::Concepts => corpus.doc_concept.to_dense(),
        DrccVariant::TermsAndConcepts => corpus
            .doc_term
            .to_dense()
            .hstack(&corpus.doc_concept.to_dense())
            .expect("same document count"),
    }
}

/// Run DRCC on a rectangular nonnegative matrix (`docs x features`).
///
/// # Errors
/// Returns [`RhchmeError::InvalidData`] for degenerate inputs and
/// [`RhchmeError::Diverged`] if the iterates become non-finite.
pub fn run_drcc(r: &Mat, cfg: &DrccConfig) -> Result<DrccResult> {
    let (n, m) = r.shape();
    if n < 2 || m < 2 {
        return Err(RhchmeError::InvalidData(format!(
            "DRCC needs at least a 2x2 relation, got {n}x{m}"
        )));
    }
    if r.min() < 0.0 {
        return Err(RhchmeError::InvalidData(
            "DRCC expects a nonnegative relation matrix".into(),
        ));
    }
    let cg = cfg.doc_clusters.clamp(2, n);
    let cf = cfg.feature_clusters.clamp(2, m);

    // Graph Laplacians: documents over rows, features over columns —
    // sparse end to end, like the HOCC engine.
    let l_g = laplacian_csr(
        &pnn_graph(r, cfg.p, WeightScheme::Cosine),
        LaplacianKind::SymNormalized,
    );
    let rt = r.transpose();
    let l_f = laplacian_csr(
        &pnn_graph(&rt, cfg.p, WeightScheme::Cosine),
        LaplacianKind::SymNormalized,
    );
    let (lg_pos, lg_neg) = l_g.split_parts();
    let (lf_pos, lf_neg) = l_f.split_parts();

    // k-means initialisation on both sides.
    let mut g = labels_to_membership(&kmeans(r, cg, cfg.seed, 50).labels, cg, 0.2);
    let mut f = labels_to_membership(&kmeans(&rt, cf, cfg.seed + 1, 50).labels, cf, 0.2);

    let ridge = EngineConfig::default().ridge;
    let mut objective_trace = Vec::with_capacity(cfg.max_iter);
    let mut label_trace = Vec::new();
    let mut prev_obj = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for t in 0..cfg.max_iter {
        iterations = t + 1;

        // S = (GᵀG)⁻¹ Gᵀ R F (FᵀF)⁻¹.
        let gram_g = gram(&g);
        let gram_f = gram(&f);
        let ginv = ridge_inverse(&gram_g, ridge)?;
        let finv = ridge_inverse(&gram_f, ridge)?;
        let rf = matmul(r, &f)?; // n x cf
        let gtrf = matmul_tn(&g, &rf)?; // cg x cf
        let s = matmul(&matmul(&ginv, &gtrf)?, &finv)?;

        // G update: numerator (RFSᵀ)⁺ + G(SFᵀFSᵀ)⁻ + λ L_G⁻ G, etc.
        let rfst = matmul(&rf, &s.transpose())?; // n x cg
        let sffs = matmul(&matmul(&s, &gram_f)?, &s.transpose())?; // cg x cg
        let (sffs_p, sffs_n) = split_parts(&sffs);
        update_factor(
            &mut g, &rfst, &sffs_p, &sffs_n, &lg_pos, &lg_neg, cfg.lambda,
        )?;
        if g.has_non_finite() {
            return Err(RhchmeError::Diverged { iteration: t });
        }

        // F update: numerator (RᵀGS)⁺ + F(SᵀGᵀGS)⁻ + μ L_F⁻ F.
        let gs = matmul(&g, &s)?; // n x cf
        let rtgs = matmul_tn(r, &gs)?; // m x cf
        let sggs = matmul_tn(&s, &matmul(&gram(&g), &s)?)?; // cf x cf
        let (sggs_p, sggs_n) = split_parts(&sggs);
        update_factor(&mut f, &rtgs, &sggs_p, &sggs_n, &lf_pos, &lf_neg, cfg.mu)?;
        if f.has_non_finite() {
            return Err(RhchmeError::Diverged { iteration: t });
        }

        // Objective: sparse quadratic forms, no L·G materialisation.
        let recon = g_s_gt_rect(&g, &s, &f)?;
        let fit = frobenius_sq_diff(r, &recon);
        let obj = fit + cfg.lambda * l_g.quad_form(&g) + cfg.mu * l_f.quad_form(&f);
        objective_trace.push(obj);
        if cfg.record_doc_labels {
            label_trace.push(argmax_labels(&g));
        }
        if t > 0 && (prev_obj - obj).abs() / prev_obj.abs().max(1.0) < cfg.tol {
            converged = true;
            break;
        }
        prev_obj = obj;
    }

    Ok(DrccResult {
        doc_labels: argmax_labels(&g),
        feature_labels: argmax_labels(&f),
        objective_trace,
        label_trace,
        iterations,
        converged,
    })
}

/// Multiplicative update shared by the `G` and `F` steps:
/// `X ← X ∘ sqrt((P⁺ + X·N⁻ + w·L⁻X) / (P⁻ + X·N⁺ + w·L⁺X))`.
fn update_factor(
    x: &mut Mat,
    p: &Mat,
    n_pos: &Mat,
    n_neg: &Mat,
    l_pos: &Csr,
    l_neg: &Csr,
    w: f64,
) -> Result<()> {
    let xn_pos = matmul(x, n_pos)?;
    let xn_neg = matmul(x, n_neg)?;
    let lx_pos = l_pos.spmm_dense(x);
    let lx_neg = l_neg.spmm_dense(x);
    let c = x.cols();
    for i in 0..x.rows() {
        let prow = p.row(i);
        let xnp = xn_pos.row(i);
        let xnn = xn_neg.row(i);
        let lxp = lx_pos.row(i);
        let lxn = lx_neg.row(i);
        let xrow = x.row_mut(i);
        for j in 0..c {
            let num = prow[j].max(0.0) + xnn[j] + w * lxn[j];
            let den = (-prow[j]).max(0.0) + xnp[j] + w * lxp[j];
            xrow[j] *= ((num + EPS) / (den + EPS)).sqrt();
        }
    }
    Ok(())
}

/// `G S Fᵀ` for rectangular factors.
fn g_s_gt_rect(g: &Mat, s: &Mat, f: &Mat) -> Result<Mat> {
    let gs = matmul(g, s)?;
    Ok(mtrl_linalg::ops::matmul_nt(&gs, f)?)
}

fn argmax_labels(m: &Mat) -> Vec<usize> {
    (0..m.rows())
        .map(|i| mtrl_linalg::vecops::argmax(m.row(i)).unwrap_or(0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    fn corpus() -> mtrl_datagen::MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![10, 10],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 44,
        })
    }

    #[test]
    fn drt_clusters_clean_data() {
        let c = corpus();
        let r = variant_matrix(&c, DrccVariant::Terms);
        let res = run_drcc(
            &r,
            &DrccConfig {
                doc_clusters: 2,
                feature_clusters: 6,
                max_iter: 40,
                ..DrccConfig::default()
            },
        )
        .unwrap();
        let f = mtrl_metrics::fscore(&c.labels, &res.doc_labels);
        assert!(f > 0.7, "fscore {f}");
        assert_eq!(res.feature_labels.len(), 60);
    }

    #[test]
    fn objective_decreases() {
        let c = corpus();
        let r = variant_matrix(&c, DrccVariant::Concepts);
        let res = run_drcc(
            &r,
            &DrccConfig {
                doc_clusters: 2,
                feature_clusters: 4,
                max_iter: 25,
                ..DrccConfig::default()
            },
        )
        .unwrap();
        let t = &res.objective_trace;
        assert!(t.last().unwrap() <= &(t[0] * (1.0 + 1e-6)));
    }

    #[test]
    fn variants_have_expected_widths() {
        let c = corpus();
        assert_eq!(variant_matrix(&c, DrccVariant::Terms).cols(), 60);
        assert_eq!(variant_matrix(&c, DrccVariant::Concepts).cols(), 15);
        assert_eq!(variant_matrix(&c, DrccVariant::TermsAndConcepts).cols(), 75);
        assert_eq!(DrccVariant::TermsAndConcepts.paper_name(), "DR-TC");
    }

    #[test]
    fn rejects_bad_input() {
        let tiny = Mat::zeros(1, 5);
        assert!(run_drcc(&tiny, &DrccConfig::default()).is_err());
        let neg = Mat::from_vec(2, 2, vec![1.0, -0.5, 0.0, 1.0]).unwrap();
        assert!(run_drcc(&neg, &DrccConfig::default()).is_err());
    }
}
