//! RMC — Relational Multi-manifold Co-clustering (Li et al., ref \[15\]).
//!
//! Identical decomposition to SNMTF but with the intra-type Laplacian
//! replaced by a *learned linear ensemble* of pre-given candidates
//! (Eq. 2): `L = Σ βᵢ L̂ᵢ, Σβᵢ = 1, βᵢ > 0`. Following Sec. IV-B, the six
//! candidates cross `p ∈ {5, 10}` with binary / Gaussian-kernel / cosine
//! weighting. The weights are re-optimised every iteration by minimising
//! `Σ βᵢ tr(GᵀL̂ᵢG) + μ‖β‖²` over the probability simplex — the ensemble
//! gravitates toward the candidates that best smooth the current labels.

use crate::engine::{run_engine, EngineConfig, GraphRegularizer};
use crate::intra::rmc_candidates;
use crate::multitype::MultiTypeData;
use crate::rhchme::{init_membership, package_result, RhchmeResult};
use crate::Result;
use mtrl_graph::LaplacianKind;

/// RMC configuration.
#[derive(Debug, Clone)]
pub struct RmcConfig {
    /// Graph regularisation weight λ.
    pub lambda: f64,
    /// Quadratic penalty μ on the ensemble weights.
    pub mu: f64,
    /// Laplacian normalisation for the candidates.
    pub laplacian_kind: LaplacianKind,
    /// Multiplicative-update iteration budget.
    pub max_iter: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed for k-means initialisation.
    pub seed: u64,
    /// Record per-iteration document labels.
    pub record_doc_labels: bool,
}

impl Default for RmcConfig {
    fn default() -> Self {
        RmcConfig {
            lambda: 1.0,
            mu: 1.0,
            laplacian_kind: LaplacianKind::SymNormalized,
            max_iter: 100,
            tol: 1e-6,
            seed: 2015,
            record_doc_labels: false,
        }
    }
}

/// RMC result: clustering output plus the learned ensemble weights.
#[derive(Debug, Clone)]
pub struct RmcResult {
    /// Standard clustering output.
    pub clustering: RhchmeResult,
    /// Final ensemble weights over the 6 candidates
    /// (`[p5-bin, p5-heat, p5-cos, p10-bin, p10-heat, p10-cos]`).
    pub ensemble_weights: Vec<f64>,
}

/// Run RMC on assembled multi-type data.
///
/// # Errors
/// Propagates engine failures ([`crate::RhchmeError`]).
pub fn run_rmc(data: &MultiTypeData, cfg: &RmcConfig) -> Result<RmcResult> {
    let features = data.all_features();
    let candidates = rmc_candidates(&features, cfg.laplacian_kind)?;
    let g0 = init_membership(data, &features, cfg.seed);
    let r = data.assemble_r_csr();
    let engine_cfg = EngineConfig {
        lambda: cfg.lambda,
        use_error_matrix: false,
        l1_row_normalize: false,
        max_iter: cfg.max_iter,
        tol: cfg.tol,
        record_labels_for_type: cfg.record_doc_labels.then_some(0),
        ..EngineConfig::default()
    };
    let reg = GraphRegularizer::Ensemble {
        candidates,
        mu: cfg.mu,
    };
    let out = run_engine(&r, data, &reg, g0, &engine_cfg)?;
    let ensemble_weights = out.ensemble_weights.clone().unwrap_or_default();
    Ok(RmcResult {
        clustering: package_result(data, out),
        ensemble_weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    #[test]
    fn rmc_clusters_and_weights_on_simplex() {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![10, 10],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 43,
        });
        let data = MultiTypeData::from_corpus(&corpus, 10).unwrap();
        let res = run_rmc(
            &data,
            &RmcConfig {
                lambda: 0.5,
                max_iter: 25,
                ..RmcConfig::default()
            },
        )
        .unwrap();
        let f = mtrl_metrics::fscore(&corpus.labels, &res.clustering.doc_labels);
        assert!(f > 0.7, "fscore {f}");
        assert_eq!(res.ensemble_weights.len(), 6);
        let sum: f64 = res.ensemble_weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum {sum}");
        assert!(res.ensemble_weights.iter().all(|&b| b >= 0.0));
    }
}
