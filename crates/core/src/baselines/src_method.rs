//! SRC — Spectral Relational Clustering (Long et al., ref \[2\]).
//!
//! The paper characterises SRC as collective NMTF over the inter-type
//! relationships only: `Σ_{i≠j} ν_ij ‖R_ij − G_i S_ij G_jᵀ‖²_F` with no
//! intra-type information. In the symmetric block formulation of Sec. I-A
//! that is exactly the engine with `λ = 0`, no error matrix and no row
//! normalisation.

use crate::engine::{run_engine, EngineConfig, GraphRegularizer};
use crate::multitype::MultiTypeData;
use crate::rhchme::{init_membership, package_result, RhchmeResult};
use crate::Result;

/// SRC configuration.
#[derive(Debug, Clone)]
pub struct SrcConfig {
    /// Multiplicative-update iteration budget.
    pub max_iter: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed for the k-means initialisation.
    pub seed: u64,
    /// Record per-iteration document labels.
    pub record_doc_labels: bool,
}

impl Default for SrcConfig {
    fn default() -> Self {
        SrcConfig {
            max_iter: 100,
            tol: 1e-6,
            seed: 2015,
            record_doc_labels: false,
        }
    }
}

/// Run SRC on assembled multi-type data.
///
/// # Errors
/// Propagates engine failures ([`crate::RhchmeError`]).
pub fn run_src(data: &MultiTypeData, cfg: &SrcConfig) -> Result<RhchmeResult> {
    let features = data.all_features();
    let g0 = init_membership(data, &features, cfg.seed);
    let r = data.assemble_r_csr();
    let engine_cfg = EngineConfig {
        lambda: 0.0,
        use_error_matrix: false,
        l1_row_normalize: false,
        max_iter: cfg.max_iter,
        tol: cfg.tol,
        record_labels_for_type: cfg.record_doc_labels.then_some(0),
        ..EngineConfig::default()
    };
    let out = run_engine(&r, data, &GraphRegularizer::None, g0, &engine_cfg)?;
    Ok(package_result(data, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    #[test]
    fn src_clusters_clean_data() {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![10, 10],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 41,
        });
        let data = MultiTypeData::from_corpus(&corpus, 10).unwrap();
        let res = run_src(
            &data,
            &SrcConfig {
                max_iter: 40,
                ..SrcConfig::default()
            },
        )
        .unwrap();
        let f = mtrl_metrics::fscore(&corpus.labels, &res.doc_labels);
        assert!(f > 0.7, "fscore {f}");
        assert!(res.error_row_norms.is_empty());
    }
}
