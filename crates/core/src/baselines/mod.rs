//! The comparison suite of Sec. IV-B.
//!
//! * [`src_method`] — SRC (ref \[2\] as characterised by the paper):
//!   collective NMTF on inter-type relationships only;
//! * [`snmtf`] — SNMTF (refs \[5, 6\]): NMTF + a single pNN Laplacian;
//! * [`rmc`] — RMC (ref \[15\]): NMTF + an optimised linear ensemble of six
//!   pre-given pNN Laplacians;
//! * [`drcc`] — DRCC (ref \[1\]): two-type graph-regularised co-clustering,
//!   run as DR-T (terms), DR-C (concepts) and DR-TC (concatenated).

pub mod drcc;
pub mod rmc;
pub mod snmtf;
pub mod src_method;

pub use drcc::{run_drcc, DrccConfig, DrccVariant};
pub use rmc::{run_rmc, RmcConfig};
pub use snmtf::{run_snmtf, SnmtfConfig};
pub use src_method::{run_src, SrcConfig};
