//! SNMTF — Symmetric NMTF-based HOCC (Wang et al., refs \[5, 6\]).
//!
//! Decomposes the symmetric inter-type matrix with the graph-regularised
//! objective of Eq. (1): `‖R − GSGᵀ‖²_F + λ·tr(GᵀLG)` where `L` comes
//! from a single pNN graph (the paper runs SNMTF with `p = 5`). No error
//! matrix, no ℓ1 row normalisation (the original uses an orthogonality
//! constraint instead; the engine's multiplicative form matches RMC's
//! treatment, see DESIGN.md §3).

use crate::engine::{run_engine, EngineConfig, GraphRegularizer};
use crate::intra::pnn_laplacians;
use crate::multitype::MultiTypeData;
use crate::rhchme::{init_membership, package_result, RhchmeResult};
use crate::Result;
use mtrl_graph::{LaplacianKind, WeightScheme};

/// SNMTF configuration.
#[derive(Debug, Clone)]
pub struct SnmtfConfig {
    /// Graph regularisation weight λ.
    pub lambda: f64,
    /// pNN neighbour count (paper: 5).
    pub p: usize,
    /// pNN weighting scheme (paper: cosine for text data).
    pub weight_scheme: WeightScheme,
    /// Laplacian normalisation.
    pub laplacian_kind: LaplacianKind,
    /// Multiplicative-update iteration budget.
    pub max_iter: usize,
    /// Relative objective-change tolerance.
    pub tol: f64,
    /// RNG seed for k-means initialisation.
    pub seed: u64,
    /// Record per-iteration document labels.
    pub record_doc_labels: bool,
}

impl Default for SnmtfConfig {
    fn default() -> Self {
        SnmtfConfig {
            lambda: 1.0,
            p: 5,
            weight_scheme: WeightScheme::Cosine,
            laplacian_kind: LaplacianKind::SymNormalized,
            max_iter: 100,
            tol: 1e-6,
            seed: 2015,
            record_doc_labels: false,
        }
    }
}

/// Run SNMTF on assembled multi-type data.
///
/// # Errors
/// Propagates engine failures ([`crate::RhchmeError`]).
pub fn run_snmtf(data: &MultiTypeData, cfg: &SnmtfConfig) -> Result<RhchmeResult> {
    let features = data.all_features();
    let l = pnn_laplacians(&features, cfg.p, cfg.weight_scheme, cfg.laplacian_kind)?;
    let g0 = init_membership(data, &features, cfg.seed);
    let r = data.assemble_r_csr();
    let engine_cfg = EngineConfig {
        lambda: cfg.lambda,
        use_error_matrix: false,
        l1_row_normalize: false,
        max_iter: cfg.max_iter,
        tol: cfg.tol,
        record_labels_for_type: cfg.record_doc_labels.then_some(0),
        ..EngineConfig::default()
    };
    let out = run_engine(&r, data, &GraphRegularizer::Fixed(l), g0, &engine_cfg)?;
    Ok(package_result(data, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};

    #[test]
    fn snmtf_clusters_clean_data() {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![10, 10],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 42,
        });
        let data = MultiTypeData::from_corpus(&corpus, 10).unwrap();
        let res = run_snmtf(
            &data,
            &SnmtfConfig {
                lambda: 0.5,
                max_iter: 40,
                ..SnmtfConfig::default()
            },
        )
        .unwrap();
        let f = mtrl_metrics::fscore(&corpus.labels, &res.doc_labels);
        assert!(f > 0.7, "fscore {f}");
    }
}
