//! Intra-type relationship learning — stages 1 & 2 of RHCHME.
//!
//! For every object type this module derives the two kinds of intra-type
//! relationships the paper combines (Sec. III-A/B):
//!
//! * `W_E` / `L_E` — the pNN graph with cosine weighting (Eq. 3; the paper
//!   fixes cosine and `p = 5` for SNMTF and RHCHME);
//! * `W_S` / `L_S` — the subspace-learned affinity from the SPG solver
//!   (Eq. 9, Algorithm 1);
//!
//! and assembles the heterogeneous manifold ensemble `L = α·L_S + L_E`
//! (Eq. 12) as a block-diagonal operator over all types.
//!
//! The pieces are exposed separately so the parameter-sweep benches
//! (Fig. 2) can cache what does not change: the γ sweep recomputes only
//! `L_S`, the α sweep only the combination, and the λ/β sweeps nothing at
//! all.

use crate::Result;
use mtrl_graph::{hetero_ensemble, laplacian_dense, pnn_graph, LaplacianKind, WeightScheme};
use mtrl_linalg::block::BlockDiag;
use mtrl_linalg::Mat;
use mtrl_subspace::{affinity_to_weights, spg_affinity, SpgConfig};

/// Relative pruning threshold applied to subspace affinities before graph
/// construction: entries below `PRUNE_REL * max(W)` are dropped, removing
/// optimisation noise while keeping genuine within-subspace links.
const PRUNE_REL: f64 = 1e-4;

/// Per-row truncation of the symmetrised subspace affinity: keep the
/// strongest `TOP_K` links per object. The SPG solution carries a weak
/// dense tail from optimisation noise; its top entries are far purer
/// (within-subspace) than its mass average, so truncation sharpens `L_S`
/// without losing the distant within-manifold links the method exists to
/// find. `TOP_K = 10 = 2p` keeps `L_S` on the same sparsity scale as the
/// pNN member of the ensemble.
const TOP_K: usize = 10;

/// Per-type pNN Laplacians assembled into a block-diagonal operator.
///
/// `features[k]` holds the objects of type `k` as rows.
pub fn pnn_laplacians(
    features: &[Mat],
    p: usize,
    scheme: WeightScheme,
    kind: LaplacianKind,
) -> Result<BlockDiag> {
    let blocks: Vec<Mat> = features
        .iter()
        .map(|f| laplacian_dense(&pnn_graph(f, p, scheme), kind))
        .collect();
    Ok(BlockDiag::new(blocks)?)
}

/// Per-type subspace-learned Laplacians (`L_S`) via SPG, as a block
/// diagonal. `base_cfg.seed` is offset per type so types do not share RNG
/// streams.
pub fn subspace_laplacians(
    features: &[Mat],
    base_cfg: &SpgConfig,
    kind: LaplacianKind,
) -> Result<BlockDiag> {
    let mut blocks = Vec::with_capacity(features.len());
    for (k, f) in features.iter().enumerate() {
        let cfg = SpgConfig {
            seed: base_cfg.seed.wrapping_add(k as u64),
            ..base_cfg.clone()
        };
        let res = spg_affinity(f, &cfg)?;
        let truncated = truncate_rows_top_k(&res.w, TOP_K);
        let max_w = truncated.max().max(0.0);
        let w = affinity_to_weights(&truncated, PRUNE_REL * max_w);
        blocks.push(laplacian_dense(&w, kind));
    }
    Ok(BlockDiag::new(blocks)?)
}

/// Keep only the `k` largest entries in each row of a nonnegative
/// affinity matrix, zeroing the rest.
fn truncate_rows_top_k(w: &Mat, k: usize) -> Mat {
    let n = w.rows();
    if k >= n {
        return w.clone();
    }
    let mut out = Mat::zeros(n, w.cols());
    let mut order: Vec<usize> = Vec::with_capacity(w.cols());
    for i in 0..n {
        let row = w.row(i);
        order.clear();
        order.extend(0..w.cols());
        order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("NaN affinity"));
        let dst = out.row_mut(i);
        for &j in order.iter().take(k) {
            dst[j] = row[j];
        }
    }
    out
}

/// Combine the two Laplacian families into the heterogeneous manifold
/// ensemble `L = α·L_S + L_E` (Eq. 12), block by block.
pub fn hetero_laplacian(l_s: &BlockDiag, l_e: &BlockDiag, alpha: f64) -> Result<BlockDiag> {
    let blocks: Vec<Mat> = (0..l_s.num_blocks())
        .map(|k| hetero_ensemble(l_s.block(k), l_e.block(k), alpha))
        .collect::<std::result::Result<_, _>>()?;
    Ok(BlockDiag::new(blocks)?)
}

/// The six RMC candidate Laplacians of Sec. IV-B: `p ∈ {5, 10}` crossed
/// with binary / heat-kernel (self-tuned σ) / cosine weighting, each as a
/// block diagonal over all types.
pub fn rmc_candidates(features: &[Mat], kind: LaplacianKind) -> Result<Vec<BlockDiag>> {
    let mut out = Vec::with_capacity(6);
    for p in [5usize, 10] {
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            out.push(pnn_laplacians(features, p, scheme, kind)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    fn toy_features() -> Vec<Mat> {
        vec![
            rand_uniform(15, 6, 0.0, 1.0, 90),
            rand_uniform(12, 5, 0.0, 1.0, 91),
        ]
    }

    #[test]
    fn pnn_block_layout() {
        let f = toy_features();
        let l = pnn_laplacians(&f, 3, WeightScheme::Cosine, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(l.num_blocks(), 2);
        assert_eq!(l.n(), 27);
        // Normalised Laplacian diagonals are <= 1.
        for k in 0..2 {
            for (i, &d) in l.block(k).diag().iter().enumerate() {
                assert!((0.0..=1.0 + 1e-12).contains(&d), "block {k} diag {i}: {d}");
            }
        }
    }

    #[test]
    fn subspace_block_layout_and_psd_diag() {
        let f = toy_features();
        let cfg = SpgConfig {
            max_iter: 40,
            ..SpgConfig::default()
        };
        let l = subspace_laplacians(&f, &cfg, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(l.n(), 27);
        // Symmetric blocks.
        for k in 0..2 {
            let b = l.block(k);
            assert!(b.approx_eq(&b.transpose(), 1e-9), "block {k} not symmetric");
        }
    }

    #[test]
    fn hetero_combination_matches_blocks() {
        let f = toy_features();
        let le = pnn_laplacians(&f, 3, WeightScheme::Cosine, LaplacianKind::SymNormalized).unwrap();
        let ls = pnn_laplacians(&f, 4, WeightScheme::Binary, LaplacianKind::SymNormalized).unwrap();
        let combo = hetero_laplacian(&ls, &le, 2.0).unwrap();
        for k in 0..2 {
            let expect = le.block(k).add(&ls.block(k).scaled(2.0)).unwrap();
            assert!(combo.block(k).approx_eq(&expect, 1e-12));
        }
    }

    #[test]
    fn rmc_candidate_count_and_layout() {
        let f = toy_features();
        let cands = rmc_candidates(&f, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(cands.len(), 6);
        assert!(cands.iter().all(|c| c.n() == 27));
    }
}
