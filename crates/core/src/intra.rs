//! Intra-type relationship learning — stages 1 & 2 of RHCHME.
//!
//! For every object type this module derives the two kinds of intra-type
//! relationships the paper combines (Sec. III-A/B):
//!
//! * `W_E` / `L_E` — the pNN graph with cosine weighting (Eq. 3; the paper
//!   fixes cosine and `p = 5` for SNMTF and RHCHME);
//! * `W_S` / `L_S` — the subspace-learned affinity from the SPG solver
//!   (Eq. 9, Algorithm 1);
//!
//! and assembles the heterogeneous manifold ensemble `L = α·L_S + L_E`
//! (Eq. 12) as a block-diagonal operator over all types.
//!
//! The pieces are exposed separately so the parameter-sweep benches
//! (Fig. 2) can cache what does not change: the γ sweep recomputes only
//! `L_S`, the α sweep only the combination, and the λ/β sweeps nothing at
//! all.

use crate::Result;
use mtrl_ann::{pnn_graph_backend_prec, GraphBackend};
use mtrl_graph::{laplacian_csr, LaplacianKind, WeightScheme};
use mtrl_linalg::{Mat, Precision};
use mtrl_sparse::SparseBlockDiag;
use mtrl_subspace::{affinity_to_weights, spg_affinity, SpgConfig};

/// Relative pruning threshold applied to subspace affinities before graph
/// construction: entries below `PRUNE_REL * max(W)` are dropped, removing
/// optimisation noise while keeping genuine within-subspace links.
const PRUNE_REL: f64 = 1e-4;

/// Per-row truncation of the symmetrised subspace affinity: keep the
/// strongest `TOP_K` links per object. The SPG solution carries a weak
/// dense tail from optimisation noise; its top entries are far purer
/// (within-subspace) than its mass average, so truncation sharpens `L_S`
/// without losing the distant within-manifold links the method exists to
/// find. `TOP_K = 10 = 2p` keeps `L_S` on the same sparsity scale as the
/// pNN member of the ensemble.
const TOP_K: usize = 10;

/// Per-type pNN Laplacians assembled into a sparse block-diagonal
/// operator (`O(p·n_k)` stored entries per block — the fit loop never
/// sees an `n x n` dense matrix).
///
/// `features[k]` holds the objects of type `k` as rows.
pub fn pnn_laplacians(
    features: &[Mat],
    p: usize,
    scheme: WeightScheme,
    kind: LaplacianKind,
) -> Result<SparseBlockDiag> {
    pnn_laplacians_backend(features, p, scheme, kind, &GraphBackend::Exact)
}

/// [`pnn_laplacians`] with an explicit neighbour-search backend.
///
/// [`GraphBackend::Exact`] reproduces the blocked all-pairs kernel;
/// the approximate backends route candidate generation through an
/// ANN index (`mtrl_ann`) while distances and selection stay on the
/// exact kernel's primitives, so exhaustive settings are bit-identical
/// and every setting is thread-count invariant.
pub fn pnn_laplacians_backend(
    features: &[Mat],
    p: usize,
    scheme: WeightScheme,
    kind: LaplacianKind,
    backend: &GraphBackend,
) -> Result<SparseBlockDiag> {
    pnn_laplacians_backend_prec(features, p, scheme, kind, backend, Precision::F64)
}

/// [`pnn_laplacians_backend`] with an explicit kernel [`Precision`]:
/// [`Precision::F32`] routes the neighbour search through the
/// f32-storage Gram chain (`mtrl_graph::knn_f32` / the quantised ANN
/// candidate path) while edge weighting and the Laplacian normalisation
/// stay `f64`.
pub fn pnn_laplacians_backend_prec(
    features: &[Mat],
    p: usize,
    scheme: WeightScheme,
    kind: LaplacianKind,
    backend: &GraphBackend,
    precision: Precision,
) -> Result<SparseBlockDiag> {
    let blocks = features
        .iter()
        .map(|f| {
            laplacian_csr(
                &pnn_graph_backend_prec(f, p, scheme, backend, precision),
                kind,
            )
        })
        .collect();
    Ok(SparseBlockDiag::new(blocks)?)
}

/// Per-type subspace-learned Laplacians (`L_S`) via SPG, as a block
/// diagonal. `base_cfg.seed` is offset per type so types do not share RNG
/// streams.
pub fn subspace_laplacians(
    features: &[Mat],
    base_cfg: &SpgConfig,
    kind: LaplacianKind,
) -> Result<SparseBlockDiag> {
    let mut blocks = Vec::with_capacity(features.len());
    for (k, f) in features.iter().enumerate() {
        let cfg = SpgConfig {
            seed: base_cfg.seed.wrapping_add(k as u64),
            ..base_cfg.clone()
        };
        let res = spg_affinity(f, &cfg)?;
        let truncated = truncate_rows_top_k(&res.w, TOP_K);
        let max_w = truncated.max().max(0.0);
        let w = affinity_to_weights(&truncated, PRUNE_REL * max_w);
        blocks.push(laplacian_csr(&w, kind));
    }
    Ok(SparseBlockDiag::new(blocks)?)
}

/// Keep only the `k` largest entries in each row of a nonnegative
/// affinity matrix, zeroing the rest.
fn truncate_rows_top_k(w: &Mat, k: usize) -> Mat {
    let n = w.rows();
    if k >= n {
        return w.clone();
    }
    let mut out = Mat::zeros(n, w.cols());
    let mut order: Vec<usize> = Vec::with_capacity(w.cols());
    for i in 0..n {
        let row = w.row(i);
        order.clear();
        order.extend(0..w.cols());
        order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("NaN affinity"));
        let dst = out.row_mut(i);
        for &j in order.iter().take(k) {
            dst[j] = row[j];
        }
    }
    out
}

/// Combine the two Laplacian families into the heterogeneous manifold
/// ensemble `L = α·L_S + L_E` (Eq. 12) with merged sparsity patterns —
/// both members are sparse, so their ensemble stays sparse.
///
/// # Errors
/// Fails if the block layouts differ.
pub fn hetero_laplacian(
    l_s: &SparseBlockDiag,
    l_e: &SparseBlockDiag,
    alpha: f64,
) -> Result<SparseBlockDiag> {
    Ok(l_s.lin_comb(alpha, l_e, 1.0)?)
}

/// The six RMC candidate Laplacians of Sec. IV-B: `p ∈ {5, 10}` crossed
/// with binary / heat-kernel (self-tuned σ) / cosine weighting, each as a
/// block diagonal over all types.
pub fn rmc_candidates(features: &[Mat], kind: LaplacianKind) -> Result<Vec<SparseBlockDiag>> {
    let mut out = Vec::with_capacity(6);
    for p in [5usize, 10] {
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            out.push(pnn_laplacians(features, p, scheme, kind)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    fn toy_features() -> Vec<Mat> {
        vec![
            rand_uniform(15, 6, 0.0, 1.0, 90),
            rand_uniform(12, 5, 0.0, 1.0, 91),
        ]
    }

    #[test]
    fn pnn_block_layout() {
        let f = toy_features();
        let l = pnn_laplacians(&f, 3, WeightScheme::Cosine, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(l.num_blocks(), 2);
        assert_eq!(l.n(), 27);
        // Normalised Laplacian diagonals are <= 1.
        for k in 0..2 {
            let block = l.block(k);
            for i in 0..block.rows() {
                let d = block.get(i, i);
                assert!((0.0..=1.0 + 1e-12).contains(&d), "block {k} diag {i}: {d}");
            }
        }
    }

    #[test]
    fn pnn_blocks_are_sparse() {
        // The point of the sparse pipeline: a pNN Laplacian block stores
        // O(p·n) entries, far below n².
        let f = toy_features();
        let p = 3;
        let l = pnn_laplacians(&f, p, WeightScheme::Cosine, LaplacianKind::SymNormalized).unwrap();
        for k in 0..l.num_blocks() {
            let n_k = l.block(k).rows();
            assert!(
                l.block(k).nnz() <= 2 * p * n_k + n_k,
                "block {k} has {} entries for n_k = {n_k}",
                l.block(k).nnz()
            );
        }
    }

    #[test]
    fn subspace_block_layout_and_psd_diag() {
        let f = toy_features();
        let cfg = SpgConfig {
            max_iter: 40,
            ..SpgConfig::default()
        };
        let l = subspace_laplacians(&f, &cfg, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(l.n(), 27);
        // Symmetric blocks.
        for k in 0..2 {
            assert!(l.block(k).is_symmetric(1e-9), "block {k} not symmetric");
        }
    }

    #[test]
    fn hetero_combination_matches_blocks() {
        let f = toy_features();
        let le = pnn_laplacians(&f, 3, WeightScheme::Cosine, LaplacianKind::SymNormalized).unwrap();
        let ls = pnn_laplacians(&f, 4, WeightScheme::Binary, LaplacianKind::SymNormalized).unwrap();
        let combo = hetero_laplacian(&ls, &le, 2.0).unwrap();
        for k in 0..2 {
            let expect = le
                .block(k)
                .to_dense()
                .add(&ls.block(k).to_dense().scaled(2.0))
                .unwrap();
            assert!(combo.block(k).to_dense().approx_eq(&expect, 1e-12));
        }
    }

    #[test]
    fn rmc_candidate_count_and_layout() {
        let f = toy_features();
        let cands = rmc_candidates(&f, LaplacianKind::SymNormalized).unwrap();
        assert_eq!(cands.len(), 6);
        assert!(cands.iter().all(|c| c.n() == 27));
    }
}
