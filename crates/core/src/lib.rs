//! # rhchme
//!
//! Reproduction of **RHCHME** — *Robust High-order Co-clustering via
//! Heterogeneous Manifold Ensemble* (Hou & Nayak, ICDE 2015) — plus every
//! method it is compared against.
//!
//! ## What this crate provides
//!
//! * [`multitype`] — assembly of the symmetric inter-type relationship
//!   matrix `R`, block membership `G` layout and per-type feature views
//!   (Sec. I-A of the paper);
//! * [`kmeans`] — k-means++ used to initialise `G` (Algorithm 2's input);
//! * [`intra`] — stage 1 & 2: per-type pNN graphs, SPG subspace affinities
//!   and the heterogeneous Laplacian ensemble `L = α·L_S + L_E` (Eq. 12);
//! * [`engine`] — the **sparse-first** multiplicative-update optimiser
//!   of Eq. (15) (Algorithm 2): closed-form `S`, multiplicative `G`
//!   with row-ℓ1 normalisation, implicit IRLS `E_R` with the L2,1
//!   penalty — `O(nnz·c + n·c²)` per iteration on a CSR `R`, with the
//!   retired dense loop kept as a test reference;
//! * [`rhchme`] — the end-to-end RHCHME estimator;
//! * [`baselines`] — SRC, SNMTF, RMC and DRCC (DR-T/DR-C/DR-TC), the
//!   comparison suite of Sec. IV-B;
//! * [`pipeline`] — one-call runners with artifact caching, used by the
//!   table/figure benches;
//! * [`export`] — the serving-ready [`FittedModel`] bundle (per-type
//!   membership blocks, association matrix `S`, feature centroids)
//!   consumed by the `mtrl-serve` crate for out-of-sample fold-in.
//!
//! ## Quickstart
//!
//! ```
//! use mtrl_datagen::datasets::{load, DatasetId, Scale};
//! use rhchme::rhchme::{Rhchme, RhchmeConfig};
//!
//! let corpus = load(DatasetId::D1, Scale::Tiny);
//! let model = Rhchme::new(RhchmeConfig::fast());
//! let result = model.fit_corpus(&corpus).unwrap();
//! let f = mtrl_metrics::fscore(&corpus.labels, &result.doc_labels);
//! assert!(f > 0.3);
//! ```

pub mod baselines;
pub mod engine;
pub mod error;
pub mod export;
pub mod intra;
pub mod multitype;
pub mod pipeline;
pub mod rhchme;

pub use mtrl_linalg::kmeans;

pub use error::RhchmeError;
pub use export::{FittedModel, SCHEMA_VERSION};
pub use mtrl_ann::GraphBackend;
pub use mtrl_linalg::Precision;
pub use multitype::MultiTypeData;
pub use pipeline::{
    run_method, run_spec, EnsembleSpec, FitRequest, MergeStrategy, Method, MethodOutput, MethodSpec,
};
pub use rhchme::{Rhchme, RhchmeConfig, RhchmeResult, WarmStart};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RhchmeError>;
