//! Criterion microbenches of the streaming subsystem: batch-insert
//! throughput of the incremental pNN maintenance against the full
//! rebuild it replaces, the Laplacian refresh path, and warm vs cold
//! refit wall-clock.
//!
//! With `MTRL_BENCH_JSON` set, the run emits the summary the CI
//! `bench-smoke` job gates against the committed `BENCH_stream.json`.
//! The committed baseline also documents the acceptance ratio of the
//! streaming PR: inserting a 5% batch into an `n = 2000` graph must be
//! ≥ 5× faster than the `pnn_graph` rebuild (quick-mode numbers on the
//! CI container comfortably exceed it).

use criterion::{criterion_group, criterion_main, Criterion};
use mtrl_datagen::corpus::{generate, CorpusConfig};
use mtrl_graph::{laplacian_csr, pnn_graph, LaplacianKind, WeightScheme};
use mtrl_linalg::random::rand_uniform;
use mtrl_stream::{warm_membership, DynamicGraph, DynamicGraphConfig};
use rhchme::rhchme::WarmStart;
use rhchme::{MultiTypeData, Rhchme, RhchmeConfig};
use std::hint::black_box;

/// The acceptance benchmark: a 5% batch (100 rows) into an existing
/// `n = 1900` graph versus rebuilding the full `n = 2000` graph from
/// scratch. Outputs are asserted identical before anything is timed.
/// The incremental timing includes cloning the base graph (the bench
/// must restore pre-insert state every iteration); the clone is a
/// ~2 MB memcpy, well under the distance work being measured.
fn bench_insert(c: &mut Criterion) {
    let n = 2000;
    let batch = 100;
    let data = rand_uniform(n, 64, 0.0, 1.0, 21);
    let base_rows = data.submatrix(0, 0, n - batch, 64);
    let new_rows = data.submatrix(n - batch, 0, batch, 64);
    let cfg = DynamicGraphConfig {
        p: 5,
        scheme: WeightScheme::Cosine,
        rebuild_threshold: 1.0,
        ..DynamicGraphConfig::default()
    };
    let base = DynamicGraph::new(&base_rows, cfg.clone());
    {
        let mut grown = base.clone();
        let report = grown.insert_batch(&new_rows);
        assert!(!report.rebuilt, "batch insert must stay incremental");
        assert_eq!(
            grown.graph(),
            pnn_graph(&data, 5, WeightScheme::Cosine),
            "incremental graph diverged from the batch build"
        );
    }

    let mut group = c.benchmark_group("stream_insert_n2000_d64_p5");
    group.sample_size(10);
    group.bench_function("incremental_batch100", |bencher| {
        bencher.iter(|| {
            let mut g = base.clone();
            g.insert_batch(black_box(&new_rows));
            g
        });
    });
    group.bench_function("full_rebuild", |bencher| {
        bencher.iter(|| pnn_graph(black_box(&data), 5, WeightScheme::Cosine));
    });
    group.finish();
}

/// Refreshing the Laplacian from the maintained adjacency (`O(nnz·d)`)
/// versus the cold path (rebuild the graph, then the Laplacian).
fn bench_laplacian_refresh(c: &mut Criterion) {
    let data = rand_uniform(2000, 64, 0.0, 1.0, 22);
    let g = DynamicGraph::new(&data, DynamicGraphConfig::default());
    let mut group = c.benchmark_group("stream_laplacian_n2000");
    group.sample_size(10);
    group.bench_function("incremental_refresh", |bencher| {
        bencher.iter(|| black_box(&g).laplacian(LaplacianKind::SymNormalized));
    });
    group.bench_function("cold_rebuild", |bencher| {
        bencher.iter(|| {
            let w = pnn_graph(black_box(&data), 5, WeightScheme::Cosine);
            laplacian_csr(&w, LaplacianKind::SymNormalized)
        });
    });
    group.finish();
}

/// Warm vs cold refit wall-clock on a small three-type corpus: the warm
/// path reuses a prebuilt Laplacian and a previous-solution `G₀` with a
/// capped iteration budget; the cold path runs the full two-stage fit.
fn bench_refit(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        docs_per_class: vec![8, 8, 8],
        vocab_size: 60,
        concept_count: 15,
        doc_len_range: (30, 45),
        background_frac: 0.25,
        topic_noise: 0.25,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 1,
        view_confusion: 0.0,
        seed: 23,
    });
    let rhchme = Rhchme::new(RhchmeConfig {
        lambda: 1.0,
        ..RhchmeConfig::fast()
    });
    let result = rhchme.fit_corpus(&corpus).expect("initial fit");
    let model = rhchme.export_model(&result, &corpus).expect("export");
    let assigner = mtrl_serve::Assigner::new(model).expect("assigner");
    let data = MultiTypeData::from_corpus(&corpus, 20).expect("data");
    let features = data.all_features();
    let laplacian = rhchme::intra::pnn_laplacians(
        &features,
        5,
        WeightScheme::Cosine,
        LaplacianKind::SymNormalized,
    )
    .expect("laplacian");
    let survivors: Vec<Vec<Option<usize>>> = data
        .sizes()
        .iter()
        .map(|&n| (0..n).map(Some).collect())
        .collect();
    let g0 = warm_membership(&data, &assigner, &survivors, 0.1).expect("warm G0");

    let mut group = c.benchmark_group("stream_refit_tiny3x8");
    group.sample_size(10);
    group.bench_function("warm_15iter", |bencher| {
        bencher.iter(|| {
            rhchme
                .fit_warm(
                    black_box(&data),
                    WarmStart {
                        g0: g0.clone(),
                        laplacian: Some(laplacian.clone()),
                        max_iter: 15,
                    },
                )
                .expect("warm refit")
        });
    });
    group.bench_function("cold_full", |bencher| {
        bencher.iter(|| rhchme.fit_data(black_box(&data)).expect("cold refit"));
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_laplacian_refresh, bench_refit);
criterion_main!(benches);
