//! Criterion microbenches of the dense linear-algebra kernels that
//! dominate Algorithm 2 (see `crates/linalg/src/ops.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_linalg::ops::{g_s_gt, gram, matmul, matmul_nt, matmul_tn};
use mtrl_linalg::random::rand_uniform;
use mtrl_linalg::solve::ridge_inverse;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_nxn_times_nxc");
    for &n in &[128usize, 384] {
        let a = rand_uniform(n, n, -1.0, 1.0, 1);
        let b = rand_uniform(n, 48, -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| matmul(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_gsgt(c: &mut Criterion) {
    let mut group = c.benchmark_group("g_s_gt_reconstruction");
    for &n in &[256usize, 512] {
        let g = rand_uniform(n, 48, 0.0, 1.0, 3);
        let s = rand_uniform(48, 48, 0.0, 1.0, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| g_s_gt(black_box(&g), black_box(&s)).unwrap());
        });
    }
    group.finish();
}

fn bench_gram_and_small_ops(c: &mut Criterion) {
    let g = rand_uniform(512, 48, 0.0, 1.0, 5);
    c.bench_function("gram_512x48", |bencher| {
        bencher.iter(|| gram(black_box(&g)));
    });
    let a = rand_uniform(512, 48, -1.0, 1.0, 6);
    let b = rand_uniform(512, 48, -1.0, 1.0, 7);
    c.bench_function("matmul_tn_512x48", |bencher| {
        bencher.iter(|| matmul_tn(black_box(&a), black_box(&b)).unwrap());
    });
    c.bench_function("matmul_nt_512x48", |bencher| {
        bencher.iter(|| matmul_nt(black_box(&a), black_box(&b)).unwrap());
    });
    let gram48 = gram(&g);
    c.bench_function("ridge_inverse_48", |bencher| {
        bencher.iter(|| ridge_inverse(black_box(&gram48), 1e-10).unwrap());
    });
}

criterion_group!(benches, bench_matmul, bench_gsgt, bench_gram_and_small_ops);
criterion_main!(benches);
