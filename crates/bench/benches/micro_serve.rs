//! Microbenches of the serving hot path: single-document fold-in,
//! batched assignment throughput, and the persistence round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_datagen::corpus::{generate, CorpusConfig};
use mtrl_serve::{persist, AssignRequest, Assigner, FittedModel, ServeEngine, SparseVec};
use rhchme::rhchme::{Rhchme, RhchmeConfig};
use std::hint::black_box;

fn fitted_model() -> FittedModel {
    let corpus = generate(&CorpusConfig {
        docs_per_class: vec![16, 16, 16],
        vocab_size: 200,
        concept_count: 60,
        doc_len_range: (40, 70),
        background_frac: 0.3,
        topic_noise: 0.3,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 1,
        view_confusion: 0.0,
        seed: 9,
    });
    let rhchme = Rhchme::new(RhchmeConfig {
        lambda: 1.0,
        ..RhchmeConfig::fast()
    });
    let result = rhchme.fit_corpus(&corpus).expect("fit");
    rhchme.export_model(&result, &corpus).expect("export")
}

fn synthetic_docs(n: usize, dim: usize, nnz: usize) -> Vec<SparseVec> {
    (0..n)
        .map(|i| {
            let indices: Vec<usize> = (0..nnz).map(|j| (i * 31 + j * 7) % dim).collect();
            let values: Vec<f64> = (0..nnz)
                .map(|j| 0.1 + ((i + j) % 10) as f64 * 0.1)
                .collect();
            SparseVec::new(indices, values).expect("bench doc")
        })
        .collect()
}

fn bench_single_foldin(c: &mut Criterion) {
    let model = fitted_model();
    let dim = model.feature_dims[0];
    let assigner = Assigner::new(model).expect("assigner");
    let doc = &synthetic_docs(1, dim, 24)[0];
    c.bench_function("foldin_single_doc_nnz24", |bencher| {
        bencher.iter(|| assigner.assign(0, black_box(doc)).unwrap());
    });
}

fn bench_batch_throughput(c: &mut Criterion) {
    let model = fitted_model();
    let dim = model.feature_dims[0];
    let assigner = Assigner::new(model).expect("assigner");
    let mut group = c.benchmark_group("foldin_batch");
    group.sample_size(20);
    for &batch in &[64usize, 512] {
        let docs = synthetic_docs(batch, dim, 24);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bencher, _| {
            bencher.iter(|| assigner.assign_batch(0, black_box(&docs)).unwrap());
        });
    }
    group.finish();
}

fn bench_engine_round_trip(c: &mut Criterion) {
    let model = fitted_model();
    let dim = model.feature_dims[0];
    let engine = ServeEngine::new(4);
    engine.register("bench", model).expect("register");
    let docs = synthetic_docs(64, dim, 24);
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("submit_wait_batch64", |bencher| {
        bencher.iter(|| {
            engine
                .submit(AssignRequest::new("bench").docs(docs.clone()))
                .wait()
                .unwrap()
        });
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let model = fitted_model();
    let json = persist::to_json(&model).expect("serialize");
    let bytes = persist::to_bytes(&model).expect("serialize binary");
    // The load paths must agree before their speeds are compared.
    assert_eq!(
        persist::from_json(&json).unwrap().content_digest(),
        persist::from_bytes(&bytes).unwrap().content_digest()
    );
    let mut group = c.benchmark_group("persist");
    group.sample_size(10);
    group.bench_function("to_json", |bencher| {
        bencher.iter(|| persist::to_json(black_box(&model)).unwrap());
    });
    group.bench_function("from_json_verified", |bencher| {
        bencher.iter(|| persist::from_json(black_box(&json)).unwrap());
    });
    group.bench_function("to_binary", |bencher| {
        bencher.iter(|| persist::to_bytes(black_box(&model)).unwrap());
    });
    group.bench_function("from_binary_verified", |bencher| {
        bencher.iter(|| persist::from_bytes(black_box(&bytes)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_foldin,
    bench_batch_throughput,
    bench_engine_round_trip,
    bench_persistence
);
criterion_main!(benches);
