//! Tables III & IV — FScore and NMI of all seven methods on D1–D4.
//!
//! For every dataset this runs DR-T, DR-C, DR-TC, SRC, SNMTF, RMC and
//! RHCHME with the tuned defaults (PipelineParams; the λ/γ scale mapping
//! versus the paper's grid is documented in `rhchme::RhchmeConfig`) and
//! prints measured-vs-paper values side by side. The shape to check:
//! two-way DR-* trail the HOCC family, SRC is the weakest HOCC method,
//! and RHCHME posts the best averages.

use mtrl_bench::{
    mean, paper, print_table, scale_from_env, scale_name, section, write_json, MethodRecord,
};
use mtrl_datagen::datasets::{load, DatasetId};
use rhchme::pipeline::{run_method, Method, PipelineParams};

fn main() {
    let scale = scale_from_env();
    section(&format!(
        "Tables III & IV: clustering quality (scale = {})",
        scale_name(scale)
    ));
    let params = PipelineParams::default();

    // measured[m][d] = (fscore, nmi)
    let mut measured = vec![vec![(0.0f64, 0.0f64); 4]; 7];
    let mut records: Vec<MethodRecord> = Vec::new();
    for (d, id) in DatasetId::all().into_iter().enumerate() {
        let corpus = load(id, scale);
        eprintln!(
            "running {} ({} docs / {} terms / {} concepts)…",
            id.paper_name(),
            corpus.num_docs(),
            corpus.num_terms(),
            corpus.num_concepts()
        );
        for (m, method) in Method::all().into_iter().enumerate() {
            let out = run_method(&corpus, method, &params).expect("method run");
            let f = mtrl_metrics::fscore(&corpus.labels, &out.doc_labels);
            let n = mtrl_metrics::nmi(&corpus.labels, &out.doc_labels);
            measured[m][d] = (f, n);
            records.push(MethodRecord {
                method: method.paper_name().to_string(),
                dataset: id.short_name().to_string(),
                fscore: f,
                nmi: n,
                seconds: out.elapsed.as_secs_f64(),
                iterations: out.iterations,
            });
        }
    }

    for (title, select, reference) in [
        ("Table III: FScore", 0usize, &paper::FSCORE),
        ("Table IV: NMI", 1usize, &paper::NMI),
    ] {
        section(title);
        let mut rows = Vec::new();
        for (m, name) in paper::METHODS.iter().enumerate() {
            let vals: Vec<f64> = (0..4)
                .map(|d| {
                    if select == 0 {
                        measured[m][d].0
                    } else {
                        measured[m][d].1
                    }
                })
                .collect();
            let mut row = vec![name.to_string()];
            for d in 0..4 {
                row.push(format!("{:.3}", vals[d]));
                row.push(format!("({:.3})", reference[m][d]));
            }
            row.push(format!("{:.3}", mean(&vals)));
            row.push(format!("({:.3})", mean(&reference[m])));
            rows.push(row);
        }
        print_table(
            &[
                "method", "D1", "paper", "D2", "paper", "D3", "paper", "D4", "paper", "avg",
                "paper",
            ],
            &rows,
        );
    }

    // Shape checks mirroring the paper's claims.
    section("shape checks");
    let avg_f = |m: usize| mean(&(0..4).map(|d| measured[m][d].0).collect::<Vec<_>>());
    let two_way_best = avg_f(0).max(avg_f(1)).max(avg_f(2));
    let hocc_avgs: Vec<String> = (3..7).map(|m| format!("{:.3}", avg_f(m))).collect();
    println!("best two-way avg FScore: {two_way_best:.3}; HOCC avgs (SRC,SNMTF,RMC,RHCHME): {hocc_avgs:?}");
    println!(
        "RHCHME avg - SRC avg = {:+.3} (paper: +0.050)",
        avg_f(6) - avg_f(3)
    );
    println!(
        "RHCHME avg - best two-way = {:+.3} (paper: +0.211)",
        avg_f(6) - two_way_best
    );
    write_json("table3_table4_clustering", &records);
}
