//! Criterion microbenches of the consensus-ensemble layer: the sparse
//! co-association build (the stage that must never densify to n×n), the
//! anchor-selected trajectory merge, and the full ensemble fit against
//! the single RHCHME fit it wraps.
//!
//! With `MTRL_BENCH_JSON` set, the run emits the summary the CI
//! `bench-smoke` job gates against the committed `BENCH_ensemble.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_datagen::corpus::{generate, CorpusConfig};
use mtrl_ensemble::{consensus_over_references, CoAssocBuilder};
use rhchme::pipeline::{EnsembleSpec, PipelineParams};
use std::hint::black_box;

/// Deterministic synthetic partitions: a planted k-way split with a
/// per-partition fraction of labels rotated (a cheap stand-in for member
/// disagreement).
fn synthetic_partitions(n: usize, m: usize, k: usize) -> Vec<Vec<usize>> {
    (0..m)
        .map(|p| {
            (0..n)
                .map(|i| {
                    let planted = i * k / n;
                    if (i * 31 + p * 17) % 10 < 2 {
                        (planted + 1 + p) % k
                    } else {
                        planted
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_coassoc_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("coassoc_build");
    group.sample_size(20);
    for &n in &[500usize, 2000] {
        let partitions = synthetic_partitions(n, 8, 5);
        let mut builder = CoAssocBuilder::new(n);
        for labels in &partitions {
            builder.add_partition(labels);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| black_box(&builder).build(16));
        });
    }
    group.finish();
}

fn bench_trajectory_merge(c: &mut Criterion) {
    let n = 2000;
    let partitions = synthetic_partitions(n, 8, 5);
    let mut builder = CoAssocBuilder::new(n);
    for labels in &partitions {
        builder.add_partition(labels);
    }
    let coassoc = builder.build(16);
    let candidates: Vec<&[usize]> = partitions.iter().map(Vec::as_slice).collect();
    c.bench_function("trajectory_merge_2000", |bencher| {
        bencher.iter(|| {
            consensus_over_references(black_box(&coassoc), &candidates, 5, 3, 0.8, false, &[])
        });
    });
}

fn bench_full_fit(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig {
        docs_per_class: vec![20, 20, 20],
        vocab_size: 150,
        concept_count: 40,
        doc_len_range: (30, 50),
        background_frac: 0.3,
        topic_noise: 0.3,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 1,
        view_confusion: 0.0,
        seed: 12,
    });
    let params = PipelineParams {
        max_iter: 20,
        spg_max_iter: 20,
        feature_cluster_divisor: 10,
        ..PipelineParams::default()
    };
    let mut group = c.benchmark_group("ensemble_fit");
    group.sample_size(10);
    group.bench_function("members4_60docs", |bencher| {
        bencher.iter(|| {
            mtrl_ensemble::fit_corpus(
                black_box(&corpus),
                &EnsembleSpec::default().with_members(4),
                &params,
            )
            .unwrap()
        });
    });
    // The single-method fit the ensemble amortises its artifacts over —
    // the committed ratio documents the layer's overhead (4 members
    // well under 4x one fit, because artifacts are shared).
    group.bench_function("single_rhchme_60docs", |bencher| {
        bencher.iter(|| {
            rhchme::pipeline::run_method(
                black_box(&corpus),
                rhchme::pipeline::Method::Rhchme,
                &params,
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coassoc_build,
    bench_trajectory_merge,
    bench_full_fit
);
criterion_main!(benches);
