//! Criterion microbenches of the end-to-end methods at tiny scale —
//! the per-method costs behind Table V's ordering.

use criterion::{criterion_group, criterion_main, Criterion};
use mtrl_datagen::datasets::{load, DatasetId, Scale};
use rhchme::pipeline::{run_method, Method, PipelineParams};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let corpus = load(DatasetId::D1, Scale::Tiny);
    let params = PipelineParams {
        max_iter: 30,
        spg_max_iter: 30,
        ..PipelineParams::default()
    };
    let mut group = c.benchmark_group("methods_d1_tiny");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_function(method.paper_name(), |bencher| {
            bencher.iter(|| run_method(black_box(&corpus), method, &params).unwrap());
        });
    }
    group.finish();
}

fn bench_engine_iteration_cost(c: &mut Criterion) {
    // One multiplicative-update iteration versus a full k-means init:
    // the two cost centres of every NMTF method.
    let corpus = load(DatasetId::D1, Scale::Tiny);
    let params = PipelineParams::default();
    let arts = rhchme::pipeline::Artifacts::new(&corpus, &params).unwrap();
    let l_sub = arts
        .subspace_laplacian(params.gamma, 20, params.seed)
        .unwrap();
    let mut group = c.benchmark_group("engine_d1_tiny");
    group.sample_size(10);
    group.bench_function("rhchme_engine_5_iters", |bencher| {
        bencher.iter(|| {
            arts.run_rhchme_engine(black_box(&l_sub), 1.0, 0.05, 50.0, 5, 0.0, false)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_methods, bench_engine_iteration_cost);
criterion_main!(benches);
