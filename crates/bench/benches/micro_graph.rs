//! Criterion microbenches of the graph substrate: pNN construction
//! (the `O(n_k² p K)` term of Sec. III-F) and Laplacian assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_graph::{laplacian_dense, pnn_graph, LaplacianKind, WeightScheme};
use mtrl_linalg::random::rand_uniform;
use std::hint::black_box;

fn bench_pnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("pnn_graph_p5");
    for &n in &[200usize, 500] {
        let data = rand_uniform(n, 64, 0.0, 1.0, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| pnn_graph(black_box(&data), 5, WeightScheme::Cosine));
        });
    }
    group.finish();
}

fn bench_weight_schemes(c: &mut Criterion) {
    let data = rand_uniform(300, 64, 0.0, 1.0, 12);
    let mut group = c.benchmark_group("weighting_scheme_300");
    for (name, scheme) in [
        ("binary", WeightScheme::Binary),
        ("heat", WeightScheme::HeatKernel { sigma: -1.0 }),
        ("cosine", WeightScheme::Cosine),
    ] {
        group.bench_function(name, |bencher| {
            bencher.iter(|| pnn_graph(black_box(&data), 5, scheme));
        });
    }
    group.finish();
}

fn bench_laplacian(c: &mut Criterion) {
    let data = rand_uniform(400, 32, 0.0, 1.0, 13);
    let w = pnn_graph(&data, 5, WeightScheme::Cosine);
    c.bench_function("laplacian_sym_normalized_400", |bencher| {
        bencher.iter(|| laplacian_dense(black_box(&w), LaplacianKind::SymNormalized));
    });
    c.bench_function("laplacian_unnormalized_400", |bencher| {
        bencher.iter(|| laplacian_dense(black_box(&w), LaplacianKind::Unnormalized));
    });
}

criterion_group!(benches, bench_pnn, bench_weight_schemes, bench_laplacian);
criterion_main!(benches);
