//! Criterion microbenches of the graph substrate: pNN construction
//! (the `O(n_k² p K)` term of Sec. III-F), the parallel-scaling curve of
//! the blocked Gram kernel against the seed brute-force path, and both
//! Laplacian assemblies.
//!
//! With `MTRL_BENCH_JSON` set, the run emits the summary that the CI
//! `bench-smoke` job gates against the committed `BENCH_graph.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_graph::knn::pnn_graph_brute_reference;
use mtrl_graph::{
    knn_indices, knn_indices_f32, knn_indices_f32_with_threads, knn_indices_with_threads,
    laplacian_csr, laplacian_dense, pnn_graph, pnn_graph_f32_with_threads, pnn_graph_with_threads,
    LaplacianKind, WeightScheme,
};
use mtrl_linalg::random::rand_uniform;
use std::hint::black_box;

fn bench_pnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("pnn_graph_p5");
    for &n in &[200usize, 500] {
        let data = rand_uniform(n, 64, 0.0, 1.0, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| pnn_graph(black_box(&data), 5, WeightScheme::Cosine));
        });
    }
    group.finish();
}

/// The acceptance benchmark of the parallel sparse pipeline: the seed
/// serial path vs the blocked kernel at 1/2/4 worker threads on
/// `n = 2000, d = 64, p = 5`. Outputs are asserted bit-identical before
/// anything is timed.
fn bench_pnn_scaling(c: &mut Criterion) {
    let data = rand_uniform(2000, 64, 0.0, 1.0, 11);
    let reference = pnn_graph_brute_reference(&data, 5, WeightScheme::Cosine);
    for threads in [1usize, 2, 4] {
        assert_eq!(
            pnn_graph_with_threads(&data, 5, WeightScheme::Cosine, threads),
            reference,
            "blocked kernel (t={threads}) diverged from the seed path"
        );
    }

    // The f32-storage kernel legs: before timing, pin cross-thread
    // bitwise determinism within f32 mode and check the f32 neighbour
    // lists against the f64 reference — quantisation may only reorder
    // near-ties, so the lists must agree on (effectively) every slot.
    let f32_ref = pnn_graph_f32_with_threads(&data, 5, WeightScheme::Cosine, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            pnn_graph_f32_with_threads(&data, 5, WeightScheme::Cosine, threads),
            f32_ref,
            "f32 kernel (t={threads}) is not thread-count deterministic"
        );
    }
    let nn64 = knn_indices(&data, 5);
    let nn32 = knn_indices_f32(&data, 5);
    let (mut shared, mut total) = (0usize, 0usize);
    for (a, b) in nn64.iter().zip(&nn32) {
        total += a.len();
        shared += a.iter().filter(|j| b.contains(j)).count();
    }
    assert!(
        shared as f64 >= 0.999 * total as f64,
        "f32 neighbour lists diverged from f64: {shared}/{total} slots agree"
    );

    let mut group = c.benchmark_group("pnn_scaling_n2000_d64_p5");
    group.sample_size(10);
    group.bench_function("seed_serial", |bencher| {
        bencher.iter(|| pnn_graph_brute_reference(black_box(&data), 5, WeightScheme::Cosine));
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("blocked_t{threads}"), |bencher| {
            bencher.iter(|| {
                pnn_graph_with_threads(black_box(&data), 5, WeightScheme::Cosine, threads)
            });
        });
    }
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("blocked_f32_t{threads}"), |bencher| {
            bencher.iter(|| {
                pnn_graph_f32_with_threads(black_box(&data), 5, WeightScheme::Cosine, threads)
            });
        });
    }
    group.finish();
}

/// The acceptance benchmark of the mixed-precision backend: the Gram
/// distance chain (`knn_indices`, the kernel the pNN construction spends
/// its time in) at `n = 2000, d = 256`, where `Xᵀ` is 4 MiB in `f64`
/// (spills the 2 MiB L2) but 2 MiB in `f32`. Here the halved element
/// width plus the f32 kernel's wider row-grouping make the
/// storage-bandwidth win visible: the committed baseline must show
/// `knn_f32_t1` ≥ 1.3× faster than `knn_t1`. The group times the kernel
/// itself rather than `pnn_graph` because edge weighting runs on raw
/// `f64` rows in *both* modes (identical cost, no precision knob) and
/// would only dilute the measured contrast. (The `d = 64` scaling group
/// above stays compute-bound — both transposes fit in L2 — which is
/// exactly why this group exists.)
fn bench_pnn_gram_bandwidth(c: &mut Criterion) {
    let data = rand_uniform(2000, 256, 0.0, 1.0, 11);

    // Same pre-timing contract as the scaling group, at this shape:
    // f32 mode is thread-count deterministic and its neighbour lists
    // agree with f64 on effectively every slot.
    let f32_ref = pnn_graph_f32_with_threads(&data, 5, WeightScheme::Cosine, 1);
    assert_eq!(
        pnn_graph_f32_with_threads(&data, 5, WeightScheme::Cosine, 4),
        f32_ref,
        "f32 kernel (t=4) is not thread-count deterministic at d=256"
    );
    let nn64 = knn_indices(&data, 5);
    let nn32 = knn_indices_f32(&data, 5);
    let (mut shared, mut total) = (0usize, 0usize);
    for (a, b) in nn64.iter().zip(&nn32) {
        total += a.len();
        shared += a.iter().filter(|j| b.contains(j)).count();
    }
    assert!(
        shared as f64 >= 0.999 * total as f64,
        "f32 neighbour lists diverged from f64 at d=256: {shared}/{total} slots agree"
    );

    let mut group = c.benchmark_group("pnn_gram_n2000_d256_p5");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("knn_t{threads}"), |bencher| {
            bencher.iter(|| knn_indices_with_threads(black_box(&data), 5, threads));
        });
        group.bench_function(format!("knn_f32_t{threads}"), |bencher| {
            bencher.iter(|| knn_indices_f32_with_threads(black_box(&data), 5, threads));
        });
    }
    group.finish();
}

fn bench_weight_schemes(c: &mut Criterion) {
    let data = rand_uniform(300, 64, 0.0, 1.0, 12);
    let mut group = c.benchmark_group("weighting_scheme_300");
    for (name, scheme) in [
        ("binary", WeightScheme::Binary),
        ("heat", WeightScheme::HeatKernel { sigma: -1.0 }),
        ("cosine", WeightScheme::Cosine),
    ] {
        group.bench_function(name, |bencher| {
            bencher.iter(|| pnn_graph(black_box(&data), 5, scheme));
        });
    }
    group.finish();
}

fn bench_laplacian(c: &mut Criterion) {
    let data = rand_uniform(400, 32, 0.0, 1.0, 13);
    let w = pnn_graph(&data, 5, WeightScheme::Cosine);
    c.bench_function("laplacian_csr_sym_normalized_400", |bencher| {
        bencher.iter(|| laplacian_csr(black_box(&w), LaplacianKind::SymNormalized));
    });
    c.bench_function("laplacian_sym_normalized_400", |bencher| {
        bencher.iter(|| laplacian_dense(black_box(&w), LaplacianKind::SymNormalized));
    });
    c.bench_function("laplacian_unnormalized_400", |bencher| {
        bencher.iter(|| laplacian_dense(black_box(&w), LaplacianKind::Unnormalized));
    });
}

/// The fit-loop shapes the sparse pipeline exists for: `L·G` and
/// `tr(GᵀLG)` on a p-NN Laplacian at `n = 2000, c = 16`, sparse vs the
/// dense block product they replaced.
fn bench_spmm_quad(c: &mut Criterion) {
    let data = rand_uniform(2000, 32, 0.0, 1.0, 14);
    let w = pnn_graph(&data, 5, WeightScheme::Cosine);
    let l = laplacian_csr(&w, LaplacianKind::SymNormalized);
    let l_dense = l.to_dense();
    let g = rand_uniform(2000, 16, 0.0, 1.0, 15);
    let mut group = c.benchmark_group("laplacian_apply_n2000_c16");
    group.bench_function("spmm_dense", |bencher| {
        bencher.iter(|| black_box(&l).spmm_dense(black_box(&g)));
    });
    group.bench_function("quad_form", |bencher| {
        bencher.iter(|| black_box(&l).quad_form(black_box(&g)));
    });
    group.bench_function("dense_matmul", |bencher| {
        bencher.iter(|| mtrl_linalg::ops::matmul(black_box(&l_dense), black_box(&g)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pnn,
    bench_pnn_scaling,
    bench_pnn_gram_bandwidth,
    bench_weight_schemes,
    bench_laplacian,
    bench_spmm_quad
);
criterion_main!(benches);
