//! Table V — running time of each method on D1–D4.
//!
//! Absolute numbers are hardware- and scale-specific (the paper reports
//! 10³-second MATLAB-era figures); what must reproduce is the *ordering*:
//! the two-way DRCC variants are an order of magnitude cheaper than the
//! HOCC methods, and within the HOCC family RHCHME is not slower than RMC
//! (RMC pays for six ensemble members per iteration — Sec. IV-G).

use mtrl_bench::{
    paper, print_table, scale_from_env, scale_name, section, write_json, MethodRecord,
};
use mtrl_datagen::datasets::{load, DatasetId};
use rhchme::pipeline::{run_method, Method, PipelineParams};

fn main() {
    let scale = scale_from_env();
    section(&format!(
        "Table V: running time (scale = {})",
        scale_name(scale)
    ));
    let params = PipelineParams::default();

    let mut seconds = vec![vec![0.0f64; 4]; 7];
    let mut records = Vec::new();
    for (d, id) in DatasetId::all().into_iter().enumerate() {
        let corpus = load(id, scale);
        eprintln!("timing {}…", id.paper_name());
        for (m, method) in Method::all().into_iter().enumerate() {
            let out = run_method(&corpus, method, &params).expect("method run");
            seconds[m][d] = out.elapsed.as_secs_f64();
            records.push(MethodRecord {
                method: method.paper_name().to_string(),
                dataset: id.short_name().to_string(),
                fscore: mtrl_metrics::fscore(&corpus.labels, &out.doc_labels),
                nmi: mtrl_metrics::nmi(&corpus.labels, &out.doc_labels),
                seconds: seconds[m][d],
                iterations: out.iterations,
            });
        }
    }

    let mut rows = Vec::new();
    for (m, name) in paper::METHODS.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (d, secs) in seconds[m].iter().enumerate() {
            row.push(format!("{secs:.2}s"));
            row.push(format!("({}ks)", paper::RUNTIME_KS[m][d]));
        }
        rows.push(row);
    }
    print_table(
        &[
            "method", "D1", "paper", "D2", "paper", "D3", "paper", "D4", "paper",
        ],
        &rows,
    );

    section("shape checks");
    let total = |m: usize| seconds[m].iter().sum::<f64>();
    let two_way_max = total(0).max(total(1)).max(total(2));
    let hocc_min = (3..7).map(total).fold(f64::INFINITY, f64::min);
    println!(
        "slowest two-way total {two_way_max:.2}s vs fastest HOCC total {hocc_min:.2}s \
         (paper: two-way an order of magnitude cheaper)"
    );
    println!(
        "RHCHME total {:.2}s vs RMC total {:.2}s (paper: RHCHME faster than RMC)",
        total(6),
        total(5)
    );
    write_json("table5_runtime", &records);
}
