//! Criterion microbenches of the subspace learners: SPG (Algorithm 1,
//! the `‖WWᵀ‖₁`/SSQP regulariser) vs the ISTA l1 (SSC-style) ablation.
//!
//! The paper cites ref [10] for the claim that the `‖WWᵀ‖₁` regulariser
//! reaches sparser solutions "with less time consumption" than l1 — this
//! bench is the ablation backing that statement in the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_datagen::manifold::union_of_subspaces;
use mtrl_subspace::{ista_affinity, spg_affinity, IstaConfig, SpgConfig};
use std::hint::black_box;

fn bench_spg(c: &mut Criterion) {
    let mut group = c.benchmark_group("spg_affinity");
    group.sample_size(10);
    for &n_per in &[30usize, 60] {
        let (data, _) = union_of_subspaces(3, 2, 12, n_per, 0.02, 21);
        group.bench_with_input(
            BenchmarkId::from_parameter(3 * n_per),
            &n_per,
            |bencher, _| {
                bencher.iter(|| {
                    spg_affinity(
                        black_box(&data),
                        &SpgConfig {
                            max_iter: 60,
                            ..SpgConfig::default()
                        },
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_ista(c: &mut Criterion) {
    let mut group = c.benchmark_group("ista_affinity");
    group.sample_size(10);
    for &n_per in &[30usize, 60] {
        let (data, _) = union_of_subspaces(3, 2, 12, n_per, 0.02, 22);
        group.bench_with_input(
            BenchmarkId::from_parameter(3 * n_per),
            &n_per,
            |bencher, _| {
                bencher.iter(|| {
                    ista_affinity(
                        black_box(&data),
                        &IstaConfig {
                            max_iter: 60,
                            ..IstaConfig::default()
                        },
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spg, bench_ista);
criterion_main!(benches);
