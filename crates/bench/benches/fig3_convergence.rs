//! Fig. 3 — FScore/NMI vs multiplicative-update iterations, per dataset.
//!
//! The paper shows both metrics rising through the early iterations and
//! converging "relatively quickly", with the largest dataset (R-Top10)
//! needing the most iterations. This bench records per-iteration document
//! labels (`record_doc_labels`) and prints the two curves at checkpoints,
//! along with the objective J₄ (whose monotone decrease is Theorem 1).

use mtrl_bench::{print_table, scale_from_env, scale_name, section, write_json};
use mtrl_datagen::datasets::{load, DatasetId};
use rhchme::pipeline::{run_method, Method, PipelineParams};
use serde::Serialize;

#[derive(Serialize)]
struct TracePoint {
    dataset: String,
    iteration: usize,
    fscore: f64,
    nmi: f64,
    objective: f64,
}

fn main() {
    let scale = scale_from_env();
    section(&format!(
        "Fig. 3: convergence curves (scale = {})",
        scale_name(scale)
    ));
    let params = PipelineParams {
        max_iter: 100,
        tol: 0.0, // run the full 100 iterations like the figure's x-axis
        record_doc_labels: true,
        ..PipelineParams::default()
    };

    let checkpoints = [1usize, 2, 5, 10, 20, 30, 50, 75, 100];
    let mut all_points = Vec::new();
    for id in DatasetId::all() {
        let corpus = load(id, scale);
        eprintln!("tracing {}…", id.paper_name());
        let out = run_method(&corpus, Method::Rhchme, &params).expect("rhchme");
        let mut rows = Vec::new();
        for &cp in &checkpoints {
            let idx = cp.min(out.label_trace.len()) - 1;
            let f = mtrl_metrics::fscore(&corpus.labels, &out.label_trace[idx]);
            let n = mtrl_metrics::nmi(&corpus.labels, &out.label_trace[idx]);
            rows.push(vec![
                format!("{}", idx + 1),
                format!("{f:.3}"),
                format!("{n:.3}"),
                format!("{:.4}", out.objective_trace[idx]),
            ]);
            all_points.push(TracePoint {
                dataset: id.short_name().into(),
                iteration: idx + 1,
                fscore: f,
                nmi: n,
                objective: out.objective_trace[idx],
            });
        }
        section(&format!("{} ({})", id.paper_name(), id.short_name()));
        print_table(&["iteration", "FScore", "NMI", "objective J4"], &rows);

        // Theorem 1 check: J4 must be non-increasing.
        let monotone = out
            .objective_trace
            .windows(2)
            .all(|w| w[1] <= w[0] * (1.0 + 1e-5) + 1e-9);
        println!("objective monotone non-increasing: {monotone}");
    }
    write_json("fig3_convergence", &all_points);
}
