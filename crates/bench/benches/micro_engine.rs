//! Criterion microbenches of the sparse-first NMTF engine: the
//! per-iteration multiplicative-update step on an `n = 2000` three-type
//! dataset across relation sparsity levels, sparse path
//! (`run_engine`) versus the retired dense loop
//! (`run_engine_dense_reference`).
//!
//! With `MTRL_BENCH_JSON` set, the run emits the summary the CI
//! `bench-smoke` job gates against the committed `BENCH_engine.json`.
//! The committed baseline also documents the acceptance ratio of the
//! sparse-engine PR: at realistic corpus sparsity the sparse
//! per-iteration step must be ≥ 3× faster than the dense loop
//! (quick-mode numbers on the CI container comfortably exceed it).
//! Outputs are asserted equivalent (objective within 1e-9 relative,
//! identical labels) before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use mtrl_linalg::block::stack_membership;
use mtrl_linalg::Mat;
use mtrl_sparse::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhchme::engine::{run_engine, run_engine_dense_reference, EngineConfig, GraphRegularizer};
use rhchme::kmeans::labels_to_membership;
use rhchme::MultiTypeData;
use std::hint::black_box;

const SIZES: [usize; 3] = [1200, 600, 200];
const CLUSTERS: [usize; 3] = [8, 6, 4];

/// A three-type dataset (`n = 2000`, `c = 18`) whose pairwise relations
/// have the given nonzero density.
fn synthetic_data(density: f64, seed: u64) -> MultiTypeData {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut relations = Vec::new();
    for (k, l) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let (rows, cols) = (SIZES[k], SIZES[l]);
        let mut coo = Coo::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen_range(0.0..1.0) < density {
                    coo.push(i, j, rng.gen_range(0.1..1.0));
                }
            }
        }
        relations.push((k, l, coo.to_csr()));
    }
    MultiTypeData::new(SIZES.to_vec(), CLUSTERS.to_vec(), relations).expect("valid layout")
}

/// Random block-structured membership init (k-means would dominate the
/// setup without changing what is measured).
fn random_g0(data: &MultiTypeData, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks: Vec<Mat> = data
        .cluster_counts()
        .iter()
        .zip(data.sizes())
        .map(|(&ck, &nk)| {
            let labels: Vec<usize> = (0..nk).map(|_| rng.gen_range(0..ck)).collect();
            labels_to_membership(&labels, ck, 0.2)
        })
        .collect();
    stack_membership(&blocks)
}

/// Two multiplicative-update iterations (the second exercises the
/// implicit-`E_R` low-rank correction, which is inactive on the first).
fn engine_cfg() -> EngineConfig {
    EngineConfig {
        lambda: 0.0,
        beta: 10.0,
        use_error_matrix: true,
        l1_row_normalize: true,
        max_iter: 2,
        tol: 0.0,
        ..EngineConfig::default()
    }
}

/// The same step with the mixed-precision kernel backend (f32 storage,
/// f64 accumulation in the SpMM / low-rank / residual hot loops).
fn engine_cfg_f32() -> EngineConfig {
    EngineConfig {
        precision: mtrl_linalg::Precision::F32,
        ..engine_cfg()
    }
}

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step_n2000_c18");
    group.sample_size(10);
    // 0.5% ≈ tf-idf doc-term sparsity; 2% / 8% stress denser corpora.
    for (tag, density) in [("d0005", 0.005), ("d002", 0.02), ("d008", 0.08)] {
        let data = synthetic_data(density, 42);
        let r_sparse = data.assemble_r_csr();
        let r_dense = data.assemble_r();
        let g0 = random_g0(&data, 43);
        let cfg = engine_cfg();

        // Equivalence gate before timing anything.
        let sparse = run_engine(&r_sparse, &data, &GraphRegularizer::None, g0.clone(), &cfg)
            .expect("sparse engine");
        let dense =
            run_engine_dense_reference(&r_dense, &data, &GraphRegularizer::None, g0.clone(), &cfg)
                .expect("dense engine");
        for (a, b) in sparse.objective_trace.iter().zip(&dense.objective_trace) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "engines diverged at density {density}: {a} vs {b}"
            );
        }
        for ty in 0..3 {
            assert_eq!(
                data.labels_from_membership(&sparse.g, ty),
                data.labels_from_membership(&dense.g, ty),
                "labels diverged at density {density}"
            );
        }
        // The f32 backend must land on the same labels as the f64
        // reference before its timing means anything.
        let cfg32 = engine_cfg_f32();
        let sparse32 = run_engine(
            &r_sparse,
            &data,
            &GraphRegularizer::None,
            g0.clone(),
            &cfg32,
        )
        .expect("f32 engine");
        for ty in 0..3 {
            assert_eq!(
                data.labels_from_membership(&sparse32.g, ty),
                data.labels_from_membership(&sparse.g, ty),
                "f32 labels diverged from f64 at density {density}"
            );
        }

        group.bench_function(format!("sparse_{tag}"), |bencher| {
            bencher.iter(|| {
                run_engine(
                    black_box(&r_sparse),
                    &data,
                    &GraphRegularizer::None,
                    g0.clone(),
                    &cfg,
                )
                .expect("sparse engine")
            });
        });
        group.bench_function(format!("sparse_f32_{tag}"), |bencher| {
            bencher.iter(|| {
                run_engine(
                    black_box(&r_sparse),
                    &data,
                    &GraphRegularizer::None,
                    g0.clone(),
                    &cfg32,
                )
                .expect("f32 engine")
            });
        });
        group.bench_function(format!("dense_{tag}"), |bencher| {
            bencher.iter(|| {
                run_engine_dense_reference(
                    black_box(&r_dense),
                    &data,
                    &GraphRegularizer::None,
                    g0.clone(),
                    &cfg,
                )
                .expect("dense engine")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_step);
criterion_main!(benches);
