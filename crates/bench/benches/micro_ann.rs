//! Criterion microbenches of the approximate-NN layer: p-NN graph
//! construction through each [`GraphBackend`] across the size sweep the
//! subsystem exists for. The exact blocked kernel is timed at the sizes
//! where it is still tractable, so the committed summary documents the
//! crossover — at `n = 2000` the exact kernel wins, by `n = 20 000` both
//! approximate backends are comfortably ahead, and the `n = 50 000`
//! full-mode entries only exist because of them.
//!
//! With `MTRL_BENCH_JSON` set, the run emits the summary the CI
//! `bench-smoke` job gates against the committed `BENCH_ann.json`.
//! Quick mode (`MTRL_BENCH_QUICK=1`) drops the `n = 50 000` entries —
//! their builds alone would dominate the CI job — so the committed
//! baseline covers `n ∈ {2000, 20 000}`; the 50k numbers quoted in the
//! README come from a full-mode run of this bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtrl_ann::{pnn_graph_backend, ClusterParams, GraphBackend, RpForestParams};
use mtrl_graph::WeightScheme;
use mtrl_linalg::random::rand_uniform;
use std::hint::black_box;

fn quick_mode() -> bool {
    std::env::var("MTRL_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Exact vs both approximate backends on the same data, `p = 5,
/// d = 32`. One group per size so the per-entry names stay stable when
/// the size sweep changes.
fn bench_ann_build(c: &mut Criterion) {
    let sizes: &[usize] = if quick_mode() {
        &[2000, 20_000]
    } else {
        &[2000, 20_000, 50_000]
    };
    let forest = GraphBackend::RpForest(RpForestParams::default());
    let cluster = GraphBackend::ClusterPruned(ClusterParams::default());
    let mut group = c.benchmark_group("ann_pnn_p5_d32");
    group.sample_size(10);
    for &n in sizes {
        let data = rand_uniform(n, 32, 0.0, 1.0, 31);
        // The exact kernel is O(n²·d); past 20k it is minutes per
        // sample, which is exactly the regime the ANN backends replace.
        if n <= 20_000 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |bencher, _| {
                bencher.iter(|| {
                    pnn_graph_backend(
                        black_box(&data),
                        5,
                        WeightScheme::Cosine,
                        &GraphBackend::Exact,
                    )
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("rp_forest", n), &n, |bencher, _| {
            bencher.iter(|| pnn_graph_backend(black_box(&data), 5, WeightScheme::Cosine, &forest));
        });
        group.bench_with_input(BenchmarkId::new("cluster", n), &n, |bencher, _| {
            bencher.iter(|| pnn_graph_backend(black_box(&data), 5, WeightScheme::Cosine, &cluster));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ann_build);
criterion_main!(benches);
