//! Microbenches of the network gateway: end-to-end HTTP round trips
//! with the coalescing window on vs off, and model loading in both
//! persistence formats.
//!
//! `gateway/serial_64x1doc` is a latency reference on one keep-alive
//! connection. The two `concurrent_*_128x1doc` entries move identical
//! work (128 single-document assignments from 16 connections) against
//! gateways that differ only in coalescing (window + batch cap vs pure
//! passthrough), so their delta is exactly what request coalescing
//! buys under contention.

use criterion::{criterion_group, criterion_main, Criterion};
use mtrl_datagen::corpus::{generate, CorpusConfig};
use mtrl_gateway::{Gateway, GatewayConfig};
use mtrl_serve::{persist, FittedModel, ServeEngine};
use rhchme::rhchme::{Rhchme, RhchmeConfig};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn fitted_model() -> FittedModel {
    let corpus = generate(&CorpusConfig {
        docs_per_class: vec![16, 16, 16],
        vocab_size: 200,
        concept_count: 60,
        doc_len_range: (40, 70),
        background_frac: 0.3,
        topic_noise: 0.3,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 1,
        view_confusion: 0.0,
        seed: 9,
    });
    let rhchme = Rhchme::new(RhchmeConfig {
        lambda: 1.0,
        ..RhchmeConfig::fast()
    });
    let result = rhchme.fit_corpus(&corpus).expect("fit");
    rhchme.export_model(&result, &corpus).expect("export")
}

fn start_gateway(engine: Arc<ServeEngine>, coalesce: bool) -> Gateway {
    let config = if coalesce {
        GatewayConfig::default()
    } else {
        // True passthrough: every wire request is its own engine submit.
        GatewayConfig {
            wait_window: Duration::ZERO,
            max_batch_docs: 1,
            ..GatewayConfig::default()
        }
    };
    Gateway::bind(engine, config).expect("bind gateway")
}

fn assign_body(doc_index: usize, dim: usize) -> String {
    let i = (doc_index * 31) % dim;
    let j = (doc_index * 7 + 1) % dim;
    format!("{{\"docs\":[{{\"indices\":[{i},{j}],\"values\":[1.0,0.5]}}]}}")
}

/// One keep-alive request/response exchange; panics on non-200.
fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, body: &str) {
    write!(
        stream,
        "POST /v1/models/bench/assign HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status");
    assert!(status_line.contains("200"), "{status_line}");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    black_box(body);
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// 128 requests from 16 concurrent keep-alive connections.
fn concurrent_pass(addr: SocketAddr, dim: usize) {
    let clients: Vec<_> = (0..16)
        .map(|t| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                for r in 0..8 {
                    let body = assign_body(t * 8 + r, dim);
                    round_trip(&mut stream, &mut reader, &body);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client");
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let model = fitted_model();
    let dim = model.feature_dims[0];
    let engine = Arc::new(ServeEngine::new(2));
    engine.register("bench", model).expect("register");
    let coalescing = start_gateway(Arc::clone(&engine), true);
    let passthrough = start_gateway(Arc::clone(&engine), false);

    let mut group = c.benchmark_group("gateway");
    group.sample_size(10);
    group.bench_function("serial_64x1doc", |bencher| {
        bencher.iter(|| {
            let (mut stream, mut reader) = connect(coalescing.addr());
            for r in 0..64 {
                let body = assign_body(r, dim);
                round_trip(&mut stream, &mut reader, &body);
            }
        });
    });
    group.bench_function("concurrent_nocoalesce_128x1doc", |bencher| {
        bencher.iter(|| concurrent_pass(passthrough.addr(), dim));
    });
    group.bench_function("concurrent_coalesced_128x1doc", |bencher| {
        bencher.iter(|| concurrent_pass(coalescing.addr(), dim));
    });
    group.finish();
    drop((coalescing, passthrough));
}

fn bench_model_load(c: &mut Criterion) {
    let model = fitted_model();
    let dir = std::env::temp_dir().join("mtrl_bench_gateway");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let json_path = dir.join("model.json");
    let binary_path = dir.join("model.mtrl");
    persist::save(&model, &json_path).expect("save json");
    persist::save_binary(&model, &binary_path).expect("save binary");
    // The formats must agree before their load speeds are compared.
    assert_eq!(
        persist::load(&json_path).unwrap().content_digest(),
        persist::load_binary(&binary_path).unwrap().content_digest()
    );

    let mut group = c.benchmark_group("gateway_model_load");
    group.sample_size(10);
    group.bench_function("from_disk_json", |bencher| {
        bencher.iter(|| persist::load(black_box(&json_path)).unwrap());
    });
    group.bench_function("from_disk_binary", |bencher| {
        bencher.iter(|| persist::load_binary(black_box(&binary_path)).unwrap());
    });
    // The fleet-restart entry point: format sniff + (on unix) an mmap
    // of the payload instead of a buffered read.
    group.bench_function("load_any_mmap_binary", |bencher| {
        bencher.iter(|| persist::load_any(black_box(&binary_path)).unwrap());
    });
    group.finish();
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&binary_path).ok();
}

criterion_group!(benches, bench_end_to_end, bench_model_load);
criterion_main!(benches);
