//! Fig. 1 — pNN graphs vs subspace learning on intersecting manifolds.
//!
//! The paper's figure argues two failure modes of pNN graphs that
//! subspace learning fixes:
//!
//! 1. points near a manifold intersection (x, y in the figure) share the
//!    same p nearest neighbours and get linked across manifolds;
//! 2. distant within-manifold points (z in the figure) never appear in
//!    each other's pNN lists, so their relationship is lost.
//!
//! This bench quantifies both on (a) the figure's two intersecting
//! circles (quadratic-lift features) and (b) a union of linear subspaces
//! where the self-expressive model is exact.

use mtrl_bench::{print_table, section, write_json};
use mtrl_datagen::manifold::{two_circles, union_of_subspaces, NOISE_LABEL};
use mtrl_graph::{pnn_graph, WeightScheme};
use mtrl_linalg::Mat;
use mtrl_subspace::{spg_affinity, SpgConfig};

fn main() {
    section("Fig. 1: intersecting manifolds — pNN vs subspace learning");

    // ------ scene (a): the paper's two circles + noise ----------------
    let (points, labels) = two_circles(80, 1.0, 0.01, 10, 2015);
    let lifted = Mat::from_fn(points.rows(), 5, |i, j| {
        let (x, y) = (points[(i, 0)], points[(i, 1)]);
        [x, y, x * x, y * y, x * y][j]
    });
    let w_pnn = pnn_graph(&points, 5, WeightScheme::HeatKernel { sigma: -1.0 });
    let spg = spg_affinity(
        &lifted,
        &SpgConfig {
            gamma: 40.0,
            max_iter: 250,
            ..SpgConfig::default()
        },
    )
    .expect("spg");

    let n = points.rows();
    let near_intersection: Vec<usize> = (0..n)
        .filter(|&i| {
            labels[i] != NOISE_LABEL && {
                let (x, y) = (points[(i, 0)], points[(i, 1)]);
                ((x - 0.6).powi(2) + (y.abs() - 0.8).powi(2)).sqrt() < 0.25
            }
        })
        .collect();

    let cross = |weight: &dyn Fn(usize, usize) -> f64| -> f64 {
        let mut fr = Vec::new();
        for &i in &near_intersection {
            let (mut same, mut diff) = (0.0, 0.0);
            for j in 0..n {
                if j == i || labels[j] == NOISE_LABEL {
                    continue;
                }
                let w = weight(i, j);
                if labels[j] == labels[i] {
                    same += w;
                } else {
                    diff += w;
                }
            }
            if same + diff > 0.0 {
                fr.push(diff / (same + diff));
            }
        }
        mtrl_bench::mean(&fr)
    };
    let pnn_cross = cross(&|i, j| w_pnn.get(i, j));
    let spg_cross = cross(&|i, j| 0.5 * (spg.w[(i, j)] + spg.w[(j, i)]));

    // Distant same-manifold recovery.
    let (mut pairs, mut pnn_hit, mut spg_hit) = (0usize, 0usize, 0usize);
    for i in 0..n {
        for j in i + 1..n {
            if labels[i] != labels[j] || labels[i] == NOISE_LABEL {
                continue;
            }
            let d = mtrl_linalg::vecops::sq_dist(points.row(i), points.row(j)).sqrt();
            if d > 1.5 {
                pairs += 1;
                if w_pnn.get(i, j) > 0.0 {
                    pnn_hit += 1;
                }
                if spg.w[(i, j)] + spg.w[(j, i)] > 1e-6 {
                    spg_hit += 1;
                }
            }
        }
    }

    // ------ scene (b): union of linear subspaces -----------------------
    let (sub_pts, sub_labels) = union_of_subspaces(3, 2, 8, 40, 0.02, 7);
    let w_pnn_s = pnn_graph(&sub_pts, 5, WeightScheme::HeatKernel { sigma: -1.0 });
    let spg_s = spg_affinity(
        &sub_pts,
        &SpgConfig {
            gamma: 15.0,
            max_iter: 250,
            ..SpgConfig::default()
        },
    )
    .expect("spg subspaces");
    let purity = |f: &dyn Fn(usize, usize) -> f64| -> f64 {
        let (mut within, mut total) = (0.0, 0.0);
        for i in 0..sub_pts.rows() {
            for j in 0..sub_pts.rows() {
                if i == j {
                    continue;
                }
                let w = f(i, j);
                total += w;
                if sub_labels[i] == sub_labels[j] {
                    within += w;
                }
            }
        }
        if total > 0.0 {
            within / total
        } else {
            0.0
        }
    };
    let pnn_purity = purity(&|i, j| w_pnn_s.get(i, j));
    let spg_purity = purity(&|i, j| 0.5 * (spg_s.w[(i, j)] + spg_s.w[(j, i)]));

    print_table(
        &[
            "diagnostic",
            "pNN graph",
            "subspace learning",
            "paper's claim",
        ],
        &[
            vec![
                "circles: cross-manifold mass at intersection".into(),
                format!("{:.1}%", pnn_cross * 100.0),
                format!("{:.1}%", spg_cross * 100.0),
                "subspace lower".into(),
            ],
            vec![
                format!("circles: distant same-manifold pairs linked (of {pairs})"),
                format!("{pnn_hit}"),
                format!("{spg_hit}"),
                "subspace higher".into(),
            ],
            vec![
                "linear subspaces: within-class affinity mass".into(),
                format!("{:.1}%", pnn_purity * 100.0),
                format!("{:.1}%", spg_purity * 100.0),
                "subspace competitive".into(),
            ],
        ],
    );
    write_json(
        "fig1_manifold",
        &serde_json::json!({
            "circles": {
                "intersection_cross_mass": {"pnn": pnn_cross, "subspace": spg_cross},
                "distant_pairs": pairs,
                "distant_linked": {"pnn": pnn_hit, "subspace": spg_hit},
            },
            "linear_subspaces": {"within_mass": {"pnn": pnn_purity, "subspace": spg_purity}},
        }),
    );
}
