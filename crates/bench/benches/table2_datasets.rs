//! Table II — characteristics of the evaluation datasets.
//!
//! Prints the paper's raw counts next to the generated synthetic
//! counterparts at the active scale (see DESIGN.md §4 for the
//! substitution rationale).

use mtrl_bench::{paper, print_table, scale_from_env, scale_name, section, write_json};
use mtrl_datagen::datasets::{load, DatasetId};

fn main() {
    let scale = scale_from_env();
    section(&format!(
        "Table II: dataset characteristics (scale = {})",
        scale_name(scale)
    ));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (idx, id) in DatasetId::all().into_iter().enumerate() {
        let (name, classes, docs, terms, concepts) = paper::TABLE2[idx];
        let c = load(id, scale);
        rows.push(vec![
            id.short_name().to_string(),
            name.to_string(),
            format!("{classes}"),
            format!("{}", c.num_classes),
            format!("{docs}"),
            format!("{}", c.num_docs()),
            format!("{terms}"),
            format!("{}", c.num_terms()),
            format!("{concepts}"),
            format!("{}", c.num_concepts()),
        ]);
        json.push(serde_json::json!({
            "dataset": id.short_name(),
            "name": name,
            "paper": {"classes": classes, "documents": docs, "terms": terms, "concepts": concepts},
            "generated": {
                "classes": c.num_classes,
                "documents": c.num_docs(),
                "terms": c.num_terms(),
                "concepts": c.num_concepts(),
                "corrupted_docs": c.corrupted_docs.len(),
            },
        }));
    }
    print_table(
        &[
            "id", "name", "cls(p)", "cls(g)", "docs(p)", "docs(g)", "terms(p)", "terms(g)",
            "conc(p)", "conc(g)",
        ],
        &rows,
    );
    println!("\n(p) = paper Table II, (g) = generated at this scale.");
    println!("Class-size profiles (balanced / skewed / large) and the noise");
    println!("hierarchy (D1 cleanest, D3/D4 noisiest) follow the paper.");
    write_json("table2_datasets", &json);
}
