//! Fig. 2 — parameter sensitivity of RHCHME on R-Min20Max200 (D3).
//!
//! Sweeps λ (Laplacian weight), γ (subspace noise tolerance), α (ensemble
//! trade-off) and β (error-matrix weight), each with the others fixed at
//! their defaults — exactly the protocol of Sec. IV-E. Sweep-invariant
//! artifacts are cached (`rhchme::pipeline::Artifacts`): only the γ sweep
//! recomputes subspace learning.
//!
//! The paper's grids run on raw tf-idf matrices and an unnormalized
//! Laplacian; our conventions rescale λ and γ (see `RhchmeConfig` docs),
//! so the grids below are the paper's *shapes* transported to our scale.
//! Expected shapes: a stable plateau in λ once large enough, a mid-range
//! optimum in γ, best α near 1 (both ensemble members contribute), and a
//! broad optimum in β.

use mtrl_bench::{print_table, scale_from_env, scale_name, section, write_json};
use mtrl_datagen::datasets::{load, DatasetId};
use rhchme::pipeline::{Artifacts, PipelineParams};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    parameter: String,
    value: f64,
    fscore: f64,
    nmi: f64,
}

fn main() {
    let scale = scale_from_env();
    section(&format!(
        "Fig. 2: parameter sensitivity on {} (scale = {})",
        DatasetId::D3.paper_name(),
        scale_name(scale)
    ));
    let corpus = load(DatasetId::D3, scale);
    let params = PipelineParams::default();
    let max_iter = 60; // sweep budget; convergence is earlier in practice

    eprintln!("building shared artifacts…");
    let arts = Artifacts::new(&corpus, &params).expect("artifacts");
    let l_sub_default = arts
        .subspace_laplacian(params.gamma, params.spg_max_iter, params.seed)
        .expect("subspace");

    let mut points: Vec<SweepPoint> = Vec::new();
    let run = |l_sub: &mtrl_sparse::SparseBlockDiag, alpha: f64, lambda: f64, beta: f64| {
        let res = arts
            .run_rhchme_engine(l_sub, alpha, lambda, beta, max_iter, 1e-6, false)
            .expect("engine");
        (
            mtrl_metrics::fscore(&corpus.labels, &res.doc_labels),
            mtrl_metrics::nmi(&corpus.labels, &res.doc_labels),
        )
    };

    // λ sweep (paper grid {0.001 … 1000} → plateau for large λ).
    section("lambda sweep (gamma, alpha, beta at defaults)");
    let mut rows = Vec::new();
    for &lambda in &[0.0001, 0.001, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5] {
        let (f, n) = run(&l_sub_default, params.alpha, lambda, params.beta);
        rows.push(vec![
            format!("{lambda}"),
            format!("{f:.3}"),
            format!("{n:.3}"),
        ]);
        points.push(SweepPoint {
            parameter: "lambda".into(),
            value: lambda,
            fscore: f,
            nmi: n,
        });
        eprintln!("lambda={lambda}: F={f:.3} NMI={n:.3}");
    }
    print_table(&["lambda", "FScore", "NMI"], &rows);

    // γ sweep — recomputes the subspace Laplacian per value.
    section("gamma sweep (subspace learning noise tolerance)");
    let mut rows = Vec::new();
    for &gamma in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0] {
        let l_sub = arts
            .subspace_laplacian(gamma, params.spg_max_iter, params.seed)
            .expect("subspace");
        let (f, n) = run(&l_sub, params.alpha, params.lambda, params.beta);
        rows.push(vec![
            format!("{gamma}"),
            format!("{f:.3}"),
            format!("{n:.3}"),
        ]);
        points.push(SweepPoint {
            parameter: "gamma".into(),
            value: gamma,
            fscore: f,
            nmi: n,
        });
        eprintln!("gamma={gamma}: F={f:.3} NMI={n:.3}");
    }
    print_table(&["gamma", "FScore", "NMI"], &rows);

    // α sweep (paper grid 1/16 … 16, best near 1).
    section("alpha sweep (heterogeneous ensemble trade-off)");
    let mut rows = Vec::new();
    for &alpha in &[1.0 / 16.0, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let (f, n) = run(&l_sub_default, alpha, params.lambda, params.beta);
        rows.push(vec![
            format!("{alpha:.4}"),
            format!("{f:.3}"),
            format!("{n:.3}"),
        ]);
        points.push(SweepPoint {
            parameter: "alpha".into(),
            value: alpha,
            fscore: f,
            nmi: n,
        });
        eprintln!("alpha={alpha}: F={f:.3} NMI={n:.3}");
    }
    print_table(&["alpha", "FScore", "NMI"], &rows);

    // β sweep (paper grid 1 … 1000, best ≈ 50).
    section("beta sweep (sparse error matrix weight)");
    let mut rows = Vec::new();
    for &beta in &[1.0, 10.0, 20.0, 30.0, 40.0, 50.0, 80.0, 100.0, 1000.0] {
        let (f, n) = run(&l_sub_default, params.alpha, params.lambda, beta);
        rows.push(vec![
            format!("{beta}"),
            format!("{f:.3}"),
            format!("{n:.3}"),
        ]);
        points.push(SweepPoint {
            parameter: "beta".into(),
            value: beta,
            fscore: f,
            nmi: n,
        });
        eprintln!("beta={beta}: F={f:.3} NMI={n:.3}");
    }
    print_table(&["beta", "FScore", "NMI"], &rows);

    write_json("fig2_parameters", &points);
}
