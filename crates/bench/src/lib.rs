//! # mtrl-bench
//!
//! Harness utilities shared by the table/figure bench targets.
//!
//! Every table and figure in the paper's evaluation (Sec. IV) has a bench
//! target that regenerates it:
//!
//! | target | regenerates |
//! |---|---|
//! | `table2_datasets` | Table II (dataset characteristics) |
//! | `table3_table4_clustering` | Tables III & IV (FScore / NMI, 7 methods × 4 datasets) |
//! | `table5_runtime` | Table V (running time per method and dataset) |
//! | `fig1_manifold` | Fig. 1 (pNN vs subspace neighbours on intersecting manifolds) |
//! | `fig2_parameters` | Fig. 2 (λ, γ, α, β sensitivity on R-Min20Max200) |
//! | `fig3_convergence` | Fig. 3 (FScore/NMI vs iterations, all datasets) |
//! | `micro_*` | Criterion microbenches of the hot kernels |
//!
//! Run them all with `cargo bench -p mtrl-bench`, or one with
//! `cargo bench -p mtrl-bench --bench table3_table4_clustering`.
//!
//! The experiment scale is controlled by `MTRL_SCALE` (`tiny` / `small` /
//! `paper`, default `small`); each run also writes machine-readable JSON
//! to `target/bench-results/` for EXPERIMENTS.md.

use mtrl_datagen::datasets::Scale;
use serde::Serialize;
use std::io::Write;

/// Resolve the experiment scale from the `MTRL_SCALE` env var.
pub fn scale_from_env() -> Scale {
    match std::env::var("MTRL_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    }
}

/// Human-readable name of a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Print a section header.
pub fn section(title: &str) {
    let bar = "=".repeat(title.len().max(8));
    println!("\n{bar}\n{title}\n{bar}");
}

/// Print an aligned table: `headers` then rows of equally many cells.
/// Column widths adapt to content; output goes through one locked,
/// buffered writer (guide: lock + buffer stdout for repeated writes).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    fn write_row(out: &mut impl Write, widths: &[usize], cells: &[String]) {
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] + 2;
            let _ = write!(out, "{cell:>pad$}");
        }
        let _ = writeln!(out);
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    write_row(&mut out, &widths, &header_cells);
    let total: usize = widths.iter().map(|w| w + 2).sum();
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        write_row(&mut out, &widths, row);
    }
    let _ = out.flush();
}

/// Write a JSON result artifact under `target/bench-results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // best effort: benches must not fail on IO
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("\n[results written to {}]", path.display());
    }
}

/// Paper-reported numbers (Tables III–V) for side-by-side printing.
pub mod paper {
    /// Method names in the paper's row order.
    pub const METHODS: [&str; 7] = ["DR-T", "DR-C", "DR-TC", "SRC", "SNMTF", "RMC", "RHCHME"];

    /// Table III — FScore rows `[D1, D2, D3, D4]` per method.
    pub const FSCORE: [[f64; 4]; 7] = [
        [0.575, 0.501, 0.688, 0.576], // DR-T
        [0.426, 0.516, 0.608, 0.584], // DR-C
        [0.562, 0.526, 0.705, 0.596], // DR-TC
        [0.837, 0.714, 0.721, 0.763], // SRC
        [0.854, 0.741, 0.738, 0.797], // SNMTF
        [0.867, 0.758, 0.742, 0.803], // RMC
        [0.892, 0.777, 0.750, 0.813], // RHCHME
    ];

    /// Table IV — NMI rows `[D1, D2, D3, D4]` per method.
    pub const NMI: [[f64; 4]; 7] = [
        [0.508, 0.484, 0.682, 0.504], // DR-T
        [0.373, 0.502, 0.595, 0.513], // DR-C
        [0.492, 0.513, 0.698, 0.517], // DR-TC
        [0.822, 0.625, 0.709, 0.529], // SRC
        [0.849, 0.650, 0.728, 0.547], // SNMTF
        [0.854, 0.655, 0.740, 0.554], // RMC
        [0.861, 0.678, 0.760, 0.585], // RHCHME
    ];

    /// Table V — running time in 10³ seconds `[D1, D2, D3, D4]`.
    pub const RUNTIME_KS: [[f64; 4]; 7] = [
        [0.04, 0.05, 0.20, 0.41], // DR-T
        [0.03, 0.03, 0.14, 0.22], // DR-C
        [0.06, 0.07, 0.26, 0.51], // DR-TC
        [0.75, 0.83, 12.2, 29.3], // SRC
        [0.47, 0.54, 10.8, 24.6], // SNMTF
        [0.50, 0.58, 11.1, 25.4], // RMC
        [0.46, 0.51, 9.90, 22.8], // RHCHME
    ];

    /// Table II — dataset characteristics
    /// `(name, classes, documents, terms, concepts)`.
    pub const TABLE2: [(&str, usize, usize, usize, usize); 4] = [
        ("Multi5", 5, 500, 2000, 1667),
        ("Multi10", 10, 500, 2000, 1658),
        ("R-Min20Max200", 25, 1413, 2904, 2450),
        ("R-Top10", 10, 8023, 5146, 4109),
    ];
}

/// Serializable record of one method/dataset measurement.
#[derive(Debug, Clone, Serialize)]
pub struct MethodRecord {
    /// Method paper name.
    pub method: String,
    /// Dataset short name ("D1" …).
    pub dataset: String,
    /// Measured FScore.
    pub fscore: f64,
    /// Measured NMI.
    pub nmi: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Optimisation iterations.
    pub iterations: usize,
}

/// Pretty-print a mean column value.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_small() {
        // Cannot touch the env var safely in tests; just check mapping.
        assert_eq!(scale_name(Scale::Small), "small");
        assert_eq!(scale_name(Scale::Tiny), "tiny");
        assert_eq!(scale_name(Scale::Paper), "paper");
    }

    #[test]
    fn paper_tables_consistent() {
        // Sanity: RHCHME dominates every column of Table III/IV in the
        // paper — the invariant the reproduction is asked to match.
        for d in 0..4 {
            for m in 0..6 {
                assert!(paper::FSCORE[6][d] >= paper::FSCORE[m][d]);
                assert!(paper::NMI[6][d] >= paper::NMI[m][d]);
            }
        }
        assert_eq!(paper::METHODS.len(), 7);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
