//! Paired-sample gate on the observability layer's hot-loop overhead.
//!
//! ```text
//! obs_overhead [--tolerance 0.02] [--samples 21]
//! ```
//!
//! The obs contract says the instrumented engine and graph hot loops run
//! within 2% of the uninstrumented ones. Gating that via two *separate*
//! criterion runs (off-baseline, then `MTRL_OBS=1`) cannot work at a 2%
//! tolerance: minutes-apart process means on shared CI runners drift by
//! ±10% from scheduling noise alone — far above the signal. This bin
//! measures the delta the only way a 2% bar survives: the off and on
//! fits alternate *within one process* (`force_disable`/`force_enable`
//! around the same workload), so slow machine drift hits both arms
//! equally, and the gate compares paired medians rather than means, so
//! one descheduled sample cannot fail the build.
//!
//! Workloads are the gated hot loops themselves: the `micro_engine`
//! sparse multiplicative-update step (`n = 2000`, three types, 2%
//! relation density) and the `micro_graph` blocked pNN build
//! (`n = 1200, d = 64, p = 5`). Exit code 1 if either on/off median
//! ratio exceeds the tolerance.

use mtrl_graph::{pnn_graph_with_threads, WeightScheme};
use mtrl_linalg::block::stack_membership;
use mtrl_linalg::random::rand_uniform;
use mtrl_sparse::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhchme::engine::{run_engine, EngineConfig, GraphRegularizer};
use rhchme::kmeans::labels_to_membership;
use rhchme::MultiTypeData;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: obs_overhead [--tolerance 0.02] [--samples 21]";

/// The `micro_engine` three-type dataset at the tf-idf-like 2% density.
fn engine_workload() -> (
    MultiTypeData,
    mtrl_sparse::Csr,
    mtrl_linalg::Mat,
    EngineConfig,
) {
    const SIZES: [usize; 3] = [1200, 600, 200];
    const CLUSTERS: [usize; 3] = [8, 6, 4];
    let mut rng = StdRng::seed_from_u64(42);
    let mut relations = Vec::new();
    for (k, l) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let (rows, cols) = (SIZES[k], SIZES[l]);
        let mut coo = Coo::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen_range(0.0..1.0) < 0.02 {
                    coo.push(i, j, rng.gen_range(0.1..1.0));
                }
            }
        }
        relations.push((k, l, coo.to_csr()));
    }
    let data =
        MultiTypeData::new(SIZES.to_vec(), CLUSTERS.to_vec(), relations).expect("valid layout");
    let r = data.assemble_r_csr();
    let mut rng = StdRng::seed_from_u64(43);
    let blocks: Vec<mtrl_linalg::Mat> = data
        .cluster_counts()
        .iter()
        .zip(data.sizes())
        .map(|(&ck, &nk)| {
            let labels: Vec<usize> = (0..nk).map(|_| rng.gen_range(0..ck)).collect();
            labels_to_membership(&labels, ck, 0.2)
        })
        .collect();
    let g0 = stack_membership(&blocks);
    let cfg = EngineConfig {
        lambda: 0.0,
        beta: 10.0,
        use_error_matrix: true,
        l1_row_normalize: true,
        max_iter: 2,
        tol: 0.0,
        ..EngineConfig::default()
    };
    (data, r, g0, cfg)
}

/// Measurement of one hot loop: off/on medians plus the gated statistic.
struct Paired {
    off_median_ns: u64,
    on_median_ns: u64,
    /// Median of the per-pair on/off ratios — each pair's two runs are
    /// milliseconds apart, so slow machine drift cancels inside the
    /// pair, and the median discards pairs a descheduling spike hit.
    ratio: f64,
}

fn paired_measure(samples: usize, mut work: impl FnMut()) -> Paired {
    let mut time = |enabled: bool| -> u64 {
        if enabled {
            mtrl_obs::force_enable();
        } else {
            mtrl_obs::force_disable();
        }
        let t = Instant::now();
        work();
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    };
    // Warm both arms before sampling.
    time(false);
    time(true);
    let mut off = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    let mut ratios = Vec::with_capacity(samples);
    for i in 0..samples {
        // Alternate which arm goes first so a periodic disturbance
        // cannot systematically land on one of them.
        let (a, b) = if i % 2 == 0 {
            let a = time(false);
            (a, time(true))
        } else {
            let b = time(true);
            (time(false), b)
        };
        off.push(a);
        on.push(b);
        ratios.push(b as f64 / a.max(1) as f64);
    }
    mtrl_obs::force_disable();
    off.sort_unstable();
    on.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    Paired {
        off_median_ns: off[samples / 2],
        on_median_ns: on[samples / 2],
        ratio: ratios[samples / 2],
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.02f64;
    let mut samples = 21usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance = v,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => samples = v,
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (data, r, g0, cfg) = engine_workload();
    let graph_data = rand_uniform(1200, 64, 0.0, 1.0, 11);

    let legs: Vec<(&str, Paired)> = vec![
        (
            "engine_step_sparse_d002",
            paired_measure(samples, || {
                black_box(
                    run_engine(
                        black_box(&r),
                        &data,
                        &GraphRegularizer::None,
                        g0.clone(),
                        &cfg,
                    )
                    .expect("engine fit"),
                );
            }),
        ),
        (
            // Single-threaded: the gate measures instrumentation cost,
            // and a 2-thread build folds scheduler jitter into the
            // signal at exactly the scale the 2% bar resolves.
            "pnn_build_n1200_d64_p5",
            paired_measure(samples, || {
                black_box(pnn_graph_with_threads(
                    black_box(&graph_data),
                    5,
                    WeightScheme::Cosine,
                    1,
                ));
            }),
        ),
    ];

    let mut failed = false;
    println!(
        "{:<28}  {:>14}  {:>14}  {:>7}  ({} paired samples, tolerance {:.1}%)",
        "hot loop",
        "obs off (med)",
        "obs on (med)",
        "ratio",
        samples,
        tolerance * 100.0
    );
    for (name, p) in &legs {
        let verdict = if p.ratio > 1.0 + tolerance {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{:<28}  {:>12.3}ms  {:>12.3}ms  {:>6.3}x  {verdict}",
            name,
            p.off_median_ns as f64 / 1e6,
            p.on_median_ns as f64 / 1e6,
            p.ratio
        );
    }
    if failed {
        eprintln!(
            "\nobs overhead gate FAILED: instrumented hot loop exceeds \
             {:.1}% over the uninstrumented pair",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nobs overhead gate passed (tolerance {:.1}%)",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
