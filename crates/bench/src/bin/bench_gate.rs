//! CI benchmark regression gate.
//!
//! Compares a fresh `MTRL_BENCH_JSON` summary (see the vendored criterion
//! shim) against a baseline committed in the repository and exits
//! non-zero when any shared benchmark's mean regresses beyond the
//! tolerance:
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance 0.25]
//! ```
//!
//! Benchmarks present in only one file are reported but never fail the
//! gate (new benches appear before their baseline is refreshed; renamed
//! benches disappear from it).

use serde_json::Value;
use std::process::ExitCode;

/// One baseline/current pair.
struct Row {
    name: String,
    baseline_ns: f64,
    current_ns: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.25;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                eprintln!("--tolerance needs a numeric argument");
                return ExitCode::FAILURE;
            };
            tolerance = v;
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--tolerance 0.25]");
        return ExitCode::FAILURE;
    }
    let (baseline, current) = (&paths[0], &paths[1]);
    let base = match load_results(baseline) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read baseline {baseline}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cur = match load_results(current) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read current {current}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut rows = Vec::new();
    for (name, b) in &base {
        match cur.iter().find(|(n, _)| n == name).map(|(_, v)| *v) {
            Some(c) => rows.push(Row {
                name: name.clone(),
                baseline_ns: *b,
                current_ns: c,
            }),
            None => println!("warn: '{name}' in baseline but not in current run"),
        }
    }
    for (name, _) in &cur {
        if !base.iter().any(|(n, _)| n == name) {
            println!("note: '{name}' is new (no baseline); refresh the baseline to gate it");
        }
    }
    if rows.is_empty() {
        eprintln!("no shared benchmarks between {baseline} and {current}");
        return ExitCode::FAILURE;
    }

    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(8).max(8);
    println!(
        "{:<width$}  {:>12}  {:>12}  {:>8}",
        "bench", "baseline", "current", "ratio"
    );
    let mut failed = false;
    for r in &rows {
        let ratio = r.current_ns / r.baseline_ns;
        let verdict = if ratio > 1.0 + tolerance {
            failed = true;
            "REGRESSED"
        } else if ratio < 1.0 - tolerance {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<width$}  {:>10.1}ns  {:>10.1}ns  {:>7.2}x  {verdict}",
            r.name, r.baseline_ns, r.current_ns, ratio
        );
    }
    if failed {
        eprintln!(
            "\nbenchmark gate FAILED: at least one mean regressed more than {:.0}% — \
             investigate, or refresh the committed baseline if the change is intentional",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nbenchmark gate passed (tolerance {:.0}%)",
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}

/// Read the `results` map of a summary file as `(name, mean_ns)` pairs
/// in file order.
fn load_results(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("{e:?}"))?;
    let results = value
        .get("results")
        .ok_or_else(|| "missing 'results' object".to_string())?;
    let Value::Object(pairs) = results else {
        return Err("'results' is not an object".to_string());
    };
    let mut out = Vec::with_capacity(pairs.len());
    for (name, v) in pairs {
        let mean = v
            .as_f64()
            .ok_or_else(|| format!("'{name}' has a non-numeric mean"))?;
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!("'{name}' has a non-positive mean {mean}"));
        }
        out.push((name.clone(), mean));
    }
    Ok(out)
}
