//! ANN-vs-exact quality: the approximate graph layer must not move the
//! clustering quality the matrix gates.
//!
//! The recall gate (`recall_gate`) pins the *graph* level; these tests
//! pin the *quality* level — a cold RHCHME fit whose pNN graphs come
//! from the RP-forest index must land within 2 F/NMI points of the
//! exact-kernel reference on the same corpus, the acceptance bound the
//! large-shape scenarios extrapolate from.

use mtrl_ann::{GraphBackend, RpForestParams};
use mtrl_datagen::{CorpusConfig, CorruptionSpec};
use mtrl_eval::{quick_params, CorpusShape};
use rhchme::pipeline::{run_method, Method};

fn quality_delta(config: &CorpusConfig, seed: u64) -> (f64, f64) {
    let corpus = CorruptionSpec::clean().corpus(config, seed);
    let exact = run_method(&corpus, Method::Rhchme, &quick_params(seed)).unwrap();
    let mut ann_params = quick_params(seed);
    ann_params.graph_backend = GraphBackend::RpForest(RpForestParams::default());
    let ann = run_method(&corpus, Method::Rhchme, &ann_params).unwrap();
    let qe = exact.quality(&corpus.labels);
    let qa = ann.quality(&corpus.labels);
    ((qe.fscore - qa.fscore).abs(), (qe.nmi - qa.nmi).abs())
}

#[test]
fn ann_fit_matches_exact_fit_on_quick_shape() {
    let (df, dn) = quality_delta(&CorpusShape::Balanced3.config(), 11);
    assert!(df <= 0.02, "fscore delta {df}");
    assert!(dn <= 0.02, "nmi delta {dn}");
}

/// The extrapolation shape of the acceptance bound: ~n=5k objects
/// (1500 docs + vocab + concepts). Minutes of wall clock — run with
/// `cargo test -p mtrl-eval --release -- --ignored extrapolation`.
#[test]
#[ignore = "minutes-long extrapolation shape; run explicitly"]
fn ann_fit_matches_exact_fit_on_extrapolation_shape() {
    let config = CorpusConfig {
        docs_per_class: vec![500, 500, 500],
        vocab_size: 300,
        concept_count: 60,
        doc_len_range: (40, 70),
        background_frac: 0.25,
        topic_noise: 0.25,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 2,
        view_confusion: 0.25,
        seed: 0,
    };
    let (df, dn) = quality_delta(&config, 11);
    assert!(df <= 0.02, "fscore delta {df}");
    assert!(dn <= 0.02, "nmi delta {dn}");
}
