//! The declarative scenario registry: corpus shape × corruption × path.
//!
//! A [`Scenario`] names one cell of the robustness matrix the paper's
//! headline claims live in (Sec. IV): *which* corpus shape, under
//! *which* corruption axis and level, driven through *which* pipeline
//! path. The registry is plain data — the runner ([`crate::runner`])
//! executes a scenario identically whether it is invoked by the
//! `quality_report` bin, a test, or an example, and the committed
//! `QUALITY_*.json` baseline is reproducible because every input is
//! named here.

use mtrl_datagen::{CorpusConfig, CorruptionSpec};
use rhchme::pipeline::{Method, MethodSpec};
use rhchme::{GraphBackend, Precision};

/// How a scenario drives the system.
///
/// `ColdFit` speaks [`MethodSpec`] — the open method-dispatch type of
/// the redesigned API — so consensus-ensemble cells sit in the same
/// registry as the base methods. (`MethodSpec` carries ensemble knobs
/// with `f64` fields, so `EvalPath` is `Clone + PartialEq`, not
/// `Copy`/`Eq`; build base-method cells with [`EvalPath::cold_fit`].)
#[derive(Debug, Clone, PartialEq)]
pub enum EvalPath {
    /// Cold fit via [`mtrl_ensemble::run_spec`] (the universal
    /// dispatcher over [`MethodSpec`]); scored on the corpus's own
    /// documents.
    ColdFit(MethodSpec),
    /// Fit RHCHME on a stratified training split, export the model, and
    /// fold the held-out documents in through `mtrl_serve::Assigner` —
    /// gates the serving subsystem's quality.
    ServeFoldIn,
    /// Stream batches into a `mtrl_stream::StreamSession`, warm-refit,
    /// and score post-drift fold-in under the refreshed model — gates
    /// the streaming subsystem's quality.
    StreamWarmRefit,
}

impl EvalPath {
    /// Cold-fit path over anything that converts into a [`MethodSpec`]
    /// (a base [`Method`], an `EnsembleSpec`, or a spec itself).
    pub fn cold_fit(spec: impl Into<MethodSpec>) -> Self {
        EvalPath::ColdFit(spec.into())
    }

    /// Stable scenario-key fragment.
    pub fn key(&self) -> String {
        match self {
            EvalPath::ColdFit(spec) => spec.key().to_string(),
            EvalPath::ServeFoldIn => "serve_foldin".to_string(),
            EvalPath::StreamWarmRefit => "stream_warm".to_string(),
        }
    }
}

/// Corpus shape presets of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusShape {
    /// 3 balanced classes × 20 documents, 90 terms, 24 concepts — the
    /// quick matrix's workhorse.
    Balanced3,
    /// 5 skewed classes (6…18 documents), 120 terms, 36 concepts — the
    /// R-Min20Max200-like shape the parameter study sweeps.
    Skewed5,
    /// 3 balanced classes × 8 documents, 60 terms, 15 concepts — tiny,
    /// for unit/integration tests of the eval layer itself.
    Tiny3,
    /// 3 balanced classes × 220 documents, 150 terms, 40 concepts — the
    /// quick-mode cap of the large-shape family that gates the
    /// approximate-NN graph path end to end. The uncapped variant of
    /// this family (n ≥ 50k rows, graph build only — a dense RHCHME fit
    /// is not feasible there yet) lives in the `micro_ann` bench and the
    /// ignored extrapolation test, not the committed quick matrix.
    Large3,
}

impl CorpusShape {
    /// The generator configuration of this shape (uncorrupted, seed 0 —
    /// the runner overrides the seed and applies the corruption spec).
    pub fn config(self) -> CorpusConfig {
        match self {
            CorpusShape::Balanced3 => CorpusConfig {
                docs_per_class: vec![20, 20, 20],
                vocab_size: 90,
                concept_count: 24,
                doc_len_range: (40, 70),
                background_frac: 0.25,
                topic_noise: 0.25,
                concept_map_noise: 0.1,
                corrupt_frac: 0.0,
                // Multi-modal classes + complementary view confusion:
                // the manifold structure (Fig. 1) that separates the
                // method families — without it every method saturates
                // and the matrix gates nothing but ties.
                subtopics_per_class: 2,
                view_confusion: 0.25,
                seed: 0,
            },
            CorpusShape::Skewed5 => CorpusConfig {
                docs_per_class: vec![6, 9, 12, 15, 18],
                vocab_size: 120,
                concept_count: 36,
                doc_len_range: (40, 80),
                background_frac: 0.3,
                topic_noise: 0.3,
                concept_map_noise: 0.15,
                corrupt_frac: 0.0,
                subtopics_per_class: 1,
                view_confusion: 0.0,
                seed: 0,
            },
            CorpusShape::Tiny3 => CorpusConfig {
                docs_per_class: vec![8, 8, 8],
                vocab_size: 60,
                concept_count: 15,
                doc_len_range: (25, 40),
                background_frac: 0.25,
                topic_noise: 0.2,
                concept_map_noise: 0.1,
                corrupt_frac: 0.0,
                subtopics_per_class: 1,
                view_confusion: 0.0,
                seed: 0,
            },
            CorpusShape::Large3 => CorpusConfig {
                docs_per_class: vec![220, 220, 220],
                vocab_size: 150,
                concept_count: 40,
                doc_len_range: (40, 70),
                background_frac: 0.25,
                topic_noise: 0.25,
                concept_map_noise: 0.1,
                corrupt_frac: 0.0,
                subtopics_per_class: 2,
                view_confusion: 0.25,
                seed: 0,
            },
        }
    }
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique report key, `corruption/path` (e.g. `feature_noise/rhchme`).
    pub name: String,
    /// Corpus shape preset.
    pub shape: CorpusShape,
    /// Corruption axis and level.
    pub corruption: CorruptionSpec,
    /// Pipeline path under test.
    pub path: EvalPath,
    /// Neighbour-search backend for the path's pNN graphs (exact by
    /// default; approximate backends append their key to the name).
    pub backend: GraphBackend,
    /// Kernel storage precision for the path's hot loops (f64 by
    /// default; f32 appends `+f32` to the name).
    pub precision: Precision,
}

impl Scenario {
    /// Build a scenario with the canonical `corruption/path` key and the
    /// exact graph backend.
    pub fn new(shape: CorpusShape, corruption: CorruptionSpec, path: EvalPath) -> Self {
        Scenario {
            name: format!("{}/{}", corruption.kind.key(), path.key()),
            shape,
            corruption,
            path,
            backend: GraphBackend::Exact,
            precision: Precision::F64,
        }
    }

    /// Route the scenario's pNN graphs through `backend`. Non-exact
    /// backends get their key appended (`…/rhchme+rp_forest`) so exact
    /// and approximate cells coexist in one report.
    pub fn with_backend(mut self, backend: GraphBackend) -> Self {
        if !backend.is_exact() {
            self.name = format!("{}+{}", self.name, backend.key());
        }
        self.backend = backend;
        self
    }

    /// Run the scenario's hot kernels at `precision`. [`Precision::F32`]
    /// gets its key appended (`…/rhchme+f32`) so both precision modes
    /// coexist — and gate each other — in one report.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        if !precision.is_f64() {
            self.name = format!("{}+{}", self.name, precision.key());
        }
        self.precision = precision;
        self
    }
}

/// The fixed seed matrix of the committed quality baseline. Deliberately
/// *not* shifted by `MTRL_SEED`: the committed `QUALITY_*.json` numbers
/// are only reproducible under the seeds they were measured with (the
/// gate pins them via the meta header).
pub const QUICK_SEEDS: [u64; 3] = [11, 23, 37];

/// The four multi-type methods the quality matrix covers.
pub const HOCC_METHODS: [Method; 4] = [Method::Src, Method::Snmtf, Method::Rmc, Method::Rhchme];

/// The paper-faithful quick matrix: clean vs feature-noise vs
/// relation-corruption cold fits for all four HOCC methods *and* the
/// consensus ensemble over them, plus the serve fold-in and stream
/// warm-refit paths — every subsystem's quality is gated, not just the
/// cold fit.
///
/// Known tie: at this scale RMC's learned 6-candidate ensemble settles
/// into the same label partition as SNMTF's single cosine graph on
/// every cell (same k-means init, similar healthy optima), so the RMC
/// rows duplicate SNMTF's numbers. They are kept anyway: they gate
/// RMC's *own* pipeline — a regression in its ensemble-weight
/// re-optimisation that degenerates the combined Laplacian moves RMC's
/// labels on the mid-range noisy cells and trips the gate, even though
/// a healthy RMC is indistinguishable from SNMTF here. Scenarios where
/// the two methods genuinely diverge sit near basin boundaries, which
/// is exactly where a regression gate must not live.
pub fn quick_matrix() -> Vec<Scenario> {
    let corruptions = [
        CorruptionSpec::clean(),
        CorruptionSpec::feature_noise(0.2),
        CorruptionSpec::relation_corruption(0.15),
    ];
    let mut matrix = Vec::new();
    for corruption in corruptions {
        for method in HOCC_METHODS {
            matrix.push(Scenario::new(
                CorpusShape::Balanced3,
                corruption,
                EvalPath::cold_fit(method),
            ));
        }
        // The consensus-ensemble cell of the same corruption column: the
        // quality gate pins it against the best base-method sibling, so
        // a merge/generator regression that erases the ensemble's
        // robustness margin trips CI.
        matrix.push(Scenario::new(
            CorpusShape::Balanced3,
            corruption,
            EvalPath::cold_fit(MethodSpec::ensemble()),
        ));
    }
    matrix.push(Scenario::new(
        CorpusShape::Balanced3,
        CorruptionSpec::clean(),
        EvalPath::ServeFoldIn,
    ));
    matrix.push(Scenario::new(
        CorpusShape::Balanced3,
        CorruptionSpec::drift(0.4),
        EvalPath::StreamWarmRefit,
    ));
    // The large-shape ANN cells: the same cold-fit + fold-in paths, but
    // with the pNN graphs built through the RP-forest index on the
    // quick-capped large shape — the approximate graph layer is quality-
    // gated end to end, not just recall-gated.
    let ann = GraphBackend::RpForest(mtrl_ann::RpForestParams::default());
    matrix.push(
        Scenario::new(
            CorpusShape::Large3,
            CorruptionSpec::clean(),
            EvalPath::cold_fit(Method::Rhchme),
        )
        .with_backend(ann),
    );
    matrix.push(
        Scenario::new(
            CorpusShape::Large3,
            CorruptionSpec::clean(),
            EvalPath::ServeFoldIn,
        )
        .with_backend(ann),
    );
    // The f32 cells: the two heaviest RHCHME cold fits re-run with the
    // f32-storage kernel backend. The quality gate pins them within the
    // shared tolerance of their f64 siblings, so a precision regression
    // (accumulator narrowed to f32, centring dropped, …) trips CI as a
    // quality loss rather than hiding behind "approximate anyway".
    matrix.push(
        Scenario::new(
            CorpusShape::Balanced3,
            CorruptionSpec::clean(),
            EvalPath::cold_fit(Method::Rhchme),
        )
        .with_precision(Precision::F32),
    );
    matrix.push(
        Scenario::new(
            CorpusShape::Large3,
            CorruptionSpec::clean(),
            EvalPath::cold_fit(Method::Rhchme),
        )
        .with_backend(ann)
        .with_precision(Precision::F32),
    );
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_methods_and_paths() {
        let m = quick_matrix();
        assert_eq!(m.len(), 21);
        for method in HOCC_METHODS {
            assert!(
                m.iter()
                    .filter(|s| s.path == EvalPath::cold_fit(method))
                    .count()
                    >= 3,
                "{method:?} missing corruption coverage"
            );
        }
        // The consensus-ensemble cells cover every corruption column.
        for cell in [
            "clean/ensemble",
            "feature_noise/ensemble",
            "relation_corruption/ensemble",
        ] {
            assert!(m.iter().any(|s| s.name == cell), "missing {cell}");
        }
        assert!(m.iter().any(|s| s.path == EvalPath::ServeFoldIn));
        assert!(m.iter().any(|s| s.path == EvalPath::StreamWarmRefit));
        // The large-shape ANN cells gate the approximate graph path.
        let ann: Vec<_> = m.iter().filter(|s| !s.backend.is_exact()).collect();
        assert_eq!(ann.len(), 3);
        assert!(ann.iter().all(|s| s.shape == CorpusShape::Large3));
        assert!(ann.iter().any(|s| s.name == "clean/rhchme+rp_forest"));
        assert!(ann.iter().any(|s| s.name == "clean/serve_foldin+rp_forest"));
        // The f32 cells gate the mixed-precision kernel backend against
        // their f64 siblings.
        let f32s: Vec<_> = m.iter().filter(|s| !s.precision.is_f64()).collect();
        assert_eq!(f32s.len(), 2);
        assert!(f32s.iter().any(|s| s.name == "clean/rhchme+f32"));
        assert!(f32s.iter().any(|s| s.name == "clean/rhchme+rp_forest+f32"));
    }

    #[test]
    fn scenario_keys_are_unique() {
        let m = quick_matrix();
        for (i, a) in m.iter().enumerate() {
            for b in &m[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn keys_are_stable() {
        let s = Scenario::new(
            CorpusShape::Balanced3,
            CorruptionSpec::feature_noise(0.2),
            EvalPath::cold_fit(Method::Rhchme),
        );
        assert_eq!(s.name, "feature_noise/rhchme");
        let s = Scenario::new(
            CorpusShape::Balanced3,
            CorruptionSpec::drift(0.4),
            EvalPath::StreamWarmRefit,
        );
        assert_eq!(s.name, "drift/stream_warm");
        assert_eq!(EvalPath::cold_fit(Method::DrTC).key(), "dr_tc");
        assert_eq!(EvalPath::cold_fit(MethodSpec::ensemble()).key(), "ensemble");
    }

    #[test]
    fn shapes_generate() {
        for shape in [
            CorpusShape::Balanced3,
            CorpusShape::Skewed5,
            CorpusShape::Tiny3,
            CorpusShape::Large3,
        ] {
            let c = CorruptionSpec::clean().corpus(&shape.config(), 5);
            assert!(c.num_docs() >= 24);
            assert!(c.num_classes >= 3);
        }
    }
}
