//! Shared report plumbing: metadata stamps, summary IO, markdown tables.
//!
//! Both gated report families — the perf summaries (`BENCH_*.json`,
//! written by the vendored criterion shim) and the quality reports
//! (`QUALITY_*.json`, written by [`QualityReport`]) — carry the same
//! `meta` header:
//!
//! ```json
//! "meta": {
//!   "git_sha": "a63530c",            // informational
//!   "quick": true,                   // quick-mode marker — gated
//!   "target_features": "avx2,fma"    // CPU-flag marker — gated
//! }
//! ```
//!
//! A gate refuses to compare two summaries whose `quick` or
//! `target_features` fields disagree: means measured under different
//! sample budgets or instruction sets are not comparable (see ROADMAP's
//! perf-baseline note), and a silent comparison produces bogus verdicts.
//! `git_sha` is informational — baselines are *supposed* to come from an
//! older commit.
//!
//! Quality reports additionally record the seed matrix, which the gate
//! also pins: quality means over different seed sets are different
//! experiments.

use serde_json::Value;

/// Schema tag of quality reports.
pub const QUALITY_SCHEMA: &str = "mtrl-quality-report/v1";

/// Schema tag of bench summaries (written by the criterion shim).
pub const BENCH_SCHEMA: &str = "mtrl-bench-summary/v1";

/// The metadata header shared by bench and quality summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportMeta {
    /// Commit the report was generated from (informational).
    pub git_sha: String,
    /// Whether the run used the reduced quick budget.
    pub quick: bool,
    /// Comma-joined CPU features the binary was compiled for.
    pub target_features: String,
    /// Seed matrix of a quality run (empty for bench summaries).
    pub seeds: Vec<u64>,
}

impl ReportMeta {
    /// Stamp a meta header for a run of this process: best-effort git
    /// sha, the compile-time CPU features, and the given quick marker
    /// and seed set.
    pub fn stamp(quick: bool, seeds: &[u64]) -> Self {
        ReportMeta {
            git_sha: git_sha(),
            quick,
            target_features: target_features(),
            seeds: seeds.to_vec(),
        }
    }

    /// Parse the `meta` object of a summary, if present.
    pub fn from_value(root: &Value) -> Option<Self> {
        let meta = root.get("meta")?;
        Some(ReportMeta {
            git_sha: meta
                .get("git_sha")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            quick: meta.get("quick").and_then(Value::as_bool).unwrap_or(false),
            target_features: meta
                .get("target_features")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            seeds: meta
                .get("seeds")
                .and_then(Value::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(|v| v.as_f64())
                        .map(|f| f as u64)
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Render the header as ordered JSON fields (without braces).
    pub fn json_fields(&self) -> String {
        let mut out = format!(
            "\"git_sha\": {}, \"quick\": {}, \"target_features\": {}",
            json_string(&self.git_sha),
            self.quick,
            json_string(&self.target_features),
        );
        if !self.seeds.is_empty() {
            let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!(", \"seeds\": [{}]", seeds.join(", ")));
        }
        out
    }
}

/// Best-effort short git sha of the working tree (`unknown` outside a
/// repository or without a `git` binary).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The compile-time CPU features the hot kernels depend on, as a stable
/// comma-joined string. `avx2,fma` under both `target-cpu=native` (on
/// any recent x86) and CI's pinned `x86-64-v3`; empty under the generic
/// baseline — exactly the stale-flag build whose numbers must not be
/// compared against an FMA baseline.
pub fn target_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(target_feature = "avx2") {
        feats.push("avx2");
    }
    if cfg!(target_feature = "fma") {
        feats.push("fma");
    }
    feats.join(",")
}

/// A malformed `meta.seeds` array (present but with non-integer
/// entries), which the lossy `ReportMeta` parse would otherwise turn
/// into an empty seed set — silently disabling the seed-matrix pin.
fn malformed_seeds(root: &Value) -> Option<String> {
    let seeds = root.get("meta")?.get("seeds")?;
    let Some(arr) = seeds.as_array() else {
        return Some(format!("'seeds' is a {}, not an array", seeds.kind()));
    };
    for v in arr {
        match v.as_f64() {
            Some(f) if f >= 0.0 && f == f.trunc() && f < 9e15 => {}
            _ => return Some(format!("'seeds' has a non-integer entry ({})", v.kind())),
        }
    }
    None
}

/// Check that two summaries were produced under comparable conditions.
///
/// Returns human-readable warnings (missing headers — legacy summaries)
/// on success.
///
/// # Errors
/// Returns a message naming the mismatched field when `quick`,
/// `target_features` or (when both record one) the seed matrix
/// disagree, or when either side's seed array is malformed.
pub fn check_meta(base: &Value, current: &Value) -> Result<Vec<String>, String> {
    for (label, root) in [("baseline", base), ("current", current)] {
        if let Some(problem) = malformed_seeds(root) {
            return Err(format!("{label} meta header is malformed: {problem}"));
        }
    }
    let (b, c) = (
        ReportMeta::from_value(base),
        ReportMeta::from_value(current),
    );
    match (b, c) {
        (Some(b), Some(c)) => {
            if b.quick != c.quick {
                return Err(format!(
                    "quick-mode marker mismatch: baseline quick={} vs current quick={} — \
                     means from different sample budgets are not comparable; rerun with \
                     matching MTRL_BENCH_QUICK / --full settings or refresh the baseline",
                    b.quick, c.quick
                ));
            }
            if b.target_features != c.target_features {
                return Err(format!(
                    "target-cpu feature mismatch: baseline [{}] vs current [{}] — \
                     numbers are only comparable between builds with the same target-cpu \
                     flags; rebuild with matching RUSTFLAGS or refresh the baseline",
                    b.target_features, c.target_features
                ));
            }
            if !b.seeds.is_empty() && !c.seeds.is_empty() && b.seeds != c.seeds {
                return Err(format!(
                    "seed matrix mismatch: baseline {:?} vs current {:?} — quality means \
                     over different seed sets are different experiments",
                    b.seeds, c.seeds
                ));
            }
            Ok(Vec::new())
        }
        (b, c) => {
            let mut warnings = Vec::new();
            if b.is_none() {
                warnings.push("baseline has no meta header (legacy summary); flag/quick-mode staleness cannot be checked".to_string());
            }
            if c.is_none() {
                warnings.push("current summary has no meta header; flag/quick-mode staleness cannot be checked".to_string());
            }
            Ok(warnings)
        }
    }
}

/// Require the two `results` key sets to be identical and non-empty,
/// naming every missing key.
///
/// # Errors
/// Returns a message listing the keys present in only one side, or a
/// message when there is nothing to compare at all (a gate over zero
/// entries must not report success).
pub fn check_entry_sets(base_keys: &[String], current_keys: &[String]) -> Result<(), String> {
    if base_keys.is_empty() && current_keys.is_empty() {
        return Err(
            "no entries to compare: both summaries have empty 'results' sets — \
             a gate over nothing must not pass"
                .to_string(),
        );
    }
    let missing_in_current: Vec<&String> = base_keys
        .iter()
        .filter(|k| !current_keys.contains(k))
        .collect();
    let missing_in_baseline: Vec<&String> = current_keys
        .iter()
        .filter(|k| !base_keys.contains(k))
        .collect();
    if missing_in_current.is_empty() && missing_in_baseline.is_empty() {
        return Ok(());
    }
    let mut msg = String::from("baseline and current summaries disagree on entry sets:");
    for k in &missing_in_current {
        msg.push_str(&format!(
            "\n  '{k}' is in the baseline but missing from the current run"
        ));
    }
    for k in &missing_in_baseline {
        msg.push_str(&format!(
            "\n  '{k}' is in the current run but has no baseline (refresh the committed baseline to gate it)"
        ));
    }
    msg.push_str(
        "\nrefresh the committed baseline in the same change that adds or renames entries",
    );
    Err(msg)
}

/// Render a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "ragged markdown row");
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Append markdown to the file named by `$GITHUB_STEP_SUMMARY` (the CI
/// job-summary panel); a no-op when the variable is unset (local runs).
pub fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{markdown}");
    }
}

/// Load and parse a JSON summary file.
///
/// # Errors
/// Returns a message naming the path on IO or parse failure.
pub fn load_summary(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Escape a string into a JSON literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Mean and (sample) standard deviation of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Mean across the seed matrix.
    pub mean: f64,
    /// Sample standard deviation (0 for a single seed).
    pub sd: f64,
}

impl Stat {
    /// Aggregate a slice of per-seed values.
    ///
    /// # Panics
    /// Panics on an empty slice (a scenario always has ≥ 1 seed).
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no values to aggregate");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let sd = if values.len() < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Stat { mean, sd }
    }
}

/// Aggregated quality of one scenario across the seed matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// Scenario key (`corruption/method` or `path/corruption`).
    pub name: String,
    /// FScore across seeds.
    pub fscore: Stat,
    /// NMI across seeds.
    pub nmi: Stat,
    /// Adjusted Rand index across seeds.
    pub ari: Stat,
    /// How many seeds the stats aggregate.
    pub seeds: usize,
}

/// A versioned, metadata-stamped quality report (`QUALITY_*.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Provenance header.
    pub meta: ReportMeta,
    /// Per-scenario aggregates, in registry order.
    pub scenarios: Vec<ScenarioStats>,
}

impl QualityReport {
    /// Serialize in the stable on-disk layout (deterministic field and
    /// scenario order, shortest-round-trip floats).
    pub fn to_json(&self) -> String {
        let mut body = format!(
            "{{\n  \"schema\": {},\n  \"meta\": {{ {} }},\n  \"results\": {{",
            json_string(QUALITY_SCHEMA),
            self.meta.json_fields()
        );
        for (idx, s) in self.scenarios.iter().enumerate() {
            if idx > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "\n    {}: {{ \"fscore_mean\": {}, \"fscore_sd\": {}, \
                 \"nmi_mean\": {}, \"nmi_sd\": {}, \"ari_mean\": {}, \"ari_sd\": {}, \
                 \"seeds\": {} }}",
                json_string(&s.name),
                fmt_f64(s.fscore.mean),
                fmt_f64(s.fscore.sd),
                fmt_f64(s.nmi.mean),
                fmt_f64(s.nmi.sd),
                fmt_f64(s.ari.mean),
                fmt_f64(s.ari.sd),
                s.seeds
            ));
        }
        body.push_str("\n  }\n}\n");
        body
    }

    /// Parse a report produced by [`Self::to_json`].
    ///
    /// # Errors
    /// Returns a message on malformed JSON, a wrong schema tag, or a
    /// missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| format!("{e:?}"))?;
        Self::from_value(&value)
    }

    /// Parse a report from an already-loaded value tree.
    ///
    /// # Errors
    /// Returns a message on a wrong schema tag or a missing field.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing 'schema' tag".to_string())?;
        if schema != QUALITY_SCHEMA {
            return Err(format!(
                "schema mismatch: expected '{QUALITY_SCHEMA}', found '{schema}'"
            ));
        }
        let meta =
            ReportMeta::from_value(value).ok_or_else(|| "missing 'meta' header".to_string())?;
        let results = value
            .get("results")
            .ok_or_else(|| "missing 'results' object".to_string())?;
        let Value::Object(pairs) = results else {
            return Err("'results' is not an object".to_string());
        };
        let mut scenarios = Vec::with_capacity(pairs.len());
        for (name, v) in pairs {
            let field = |key: &str| -> Result<f64, String> {
                v.get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("scenario '{name}' lacks numeric '{key}'"))
            };
            scenarios.push(ScenarioStats {
                name: name.clone(),
                fscore: Stat {
                    mean: field("fscore_mean")?,
                    sd: field("fscore_sd")?,
                },
                nmi: Stat {
                    mean: field("nmi_mean")?,
                    sd: field("nmi_sd")?,
                },
                ari: Stat {
                    mean: field("ari_mean")?,
                    sd: field("ari_sd")?,
                },
                seeds: field("seeds")? as usize,
            });
        }
        Ok(QualityReport { meta, scenarios })
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{}.0", v.trunc() as i64)
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> QualityReport {
        QualityReport {
            meta: ReportMeta {
                git_sha: "abc1234".into(),
                quick: true,
                target_features: "avx2,fma".into(),
                seeds: vec![11, 23, 37],
            },
            scenarios: vec![
                ScenarioStats {
                    name: "clean/rhchme".into(),
                    fscore: Stat {
                        mean: 0.9125,
                        sd: 0.01,
                    },
                    nmi: Stat {
                        mean: 0.85,
                        sd: 0.02,
                    },
                    ari: Stat { mean: 0.8, sd: 0.0 },
                    seeds: 3,
                },
                ScenarioStats {
                    name: "drift/stream_warm".into(),
                    fscore: Stat {
                        mean: 0.75,
                        sd: 0.0,
                    },
                    nmi: Stat { mean: 0.7, sd: 0.0 },
                    ari: Stat { mean: 0.6, sd: 0.0 },
                    seeds: 3,
                },
            ],
        }
    }

    #[test]
    fn quality_report_round_trips() {
        let r = report();
        let text = r.to_json();
        let back = QualityReport::from_json(&text).unwrap();
        assert_eq!(r, back);
        // Bit-exact float round-trip (shortest {:?} formatting).
        assert_eq!(back.scenarios[0].fscore.mean, 0.9125);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let text = r#"{"schema": "something-else/v1", "meta": {}, "results": {}}"#;
        let err = QualityReport::from_json(text).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn from_json_names_missing_field() {
        let text = format!(
            "{{\"schema\": {}, \"meta\": {{\"git_sha\": \"x\", \"quick\": false, \
             \"target_features\": \"\"}}, \"results\": {{\"a/b\": {{\"fscore_mean\": 0.5}}}}}}",
            json_string(QUALITY_SCHEMA)
        );
        let err = QualityReport::from_json(&text).unwrap_err();
        assert!(err.contains("'a/b'") && err.contains("fscore_sd"), "{err}");
    }

    #[test]
    fn meta_mismatch_is_detected() {
        let mk = |quick: bool, feats: &str| -> Value {
            serde_json::from_str(&format!(
                "{{\"meta\": {{\"git_sha\": \"x\", \"quick\": {quick}, \
                 \"target_features\": \"{feats}\"}}, \"results\": {{}}}}"
            ))
            .unwrap()
        };
        assert!(check_meta(&mk(true, "avx2,fma"), &mk(true, "avx2,fma"))
            .unwrap()
            .is_empty());
        let err = check_meta(&mk(true, "avx2,fma"), &mk(false, "avx2,fma")).unwrap_err();
        assert!(err.contains("quick-mode"), "{err}");
        let err = check_meta(&mk(true, "avx2,fma"), &mk(true, "")).unwrap_err();
        assert!(err.contains("target-cpu"), "{err}");
    }

    #[test]
    fn seed_matrix_mismatch_is_detected() {
        let mk = |seeds: &str| -> Value {
            serde_json::from_str(&format!(
                "{{\"meta\": {{\"git_sha\": \"x\", \"quick\": true, \
                 \"target_features\": \"fma\", \"seeds\": {seeds}}}}}"
            ))
            .unwrap()
        };
        assert!(check_meta(&mk("[1, 2]"), &mk("[1, 2]")).is_ok());
        let err = check_meta(&mk("[1, 2]"), &mk("[1, 3]")).unwrap_err();
        assert!(err.contains("seed matrix"), "{err}");
    }

    #[test]
    fn missing_meta_warns_but_passes() {
        let legacy: Value = serde_json::from_str("{\"results\": {}}").unwrap();
        let stamped: Value = serde_json::from_str(
            "{\"meta\": {\"git_sha\": \"x\", \"quick\": true, \"target_features\": \"fma\"}}",
        )
        .unwrap();
        let warnings = check_meta(&legacy, &stamped).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("baseline has no meta"));
    }

    #[test]
    fn entry_set_diff_names_keys() {
        let base = vec!["a".to_string(), "b".to_string()];
        let cur = vec!["b".to_string(), "c".to_string()];
        let err = check_entry_sets(&base, &cur).unwrap_err();
        assert!(
            err.contains("'a'") && err.contains("missing from the current run"),
            "{err}"
        );
        assert!(
            err.contains("'c'") && err.contains("has no baseline"),
            "{err}"
        );
        assert!(check_entry_sets(&base, &base).is_ok());
    }

    #[test]
    fn empty_entry_sets_are_an_error() {
        let err = check_entry_sets(&[], &[]).unwrap_err();
        assert!(err.contains("no entries to compare"), "{err}");
    }

    #[test]
    fn malformed_seed_array_is_an_error() {
        let good: Value = serde_json::from_str(
            "{\"meta\": {\"git_sha\": \"x\", \"quick\": true, \
             \"target_features\": \"fma\", \"seeds\": [1, 2]}}",
        )
        .unwrap();
        let stringy: Value = serde_json::from_str(
            "{\"meta\": {\"git_sha\": \"x\", \"quick\": true, \
             \"target_features\": \"fma\", \"seeds\": [\"11\", \"23\"]}}",
        )
        .unwrap();
        let err = check_meta(&good, &stringy).unwrap_err();
        assert!(
            err.contains("current meta header is malformed") && err.contains("non-integer"),
            "{err}"
        );
        let not_array: Value = serde_json::from_str(
            "{\"meta\": {\"git_sha\": \"x\", \"quick\": true, \
             \"target_features\": \"fma\", \"seeds\": 7}}",
        )
        .unwrap();
        let err = check_meta(&not_array, &good).unwrap_err();
        assert!(
            err.contains("baseline") && err.contains("not an array"),
            "{err}"
        );
    }

    #[test]
    fn stat_aggregation() {
        let s = Stat::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.sd - 1.0).abs() < 1e-12);
        let single = Stat::from_values(&[0.5]);
        assert_eq!(single.sd, 0.0);
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["scenario", "F"],
            &[vec!["clean/src".into(), "0.9".into()]],
        );
        assert_eq!(md.lines().count(), 3);
        assert!(md.contains("| clean/src | 0.9 |"));
    }

    #[test]
    fn target_features_reports_compiled_features() {
        // Built with .cargo/config.toml's target-cpu=native (or CI's
        // x86-64-v3), both of which include fma on this project's
        // supported hosts; the exact content matters less than stability.
        assert_eq!(target_features(), target_features());
    }
}
