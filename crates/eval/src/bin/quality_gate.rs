//! CI quality regression gate.
//!
//! ```text
//! quality_gate <baseline.json> <current.json> [--tolerance 0.02]
//! ```
//!
//! Diffs a fresh `quality_report` output against the committed
//! `QUALITY_*.json` baseline and exits non-zero when any scenario's
//! mean FScore or NMI drops by more than the tolerance. Mismatched
//! entry sets or provenance headers (quick marker, target-cpu
//! features, seed matrix) are configuration errors and also fail —
//! the gate never silently skips an entry. A markdown comparison table
//! is appended to `$GITHUB_STEP_SUMMARY` when set.

use mtrl_eval::gate::quality_gate;
use mtrl_eval::report::{append_step_summary, load_summary};
use mtrl_eval::QUALITY_TOLERANCE;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = QUALITY_TOLERANCE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                eprintln!("--tolerance needs a numeric argument");
                return ExitCode::FAILURE;
            };
            tolerance = v;
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: quality_gate <baseline.json> <current.json> [--tolerance 0.02]");
        return ExitCode::FAILURE;
    }
    let (base, cur) = match (load_summary(&paths[0]), load_summary(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match quality_gate(&base, &cur, tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "quality gate cannot compare {} vs {}:\n{e}",
                paths[0], paths[1]
            );
            append_step_summary(&format!(
                "### Quality gate\n\n**configuration error**\n\n```\n{e}\n```"
            ));
            return ExitCode::FAILURE;
        }
    };
    for w in &report.warnings {
        println!("warn: {w}");
    }
    print!("{}", report.text);
    append_step_summary(&report.markdown);
    if !report.passed() {
        eprintln!("\nquality gate FAILED:");
        for f in &report.failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "investigate, or refresh the committed baseline (quality_report) if the \
             quality change is intentional"
        );
        return ExitCode::FAILURE;
    }
    println!("\nquality gate passed (tolerance {tolerance:.3} mean FScore/NMI per scenario)");
    ExitCode::SUCCESS
}
