//! Drive a fit → serve → stream pass with `mtrl-obs` on and export the
//! collected telemetry.
//!
//! ```text
//! obs_report <manifest.json> [--prom <metrics.prom>]
//! ```
//!
//! The run is the observability layer's end-to-end exercise: a cold
//! RHCHME fit on an eval-shape corpus (engine per-iteration telemetry,
//! graph-build and fit spans), a fold-in pass of the held-out documents
//! through a live [`mtrl_serve::ServeEngine`] (latency histograms), an
//! HTTP flood through a deliberately tiny [`mtrl_gateway::Gateway`]
//! (request/shed/coalesce/byte counters), and a short drifting stream
//! session with a confidence floor that deterministically trips the
//! drift trigger (stream events, refit counters). Everything lands in
//! one `mtrl-obs-manifest/v1` JSON; `--prom` additionally writes the
//! same registry as a Prometheus text-format dump. The run fails if
//! the manifest is missing any `gateway.*` counter.

use mtrl_datagen::split_corpus;
use mtrl_datagen::stream::{generate_stream, StreamConfig};
use mtrl_eval::{quick_params, rhchme_config, CorpusShape};
use mtrl_gateway::{Gateway, GatewayConfig};
use mtrl_serve::{AssignRequest, ServeEngine, SparseVec};
use mtrl_stream::{RefreshPolicy, StreamSession};
use rhchme::rhchme::Rhchme;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: obs_report <manifest.json> [--prom <metrics.prom>]";

fn serve_leg() -> Result<Arc<ServeEngine>, String> {
    let params = quick_params(11);
    let mut config = CorpusShape::Balanced3.config();
    config.seed = 11;
    let corpus = mtrl_datagen::corpus::generate(&config);
    let (train, heldout) = split_corpus(&corpus, 0.35, 11);
    let rhchme = Rhchme::new(rhchme_config(&params));
    let result = rhchme.fit_corpus(&train).map_err(|e| e.to_string())?;
    let model = rhchme
        .export_model(&result, &train)
        .map_err(|e| e.to_string())?;

    let engine = Arc::new(ServeEngine::new(2));
    engine.register("obs", model).map_err(|e| e.to_string())?;
    let docs: Vec<SparseVec> = heldout
        .iter()
        .map(|d| SparseVec::new(d.indices.clone(), d.values.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let pending: Vec<_> = docs
        .chunks(8)
        .map(|chunk| engine.submit(AssignRequest::new("obs").docs(chunk.to_vec())))
        .collect();
    for p in pending {
        p.wait().map_err(|e| e.to_string())?;
    }
    let stats = engine.stats();
    println!(
        "serve leg: {} docs in {} requests, latency p50 {:?} / p99 {:?} / max {:?}",
        stats.documents,
        stats.requests,
        stats.quantile(0.5),
        stats.quantile(0.99),
        stats.max_latency()
    );
    Ok(engine)
}

/// One-shot HTTP POST of a single-doc assign; returns the status code.
fn gateway_post(addr: std::net::SocketAddr) -> Result<u16, String> {
    let body = r#"{"docs":[{"indices":[1,3],"values":[1.0,0.5]}]}"#;
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    write!(
        stream,
        "POST /v1/models/obs/assign HTTP/1.1\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {response:?}"))
}

/// Flood a deliberately tiny gateway over loopback HTTP so every
/// `gateway.*` counter moves: the 10 ms service delay stalls dispatch,
/// so concurrent arrivals first fill the 2-slot queue (one coalesced
/// batch) and then shed with 429.
fn gateway_leg(engine: Arc<ServeEngine>) -> Result<(), String> {
    let gateway = Gateway::bind(
        engine,
        GatewayConfig {
            wait_window: Duration::from_millis(5),
            queue_capacity: 2,
            service_delay: Some(Duration::from_millis(10)),
            ..GatewayConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = gateway.addr();

    // The flood is overwhelmingly likely to both coalesce and shed in
    // one round; retry a few times so scheduler jitter cannot leave a
    // counter at zero.
    for _ in 0..5 {
        let clients: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || gateway_post(addr)))
            .collect();
        for c in clients {
            let status = c.join().map_err(|_| "client panicked")??;
            if status != 200 && status != 429 {
                return Err(format!("unexpected gateway status {status}"));
            }
        }
        let stats = gateway.stats();
        if stats.shed > 0 && stats.coalesced_batches > 0 {
            break;
        }
    }

    let stats = gateway.stats();
    println!(
        "gateway leg: {} requests, {} shed, {} coalesced batches, {} bytes, \
         latency p50 {:?} / p99 {:?}",
        stats.requests,
        stats.shed,
        stats.coalesced_batches,
        stats.bytes,
        stats.quantile(0.5),
        stats.quantile(0.99)
    );

    let counters: std::collections::HashMap<String, u64> =
        mtrl_obs::global().counters_snapshot().into_iter().collect();
    for key in [
        "gateway.requests",
        "gateway.shed",
        "gateway.coalesced_batches",
        "gateway.bytes",
    ] {
        if counters.get(key).copied().unwrap_or(0) == 0 {
            return Err(format!(
                "obs counter {key} missing or zero after gateway leg"
            ));
        }
    }
    Ok(())
}

fn stream_leg() -> Result<(), String> {
    let params = quick_params(12);
    let mut base = CorpusShape::Tiny3.config();
    base.seed = 12;
    let (initial, batches) = generate_stream(&StreamConfig {
        base,
        batches: 4,
        docs_per_batch: 10,
        drift_after: Some(2),
        drift_shift: 0.4,
    });
    let mut session = StreamSession::new(
        initial,
        Rhchme::new(rhchme_config(&params)),
        RefreshPolicy {
            every_batches: None,
            // A floor above any real fold-in confidence: every batch past
            // the cooldown trips the drift trigger, so the manifest is
            // guaranteed to carry drift events regardless of the corpus.
            min_confidence: Some(0.95),
            drift_cooldown: 1,
            warm_iters: (params.max_iter / 4).max(1),
            refresh_subspace: true,
            reseed_confidence: None,
        },
    )
    .map_err(|e| e.to_string())?;
    for batch in &batches {
        session.push_batch(batch).map_err(|e| e.to_string())?;
    }
    session.refit_now().map_err(|e| e.to_string())?;
    let t = session.telemetry();
    println!(
        "stream leg: {} batches, {} drift / {} manual refits, \
         {} suppressed by cooldown, {} warm iterations",
        t.batches.len(),
        t.drift_refits,
        t.manual_refits,
        t.cooldown_suppressed(),
        t.total_warm_iterations
    );
    Ok(())
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(p, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut prom_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--prom" => match it.next() {
                Some(p) => prom_path = Some(p.clone()),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            _ if out_path.is_none() => out_path = Some(a.clone()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    mtrl_obs::force_enable();
    let t0 = std::time::Instant::now();
    if let Err(e) = serve_leg()
        .and_then(gateway_leg)
        .and_then(|()| stream_leg())
    {
        eprintln!("obs run failed: {e}");
        return ExitCode::FAILURE;
    }

    let reg = mtrl_obs::global();
    let spans = reg.spans_snapshot();
    println!("spans ({}):", spans.len());
    for (path, s) in &spans {
        println!(
            "  {path}: {} closes, total {:.2} ms, max {:.2} ms",
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6
        );
    }
    let events = reg.events_snapshot();
    println!("stream events ({}):", events.len());
    for e in &events {
        println!("  {} [{}] value {:.3}", e.kind, e.label, e.value);
    }

    if let Err(e) = write_out(&out_path, &mtrl_obs::export::manifest_json(reg)) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[obs manifest written to {out_path} in {:.1?}]",
        t0.elapsed()
    );
    if let Some(prom_path) = prom_path {
        if let Err(e) = write_out(&prom_path, &mtrl_obs::export::prometheus_text(reg)) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("[prometheus dump written to {prom_path}]");
    }
    ExitCode::SUCCESS
}
