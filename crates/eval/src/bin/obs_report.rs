//! Drive a fit → serve → stream pass with `mtrl-obs` on and export the
//! collected telemetry.
//!
//! ```text
//! obs_report <manifest.json> [--prom <metrics.prom>]
//! ```
//!
//! The run is the observability layer's end-to-end exercise: a cold
//! RHCHME fit on an eval-shape corpus (engine per-iteration telemetry,
//! graph-build and fit spans), a fold-in pass of the held-out documents
//! through a live [`mtrl_serve::ServeEngine`] (latency histograms), and
//! a short drifting stream session with a confidence floor that
//! deterministically trips the drift trigger (stream events, refit
//! counters). Everything lands in one `mtrl-obs-manifest/v1` JSON;
//! `--prom` additionally writes the same registry as a Prometheus
//! text-format dump.

use mtrl_datagen::split_corpus;
use mtrl_datagen::stream::{generate_stream, StreamConfig};
use mtrl_eval::{quick_params, rhchme_config, CorpusShape};
use mtrl_serve::{AssignRequest, ServeEngine, SparseVec};
use mtrl_stream::{RefreshPolicy, StreamSession};
use rhchme::rhchme::Rhchme;
use std::process::ExitCode;

const USAGE: &str = "usage: obs_report <manifest.json> [--prom <metrics.prom>]";

fn serve_leg() -> Result<(), String> {
    let params = quick_params(11);
    let mut config = CorpusShape::Balanced3.config();
    config.seed = 11;
    let corpus = mtrl_datagen::corpus::generate(&config);
    let (train, heldout) = split_corpus(&corpus, 0.35, 11);
    let rhchme = Rhchme::new(rhchme_config(&params));
    let result = rhchme.fit_corpus(&train).map_err(|e| e.to_string())?;
    let model = rhchme
        .export_model(&result, &train)
        .map_err(|e| e.to_string())?;

    let engine = ServeEngine::new(2);
    engine.register("obs", model).map_err(|e| e.to_string())?;
    let docs: Vec<SparseVec> = heldout
        .iter()
        .map(|d| SparseVec::new(d.indices.clone(), d.values.clone()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let pending: Vec<_> = docs
        .chunks(8)
        .map(|chunk| {
            engine.submit(AssignRequest {
                model: "obs".into(),
                type_index: 0,
                docs: chunk.to_vec(),
            })
        })
        .collect();
    for p in pending {
        p.wait().map_err(|e| e.to_string())?;
    }
    let stats = engine.stats();
    println!(
        "serve leg: {} docs in {} requests, latency p50 {:?} / p99 {:?} / max {:?}",
        stats.documents,
        stats.requests,
        stats.quantile(0.5),
        stats.quantile(0.99),
        stats.max_latency()
    );
    Ok(())
}

fn stream_leg() -> Result<(), String> {
    let params = quick_params(12);
    let mut base = CorpusShape::Tiny3.config();
    base.seed = 12;
    let (initial, batches) = generate_stream(&StreamConfig {
        base,
        batches: 4,
        docs_per_batch: 10,
        drift_after: Some(2),
        drift_shift: 0.4,
    });
    let mut session = StreamSession::new(
        initial,
        Rhchme::new(rhchme_config(&params)),
        RefreshPolicy {
            every_batches: None,
            // A floor above any real fold-in confidence: every batch past
            // the cooldown trips the drift trigger, so the manifest is
            // guaranteed to carry drift events regardless of the corpus.
            min_confidence: Some(0.95),
            drift_cooldown: 1,
            warm_iters: (params.max_iter / 4).max(1),
            refresh_subspace: true,
            reseed_confidence: None,
        },
    )
    .map_err(|e| e.to_string())?;
    for batch in &batches {
        session.push_batch(batch).map_err(|e| e.to_string())?;
    }
    session.refit_now().map_err(|e| e.to_string())?;
    let t = session.telemetry();
    println!(
        "stream leg: {} batches, {} drift / {} manual refits, \
         {} suppressed by cooldown, {} warm iterations",
        t.batches.len(),
        t.drift_refits,
        t.manual_refits,
        t.cooldown_suppressed(),
        t.total_warm_iterations
    );
    Ok(())
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(p, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut prom_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--prom" => match it.next() {
                Some(p) => prom_path = Some(p.clone()),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            _ if out_path.is_none() => out_path = Some(a.clone()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    mtrl_obs::force_enable();
    let t0 = std::time::Instant::now();
    if let Err(e) = serve_leg().and_then(|()| stream_leg()) {
        eprintln!("obs run failed: {e}");
        return ExitCode::FAILURE;
    }

    let reg = mtrl_obs::global();
    let spans = reg.spans_snapshot();
    println!("spans ({}):", spans.len());
    for (path, s) in &spans {
        println!(
            "  {path}: {} closes, total {:.2} ms, max {:.2} ms",
            s.count,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6
        );
    }
    let events = reg.events_snapshot();
    println!("stream events ({}):", events.len());
    for e in &events {
        println!("  {} [{}] value {:.3}", e.kind, e.label, e.value);
    }

    if let Err(e) = write_out(&out_path, &mtrl_obs::export::manifest_json(reg)) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[obs manifest written to {out_path} in {:.1?}]",
        t0.elapsed()
    );
    if let Some(prom_path) = prom_path {
        if let Err(e) = write_out(&prom_path, &mtrl_obs::export::prometheus_text(reg)) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        println!("[prometheus dump written to {prom_path}]");
    }
    ExitCode::SUCCESS
}
