//! CI recall gate for the approximate-NN backends.
//!
//! ```text
//! recall_gate <out.json> [--baseline <committed.json>]
//! ```
//!
//! Measures sampled recall@p ([`mtrl_ann::sampled_recall`]) for every
//! approximate backend on the fixed probe set below and writes a
//! provenance-stamped summary (same meta header as `QUALITY_quick.json`
//! / the `BENCH_*.json` baselines). With `--baseline`, the fresh
//! numbers are additionally gated against the committed file: entry
//! sets and provenance must match, and every measured recall must meet
//! the committed `floor` — an index change that silently trades recall
//! for speed fails CI instead of degrading clustering quality.
//!
//! The measurement is deterministic (seeded sample, thread-invariant
//! kernels), so the gate is stable: a failure is a code change, not a
//! noisy runner.

use mtrl_ann::{sampled_recall, ClusterParams, GraphBackend, RecallProbe, RpForestParams};
use mtrl_eval::report::{
    append_step_summary, check_entry_sets, check_meta, json_string, load_summary, markdown_table,
    ReportMeta,
};
use mtrl_linalg::random::rand_uniform;
use mtrl_linalg::Mat;
use serde::Value;
use std::process::ExitCode;

/// Schema tag of recall summaries.
const RECALL_SCHEMA: &str = "mtrl-recall-summary/v1";

/// Minimum acceptable recall@p on the probe set, written into fresh
/// summaries; compare mode enforces the *baseline's* floor so the
/// committed file governs.
const RECALL_FLOOR: f64 = 0.95;

/// The fixed probe set: `(entry name, n, d, p, backend)`. Sizes span
/// the regimes the eval matrix and stream subsystem run the backends
/// at; data is seeded independently of `MTRL_SEED` so the committed
/// floor means the same thing on every run (mirroring the quality
/// matrix's fixed scenario seeds).
fn probe_set() -> Vec<(String, usize, usize, usize, GraphBackend)> {
    let forest = GraphBackend::RpForest(RpForestParams::default());
    let cluster = GraphBackend::ClusterPruned(ClusterParams::default());
    let mut set = Vec::new();
    for (n, d, p) in [(2000usize, 32usize, 5usize), (20_000, 32, 5)] {
        for backend in [&forest, &cluster] {
            set.push((
                format!("{}/n{n}_d{d}_p{p}", backend.key()),
                n,
                d,
                p,
                *backend,
            ));
        }
    }
    set
}

/// Deterministic clustered probe data: `k` centroids plus per-row
/// jitter whose scale decays geometrically across dimensions, so the
/// rows lie near a low-dimensional manifold. The layer indexes
/// *feature matrices of clustered corpora* — spectral-style embeddings
/// whose variance concentrates in the leading dimensions (the paper's
/// manifold assumption, and the reason a p-NN graph is informative at
/// all) — so the probe mirrors that geometry. Isotropic i.i.d. data,
/// where pairwise distances concentrate and "nearest" is noise, is
/// deliberately not the yardstick.
fn clustered(n: usize, d: usize, k: usize, seed: u64) -> Mat {
    let decay: Vec<f64> = (0..d).map(|j| 0.75f64.powi(j as i32)).collect();
    let centroids = rand_uniform(k, d, 0.0, 1.0, seed);
    let jitter = rand_uniform(n, d, -0.15, 0.15, seed ^ 0x9E37_79B9);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = centroids.row(i % k);
            jitter
                .row(i)
                .iter()
                .zip(c)
                .zip(&decay)
                .map(|((j, ci), s)| (ci + j) * s)
                .collect()
        })
        .collect();
    Mat::from_rows(&rows).expect("rectangular probe data")
}

fn to_json(meta: &ReportMeta, results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json_string(RECALL_SCHEMA)));
    out.push_str(&format!("  \"meta\": {{ {} }},\n", meta.json_fields()));
    out.push_str(&format!("  \"floor\": {RECALL_FLOOR},\n"));
    out.push_str("  \"results\": {\n");
    let entries: Vec<String> = results
        .iter()
        .map(|(k, v)| format!("    {}: {v:.6}", json_string(k)))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn gate(baseline_path: &str, current: &Value, results: &[(String, f64)]) -> Result<(), String> {
    let base = load_summary(baseline_path)?;
    if base.get("schema").and_then(Value::as_str) != Some(RECALL_SCHEMA) {
        return Err(format!("{baseline_path} is not a {RECALL_SCHEMA} summary"));
    }
    for w in check_meta(&base, current)? {
        println!("warn: {w}");
    }
    let floor = base
        .get("floor")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{baseline_path} has no numeric `floor`"))?;
    let base_keys: Vec<String> = base
        .get("results")
        .and_then(|r| match r {
            Value::Object(entries) => Some(entries.iter().map(|(k, _)| k.clone()).collect()),
            _ => None,
        })
        .ok_or_else(|| format!("{baseline_path} has no `results` object"))?;
    let current_keys: Vec<String> = results.iter().map(|(k, _)| k.clone()).collect();
    check_entry_sets(&base_keys, &current_keys)?;

    let mut failures = Vec::new();
    let mut rows = Vec::new();
    for (name, recall) in results {
        let verdict = if *recall >= floor { "ok" } else { "FAIL" };
        rows.push(vec![
            name.clone(),
            format!("{recall:.4}"),
            format!("{floor:.2}"),
            verdict.to_string(),
        ]);
        if *recall < floor {
            failures.push(format!(
                "{name}: recall@p {recall:.4} is below the committed floor {floor:.2}"
            ));
        }
    }
    let table = markdown_table(&["probe", "recall@p", "floor", "verdict"], &rows);
    append_step_summary(&format!("### Recall gate\n\n{table}"));
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut baseline = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--baseline" {
            let Some(v) = it.next() else {
                eprintln!("--baseline needs a path argument");
                return ExitCode::FAILURE;
            };
            baseline = Some(v.clone());
        } else if out_path.is_none() {
            out_path = Some(a.clone());
        } else {
            eprintln!("usage: recall_gate <out.json> [--baseline <committed.json>]");
            return ExitCode::FAILURE;
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("usage: recall_gate <out.json> [--baseline <committed.json>]");
        return ExitCode::FAILURE;
    };

    let probe = RecallProbe::default();
    let threads = mtrl_linalg::par::num_threads();
    let mut results = Vec::new();
    for (name, n, d, p, backend) in probe_set() {
        let data = clustered(n, d, 20, 31);
        let r = sampled_recall(&data, p, &backend, &probe, threads);
        println!(
            "{name}: recall@{p} {:.4} over {} samples",
            r.recall_at_p, r.samples
        );
        results.push((name, r.recall_at_p));
    }

    let meta = ReportMeta::stamp(true, &[]);
    let json = to_json(&meta, &results);
    let path = std::path::Path::new(&out_path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "[recall summary written to {out_path} — sha {}]",
        meta.git_sha
    );

    if let Some(baseline_path) = baseline {
        let current: Value = match serde_json::from_str(&json) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("internal error: fresh summary does not reparse: {e}");
                return ExitCode::FAILURE;
            }
        };
        match gate(&baseline_path, &current, &results) {
            Ok(()) => println!("recall gate passed (floor from {baseline_path})"),
            Err(e) => {
                eprintln!("recall gate FAILED:\n{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
