//! Byte-exact fit dump for the CI determinism leg.
//!
//! ```text
//! determinism_probe <out_file> [--ann] [--f32]
//! ```
//!
//! Runs one full RHCHME fit (corpus seeded from `MTRL_SEED`, quick
//! evaluation parameters) and writes every float of the result — `G`,
//! `S`, the objective trace — plus all labels as little-endian bytes.
//! CI runs it twice, under `MTRL_NUM_THREADS=1` and `=4`, and `cmp`s
//! the two files: the parallel kernels' determinism contract (bit-equal
//! results for every thread count) is enforced on a whole fit, not just
//! per-kernel unit tests.
//!
//! `--ann` swaps the graph stage to the RP-forest approximate backend
//! (default parameters), extending the same contract to the ANN layer:
//! index build, descent, and candidate re-ranking must also be
//! thread-count invariant end to end.
//!
//! `--f32` runs the fit with the mixed-precision kernel backend
//! (f32 storage, f64 accumulation). The contract is per-mode: f32
//! results need not match f64 results, but within f32 mode every
//! thread count must produce the same bytes.
//!
//! `--ensemble` runs a full consensus-ensemble fit instead (default
//! `EnsembleSpec`: member generation, sparse co-association build,
//! probability-trajectory merge, closed-form `S`), extending the
//! byte-identical contract to every ensemble stage — the co-association
//! rows are built with the same order-splicing parallel primitive as the
//! kernels, so thread count must not move a single bit.

use mtrl_datagen::{seed_from_env, CorruptionSpec};
use mtrl_eval::{quick_params, rhchme_config, CorpusShape};
use rhchme::pipeline::EnsembleSpec;
use rhchme::rhchme::Rhchme;
use std::process::ExitCode;

const USAGE: &str = "usage: determinism_probe <out_file> [--ann] [--f32] [--ensemble]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut ann = false;
    let mut f32_mode = false;
    let mut ensemble = false;
    for a in &args {
        match a.as_str() {
            "--ann" => ann = true,
            "--f32" => f32_mode = true,
            "--ensemble" => ensemble = true,
            _ if out_path.is_none() => out_path = Some(a.clone()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let out_path = &out_path;
    let seed = seed_from_env(2015);
    let corpus =
        CorruptionSpec::relation_corruption(0.1).corpus(&CorpusShape::Balanced3.config(), seed);
    let mut params = quick_params(seed);
    if ann {
        params.graph_backend = rhchme::GraphBackend::RpForest(mtrl_ann::RpForestParams::default());
    }
    if f32_mode {
        params.precision = rhchme::Precision::F32;
    }
    // Every probe mode dumps the same shape: labels, G, S, a trace.
    let (doc_labels, labels_per_type, g, s, trace, iterations) = if ensemble {
        match mtrl_ensemble::fit_corpus(&corpus, &EnsembleSpec::default(), &params) {
            Ok(r) => {
                let trace: Vec<f64> = r.members.iter().map(|m| m.final_objective).collect();
                let n = r.members.len();
                (r.doc_labels, r.labels_per_type, r.g, r.s, trace, n)
            }
            Err(e) => {
                eprintln!("ensemble fit failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let rhchme = Rhchme::new(rhchme_config(&params));
        match rhchme.fit_corpus(&corpus) {
            Ok(r) => (
                r.doc_labels,
                r.labels_per_type,
                r.g,
                r.s,
                r.objective_trace,
                r.iterations,
            ),
            Err(e) => {
                eprintln!("fit failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut bytes: Vec<u8> = Vec::new();
    bytes.extend_from_slice(b"mtrl-determinism-probe/v1\n");
    bytes.extend_from_slice(&(seed).to_le_bytes());
    for labels in std::iter::once(&doc_labels).chain(labels_per_type.iter()) {
        bytes.extend_from_slice(&(labels.len() as u64).to_le_bytes());
        for &l in labels {
            bytes.extend_from_slice(&(l as u64).to_le_bytes());
        }
    }
    for m in [&g, &s] {
        bytes.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        bytes.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        for v in m.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    bytes.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for v in &trace {
        bytes.extend_from_slice(&v.to_le_bytes());
    }

    if let Err(e) = std::fs::write(out_path, &bytes) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    // FNV-1a for a one-line log fingerprint.
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in &bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    println!(
        "seed {seed}, threads {}: {} bytes, fnv1a {hash:016x}, {} iterations -> {out_path}",
        mtrl_linalg::par::num_threads(),
        bytes.len(),
        iterations
    );
    ExitCode::SUCCESS
}
