//! Run the quick scenario matrix and write a `QUALITY_*.json` report.
//!
//! ```text
//! quality_report <out.json> [--degrade] [--timings]
//! ```
//!
//! `--degrade` deliberately cripples the fits (manifold-ensemble
//! regulariser off, error matrix squeezed out) — used to demonstrate
//! that the quality gate fails when quality actually regresses.
//!
//! `--timings` force-enables `mtrl-obs` for the run and writes the
//! collected telemetry (engine phase timings, span aggregates, serve
//! latency histograms) as an `mtrl-obs-manifest/v1` JSON next to the
//! quality report, at `<out.json>.obs.json`.

use mtrl_eval::{quick_matrix, run_matrix, RunOptions, QUICK_SEEDS};
use std::process::ExitCode;

const USAGE: &str = "usage: quality_report <out.json> [--degrade] [--timings]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut opts = RunOptions::default();
    let mut timings = false;
    for a in &args {
        match a.as_str() {
            "--degrade" => opts.degrade = true,
            "--timings" => timings = true,
            _ if out_path.is_none() => out_path = Some(a.clone()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if timings {
        mtrl_obs::force_enable();
    }

    let scenarios = quick_matrix();
    println!(
        "running {} scenarios x {} seeds{}...",
        scenarios.len(),
        QUICK_SEEDS.len(),
        if opts.degrade { " (DEGRADED)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let report = match run_matrix(&scenarios, &QUICK_SEEDS, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("matrix run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "\n{:<32}  {:>14}  {:>14}  {:>14}",
        "scenario", "FScore", "NMI", "ARI"
    );
    for s in &report.scenarios {
        println!(
            "{:<32}  {:>6.3}±{:<6.3}  {:>6.3}±{:<6.3}  {:>6.3}±{:<6.3}",
            s.name, s.fscore.mean, s.fscore.sd, s.nmi.mean, s.nmi.sd, s.ari.mean, s.ari.sd
        );
    }
    let path = std::path::Path::new(&out_path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "\n[quality report written to {out_path} in {:.1?} — sha {}, features {}]",
        t0.elapsed(),
        report.meta.git_sha,
        report.meta.target_features
    );
    if timings {
        let obs_path = format!("{out_path}.obs.json");
        let manifest = mtrl_obs::export::manifest_json(mtrl_obs::global());
        if let Err(e) = std::fs::write(&obs_path, manifest) {
            eprintln!("cannot write {obs_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[obs manifest written to {obs_path}]");
    }
    ExitCode::SUCCESS
}
