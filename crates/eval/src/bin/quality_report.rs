//! Run the quick scenario matrix and write a `QUALITY_*.json` report.
//!
//! ```text
//! quality_report <out.json> [--degrade]
//! ```
//!
//! `--degrade` deliberately cripples the fits (manifold-ensemble
//! regulariser off, error matrix squeezed out) — used to demonstrate
//! that the quality gate fails when quality actually regresses.

use mtrl_eval::{quick_matrix, run_matrix, RunOptions, QUICK_SEEDS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut opts = RunOptions::default();
    for a in &args {
        match a.as_str() {
            "--degrade" => opts.degrade = true,
            _ if out_path.is_none() => out_path = Some(a.clone()),
            _ => {
                eprintln!("usage: quality_report <out.json> [--degrade]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("usage: quality_report <out.json> [--degrade]");
        return ExitCode::FAILURE;
    };

    let scenarios = quick_matrix();
    println!(
        "running {} scenarios x {} seeds{}...",
        scenarios.len(),
        QUICK_SEEDS.len(),
        if opts.degrade { " (DEGRADED)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let report = match run_matrix(&scenarios, &QUICK_SEEDS, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("matrix run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "\n{:<32}  {:>14}  {:>14}  {:>14}",
        "scenario", "FScore", "NMI", "ARI"
    );
    for s in &report.scenarios {
        println!(
            "{:<32}  {:>6.3}±{:<6.3}  {:>6.3}±{:<6.3}  {:>6.3}±{:<6.3}",
            s.name, s.fscore.mean, s.fscore.sd, s.nmi.mean, s.nmi.sd, s.ari.mean, s.ari.sd
        );
    }
    let path = std::path::Path::new(&out_path);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "\n[quality report written to {out_path} in {:.1?} — sha {}, features {}]",
        t0.elapsed(),
        report.meta.git_sha,
        report.meta.target_features
    );
    ExitCode::SUCCESS
}
