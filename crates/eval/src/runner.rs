//! Scenario execution: drive the full pipeline and score it.
//!
//! One seed of a scenario is exactly one end-to-end run of the system
//! under test — a cold [`mtrl_ensemble::run_spec`] fit (the universal
//! [`rhchme::pipeline::MethodSpec`] dispatcher: base methods and the
//! consensus ensemble through one call), a
//! fit→export→fold-in round trip through `mtrl-serve`, or a
//! stream→drift→warm-refit cycle through `mtrl-stream` — scored with
//! [`mtrl_metrics::quality_scores`] on document labels. Everything is
//! seeded, and every kernel underneath is thread-count invariant, so a
//! scenario's numbers are bit-reproducible given `(scenario, seed)`:
//! the committed `QUALITY_*.json` baseline regenerates exactly on a
//! clean re-run of the same build.

use crate::report::{QualityReport, ReportMeta, ScenarioStats, Stat};
use crate::scenario::{EvalPath, Scenario};
use mtrl_datagen::split_corpus;
use mtrl_datagen::stream::{generate_stream, StreamBatch, StreamConfig};
use mtrl_metrics::{quality_scores, QualityScores};
use mtrl_serve::{Assigner, SparseVec};
use mtrl_stream::{RefreshPolicy, StreamSession};
use rhchme::pipeline::PipelineParams;
use rhchme::rhchme::{Rhchme, RhchmeConfig};

/// Eval-layer result: failures carry a human-readable context string.
pub type Result<T> = std::result::Result<T, String>;

/// Knobs of one matrix run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Deliberately cripple the fits — the manifold-ensemble
    /// regulariser off (λ = 0) and the sample-wise error matrix
    /// squeezed out (β → ∞, squared loss) — so the robustness machinery
    /// the matrix gates is demonstrably absent. Used to prove the
    /// quality gate *fails* when quality actually regresses
    /// (`quality_report --degrade`).
    pub degrade: bool,
}

/// Quality of one seed of one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedOutcome {
    /// The corpus/stream seed.
    pub seed: u64,
    /// Scores of the path's document labels against ground truth.
    pub scores: QualityScores,
}

/// All seeds of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario key.
    pub name: String,
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl ScenarioResult {
    /// Aggregate the per-seed outcomes into report statistics.
    pub fn stats(&self) -> ScenarioStats {
        let collect = |f: fn(&QualityScores) -> f64| -> Vec<f64> {
            self.outcomes.iter().map(|o| f(&o.scores)).collect()
        };
        ScenarioStats {
            name: self.name.clone(),
            fscore: Stat::from_values(&collect(|s| s.fscore)),
            nmi: Stat::from_values(&collect(|s| s.nmi)),
            ari: Stat::from_values(&collect(|s| s.ari)),
            seeds: self.outcomes.len(),
        }
    }
}

/// The shared quick-budget parameter bundle of the evaluation layer
/// (also what the robustness examples use, so example numbers and gated
/// numbers come from the same configuration).
pub fn quick_params(seed: u64) -> PipelineParams {
    PipelineParams {
        lambda: 1.0,
        beta: 10.0,
        max_iter: 40,
        spg_max_iter: 30,
        feature_cluster_divisor: 10,
        seed,
        ..PipelineParams::default()
    }
}

fn apply_degrade(params: &mut PipelineParams) {
    params.lambda = 0.0;
    params.beta = 1e9;
}

/// The estimator-side view of a [`PipelineParams`] bundle — the single
/// mapping every direct `Rhchme` construction in the evaluation layer
/// (serve/stream scenario paths, `determinism_probe`) goes through, so
/// a change to [`quick_params`] reaches all of them.
pub fn rhchme_config(params: &PipelineParams) -> RhchmeConfig {
    RhchmeConfig {
        lambda: params.lambda,
        gamma: params.gamma,
        alpha: params.alpha,
        beta: params.beta,
        p: params.p,
        graph_backend: params.graph_backend,
        spg_max_iter: params.spg_max_iter,
        max_iter: params.max_iter,
        tol: params.tol,
        seed: params.seed,
        feature_cluster_divisor: params.feature_cluster_divisor,
        precision: params.precision,
        ..RhchmeConfig::default()
    }
}

/// Run one scenario across a seed matrix.
///
/// # Errors
/// Propagates pipeline/serve/stream failures with the scenario and seed
/// named in the message.
pub fn run_scenario(
    scenario: &Scenario,
    seeds: &[u64],
    opts: &RunOptions,
) -> Result<ScenarioResult> {
    let mut outcomes = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let scores = run_seed(scenario, seed, opts)
            .map_err(|e| format!("scenario '{}' seed {seed}: {e}", scenario.name))?;
        outcomes.push(SeedOutcome { seed, scores });
    }
    Ok(ScenarioResult {
        name: scenario.name.clone(),
        outcomes,
    })
}

/// Run a whole matrix and assemble the stamped report.
///
/// # Errors
/// Propagates the first failing scenario.
pub fn run_matrix(
    scenarios: &[Scenario],
    seeds: &[u64],
    opts: &RunOptions,
) -> Result<QualityReport> {
    let mut stats = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        stats.push(run_scenario(scenario, seeds, opts)?.stats());
    }
    Ok(QualityReport {
        meta: ReportMeta::stamp(true, seeds),
        scenarios: stats,
    })
}

fn run_seed(scenario: &Scenario, seed: u64, opts: &RunOptions) -> Result<QualityScores> {
    let mut params = quick_params(seed);
    params.graph_backend = scenario.backend;
    params.precision = scenario.precision;
    if opts.degrade {
        apply_degrade(&mut params);
    }
    match scenario.path {
        EvalPath::ColdFit(ref spec) => {
            let corpus = scenario.corruption.corpus(&scenario.shape.config(), seed);
            let out = mtrl_ensemble::run_spec(&corpus, spec, &params).map_err(|e| e.to_string())?;
            Ok(out.quality(&corpus.labels))
        }
        EvalPath::ServeFoldIn => {
            let corpus = scenario.corruption.corpus(&scenario.shape.config(), seed);
            let (train, heldout) = split_corpus(&corpus, 0.35, seed);
            let rhchme = Rhchme::new(rhchme_config(&params));
            let result = rhchme.fit_corpus(&train).map_err(|e| e.to_string())?;
            let model = rhchme
                .export_model(&result, &train)
                .map_err(|e| e.to_string())?;
            let assigner = Assigner::new(model).map_err(|e| e.to_string())?;
            let docs: Vec<SparseVec> = heldout
                .iter()
                .map(|d| SparseVec::new(d.indices.clone(), d.values.clone()))
                .collect::<std::result::Result<_, _>>()
                .map_err(|e| e.to_string())?;
            let posteriors = assigner.assign_batch(0, &docs).map_err(|e| e.to_string())?;
            let labels = Assigner::labels(&posteriors);
            let truth: Vec<usize> = heldout.iter().map(|d| d.label).collect();
            Ok(quality_scores(&truth, &labels))
        }
        EvalPath::StreamWarmRefit => {
            let mut base = scenario.shape.config();
            base.seed = seed;
            scenario.corruption.apply(&mut base);
            let stream_cfg = StreamConfig {
                base,
                batches: 4,
                docs_per_batch: 12,
                drift_after: scenario.corruption.drift_shift().map(|_| 2),
                drift_shift: scenario.corruption.drift_shift().unwrap_or(0.0),
            };
            let (initial, batches) = generate_stream(&stream_cfg);
            let num_terms = initial.num_terms();
            let mut session = StreamSession::new(
                initial,
                Rhchme::new(rhchme_config(&params)),
                RefreshPolicy {
                    // Triggers off: the scenario exercises the warm-refit
                    // path deterministically via refit_now below, so the
                    // gated number cannot flap on a confidence threshold.
                    every_batches: None,
                    min_confidence: None,
                    drift_cooldown: 0,
                    warm_iters: (params.max_iter / 2).max(1),
                    refresh_subspace: true,
                    reseed_confidence: None,
                },
            )
            .map_err(|e| e.to_string())?;
            for batch in &batches {
                session.push_batch(batch).map_err(|e| e.to_string())?;
            }
            session.refit_now().map_err(|e| e.to_string())?;
            // Score the drifted tail (the stale part of the stream) under
            // the refreshed model; on a clean stream, score every batch.
            let scored: Vec<&StreamBatch> = if batches.iter().any(|b| b.drifted) {
                batches.iter().filter(|b| b.drifted).collect()
            } else {
                batches.iter().collect()
            };
            let assigner = Assigner::new(session.model().clone()).map_err(|e| e.to_string())?;
            let mut truth = Vec::new();
            let mut labels = Vec::new();
            for batch in scored {
                let docs: Vec<SparseVec> = (0..batch.len())
                    .map(|i| {
                        let (idx, vals) = batch.feature_row(i, num_terms);
                        SparseVec::new(idx, vals)
                    })
                    .collect::<std::result::Result<_, _>>()
                    .map_err(|e| e.to_string())?;
                let posteriors = assigner.assign_batch(0, &docs).map_err(|e| e.to_string())?;
                labels.extend(Assigner::labels(&posteriors));
                truth.extend_from_slice(&batch.labels);
            }
            Ok(quality_scores(&truth, &labels))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CorpusShape;
    use mtrl_datagen::CorruptionSpec;
    use rhchme::pipeline::Method;

    #[test]
    fn cold_fit_scenario_is_deterministic() {
        let s = Scenario::new(
            CorpusShape::Tiny3,
            CorruptionSpec::clean(),
            EvalPath::cold_fit(Method::Snmtf),
        );
        let a = run_scenario(&s, &[5], &RunOptions::default()).unwrap();
        let b = run_scenario(&s, &[5], &RunOptions::default()).unwrap();
        assert_eq!(a, b);
        let f = a.outcomes[0].scores.fscore;
        assert!(f > 0.5, "fscore {f}");
    }

    #[test]
    fn stats_aggregate_across_seeds() {
        let s = Scenario::new(
            CorpusShape::Tiny3,
            CorruptionSpec::clean(),
            EvalPath::cold_fit(Method::Src),
        );
        let r = run_scenario(&s, &[5, 6], &RunOptions::default()).unwrap();
        let stats = r.stats();
        assert_eq!(stats.seeds, 2);
        let mean = (r.outcomes[0].scores.fscore + r.outcomes[1].scores.fscore) / 2.0;
        assert!((stats.fscore.mean - mean).abs() < 1e-15);
    }

    #[test]
    fn serve_foldin_scenario_runs_on_tiny_corpus() {
        let s = Scenario::new(
            CorpusShape::Tiny3,
            CorruptionSpec::clean(),
            EvalPath::ServeFoldIn,
        );
        let r = run_scenario(&s, &[5], &RunOptions::default()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.outcomes[0].scores.fscore > 0.3);
    }
}
