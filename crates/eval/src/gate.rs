//! Regression gates: diff a fresh summary against a committed baseline.
//!
//! Two gates share the same contract (meta header pinned, entry sets
//! must match exactly, markdown comparison table for
//! `$GITHUB_STEP_SUMMARY`):
//!
//! * [`quality_gate`] — `QUALITY_*.json` reports; fails when any
//!   scenario's mean FScore or NMI **drops** by more than the tolerance
//!   (absolute points, default 0.02 — "2 points"). ARI is reported but
//!   not gated (it is the noisiest of the three on small corpora).
//!   Improvements never fail.
//! * [`bench_gate`] — `BENCH_*.json` perf summaries; fails when any
//!   shared benchmark's mean **regresses** (slows down) by more than
//!   the relative tolerance (default 25%).
//!
//! Both return a [`GateReport`] with the rendered text/markdown tables
//! and the failure list; the bins print it and exit accordingly.

use crate::report::{check_entry_sets, check_meta, markdown_table, QualityReport, BENCH_SCHEMA};
use serde_json::Value;

/// Default quality tolerance: 2 points of mean FScore/NMI.
pub const QUALITY_TOLERANCE: f64 = 0.02;

/// Default bench tolerance: 25% mean slowdown.
pub const BENCH_TOLERANCE: f64 = 0.25;

/// How far an ensemble cell may sit below the best single-method cell of
/// the same corruption scenario: 0.5 points of mean FScore.
pub const ENSEMBLE_MARGIN: f64 = 0.005;

/// The single-method cells an `…/ensemble` cell is compared against.
const SINGLE_METHOD_CELLS: [&str; 4] = ["src", "snmtf", "rmc", "rhchme"];

/// Outcome of one gate evaluation.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Plain-text comparison table for the job log.
    pub text: String,
    /// Markdown comparison table for `$GITHUB_STEP_SUMMARY`.
    pub markdown: String,
    /// One line per gated metric that exceeded the tolerance; empty
    /// means the gate passed.
    pub failures: Vec<String>,
    /// Warnings (legacy summaries without meta headers).
    pub warnings: Vec<String>,
}

impl GateReport {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare two quality reports.
///
/// # Errors
/// Returns a message (no verdict) on schema/meta/entry-set violations —
/// those are configuration errors, not regressions.
pub fn quality_gate(base: &Value, current: &Value, tolerance: f64) -> Result<GateReport, String> {
    let warnings = check_meta(base, current)?;
    let base = QualityReport::from_value(base).map_err(|e| format!("baseline: {e}"))?;
    let current = QualityReport::from_value(current).map_err(|e| format!("current: {e}"))?;
    let base_keys: Vec<String> = base.scenarios.iter().map(|s| s.name.clone()).collect();
    let cur_keys: Vec<String> = current.scenarios.iter().map(|s| s.name.clone()).collect();
    check_entry_sets(&base_keys, &cur_keys)?;

    let mut failures = Vec::new();
    let mut md_rows = Vec::new();
    let mut text = format!(
        "{:<32}  {:>16}  {:>16}  {:>16}  verdict\n",
        "scenario", "F base→cur", "NMI base→cur", "ARI base→cur"
    );
    for b in &base.scenarios {
        let c = current
            .scenarios
            .iter()
            .find(|c| c.name == b.name)
            .expect("entry sets verified equal");
        let d_f = c.fscore.mean - b.fscore.mean;
        let d_n = c.nmi.mean - b.nmi.mean;
        // An epsilon guard so a drop of *exactly* the tolerance passes
        // ("more than 2 points" fails) despite binary-float rounding of
        // the subtraction.
        let floor = -(tolerance + 1e-9);
        let mut verdict = "ok";
        if d_f < floor {
            failures.push(format!(
                "'{}': mean FScore dropped {:.3} → {:.3} ({:+.3}, tolerance {:.3})",
                b.name, b.fscore.mean, c.fscore.mean, d_f, tolerance
            ));
            verdict = "REGRESSED";
        }
        if d_n < floor {
            failures.push(format!(
                "'{}': mean NMI dropped {:.3} → {:.3} ({:+.3}, tolerance {:.3})",
                b.name, b.nmi.mean, c.nmi.mean, d_n, tolerance
            ));
            verdict = "REGRESSED";
        }
        if verdict == "ok" && (d_f > tolerance || d_n > tolerance) {
            verdict = "improved";
        }
        text.push_str(&format!(
            "{:<32}  {:>7.3}→{:<7.3}  {:>7.3}→{:<7.3}  {:>7.3}→{:<7.3}  {verdict}\n",
            b.name, b.fscore.mean, c.fscore.mean, b.nmi.mean, c.nmi.mean, b.ari.mean, c.ari.mean
        ));
        md_rows.push(vec![
            b.name.clone(),
            format!("{:.3} → {:.3} ({:+.3})", b.fscore.mean, c.fscore.mean, d_f),
            format!("{:.3} → {:.3} ({:+.3})", b.nmi.mean, c.nmi.mean, d_n),
            format!("{:.3} → {:.3}", b.ari.mean, c.ari.mean),
            verdict.to_string(),
        ]);
    }
    // Precision-sibling gate: every `…+f32` cell must stay within the
    // tolerance of its f64 sibling *in the current run*. The baseline
    // diff above catches drift over time; this catches a mixed-precision
    // regression directly — an f32 kernel that quietly loses accuracy
    // opens a cross-cell gap even if both cells move together.
    for c in &current.scenarios {
        let Some(sibling_name) = c.name.strip_suffix("+f32") else {
            continue;
        };
        let Some(sib) = current.scenarios.iter().find(|s| s.name == sibling_name) else {
            continue;
        };
        let floor = -(tolerance + 1e-9);
        for (metric, f32_mean, f64_mean) in [
            ("FScore", c.fscore.mean, sib.fscore.mean),
            ("NMI", c.nmi.mean, sib.nmi.mean),
        ] {
            if f32_mean - f64_mean < floor {
                failures.push(format!(
                    "'{}': mean {metric} {:.3} is more than {:.3} below its f64 sibling \
                     '{}' ({:.3}) — mixed-precision quality regression",
                    c.name, f32_mean, tolerance, sibling_name, f64_mean
                ));
            }
        }
    }
    // Ensemble cross-cell gate: on every corruption scenario, the
    // consensus ensemble must stay within [`ENSEMBLE_MARGIN`] of the best
    // single-method cell *in the current run* — the ensemble's whole
    // reason to exist is robustness under corruption, so falling behind
    // the methods it aggregates is a regression even when the baseline
    // diff is flat. Clean scenarios are exempt (everything saturates
    // there).
    for c in &current.scenarios {
        let Some(scenario) = c.name.strip_suffix("/ensemble") else {
            continue;
        };
        if scenario == "clean" {
            continue;
        }
        let best = SINGLE_METHOD_CELLS
            .iter()
            .filter_map(|m| {
                let cell = format!("{scenario}/{m}");
                current.scenarios.iter().find(|s| s.name == cell)
            })
            .map(|s| (s.fscore.mean, s.name.as_str()))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        let Some((best_f, best_name)) = best else {
            continue;
        };
        if c.fscore.mean - best_f < -(ENSEMBLE_MARGIN + 1e-9) {
            failures.push(format!(
                "'{}': mean FScore {:.3} is more than {ENSEMBLE_MARGIN:.3} below the best \
                 single-method cell '{best_name}' ({best_f:.3}) — consensus-ensemble regression",
                c.name, c.fscore.mean
            ));
        }
    }
    let markdown = format!(
        "### Quality gate (tolerance {tolerance:.3} mean F/NMI)\n\n{}",
        markdown_table(&["scenario", "FScore", "NMI", "ARI", "verdict"], &md_rows)
    );
    Ok(GateReport {
        text,
        markdown,
        failures,
        warnings,
    })
}

/// Compare two bench summaries.
///
/// # Errors
/// Returns a message (no verdict) on schema/meta/entry-set violations.
pub fn bench_gate(base: &Value, current: &Value, tolerance: f64) -> Result<GateReport, String> {
    for (label, v) in [("baseline", base), ("current", current)] {
        if let Some(schema) = v.get("schema").and_then(Value::as_str) {
            if schema != BENCH_SCHEMA {
                return Err(format!(
                    "{label}: schema mismatch: expected '{BENCH_SCHEMA}', found '{schema}'"
                ));
            }
        }
    }
    let warnings = check_meta(base, current)?;
    let base_results = bench_results(base).map_err(|e| format!("baseline: {e}"))?;
    let cur_results = bench_results(current).map_err(|e| format!("current: {e}"))?;
    let base_keys: Vec<String> = base_results.iter().map(|(n, _)| n.clone()).collect();
    let cur_keys: Vec<String> = cur_results.iter().map(|(n, _)| n.clone()).collect();
    check_entry_sets(&base_keys, &cur_keys)?;

    let width = base_keys.iter().map(|n| n.len()).max().unwrap_or(8).max(8);
    let mut text = format!(
        "{:<width$}  {:>12}  {:>12}  {:>8}\n",
        "bench", "baseline", "current", "ratio"
    );
    let mut failures = Vec::new();
    let mut md_rows = Vec::new();
    for (name, b) in &base_results {
        let c = cur_results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .expect("entry sets verified equal");
        let ratio = c / b;
        let verdict = if ratio > 1.0 + tolerance {
            failures.push(format!(
                "'{name}': mean regressed {b:.1}ns → {c:.1}ns ({ratio:.2}x, tolerance {:.0}%)",
                tolerance * 100.0
            ));
            "REGRESSED"
        } else if ratio < 1.0 - tolerance {
            "improved"
        } else {
            "ok"
        };
        text.push_str(&format!(
            "{name:<width$}  {b:>10.1}ns  {c:>10.1}ns  {ratio:>7.2}x  {verdict}\n"
        ));
        md_rows.push(vec![
            name.clone(),
            format!("{b:.1} ns"),
            format!("{c:.1} ns"),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ]);
    }
    let markdown = format!(
        "### Bench gate (tolerance {:.0}% mean regression)\n\n{}",
        tolerance * 100.0,
        markdown_table(
            &["bench", "baseline", "current", "ratio", "verdict"],
            &md_rows
        )
    );
    Ok(GateReport {
        text,
        markdown,
        failures,
        warnings,
    })
}

/// `(name, mean_ns)` pairs of a bench summary, in file order.
fn bench_results(root: &Value) -> Result<Vec<(String, f64)>, String> {
    let results = root
        .get("results")
        .ok_or_else(|| "missing 'results' object".to_string())?;
    let Value::Object(pairs) = results else {
        return Err("'results' is not an object".to_string());
    };
    let mut out = Vec::with_capacity(pairs.len());
    for (name, v) in pairs {
        let mean = v
            .as_f64()
            .ok_or_else(|| format!("'{name}' has a non-numeric mean"))?;
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!("'{name}' has a non-positive mean {mean}"));
        }
        out.push((name.clone(), mean));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{json_string, QUALITY_SCHEMA};

    fn quality_value(entries: &[(&str, f64, f64)]) -> Value {
        // (name, fscore_mean, nmi_mean); sds zero, ari mirrors fscore.
        let mut body = format!(
            "{{\"schema\": {}, \"meta\": {{\"git_sha\": \"t\", \"quick\": true, \
             \"target_features\": \"avx2,fma\", \"seeds\": [1, 2]}}, \"results\": {{",
            json_string(QUALITY_SCHEMA)
        );
        for (i, (name, f, n)) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{}: {{\"fscore_mean\": {f}, \"fscore_sd\": 0.0, \"nmi_mean\": {n}, \
                 \"nmi_sd\": 0.0, \"ari_mean\": {f}, \"ari_sd\": 0.0, \"seeds\": 2}}",
                json_string(name)
            ));
        }
        body.push_str("}}");
        serde_json::from_str(&body).unwrap()
    }

    fn bench_value(entries: &[(&str, f64)]) -> Value {
        let mut body = String::from(
            "{\"schema\": \"mtrl-bench-summary/v1\", \"meta\": {\"git_sha\": \"t\", \
             \"quick\": true, \"target_features\": \"avx2,fma\"}, \"results\": {",
        );
        for (i, (name, mean)) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("{}: {mean}", json_string(name)));
        }
        body.push_str("}}");
        serde_json::from_str(&body).unwrap()
    }

    #[test]
    fn quality_gate_passes_on_identical_reports() {
        let v = quality_value(&[("clean/rhchme", 0.9, 0.85)]);
        let r = quality_gate(&v, &v, QUALITY_TOLERANCE).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.markdown.contains("clean/rhchme"));
    }

    #[test]
    fn quality_gate_fails_on_fscore_drop() {
        let base = quality_value(&[("clean/rhchme", 0.90, 0.85)]);
        let cur = quality_value(&[("clean/rhchme", 0.87, 0.85)]);
        let r = quality_gate(&base, &cur, QUALITY_TOLERANCE).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("FScore"), "{}", r.failures[0]);
        assert!(r.text.contains("REGRESSED"));
    }

    #[test]
    fn quality_gate_fails_on_nmi_drop_alone() {
        let base = quality_value(&[("drift/stream_warm", 0.80, 0.80)]);
        let cur = quality_value(&[("drift/stream_warm", 0.80, 0.75)]);
        let r = quality_gate(&base, &cur, QUALITY_TOLERANCE).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("NMI"));
    }

    #[test]
    fn quality_gate_tolerance_edge_is_inclusive() {
        // A drop of exactly the tolerance passes ("more than 2 points"
        // fails, 2 points exactly does not); epsilon beyond fails.
        let base = quality_value(&[("clean/src", 0.900, 0.900)]);
        let at_edge = quality_value(&[("clean/src", 0.880, 0.900)]);
        let r = quality_gate(&base, &at_edge, 0.02).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        let beyond = quality_value(&[("clean/src", 0.8799, 0.900)]);
        let r = quality_gate(&base, &beyond, 0.02).unwrap();
        assert!(!r.passed());
    }

    #[test]
    fn quality_gate_improvement_never_fails() {
        let base = quality_value(&[("clean/rmc", 0.70, 0.60)]);
        let cur = quality_value(&[("clean/rmc", 0.95, 0.90)]);
        let r = quality_gate(&base, &cur, QUALITY_TOLERANCE).unwrap();
        assert!(r.passed());
        assert!(r.text.contains("improved"));
    }

    #[test]
    fn quality_gate_pins_f32_cells_to_their_f64_siblings() {
        // Both cells identical to their baselines, but the f32 cell sits
        // more than the tolerance below its f64 sibling → fail.
        let gapped = quality_value(&[
            ("clean/rhchme", 0.90, 0.85),
            ("clean/rhchme+f32", 0.85, 0.85),
        ]);
        let r = quality_gate(&gapped, &gapped, QUALITY_TOLERANCE).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert!(
            r.failures[0].contains("f64 sibling") && r.failures[0].contains("clean/rhchme+f32"),
            "{}",
            r.failures[0]
        );
        // Within tolerance (and f32 above f64) passes.
        let close = quality_value(&[
            ("clean/rhchme", 0.90, 0.85),
            ("clean/rhchme+f32", 0.89, 0.86),
        ]);
        let r = quality_gate(&close, &close, QUALITY_TOLERANCE).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn quality_gate_pins_ensemble_to_best_single_method_cell() {
        // Ensemble sits more than 0.5 F below the best single cell
        // (rhchme) on a corruption scenario → fail, naming that cell.
        let gapped = quality_value(&[
            ("feature_noise/src", 0.80, 0.70),
            ("feature_noise/rhchme", 0.85, 0.75),
            ("feature_noise/ensemble", 0.84, 0.75),
        ]);
        let r = quality_gate(&gapped, &gapped, QUALITY_TOLERANCE).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert!(
            r.failures[0].contains("consensus-ensemble")
                && r.failures[0].contains("'feature_noise/rhchme'"),
            "{}",
            r.failures[0]
        );
        // Within the margin passes.
        let close = quality_value(&[
            ("feature_noise/src", 0.80, 0.70),
            ("feature_noise/rhchme", 0.85, 0.75),
            ("feature_noise/ensemble", 0.846, 0.75),
        ]);
        let r = quality_gate(&close, &close, QUALITY_TOLERANCE).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn quality_gate_exempts_clean_ensemble_cells() {
        let v = quality_value(&[("clean/rhchme", 1.00, 1.00), ("clean/ensemble", 0.90, 0.90)]);
        let r = quality_gate(&v, &v, QUALITY_TOLERANCE).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn quality_gate_errors_on_missing_entry() {
        let base = quality_value(&[("clean/rhchme", 0.9, 0.85), ("clean/src", 0.8, 0.8)]);
        let cur = quality_value(&[("clean/rhchme", 0.9, 0.85)]);
        let err = quality_gate(&base, &cur, QUALITY_TOLERANCE).unwrap_err();
        assert!(
            err.contains("'clean/src'") && err.contains("missing from the current run"),
            "{err}"
        );
    }

    #[test]
    fn quality_gate_errors_on_meta_mismatch() {
        let base = quality_value(&[("clean/rhchme", 0.9, 0.85)]);
        let mut text = serde_json::to_string(&base).unwrap();
        text = text.replace("avx2,fma", "");
        let cur: Value = serde_json::from_str(&text).unwrap();
        let err = quality_gate(&base, &cur, QUALITY_TOLERANCE).unwrap_err();
        assert!(err.contains("target-cpu"), "{err}");
    }

    #[test]
    fn bench_gate_passes_within_tolerance_and_fails_beyond() {
        let base = bench_value(&[("pnn/2000", 1000.0), ("engine/step", 500.0)]);
        let ok = bench_value(&[("pnn/2000", 1200.0), ("engine/step", 400.0)]);
        let r = bench_gate(&base, &ok, BENCH_TOLERANCE).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        let slow = bench_value(&[("pnn/2000", 1300.0), ("engine/step", 500.0)]);
        let r = bench_gate(&base, &slow, BENCH_TOLERANCE).unwrap();
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("'pnn/2000'"));
    }

    #[test]
    fn bench_gate_errors_on_entry_set_mismatch() {
        let base = bench_value(&[("a", 1.0)]);
        let cur = bench_value(&[("a", 1.0), ("b", 2.0)]);
        let err = bench_gate(&base, &cur, BENCH_TOLERANCE).unwrap_err();
        assert!(err.contains("'b'") && err.contains("no baseline"), "{err}");
    }

    #[test]
    fn bench_gate_rejects_bad_means() {
        let base = bench_value(&[("a", 1.0)]);
        let bad: Value = serde_json::from_str("{\"results\": {\"a\": -5.0}}").unwrap();
        let err = bench_gate(&base, &bad, BENCH_TOLERANCE).unwrap_err();
        assert!(err.contains("non-positive"), "{err}");
    }

    #[test]
    fn bench_gate_accepts_legacy_summary_with_warning() {
        let base: Value = serde_json::from_str("{\"results\": {\"a\": 100.0}}").unwrap();
        let cur = bench_value(&[("a", 110.0)]);
        let r = bench_gate(&base, &cur, BENCH_TOLERANCE).unwrap();
        assert!(r.passed());
        assert_eq!(r.warnings.len(), 1);
    }
}
