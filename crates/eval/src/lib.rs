//! # mtrl-eval
//!
//! The scenario-matrix evaluation layer: clustering *quality* gets the
//! same treatment as performance — reproducible runs, committed
//! baselines, and a CI regression gate.
//!
//! The paper's headline claims are about robustness (RHCHME beating
//! SRC/SNMTF/RMC under noise and corruption, Sec. IV), so the repo
//! gates exactly that:
//!
//! * [`scenario`] — a declarative registry of scenarios (corpus shape ×
//!   [`mtrl_datagen::CorruptionSpec`] × pipeline path), including the
//!   committed quick matrix ([`scenario::quick_matrix`]): clean /
//!   feature-noise / relation-corruption cold fits of all four HOCC
//!   methods plus the serve fold-in and stream warm-refit paths;
//! * [`runner`] — executes scenarios end to end through
//!   `pipeline::run_method`, `mtrl-serve` and `mtrl-stream`, scoring
//!   FScore/NMI/ARI over a fixed seed matrix (bit-reproducible given
//!   the build);
//! * [`report`] — the versioned `QUALITY_*.json` format with the
//!   provenance meta header (git sha, quick marker, target-cpu
//!   features, seeds) shared with the `BENCH_*.json` summaries;
//! * [`gate`] — the regression gates (`quality_gate` / `bench_gate`):
//!   meta header pinned, entry sets must match exactly (missing keys
//!   are named, never skipped), markdown comparison tables for
//!   `$GITHUB_STEP_SUMMARY`.
//!
//! Binaries: `quality_report` (run the matrix, write the report),
//! `quality_gate` (diff against the committed baseline),
//! `determinism_probe` (byte-exact fit dump for the CI determinism
//! leg). The committed baseline lives at `QUALITY_quick.json` in the
//! repo root; refresh it by running
//! `cargo run --release -p mtrl-eval --bin quality_report -- QUALITY_quick.json`
//! whenever a change intentionally moves clustering quality.

pub mod gate;
pub mod report;
pub mod runner;
pub mod scenario;

pub use gate::{bench_gate, quality_gate, GateReport, BENCH_TOLERANCE, QUALITY_TOLERANCE};
pub use report::{QualityReport, ReportMeta, ScenarioStats, Stat};
pub use runner::{
    quick_params, rhchme_config, run_matrix, run_scenario, RunOptions, ScenarioResult,
};
pub use scenario::{quick_matrix, CorpusShape, EvalPath, Scenario, QUICK_SEEDS};
