//! Out-of-sample fold-in: mapping unseen objects to cluster posteriors.
//!
//! An unseen object of type `k` arrives as a sparse vector over type
//! `k`'s feature view (for documents: `[terms | concepts]`, the layout
//! `rhchme::MultiTypeData::features(0)` uses). The [`Assigner`] scores it
//! against the fitted model's per-type centroids by cosine similarity in
//! the learned subspace and normalises the non-negative similarities to a
//! probability vector — soft co-association scores in the spirit of
//! Huang et al.'s probability-trajectory ensembles, rather than only a
//! hard label. Clusters that captured no mass at fit time (near-zero
//! [`FittedModel::centroid_norms`]) are excluded from scoring.
//!
//! This is the serving hot path: one fold-in is `O(nnz(x) · c_k)` with no
//! allocation beyond the posterior vector, no iteration, and no touching
//! of the training data.

use crate::error::ServeError;
use mtrl_linalg::vecops::{argmax, sparse_dense_dot};
use rhchme::export::FittedModel;

/// A sparse feature vector over one type's feature view.
#[derive(Debug, Clone)]
pub struct SparseVec {
    /// Feature column indices.
    pub indices: Vec<usize>,
    /// Matching values.
    pub values: Vec<f64>,
}

impl SparseVec {
    /// Build from parallel index/value slices.
    ///
    /// # Errors
    /// Returns [`ServeError::BadRequest`] when lengths differ or a
    /// value is non-finite.
    pub fn new(indices: Vec<usize>, values: Vec<f64>) -> Result<Self, ServeError> {
        if indices.len() != values.len() {
            return Err(ServeError::BadRequest(format!(
                "{} indices with {} values",
                indices.len(),
                values.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::BadRequest("non-finite feature value".into()));
        }
        Ok(SparseVec { indices, values })
    }

    /// Build from a dense slice, keeping entries with `|v| > 0`.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (j, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(j);
                values.push(v);
            }
        }
        SparseVec { indices, values }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// ℓ2 norm of the stored values.
    pub fn norm2(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Fold-in predictor over a fitted model.
///
/// Cheap to clone conceptually (it owns the model); the serve engine
/// shares one instance per registered model behind an `Arc`.
#[derive(Debug, Clone)]
pub struct Assigner {
    model: FittedModel,
    /// Per type: clusters with non-degenerate centroids.
    active: Vec<Vec<usize>>,
}

impl Assigner {
    /// Wrap a validated model for serving.
    ///
    /// # Errors
    /// Returns [`ServeError::Corrupt`] if the model fails validation.
    pub fn new(model: FittedModel) -> Result<Self, ServeError> {
        model
            .validate()
            .map_err(|e| ServeError::Corrupt(e.to_string()))?;
        let active = model
            .centroid_norms
            .iter()
            .map(|norms| {
                norms
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 1e-12)
                    .map(|(c, _)| c)
                    .collect()
            })
            .collect();
        Ok(Assigner { model, active })
    }

    /// Borrow the underlying model.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Cluster count of type `type_index`.
    ///
    /// # Panics
    /// Panics if `type_index` is out of range (callers validate via
    /// [`Self::assign`]).
    pub fn num_clusters(&self, type_index: usize) -> usize {
        self.model.cluster_counts[type_index]
    }

    /// Fold one unseen object of type `type_index` into the clustering.
    ///
    /// Returns the posterior over that type's clusters: entries are
    /// finite, non-negative, and sum to 1. An all-zero or out-of-subspace
    /// vector gets the uniform posterior over active clusters — maximum
    /// entropy is the honest answer to "no evidence".
    ///
    /// # Errors
    /// Returns [`ServeError::BadRequest`] for a bad type index or an
    /// index beyond the type's feature dimension.
    pub fn assign(&self, type_index: usize, x: &SparseVec) -> Result<Vec<f64>, ServeError> {
        let k = self.model.num_types();
        if type_index >= k {
            return Err(ServeError::BadRequest(format!(
                "type index {type_index} out of range (model has {k} types)"
            )));
        }
        let dim = self.model.feature_dims[type_index];
        if let Some(&bad) = x.indices.iter().find(|&&j| j >= dim) {
            return Err(ServeError::BadRequest(format!(
                "feature index {bad} out of range (type {type_index} has dimension {dim})"
            )));
        }
        let centroids = &self.model.centroids[type_index];
        let c = centroids.rows();
        let active = &self.active[type_index];
        let norm = x.norm2();
        let mut posterior = vec![0.0; c];
        if norm <= 1e-300 || active.is_empty() {
            uniform_over(&mut posterior, active, c);
            return Ok(posterior);
        }
        let inv_norm = 1.0 / norm;
        let mut total = 0.0;
        for &cluster in active {
            // Cosine: centroid rows are unit-ℓ2 by construction.
            let sim = sparse_dense_dot(&x.indices, &x.values, centroids.row(cluster)) * inv_norm;
            let score = sim.max(0.0);
            posterior[cluster] = score;
            total += score;
        }
        if total <= 1e-300 {
            uniform_over(&mut posterior, active, c);
        } else {
            let inv = 1.0 / total;
            for p in &mut posterior {
                *p *= inv;
            }
        }
        Ok(posterior)
    }

    /// Fold in a batch; one posterior per input, in order.
    ///
    /// # Errors
    /// Fails on the first invalid document (all-or-nothing, so a batch
    /// response never silently drops entries).
    pub fn assign_batch(
        &self,
        type_index: usize,
        docs: &[SparseVec],
    ) -> Result<Vec<Vec<f64>>, ServeError> {
        docs.iter().map(|x| self.assign(type_index, x)).collect()
    }

    /// Hard labels (argmax) for a batch of posteriors.
    pub fn labels(posteriors: &[Vec<f64>]) -> Vec<usize> {
        posteriors.iter().map(|p| argmax(p).unwrap_or(0)).collect()
    }
}

fn uniform_over(posterior: &mut [f64], active: &[usize], c: usize) {
    if active.is_empty() {
        let u = 1.0 / c.max(1) as f64;
        for p in posterior.iter_mut() {
            *p = u;
        }
    } else {
        let u = 1.0 / active.len() as f64;
        for &cluster in active {
            posterior[cluster] = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_fitted_model;

    #[test]
    fn posterior_is_a_distribution() {
        let model = tiny_fitted_model(41);
        let assigner = Assigner::new(model).unwrap();
        let x = SparseVec::new(vec![0, 3, 10], vec![0.5, 1.0, 0.25]).unwrap();
        let p = assigner.assign(0, &x).unwrap();
        assert_eq!(p.len(), assigner.num_clusters(0));
        assert!(p.iter().all(|&v| v.is_finite() && v >= 0.0));
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
    }

    #[test]
    fn empty_vector_gets_uniform() {
        let model = tiny_fitted_model(42);
        let assigner = Assigner::new(model).unwrap();
        let p = assigner
            .assign(0, &SparseVec::new(vec![], vec![]).unwrap())
            .unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let nonzero: Vec<f64> = p.iter().copied().filter(|&v| v > 0.0).collect();
        let first = nonzero[0];
        assert!(nonzero.iter().all(|&v| (v - first).abs() < 1e-12));
    }

    #[test]
    fn invalid_requests_rejected() {
        let model = tiny_fitted_model(43);
        let dim0 = model.feature_dims[0];
        let assigner = Assigner::new(model).unwrap();
        assert!(matches!(
            assigner.assign(9, &SparseVec::from_dense(&[1.0])),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            assigner.assign(0, &SparseVec::new(vec![dim0], vec![1.0]).unwrap()),
            Err(ServeError::BadRequest(_))
        ));
        assert!(SparseVec::new(vec![0], vec![]).is_err());
        assert!(SparseVec::new(vec![0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn all_types_assignable() {
        // Fold-in works for terms and concepts too, not just documents —
        // that is the "multi-aspect" part.
        let model = tiny_fitted_model(44);
        let assigner = Assigner::new(model).unwrap();
        for t in 0..assigner.model().num_types() {
            let dim = assigner.model().feature_dims[t];
            let x = SparseVec::from_dense(&vec![0.1; dim]);
            let p = assigner.assign(t, &x).unwrap();
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "type {t}");
        }
    }

    #[test]
    fn batch_matches_single() {
        let model = tiny_fitted_model(45);
        let assigner = Assigner::new(model).unwrap();
        let docs: Vec<SparseVec> = (0..5)
            .map(|i| SparseVec::new(vec![i, i + 2], vec![1.0, 0.5]).unwrap())
            .collect();
        let batch = assigner.assign_batch(0, &docs).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(batch[i], assigner.assign(0, doc).unwrap());
        }
        let labels = Assigner::labels(&batch);
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn sparse_dense_agree() {
        let model = tiny_fitted_model(46);
        let dim = model.feature_dims[0];
        let assigner = Assigner::new(model).unwrap();
        let mut dense = vec![0.0; dim];
        dense[1] = 0.7;
        dense[4] = 0.3;
        let sparse = SparseVec::new(vec![1, 4], vec![0.7, 0.3]).unwrap();
        assert_eq!(
            assigner.assign(0, &SparseVec::from_dense(&dense)).unwrap(),
            assigner.assign(0, &sparse).unwrap()
        );
    }
}
