//! The v2 binary bundle: length-prefixed little-endian sections with an
//! FNV integrity digest — fleet-restart-fast model loads.
//!
//! # Why a second format
//!
//! The v1 JSON envelope costs ~2 ms to parse per model, which is fine
//! for one model and hopeless for a gateway restart that must reload
//! hundreds. The binary layout below loads by slicing: every `f64`
//! payload is stored as raw little-endian bit patterns at an 8-byte
//! aligned offset, so reconstruction is bounds-checking plus `memcpy`
//! — no text parsing anywhere. Round-trips are bit-exact by
//! construction (the bytes *are* the bit patterns).
//!
//! # Layout
//!
//! All integers little-endian. The header is 32 bytes; every section
//! payload starts at an 8-byte aligned offset (mmap-friendly: a reader
//! may map the file and view `f64` sections in place on LE hardware).
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"MTRLFMv2"
//! 8       4     container version (2)
//! 12      4     model schema version (rhchme::export::SCHEMA_VERSION)
//! 16      8     model content digest (FittedModel::content_digest)
//! 24      4     section count
//! 28      4     reserved (0)
//! 32      …     sections, each:
//!                 tag u32 | reserved u32 | payload_len u64 |
//!                 payload (payload_len bytes) | zero-pad to 8
//! end-8   8     file digest: FNV-1a over the preceding bytes taken as
//!               little-endian u64 words (the layout guarantees the
//!               digested region is a whole number of words)
//! ```
//!
//! Section tags (1–6 required, any order, duplicates rejected; tag 7 is
//! optional — bundles written before method provenance existed simply
//! omit it, and a reader never requires it):
//!
//! | tag | content                                                        |
//! |-----|----------------------------------------------------------------|
//! | 1   | config: UTF-8 JSON of `RhchmeConfig`                           |
//! | 2   | shapes: `k` then `sizes[k]`, `cluster_counts[k]`,              |
//! |     | `feature_dims[k]`, all u64                                     |
//! | 3   | G blocks: count u64, then per block rows u64, cols u64, data   |
//! | 4   | S: rows u64, cols u64, data                                    |
//! | 5   | centroids: same encoding as tag 3                              |
//! | 6   | centroid norms: count u64, then per type len u64, data         |
//! | 7   | method provenance: UTF-8 key of the producing method           |
//!       | (optional; present only when the model carries one)            |
//!
//! Integrity: the trailing file digest catches any byte flip in header
//! or payload (word-wise FNV-1a — 8× fewer multiplies than the
//! byte-wise variant, so verification cannot eat the speedup the format
//! exists for). After reconstruction the model is structurally
//! validated like every other load path. The header's model content
//! digest lets fleet tooling identify a bundle without loading it and
//! ties a migrated binary bundle back to its JSON v1 original.

use crate::error::ServeError;
use rhchme::export::{FittedModel, SCHEMA_VERSION};
use rhchme::rhchme::RhchmeConfig;
use serde::Deserialize;
use std::path::Path;

use mtrl_linalg::Mat;

/// Leading magic of a v2 binary bundle (deliberately not valid JSON).
pub const BINARY_MAGIC: &[u8; 8] = b"MTRLFMv2";

/// Version of the binary container layout itself.
pub const CONTAINER_VERSION: u32 = 2;

const TAG_CONFIG: u32 = 1;
const TAG_SHAPES: u32 = 2;
const TAG_G_BLOCKS: u32 = 3;
const TAG_S: u32 = 4;
const TAG_CENTROIDS: u32 = 5;
const TAG_CENTROID_NORMS: u32 = 6;
const TAG_METHOD: u32 = 7;

fn corrupt(msg: impl Into<String>) -> ServeError {
    ServeError::Corrupt(msg.into())
}

/// FNV-1a over the buffer taken as little-endian u64 words. The caller
/// guarantees `bytes.len()` is a multiple of 8 (the layout pads every
/// section to word boundaries).
fn word_fnv(bytes: &[u8]) -> u64 {
    debug_assert_eq!(bytes.len() % 8, 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in bytes.chunks_exact(8) {
        h ^= u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---- writer ----------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64s(&mut self, vals: &[f64]) {
        self.buf.reserve(vals.len() * 8);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn section(&mut self, tag: u32, payload: impl FnOnce(&mut Writer)) {
        self.u32(tag);
        self.u32(0);
        let len_at = self.buf.len();
        self.u64(0); // patched below
        let start = self.buf.len();
        payload(self);
        let len = (self.buf.len() - start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
}

fn mat_list(w: &mut Writer, mats: &[Mat]) {
    w.u64(mats.len() as u64);
    for m in mats {
        w.u64(m.rows() as u64);
        w.u64(m.cols() as u64);
        w.f64s(m.as_slice());
    }
}

/// Serialize a model into the v2 binary layout.
///
/// # Errors
/// Returns [`ServeError::Corrupt`] when the model fails its own
/// structural validation (never serialize garbage).
pub fn to_bytes(model: &FittedModel) -> Result<Vec<u8>, ServeError> {
    model
        .validate()
        .map_err(|e| corrupt(format!("refusing to save an invalid model: {e}")))?;
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(BINARY_MAGIC);
    w.u32(CONTAINER_VERSION);
    w.u32(model.schema_version);
    w.u64(model.content_digest());
    let section_count = 6 + u32::from(model.method.is_some());
    w.u32(section_count);
    w.u32(0); // reserved
    let config_json = serde_json::to_string(&model.config)?;
    w.section(TAG_CONFIG, |w| {
        w.buf.extend_from_slice(config_json.as_bytes());
    });
    w.section(TAG_SHAPES, |w| {
        w.u64(model.num_types() as u64);
        for list in [&model.sizes, &model.cluster_counts, &model.feature_dims] {
            for &n in list.iter() {
                w.u64(n as u64);
            }
        }
    });
    w.section(TAG_G_BLOCKS, |w| mat_list(w, &model.g_blocks));
    w.section(TAG_S, |w| {
        w.u64(model.s.rows() as u64);
        w.u64(model.s.cols() as u64);
        w.f64s(model.s.as_slice());
    });
    w.section(TAG_CENTROIDS, |w| mat_list(w, &model.centroids));
    w.section(TAG_CENTROID_NORMS, |w| {
        w.u64(model.centroid_norms.len() as u64);
        for norms in &model.centroid_norms {
            w.u64(norms.len() as u64);
            w.f64s(norms);
        }
    });
    if let Some(method) = &model.method {
        w.section(TAG_METHOD, |w| {
            w.buf.extend_from_slice(method.as_bytes());
        });
    }
    let digest = word_fnv(&w.buf);
    w.u64(digest);
    Ok(w.buf)
}

// ---- reader ----------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("truncated bundle: need {n} bytes at {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn len_as_usize(&mut self, what: &str) -> Result<usize, ServeError> {
        let v = self.u64()?;
        // A length can never legitimately exceed the bytes that remain;
        // checking here keeps later `take`/allocation sizes sane even on
        // adversarial input.
        if v > (self.buf.len() - self.pos) as u64 {
            return Err(corrupt(format!("{what} length {v} exceeds bundle size")));
        }
        Ok(v as usize)
    }

    fn f64s(&mut self, count: usize, what: &str) -> Result<Vec<f64>, ServeError> {
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| corrupt(format!("{what}: element count {count} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect())
    }
}

fn read_mat(c: &mut Cursor<'_>, what: &str) -> Result<Mat, ServeError> {
    let rows = c.len_as_usize(what)?;
    let cols = c.len_as_usize(what)?;
    let elems = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt(format!("{what}: {rows}x{cols} overflows")))?;
    let data = c.f64s(elems, what)?;
    Mat::from_vec(rows, cols, data).map_err(|e| corrupt(format!("{what}: {e}")))
}

fn read_mat_list(c: &mut Cursor<'_>, what: &str) -> Result<Vec<Mat>, ServeError> {
    let count = c.len_as_usize(what)?;
    (0..count).map(|_| read_mat(c, what)).collect()
}

/// Parse and verify a v2 binary bundle: magic, versions, file digest,
/// section completeness, and structural model validation.
///
/// # Errors
/// * [`ServeError::Corrupt`] — wrong magic, truncation, digest
///   mismatch, malformed sections, or shape violations;
/// * [`ServeError::SchemaVersion`] — a well-formed bundle written by an
///   incompatible model schema version.
pub fn from_bytes(bytes: &[u8]) -> Result<FittedModel, ServeError> {
    if !bytes.starts_with(BINARY_MAGIC) {
        return Err(corrupt("not a v2 binary bundle (bad magic)"));
    }
    // Header (32) + trailer (8) is the smallest well-formed bundle.
    if bytes.len() < 40 || !bytes.len().is_multiple_of(8) {
        return Err(corrupt(format!(
            "bundle size {} is not a valid v2 layout",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = word_fnv(body);
    if stored != computed {
        return Err(corrupt(format!(
            "file digest mismatch: bundle says {stored:#018x}, bytes hash to {computed:#018x}"
        )));
    }
    let mut c = Cursor { buf: body, pos: 8 };
    let container = c.u32()?;
    if container != CONTAINER_VERSION {
        return Err(corrupt(format!(
            "unsupported binary container version {container} (this build supports {CONTAINER_VERSION})"
        )));
    }
    let schema = c.u32()?;
    if schema != SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: SCHEMA_VERSION,
        });
    }
    let _model_digest = c.u64()?; // metadata; integrity is the file digest
    let section_count = c.u32()?;
    let _reserved = c.u32()?;

    let mut config: Option<RhchmeConfig> = None;
    let mut shapes: Option<(Vec<usize>, Vec<usize>, Vec<usize>)> = None;
    let mut g_blocks: Option<Vec<Mat>> = None;
    let mut s: Option<Mat> = None;
    let mut centroids: Option<Vec<Mat>> = None;
    let mut centroid_norms: Option<Vec<Vec<f64>>> = None;
    let mut method: Option<String> = None;

    for _ in 0..section_count {
        let tag = c.u32()?;
        let _reserved = c.u32()?;
        let len = c.len_as_usize("section")?;
        let payload = c.take(len)?;
        let mut sc = Cursor {
            buf: payload,
            pos: 0,
        };
        let slot_taken = match tag {
            TAG_CONFIG => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| corrupt(format!("config section is not UTF-8: {e}")))?;
                config
                    .replace(RhchmeConfig::from_value(&serde_json::from_str(text)?)?)
                    .is_some()
            }
            TAG_SHAPES => {
                let k = sc.len_as_usize("shapes")?;
                let mut lists = Vec::with_capacity(3);
                for _ in 0..3 {
                    let list: Vec<usize> = (0..k)
                        .map(|_| sc.u64().map(|v| v as usize))
                        .collect::<Result<_, _>>()?;
                    lists.push(list);
                }
                let fd = lists.pop().expect("three lists");
                let cc = lists.pop().expect("two lists");
                let sz = lists.pop().expect("one list");
                shapes.replace((sz, cc, fd)).is_some()
            }
            TAG_G_BLOCKS => g_blocks
                .replace(read_mat_list(&mut sc, "G block")?)
                .is_some(),
            TAG_S => s.replace(read_mat(&mut sc, "S")?).is_some(),
            TAG_CENTROIDS => centroids
                .replace(read_mat_list(&mut sc, "centroid block")?)
                .is_some(),
            TAG_CENTROID_NORMS => {
                let count = sc.len_as_usize("centroid norms")?;
                let norms: Vec<Vec<f64>> = (0..count)
                    .map(|_| {
                        let len = sc.len_as_usize("centroid norms")?;
                        sc.f64s(len, "centroid norms")
                    })
                    .collect::<Result<_, _>>()?;
                centroid_norms.replace(norms).is_some()
            }
            TAG_METHOD => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| corrupt(format!("method section is not UTF-8: {e}")))?;
                method.replace(text.to_string()).is_some()
            }
            other => return Err(corrupt(format!("unknown section tag {other}"))),
        };
        if slot_taken {
            return Err(corrupt(format!("duplicate section tag {tag}")));
        }
        // Skip the zero padding to the next 8-byte boundary.
        let pad = (8 - len % 8) % 8;
        c.take(pad)?;
    }

    let (sizes, cluster_counts, feature_dims) =
        shapes.ok_or_else(|| corrupt("missing shapes section"))?;
    let model = FittedModel {
        schema_version: schema,
        method,
        config: config.ok_or_else(|| corrupt("missing config section"))?,
        sizes,
        cluster_counts,
        feature_dims,
        g_blocks: g_blocks.ok_or_else(|| corrupt("missing G blocks section"))?,
        s: s.ok_or_else(|| corrupt("missing S section"))?,
        centroids: centroids.ok_or_else(|| corrupt("missing centroids section"))?,
        centroid_norms: centroid_norms.ok_or_else(|| corrupt("missing centroid norms section"))?,
    };
    model.validate().map_err(|e| corrupt(e.to_string()))?;
    Ok(model)
}

/// Save a model as a v2 binary bundle.
///
/// # Errors
/// Propagates validation failures and I/O errors.
pub fn save_binary(model: &FittedModel, path: impl AsRef<Path>) -> Result<(), ServeError> {
    let bytes = to_bytes(model)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Load and verify a v2 binary bundle from a file.
///
/// # Errors
/// Propagates I/O errors and every verification failure of
/// [`from_bytes`].
pub fn load_binary(path: impl AsRef<Path>) -> Result<FittedModel, ServeError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_fitted_model;

    fn assert_bit_identical(a: &FittedModel, b: &FittedModel) {
        assert_eq!(a.schema_version, b.schema_version);
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.cluster_counts, b.cluster_counts);
        assert_eq!(a.feature_dims, b.feature_dims);
        assert_eq!(a.s, b.s);
        for t in 0..a.num_types() {
            assert_eq!(a.g_blocks[t], b.g_blocks[t]);
            assert_eq!(a.centroids[t], b.centroids[t]);
            for (x, y) in a.centroid_norms[t].iter().zip(&b.centroid_norms[t]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let model = tiny_fitted_model(71);
        let bytes = to_bytes(&model).unwrap();
        assert!(bytes.starts_with(BINARY_MAGIC));
        assert_eq!(bytes.len() % 8, 0, "layout must stay word-aligned");
        let back = from_bytes(&bytes).unwrap();
        assert_bit_identical(&model, &back);
    }

    #[test]
    fn file_round_trip() {
        let model = tiny_fitted_model(72);
        let dir = std::env::temp_dir().join("mtrl_serve_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mtrl");
        save_binary(&model, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back.content_digest(), model.content_digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_byte_flip_in_the_header_is_caught() {
        let model = tiny_fitted_model(73);
        let bytes = to_bytes(&model).unwrap();
        for at in 0..32 {
            let mut tampered = bytes.clone();
            tampered[at] ^= 0x40;
            assert!(
                from_bytes(&tampered).is_err(),
                "header byte {at} flipped silently"
            );
        }
    }

    #[test]
    fn payload_tampering_fails_the_digest() {
        let model = tiny_fitted_model(74);
        let bytes = to_bytes(&model).unwrap();
        // Flip one bit somewhere in the middle of the matrix payloads.
        let mut tampered = bytes.clone();
        let at = bytes.len() / 2;
        tampered[at] ^= 1;
        match from_bytes(&tampered) {
            Err(ServeError::Corrupt(msg)) => assert!(msg.contains("digest"), "{msg}"),
            other => panic!("expected digest failure, got {other:?}"),
        }
        // Truncation is caught too (the digest moves with the tail).
        assert!(from_bytes(&bytes[..bytes.len() - 16]).is_err());
        assert!(from_bytes(&bytes[..7]).is_err());
        assert!(from_bytes(b"MTRLFMv2").is_err());
    }

    #[test]
    fn wrong_schema_version_is_typed() {
        let model = tiny_fitted_model(75);
        let mut bytes = to_bytes(&model).unwrap();
        bytes[12..16].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal so the digest check passes and the version check is
        // what fires.
        let digest_at = bytes.len() - 8;
        let reseal = word_fnv(&bytes[..digest_at]);
        bytes[digest_at..].copy_from_slice(&reseal.to_le_bytes());
        match from_bytes(&bytes) {
            Err(ServeError::SchemaVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected SchemaVersion, got {other:?}"),
        }
    }

    #[test]
    fn method_provenance_round_trips_and_stays_optional() {
        // Without provenance the bundle keeps the pre-provenance layout:
        // six sections, no tag 7 — an old reader's contract.
        let mut plain = tiny_fitted_model(77);
        plain.method = None;
        let plain_bytes = to_bytes(&plain).unwrap();
        assert_eq!(
            u32::from_le_bytes(plain_bytes[24..28].try_into().unwrap()),
            6
        );
        assert!(from_bytes(&plain_bytes).unwrap().method.is_none());

        // With provenance: one extra optional section, round-tripped.
        let tagged = tiny_fitted_model(77).with_method("ensemble");
        let tagged_bytes = to_bytes(&tagged).unwrap();
        assert_eq!(
            u32::from_le_bytes(tagged_bytes[24..28].try_into().unwrap()),
            7
        );
        let back = from_bytes(&tagged_bytes).unwrap();
        assert_eq!(back.method.as_deref(), Some("ensemble"));
        assert_eq!(back.content_digest(), tagged.content_digest());
    }

    #[test]
    fn json_and_binary_agree() {
        // The migration path: a model saved as JSON v1 and reloaded
        // must produce byte-identical binary output to the original.
        let model = tiny_fitted_model(76);
        let via_json =
            crate::persist::from_json(&crate::persist::to_json(&model).unwrap()).unwrap();
        assert_eq!(to_bytes(&model).unwrap(), to_bytes(&via_json).unwrap());
    }
}
