//! Versioned on-disk persistence of [`FittedModel`] bundles.
//!
//! Two formats share this module:
//!
//! * **v1 (JSON)** — the human-readable envelope below, written by
//!   [`save`] and read by [`load`]. Kept as the migration path and for
//!   debugging; parsing costs ~2 ms per model.
//! * **v2 (binary)** — [`binary`]: a length-prefixed little-endian
//!   section layout with an FNV integrity digest, built for fleet
//!   restarts where hundreds of models must load in milliseconds
//!   (≥10× faster than the JSON path on the same model, gated in
//!   `BENCH_gateway.json`). Written by [`save_binary`], read by
//!   [`load_binary`].
//!
//! [`load_any`] sniffs the leading bytes and accepts either, which is
//! how a fleet migrates: `load_any` old JSON bundles, `save_binary`
//! them back out, delete the originals at leisure.
//!
//! # v1 JSON format
//!
//! A bundle is a single JSON document — an *envelope* around the model:
//!
//! ```json
//! {
//!   "format": "mtrl-serve/fitted-model",
//!   "schema_version": 1,
//!   "content_digest": "0x1f3a…",
//!   "model": { …the FittedModel fields… }
//! }
//! ```
//!
//! * `format` — fixed marker so unrelated JSON files fail fast;
//! * `schema_version` — copied from
//!   [`rhchme::export::SCHEMA_VERSION`] at save time; [`load`] refuses a
//!   bundle whose version differs from the version this build supports
//!   (no silent migration);
//! * `content_digest` — FNV-1a over the model's full content (schema
//!   version, configuration, shapes, matrix data; hex-encoded, since
//!   JSON numbers cannot carry 64 bits exactly); recomputed on load to
//!   catch silent corruption;
//! * `model` — the [`FittedModel`] itself; `f64` entries are written in
//!   shortest-round-trip form, so save → load is bit-exact.

use crate::error::ServeError;
use rhchme::export::{FittedModel, SCHEMA_VERSION};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

pub mod binary;
#[cfg(unix)]
pub mod mmap;

pub use binary::{from_bytes, load_binary, save_binary, to_bytes, BINARY_MAGIC, CONTAINER_VERSION};

/// Fixed format marker of a fitted-model bundle.
pub const FORMAT_MARKER: &str = "mtrl-serve/fitted-model";

/// Serialize a model into its JSON envelope.
///
/// # Errors
/// Returns [`ServeError::Corrupt`] when the model fails its own
/// structural validation (never serialize garbage).
pub fn to_json(model: &FittedModel) -> Result<String, ServeError> {
    model
        .validate()
        .map_err(|e| ServeError::Corrupt(format!("refusing to save an invalid model: {e}")))?;
    let envelope = Value::Object(vec![
        (
            "format".to_string(),
            Value::String(FORMAT_MARKER.to_string()),
        ),
        (
            "schema_version".to_string(),
            model.schema_version.to_value(),
        ),
        (
            "content_digest".to_string(),
            Value::String(format!("{:#018x}", model.content_digest())),
        ),
        ("model".to_string(), model.to_value()),
    ]);
    Ok(serde_json::to_string_pretty(&envelope)?)
}

/// Parse and fully verify a JSON envelope: format marker, schema
/// version, structural validation, and content digest.
///
/// # Errors
/// * [`ServeError::Corrupt`] — malformed JSON, wrong marker, shape
///   violations, or a digest mismatch;
/// * [`ServeError::SchemaVersion`] — a well-formed bundle written by an
///   incompatible schema version.
pub fn from_json(text: &str) -> Result<FittedModel, ServeError> {
    let envelope: Value = serde_json::from_str(text)?;
    let marker = envelope
        .get("format")
        .and_then(Value::as_str)
        .unwrap_or_default();
    if marker != FORMAT_MARKER {
        return Err(ServeError::Corrupt(format!(
            "not a fitted-model bundle (format marker `{marker}`)"
        )));
    }
    let found = u32::from_value(envelope.get_field("schema_version")?)?;
    if found != SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found,
            supported: SCHEMA_VERSION,
        });
    }
    let model = FittedModel::from_value(envelope.get_field("model")?)?;
    model
        .validate()
        .map_err(|e| ServeError::Corrupt(e.to_string()))?;
    let stored = envelope
        .get_field("content_digest")?
        .as_str()
        .ok_or_else(|| ServeError::Corrupt("content_digest is not a string".into()))?
        .to_string();
    let recomputed = format!("{:#018x}", model.content_digest());
    if stored != recomputed {
        return Err(ServeError::Corrupt(format!(
            "content digest mismatch: bundle says {stored}, data hashes to {recomputed}"
        )));
    }
    Ok(model)
}

/// Save a model bundle to a file (see the module docs for the format).
///
/// # Errors
/// Propagates validation failures and I/O errors.
pub fn save(model: &FittedModel, path: impl AsRef<Path>) -> Result<(), ServeError> {
    let json = to_json(model)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Load and verify a model bundle from a file.
///
/// # Errors
/// Propagates I/O errors and every verification failure of [`from_json`].
pub fn load(path: impl AsRef<Path>) -> Result<FittedModel, ServeError> {
    let text = std::fs::read_to_string(path)?;
    from_json(&text)
}

/// Load a bundle in either format, sniffing the leading bytes: the v2
/// binary magic routes to the binary parser, anything else is treated
/// as a v1 JSON envelope. This is the fleet-restart entry point — a
/// model directory can hold a mix of generations and every file still
/// loads.
///
/// On unix the file is memory-mapped ([`mmap::MappedFile`]) instead of
/// read into a heap buffer, so the binary parser and its digest pass
/// stream straight from the page cache; every verification step (word
/// digest for v2, content digest for v1) runs unchanged on the mapped
/// bytes. Unmappable files (empty, exotic filesystems, non-unix
/// targets) fall back to `std::fs::read`.
///
/// # Errors
/// Propagates I/O errors and the chosen format's verification failures.
pub fn load_any(path: impl AsRef<Path>) -> Result<FittedModel, ServeError> {
    #[cfg(unix)]
    if let Ok(map) = mmap::MappedFile::open(path.as_ref()) {
        return parse_any(map.bytes());
    }
    let bytes = std::fs::read(path)?;
    parse_any(&bytes)
}

/// Format-sniffing parse shared by the mapped and buffered paths.
fn parse_any(bytes: &[u8]) -> Result<FittedModel, ServeError> {
    if bytes.starts_with(BINARY_MAGIC) {
        from_bytes(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| ServeError::Corrupt(format!("bundle is neither binary nor UTF-8: {e}")))?;
        from_json(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_fitted_model;

    #[test]
    fn json_round_trip_is_bit_exact() {
        let model = tiny_fitted_model(31);
        let json = to_json(&model).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.schema_version, model.schema_version);
        assert_eq!(back.sizes, model.sizes);
        assert_eq!(back.cluster_counts, model.cluster_counts);
        assert_eq!(back.s, model.s);
        for t in 0..model.num_types() {
            assert_eq!(back.g_blocks[t], model.g_blocks[t]);
            assert_eq!(back.centroids[t], model.centroids[t]);
            // Bit-exactness, not approximate equality.
            for (a, b) in model.centroid_norms[t].iter().zip(&back.centroid_norms[t]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(back.content_digest(), model.content_digest());
    }

    #[test]
    fn file_round_trip() {
        let model = tiny_fitted_model(32);
        let dir = std::env::temp_dir().join("mtrl_serve_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.content_digest(), model.content_digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_marker_rejected() {
        assert!(matches!(
            from_json("{\"format\": \"something-else\"}"),
            Err(ServeError::Corrupt(_))
        ));
        assert!(from_json("not json at all").is_err());
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let model = tiny_fitted_model(33);
        let json = to_json(&model).unwrap();
        let bumped = json.replacen("\"schema_version\": 1", "\"schema_version\": 999", 1);
        match from_json(&bumped) {
            Err(ServeError::SchemaVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, 1);
            }
            other => panic!("expected SchemaVersion error, got {other:?}"),
        }
    }

    #[test]
    fn tampered_data_fails_digest() {
        let model = tiny_fitted_model(34);
        let json = to_json(&model).unwrap();
        // Flip one matrix entry in the serialized text: find the S data
        // and inject a different leading digit.
        let needle = "\"data\": [";
        let at = json.rfind(needle).unwrap() + needle.len();
        let mut tampered = json.clone();
        tampered.insert_str(at, "4242.0, ");
        // Either the digest or shape validation must notice.
        assert!(from_json(&tampered).is_err());
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(from_json(&format!(
            "{{\"format\": \"{FORMAT_MARKER}\", \"schema_version\": 1}}"
        ))
        .is_err());
    }
}
