//! Read-only memory mapping for model payloads (unix only).
//!
//! Fleet restarts load hundreds of binary bundles; `std::fs::read`
//! copies every byte through a heap buffer before parsing touches it.
//! Mapping the file instead lets the v2 parser (and its digest pass)
//! read straight from the page cache — the copy happens once, per page,
//! on fault. The mapping is private and read-only, torn down on drop,
//! and exposes plain `&[u8]`, so callers (`load_any`) are untouched by
//! where the bytes live.
//!
//! This is the only `unsafe` in the workspace; it is confined to the
//! two raw syscall wrappers below and the slice view over a mapping
//! whose lifetime the RAII type owns.

use std::fs::File;
use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;
use std::path::Path;

// Raw bindings to the mapping syscalls (no libc crate in this
// workspace). Constants are the Linux/x86-64 values, which also hold on
// the other unix targets the CI matrix covers.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

/// A read-only private mapping of a whole file, unmapped on drop.
pub struct MappedFile {
    ptr: *mut c_void,
    len: usize,
}

impl MappedFile {
    /// Map `path` read-only.
    ///
    /// # Errors
    /// I/O errors from open/metadata, and `InvalidInput` for an empty
    /// file (a zero-length mapping is not representable; callers fall
    /// back to `std::fs::read`).
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        // SAFETY: std::ptr::null_mut lets the kernel pick the address;
        // the fd is valid for the duration of the call; PROT_READ +
        // MAP_PRIVATE cannot alias writable memory. The fd may close
        // right after — the mapping keeps the pages alive.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MappedFile { ptr, len })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, valid until Drop; the returned slice borrows `self`,
        // so it cannot outlive the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `(ptr, len)` is exactly what mmap returned; a failed
        // munmap leaks the mapping, which is the safe failure mode.
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_exactly() {
        let dir = std::env::temp_dir().join("mtrl_serve_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected() {
        let dir = std::env::temp_dir().join("mtrl_serve_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        assert!(MappedFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MappedFile::open(Path::new("/nonexistent/mtrl/x.bin")).is_err());
    }
}
