//! Error taxonomy for the serving subsystem — the API contract shared
//! by in-process callers and the network gateway.
//!
//! # Status-code contract
//!
//! Every variant maps onto exactly one HTTP status code, and
//! `mtrl-gateway` performs that mapping with [`ServeError::http_status`]
//! — in-process callers and wire callers see the *same* failure
//! taxonomy:
//!
//! | variant                      | status | meaning                                    |
//! |------------------------------|--------|--------------------------------------------|
//! | [`ServeError::BadRequest`]   | 400    | request is malformed or inconsistent       |
//! | [`ServeError::NotFound`]     | 404    | no model registered under that name        |
//! | [`ServeError::Overloaded`]   | 429    | admission control shed the request         |
//! | [`ServeError::Deadline`]     | 504    | the request's deadline expired in queue    |
//! | [`ServeError::Shutdown`]     | 503    | the engine is draining and accepts no work |
//! | [`ServeError::Io`]           | 500    | persistence I/O failure (not a request)    |
//! | [`ServeError::Corrupt`]      | 500    | model bundle failed verification           |
//! | [`ServeError::SchemaVersion`]| 500    | model bundle from an incompatible schema   |
//!
//! The `Overloaded` variant carries a retry hint that the gateway
//! surfaces as a `Retry-After` header; in-process callers can use it to
//! back off the same way.

use std::fmt;
use std::time::Duration;

/// Errors surfaced by persistence, fold-in, the serve engine, and the
/// gateway request path. See the module docs for the HTTP mapping
/// contract.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure while saving or loading a model bundle.
    Io(std::io::Error),
    /// The bundle failed to parse or did not match the expected schema.
    Corrupt(String),
    /// The bundle parsed but its schema version is not supported.
    SchemaVersion {
        /// Version found in the bundle.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A request referenced a model name that is not registered.
    NotFound(String),
    /// A request is malformed or inconsistent with the model (type
    /// index, feature dimension, non-finite values…).
    BadRequest(String),
    /// Admission control shed the request: the queue was at capacity.
    Overloaded {
        /// Suggested back-off before retrying.
        retry_after: Duration,
    },
    /// The request's deadline expired before a worker picked it up.
    Deadline {
        /// How long past the deadline the request was when it was
        /// abandoned.
        exceeded_by: Duration,
    },
    /// The engine is shutting down and can no longer accept work.
    Shutdown,
}

impl ServeError {
    /// The HTTP status code this error maps onto — the 1:1 contract the
    /// gateway implements (see the module docs).
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::Overloaded { .. } => 429,
            ServeError::Shutdown => 503,
            ServeError::Deadline { .. } => 504,
            ServeError::Io(_) | ServeError::Corrupt(_) | ServeError::SchemaVersion { .. } => 500,
        }
    }

    /// Retry hint for shed requests (`Retry-After` on the wire), `None`
    /// for errors that retrying cannot fix.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServeError::Overloaded { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "model bundle I/O error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt model bundle: {msg}"),
            ServeError::SchemaVersion { found, supported } => write!(
                f,
                "unsupported model schema version {found} (this build supports {supported})"
            ),
            ServeError::NotFound(name) => write!(f, "no model registered as `{name}`"),
            ServeError::BadRequest(msg) => write!(f, "bad assign request: {msg}"),
            ServeError::Overloaded { retry_after } => write!(
                f,
                "overloaded: request shed by admission control (retry after {retry_after:?})"
            ),
            ServeError::Deadline { exceeded_by } => write!(
                f,
                "deadline expired {exceeded_by:?} before the request was served"
            ),
            ServeError::Shutdown => write!(f, "serve engine is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde::Error> for ServeError {
    fn from(e: serde::Error) -> Self {
        ServeError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::NotFound("m".into()).to_string().contains("`m`"));
        assert!(ServeError::SchemaVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        let io: ServeError = std::io::Error::other("x").into();
        assert!(matches!(io, ServeError::Io(_)));
    }

    #[test]
    fn http_status_mapping_is_total_and_stable() {
        assert_eq!(ServeError::BadRequest("x".into()).http_status(), 400);
        assert_eq!(ServeError::NotFound("m".into()).http_status(), 404);
        assert_eq!(
            ServeError::Overloaded {
                retry_after: Duration::from_millis(50)
            }
            .http_status(),
            429
        );
        assert_eq!(ServeError::Shutdown.http_status(), 503);
        assert_eq!(
            ServeError::Deadline {
                exceeded_by: Duration::from_millis(1)
            }
            .http_status(),
            504
        );
        assert_eq!(ServeError::Corrupt("x".into()).http_status(), 500);
        assert_eq!(
            ServeError::SchemaVersion {
                found: 2,
                supported: 1
            }
            .http_status(),
            500
        );
        assert_eq!(
            ServeError::from(std::io::Error::other("x")).http_status(),
            500
        );
    }

    #[test]
    fn retry_hint_only_on_overload() {
        let shed = ServeError::Overloaded {
            retry_after: Duration::from_millis(25),
        };
        assert_eq!(shed.retry_after(), Some(Duration::from_millis(25)));
        assert_eq!(ServeError::Shutdown.retry_after(), None);
        assert_eq!(ServeError::NotFound("m".into()).retry_after(), None);
    }
}
