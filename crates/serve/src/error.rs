//! Error type for the serving subsystem.

use std::fmt;

/// Errors surfaced by persistence, fold-in and the serve engine.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure while saving or loading a model bundle.
    Io(std::io::Error),
    /// The bundle failed to parse or did not match the expected schema.
    Corrupt(String),
    /// The bundle parsed but its schema version is not supported.
    SchemaVersion {
        /// Version found in the bundle.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A request referenced a model name that is not registered.
    UnknownModel(String),
    /// A request is inconsistent with the model (type index, dimension…).
    InvalidRequest(String),
    /// The engine is shutting down and can no longer accept work.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "model bundle I/O error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt model bundle: {msg}"),
            ServeError::SchemaVersion { found, supported } => write!(
                f,
                "unsupported model schema version {found} (this build supports {supported})"
            ),
            ServeError::UnknownModel(name) => write!(f, "no model registered as `{name}`"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid assign request: {msg}"),
            ServeError::Shutdown => write!(f, "serve engine is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde::Error> for ServeError {
    fn from(e: serde::Error) -> Self {
        ServeError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::UnknownModel("m".into())
            .to_string()
            .contains("`m`"));
        assert!(ServeError::SchemaVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        let io: ServeError = std::io::Error::other("x").into();
        assert!(matches!(io, ServeError::Io(_)));
    }
}
