//! The concurrent serving engine.
//!
//! [`ServeEngine`] owns a registry of named fitted models and a pool of
//! std-only worker threads draining [`AssignRequest`] batches from an
//! mpsc queue. Requests are submitted without blocking ([`
//! ServeEngine::submit`] returns a [`PendingAssign`] handle); callers
//! that want synchronous behaviour use [`ServeEngine::assign`].
//!
//! Counters: every processed batch bumps request/document/latency
//! counters and a log-bucketed latency histogram (atomics — the hot
//! path takes no lock except the brief receiver lock to pop a job),
//! exposed as a [`StatsSnapshot`] with p50/p99/max extraction. When
//! `MTRL_OBS` is on, the same observations are mirrored into the
//! global `mtrl-obs` registry under `serve.requests`,
//! `serve.documents`, `serve.errors` (counters) and
//! `serve.latency_ns`, `serve.busy_ns` (histograms).
//!
//! Shutdown: dropping the engine closes the queue, lets the workers
//! drain what they already accepted, and joins them.

use crate::assign::{Assigner, SparseVec};
use crate::error::ServeError;
use mtrl_obs::{Histogram, HistogramSnapshot};
use rhchme::export::FittedModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A batch of unseen objects to fold into one registered model.
#[derive(Debug, Clone)]
pub struct AssignRequest {
    /// Name the model was registered under.
    pub model: String,
    /// Which object type the documents belong to (0 = documents in the
    /// canonical corpus layout).
    pub type_index: usize,
    /// The batch, each a sparse vector over that type's feature view.
    pub docs: Vec<SparseVec>,
}

/// The result of one [`AssignRequest`].
#[derive(Debug, Clone)]
pub struct AssignResponse {
    /// Posterior over clusters for every input, in order.
    pub posteriors: Vec<Vec<f64>>,
    /// Hard labels (posterior argmax), same order.
    pub labels: Vec<usize>,
    /// Queue + compute time from submission to completion.
    pub latency: Duration,
}

/// Handle to a submitted request; resolve it with [`PendingAssign::wait`].
pub struct PendingAssign {
    rx: Receiver<Result<AssignResponse, ServeError>>,
}

impl PendingAssign {
    /// Block until the engine has processed the request.
    ///
    /// # Errors
    /// Propagates assignment errors; returns [`ServeError::Shutdown`] if
    /// the engine dropped the request while shutting down.
    pub fn wait(self) -> Result<AssignResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)?
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    documents: AtomicU64,
    errors: AtomicU64,
    busy_nanos: AtomicU64,
    latency_nanos: AtomicU64,
    // Always-on (independent of MTRL_OBS): recording is a handful of
    // relaxed atomic bumps, and p50/p99 must be available from
    // `stats()` unconditionally.
    latency_hist: Histogram,
}

/// Point-in-time view of the engine counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Successfully processed requests.
    pub requests: u64,
    /// Documents assigned across all successful requests.
    pub documents: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Total worker compute time (sum over workers).
    pub busy: Duration,
    /// Total submission-to-completion latency (sum over requests).
    pub total_latency: Duration,
    /// Per-request submission-to-completion latency distribution
    /// (nanoseconds); source for [`StatsSnapshot::quantile`].
    pub latency: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Mean submission-to-completion latency per request.
    #[deprecated(
        since = "0.1.0",
        note = "the mean hides tail latency; use `quantile(0.5)` / `quantile(0.99)`"
    )]
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency.div_f64(self.requests as f64)
        }
    }

    /// Latency quantile (`q ∈ [0, 1]`), e.g. `quantile(0.99)` for p99.
    /// Resolution is one histogram bucket (≤ ~3.2% relative error).
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(q))
    }

    /// Slowest observed request.
    pub fn max_latency(&self) -> Duration {
        Duration::from_nanos(self.latency.max())
    }

    /// Documents per second of worker compute time.
    pub fn throughput(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.documents as f64 / secs
        }
    }
}

struct Job {
    request: AssignRequest,
    submitted: Instant,
    reply: Sender<Result<AssignResponse, ServeError>>,
}

struct Inner {
    models: RwLock<HashMap<String, Arc<Assigner>>>,
    queue: Mutex<Receiver<Job>>,
    counters: Counters,
}

/// Multi-model, multi-threaded fold-in server.
pub struct ServeEngine {
    inner: Arc<Inner>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spin up an engine with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let inner = Arc::new(Inner {
            models: RwLock::new(HashMap::new()),
            queue: Mutex::new(rx),
            counters: Counters::default(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mtrl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a serve worker")
            })
            .collect();
        ServeEngine {
            inner,
            tx: Some(tx),
            workers,
        }
    }

    /// Register (or replace) a model under a name. The model is wrapped
    /// in an [`Assigner`], which validates it.
    ///
    /// Re-registering an existing name is an **atomic hot-swap** — the
    /// streaming refresh path (`mtrl-stream`) relies on these semantics
    /// to roll a refitted model into a live engine:
    ///
    /// * the fully-validated `Arc<Assigner>` replaces the old one in a
    ///   single map insert under the registry write lock, so a
    ///   concurrent request resolves either the old model or the new
    ///   one, never a partially-initialised state (no torn read);
    /// * in-flight requests that already resolved their `Arc` finish
    ///   against the old model (it is freed when the last of them
    ///   drops it); requests submitted after the swap see the new one;
    /// * a swap never errors a request: there is no gap in which the
    ///   name is unregistered.
    ///
    /// # Errors
    /// Returns [`ServeError::Corrupt`] for a model that fails validation
    /// (in which case the previously registered model, if any, stays in
    /// place untouched).
    pub fn register(&self, name: impl Into<String>, model: FittedModel) -> Result<(), ServeError> {
        self.register_shared(name, Arc::new(Assigner::new(model)?));
        Ok(())
    }

    /// Register (or hot-swap, same semantics as [`Self::register`]) a
    /// pre-built assigner without cloning or re-validating its model —
    /// the zero-copy path for callers that already hold a validated
    /// `Arc<Assigner>` they keep using themselves, like the streaming
    /// refresh loop (`mtrl-stream`).
    pub fn register_shared(&self, name: impl Into<String>, assigner: Arc<Assigner>) {
        self.inner
            .models
            .write()
            .expect("model registry poisoned")
            .insert(name.into(), assigner);
    }

    /// Remove a model; returns whether it was present. In-flight requests
    /// referencing it keep their already-resolved `Arc` and finish.
    pub fn unregister(&self, name: &str) -> bool {
        self.inner
            .models
            .write()
            .expect("model registry poisoned")
            .remove(name)
            .is_some()
    }

    /// Names of all registered models (sorted).
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .models
            .read()
            .expect("model registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Enqueue a request; returns immediately with a wait handle.
    pub fn submit(&self, request: AssignRequest) -> PendingAssign {
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            request,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        // The sender exists for the whole engine lifetime; a send only
        // fails during shutdown, in which case the handle reports it.
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
        PendingAssign { rx: reply_rx }
    }

    /// Submit and wait — the synchronous convenience path.
    ///
    /// # Errors
    /// Propagates the request's assignment errors.
    pub fn assign(
        &self,
        model: &str,
        type_index: usize,
        docs: Vec<SparseVec>,
    ) -> Result<AssignResponse, ServeError> {
        self.submit(AssignRequest {
            model: model.to_string(),
            type_index,
            docs,
        })
        .wait()
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            documents: c.documents.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
            total_latency: Duration::from_nanos(c.latency_nanos.load(Ordering::Relaxed)),
            latency: c.latency_hist.snapshot(),
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Closing the channel ends `recv` with an error once the queue is
        // drained; workers then exit.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Pop under the lock, process outside it.
        let job = {
            let queue = inner.queue.lock().expect("job queue poisoned");
            queue.recv()
        };
        let Ok(job) = job else { break };
        let started = Instant::now();
        let result = process(inner, &job.request, job.submitted);
        let busy = started.elapsed();
        let latency = job.submitted.elapsed();
        let c = &inner.counters;
        let obs = mtrl_obs::enabled();
        match &result {
            Ok(response) => {
                c.requests.fetch_add(1, Ordering::Relaxed);
                c.documents
                    .fetch_add(response.posteriors.len() as u64, Ordering::Relaxed);
                c.busy_nanos
                    .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
                c.latency_nanos
                    .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
                c.latency_hist.record_duration(latency);
                if obs {
                    let reg = mtrl_obs::global();
                    reg.add("serve.requests", 1);
                    reg.add("serve.documents", response.posteriors.len() as u64);
                    reg.histogram("serve.latency_ns").record_duration(latency);
                    reg.histogram("serve.busy_ns").record_duration(busy);
                }
            }
            Err(_) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
                if obs {
                    mtrl_obs::global().add("serve.errors", 1);
                }
            }
        }
        // The caller may have dropped its handle; that is fine.
        let _ = job.reply.send(result);
    }
}

fn process(
    inner: &Inner,
    request: &AssignRequest,
    submitted: Instant,
) -> Result<AssignResponse, ServeError> {
    let assigner = {
        let models = inner.models.read().expect("model registry poisoned");
        models
            .get(&request.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(request.model.clone()))?
    };
    let posteriors = assigner.assign_batch(request.type_index, &request.docs)?;
    let labels = Assigner::labels(&posteriors);
    Ok(AssignResponse {
        posteriors,
        labels,
        // Submission-to-completion, matching the field's documentation —
        // queue wait counts, not just compute.
        latency: submitted.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_fitted_model;

    fn engine_with_model(name: &str, seed: u64) -> ServeEngine {
        let engine = ServeEngine::new(3);
        engine.register(name, tiny_fitted_model(seed)).unwrap();
        engine
    }

    fn some_docs(n: usize) -> Vec<SparseVec> {
        (0..n)
            .map(|i| SparseVec::new(vec![i % 7, (i % 7) + 3], vec![1.0, 0.5]).unwrap())
            .collect()
    }

    #[test]
    fn sync_assign_round_trip() {
        let engine = engine_with_model("m", 51);
        let response = engine.assign("m", 0, some_docs(10)).unwrap();
        assert_eq!(response.posteriors.len(), 10);
        assert_eq!(response.labels.len(), 10);
        for p in &response.posteriors {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.documents, 10);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.latency.count(), 1);
        assert!(stats.quantile(0.5) > Duration::ZERO);
        assert!(stats.max_latency() >= stats.quantile(0.5));
    }

    #[test]
    fn latency_quantiles_are_ordered_and_bounded() {
        let engine = engine_with_model("m", 62);
        for _ in 0..24 {
            engine.assign("m", 0, some_docs(2)).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.latency.count(), 24);
        let (p50, p90, p99) = (
            stats.quantile(0.5),
            stats.quantile(0.9),
            stats.quantile(0.99),
        );
        assert!(Duration::ZERO < p50 && p50 <= p90 && p90 <= p99);
        assert!(p99 <= stats.max_latency());
        assert!(stats.max_latency() <= stats.total_latency);
    }

    #[test]
    #[allow(deprecated)]
    fn mean_latency_stays_for_backward_compat() {
        let engine = engine_with_model("m", 63);
        engine.assign("m", 0, some_docs(4)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.mean_latency(), stats.total_latency);
        assert!(stats.mean_latency() > Duration::ZERO);
    }

    #[test]
    fn concurrent_submissions_all_resolve() {
        let engine = engine_with_model("m", 52);
        let pending: Vec<PendingAssign> = (0..32)
            .map(|_| {
                engine.submit(AssignRequest {
                    model: "m".into(),
                    type_index: 0,
                    docs: some_docs(4),
                })
            })
            .collect();
        for p in pending {
            let r = p.wait().unwrap();
            assert_eq!(r.posteriors.len(), 4);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 32);
        assert_eq!(stats.documents, 128);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn unknown_model_is_an_error_not_a_crash() {
        let engine = engine_with_model("m", 53);
        match engine.assign("ghost", 0, some_docs(1)) {
            Err(ServeError::UnknownModel(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        assert_eq!(engine.stats().errors, 1);
        // The engine still serves the real model afterwards.
        assert!(engine.assign("m", 0, some_docs(1)).is_ok());
    }

    #[test]
    fn registry_operations() {
        let engine = engine_with_model("a", 54);
        engine.register("b", tiny_fitted_model(55)).unwrap();
        assert_eq!(engine.model_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(engine.unregister("a"));
        assert!(!engine.unregister("a"));
        assert_eq!(engine.model_names(), vec!["b".to_string()]);
    }

    #[test]
    fn replace_model_under_same_name() {
        let engine = engine_with_model("m", 56);
        engine.register("m", tiny_fitted_model(57)).unwrap();
        assert_eq!(engine.model_names().len(), 1);
        assert!(engine.assign("m", 0, some_docs(2)).is_ok());
    }

    #[test]
    fn hot_swap_is_atomic_under_load() {
        // Hammer `assign` from several threads while the main thread
        // repeatedly re-registers the name with a different model. Every
        // response must succeed and equal one model's exact output —
        // half-swapped state would produce a posterior matching neither.
        let engine = Arc::new(ServeEngine::new(4));
        let a = tiny_fitted_model(60);
        let b = tiny_fitted_model(61);
        engine.register("m", a.clone()).unwrap();
        let probe = SparseVec::new(vec![1, 4, 9], vec![1.0, 0.5, 0.25]).unwrap();
        let pa = Assigner::new(a.clone()).unwrap().assign(0, &probe).unwrap();
        let pb = Assigner::new(b.clone()).unwrap().assign(0, &probe).unwrap();
        assert_ne!(pa, pb, "probe must distinguish the two models");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let probe = probe.clone();
                let (pa, pb) = (pa.clone(), pb.clone());
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let r = engine
                            .assign("m", 0, vec![probe.clone()])
                            .expect("assign across a swap must not error");
                        let p = &r.posteriors[0];
                        assert!(p == &pa || p == &pb, "torn read: {p:?}");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        for i in 0..200 {
            let next = if i % 2 == 0 { b.clone() } else { a.clone() };
            engine.register("m", next).unwrap();
            if i % 50 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "hammer threads never got a response");
        assert_eq!(engine.stats().errors, 0);
    }

    #[test]
    fn drop_joins_workers() {
        let engine = engine_with_model("m", 58);
        let _ = engine.assign("m", 0, some_docs(3));
        drop(engine); // must not hang or panic
    }

    #[test]
    fn multiple_threads_share_engine() {
        let engine = Arc::new(engine_with_model("m", 59));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let r = engine.assign("m", 0, some_docs(2)).unwrap();
                        assert_eq!(r.posteriors.len(), 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().documents, 64);
    }
}
