//! The concurrent serving engine.
//!
//! [`ServeEngine`] owns a registry of named fitted models and a pool of
//! std-only worker threads draining [`AssignRequest`] batches from an
//! mpsc queue. Requests are submitted without blocking
//! ([`ServeEngine::submit`] returns a [`PendingAssign`] handle); callers
//! that want synchronous behaviour use [`ServeEngine::assign`], a thin
//! wrapper over `submit(...).wait()`.
//!
//! # One request shape for every caller
//!
//! [`AssignRequest`] is a builder and it is the *only* request shape in
//! the system: in-process callers hand it to [`ServeEngine::submit`],
//! and the network gateway (`mtrl-gateway`) parses its wire JSON into
//! the same builder before handing it to the same engine. Model name,
//! object type, document batch, batch hint and deadline therefore mean
//! exactly the same thing on both paths, and failures surface as the
//! same [`ServeError`] taxonomy (see `error` module docs for the 1:1
//! HTTP status mapping).
//!
//! # Admission control
//!
//! An engine built with [`ServeEngine::with_queue_capacity`] bounds its
//! queue: a submit that would exceed the bound is *shed* — the handle
//! resolves immediately to [`ServeError::Overloaded`] with a retry
//! hint, and nothing is enqueued (memory stays bounded under overload).
//! A request whose [`AssignRequest::deadline_at`] has passed by the
//! time a worker picks it up resolves to [`ServeError::Deadline`]
//! without being processed. Both count into the `shed` statistic.
//!
//! Counters: every processed batch bumps request/document/latency
//! counters and a log-bucketed latency histogram (atomics — the hot
//! path takes no lock except the brief receiver lock to pop a job),
//! exposed as a [`StatsSnapshot`] with p50/p99/max extraction. When
//! `MTRL_OBS` is on, the same observations are mirrored into the
//! global `mtrl-obs` registry under `serve.requests`,
//! `serve.documents`, `serve.errors`, `serve.shed` (counters) and
//! `serve.latency_ns`, `serve.busy_ns` (histograms).
//!
//! Shutdown: dropping the engine closes the queue, lets the workers
//! drain what they already accepted, and joins them.

use crate::assign::{Assigner, SparseVec};
use crate::error::ServeError;
use mtrl_obs::{Histogram, HistogramSnapshot};
use rhchme::export::FittedModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A batch of unseen objects to fold into one registered model — the
/// single request shape shared by the in-process API and the gateway
/// wire API.
///
/// Build one with the fluent constructor chain:
///
/// ```ignore
/// let request = AssignRequest::new("prod-model")
///     .type_index(0)
///     .docs(batch)
///     .batch_hint(64)
///     .deadline_in(Duration::from_millis(20));
/// ```
///
/// The struct is `#[non_exhaustive]`: downstream crates read the fields
/// but must construct through the builder, so new knobs (like
/// `batch_hint` and `deadline`) can be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AssignRequest {
    /// Name the model was registered under.
    pub model: String,
    /// Which object type the documents belong to (0 = documents in the
    /// canonical corpus layout).
    pub type_index: usize,
    /// The batch, each a sparse vector over that type's feature view.
    pub docs: Vec<SparseVec>,
    /// Preferred fold-in batch size for coalescing layers. The engine
    /// itself processes the batch as-is; the gateway's coalescer uses
    /// the hint as an upper bound when merging concurrent requests.
    pub batch_hint: Option<usize>,
    /// Absolute deadline. A request still queued past its deadline is
    /// abandoned with [`ServeError::Deadline`] instead of being served
    /// (work already running is not interrupted).
    pub deadline: Option<Instant>,
}

impl AssignRequest {
    /// Start a request for the named model (type 0, no docs yet).
    pub fn new(model: impl Into<String>) -> Self {
        AssignRequest {
            model: model.into(),
            type_index: 0,
            docs: Vec::new(),
            batch_hint: None,
            deadline: None,
        }
    }

    /// Select the object type the documents belong to.
    #[must_use]
    pub fn type_index(mut self, type_index: usize) -> Self {
        self.type_index = type_index;
        self
    }

    /// Replace the document batch.
    #[must_use]
    pub fn docs(mut self, docs: Vec<SparseVec>) -> Self {
        self.docs = docs;
        self
    }

    /// Append one document to the batch.
    #[must_use]
    pub fn doc(mut self, doc: SparseVec) -> Self {
        self.docs.push(doc);
        self
    }

    /// Hint the preferred fold-in batch size to coalescing layers.
    #[must_use]
    pub fn batch_hint(mut self, hint: usize) -> Self {
        self.batch_hint = Some(hint.max(1));
        self
    }

    /// Set an absolute deadline.
    #[must_use]
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Set a deadline relative to now.
    #[must_use]
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Number of documents in the batch.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Consume the request, keeping only the batch — used by coalescing
    /// layers that merge several requests into one.
    pub fn into_docs(self) -> Vec<SparseVec> {
        self.docs
    }
}

/// The result of one [`AssignRequest`].
#[derive(Debug, Clone)]
pub struct AssignResponse {
    /// Posterior over clusters for every input, in order.
    pub posteriors: Vec<Vec<f64>>,
    /// Hard labels (posterior argmax), same order.
    pub labels: Vec<usize>,
    /// Queue + compute time from submission to completion.
    pub latency: Duration,
}

/// Handle to a submitted request; resolve it with [`PendingAssign::wait`].
pub struct PendingAssign {
    rx: Receiver<Result<AssignResponse, ServeError>>,
}

impl PendingAssign {
    /// Block until the engine has processed (or shed) the request.
    ///
    /// # Errors
    /// Propagates assignment errors; returns [`ServeError::Shutdown`] if
    /// the engine dropped the request while shutting down.
    pub fn wait(self) -> Result<AssignResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Shutdown)?
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    documents: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    busy_nanos: AtomicU64,
    latency_nanos: AtomicU64,
    // Always-on (independent of MTRL_OBS): recording is a handful of
    // relaxed atomic bumps, and p50/p99 must be available from
    // `stats()` unconditionally.
    latency_hist: Histogram,
}

/// Point-in-time view of the engine counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Successfully processed requests.
    pub requests: u64,
    /// Documents assigned across all successful requests.
    pub documents: u64,
    /// Requests that returned an error (including shed ones).
    pub errors: u64,
    /// Requests dropped by admission control: queue at capacity
    /// ([`ServeError::Overloaded`]) or deadline expired in queue
    /// ([`ServeError::Deadline`]). Subset of `errors`.
    pub shed: u64,
    /// Total worker compute time (sum over workers).
    pub busy: Duration,
    /// Total submission-to-completion latency (sum over requests).
    pub total_latency: Duration,
    /// Per-request submission-to-completion latency distribution
    /// (nanoseconds); source for [`StatsSnapshot::quantile`].
    pub latency: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Latency quantile (`q ∈ [0, 1]`), e.g. `quantile(0.99)` for p99.
    /// Resolution is one histogram bucket (≤ ~3.2% relative error).
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(q))
    }

    /// Slowest observed request.
    pub fn max_latency(&self) -> Duration {
        Duration::from_nanos(self.latency.max())
    }

    /// Documents per second of worker compute time.
    pub fn throughput(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.documents as f64 / secs
        }
    }
}

struct Job {
    request: AssignRequest,
    submitted: Instant,
    reply: Sender<Result<AssignResponse, ServeError>>,
}

struct Inner {
    models: RwLock<HashMap<String, Arc<Assigner>>>,
    queue: Mutex<Receiver<Job>>,
    /// Requests accepted but not yet picked up by a worker.
    queue_depth: AtomicUsize,
    /// `usize::MAX` = unbounded (the [`ServeEngine::new`] default).
    queue_capacity: usize,
    counters: Counters,
}

/// Multi-model, multi-threaded fold-in server.
pub struct ServeEngine {
    inner: Arc<Inner>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// Retry hint attached to shed requests: half a queue-drain at the
/// measured fold-in rate is far below this, so a constant conservative
/// hint keeps the contract simple and honest.
const SHED_RETRY_AFTER: Duration = Duration::from_millis(50);

impl ServeEngine {
    /// Spin up an engine with `workers` threads (at least one) and an
    /// unbounded queue — the embedded/in-process default, where the
    /// caller controls its own submission rate.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, usize::MAX)
    }

    /// Spin up an engine whose queue admits at most `capacity` pending
    /// requests. A submit beyond the bound is shed immediately with
    /// [`ServeError::Overloaded`] — nothing is enqueued, so memory
    /// stays bounded no matter how fast callers push.
    pub fn with_queue_capacity(workers: usize, capacity: usize) -> Self {
        Self::build(workers, capacity.max(1))
    }

    fn build(workers: usize, queue_capacity: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let inner = Arc::new(Inner {
            models: RwLock::new(HashMap::new()),
            queue: Mutex::new(rx),
            queue_depth: AtomicUsize::new(0),
            queue_capacity,
            counters: Counters::default(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mtrl-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a serve worker")
            })
            .collect();
        ServeEngine {
            inner,
            tx: Some(tx),
            workers,
        }
    }

    /// Register (or replace) a model under a name. The model is wrapped
    /// in an [`Assigner`], which validates it.
    ///
    /// Re-registering an existing name is an **atomic hot-swap** — the
    /// streaming refresh path (`mtrl-stream`) relies on these semantics
    /// to roll a refitted model into a live engine:
    ///
    /// * the fully-validated `Arc<Assigner>` replaces the old one in a
    ///   single map insert under the registry write lock, so a
    ///   concurrent request resolves either the old model or the new
    ///   one, never a partially-initialised state (no torn read);
    /// * in-flight requests that already resolved their `Arc` finish
    ///   against the old model (it is freed when the last of them
    ///   drops it); requests submitted after the swap see the new one;
    /// * a swap never errors a request: there is no gap in which the
    ///   name is unregistered.
    ///
    /// # Errors
    /// Returns [`ServeError::Corrupt`] for a model that fails validation
    /// (in which case the previously registered model, if any, stays in
    /// place untouched).
    pub fn register(&self, name: impl Into<String>, model: FittedModel) -> Result<(), ServeError> {
        self.register_shared(name, Arc::new(Assigner::new(model)?));
        Ok(())
    }

    /// Register (or hot-swap, same semantics as [`Self::register`]) a
    /// pre-built assigner without cloning or re-validating its model —
    /// the zero-copy path for callers that already hold a validated
    /// `Arc<Assigner>` they keep using themselves, like the streaming
    /// refresh loop (`mtrl-stream`).
    pub fn register_shared(&self, name: impl Into<String>, assigner: Arc<Assigner>) {
        self.inner
            .models
            .write()
            .expect("model registry poisoned")
            .insert(name.into(), assigner);
    }

    /// Remove a model; returns whether it was present. In-flight requests
    /// referencing it keep their already-resolved `Arc` and finish.
    pub fn unregister(&self, name: &str) -> bool {
        self.inner
            .models
            .write()
            .expect("model registry poisoned")
            .remove(name)
            .is_some()
    }

    /// Names of all registered models (sorted).
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .models
            .read()
            .expect("model registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Registered models with their method provenance, sorted by name.
    /// The method is `None` for models exported before provenance
    /// existed (schema-tolerant: every load path accepts its absence).
    pub fn model_methods(&self) -> Vec<(String, Option<String>)> {
        let mut entries: Vec<(String, Option<String>)> = self
            .inner
            .models
            .read()
            .expect("model registry poisoned")
            .iter()
            .map(|(name, assigner)| (name.clone(), assigner.model().method.clone()))
            .collect();
        entries.sort();
        entries
    }

    /// Enqueue a request; returns immediately with a wait handle.
    ///
    /// Admission control happens here: on a bounded engine with a full
    /// queue the request is shed — the returned handle resolves at once
    /// to [`ServeError::Overloaded`] and no memory is retained for it.
    pub fn submit(&self, request: AssignRequest) -> PendingAssign {
        let (reply_tx, reply_rx) = channel();
        let inner = &self.inner;
        // Optimistically claim a slot; back out if over the bound. Two
        // racing submits can both observe depth == capacity - 1 and one
        // briefly overshoots before the decrement, which is fine: the
        // bound is a memory guarantee, not a strict FIFO ticket.
        if inner.queue_depth.fetch_add(1, Ordering::AcqRel) >= inner.queue_capacity {
            inner.queue_depth.fetch_sub(1, Ordering::AcqRel);
            record_shed(inner);
            let _ = reply_tx.send(Err(ServeError::Overloaded {
                retry_after: SHED_RETRY_AFTER,
            }));
            return PendingAssign { rx: reply_rx };
        }
        let job = Job {
            request,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        // The sender exists for the whole engine lifetime; a send only
        // fails during shutdown, in which case the handle reports it.
        match &self.tx {
            Some(tx) if tx.send(job).is_ok() => {}
            _ => {
                inner.queue_depth.fetch_sub(1, Ordering::AcqRel);
            }
        }
        PendingAssign { rx: reply_rx }
    }

    /// Submit and wait — the synchronous convenience path, a thin
    /// wrapper over `submit(AssignRequest::new(model).type_index(..)
    /// .docs(..)).wait()`.
    ///
    /// # Errors
    /// Propagates the request's assignment errors.
    pub fn assign(
        &self,
        model: &str,
        type_index: usize,
        docs: Vec<SparseVec>,
    ) -> Result<AssignResponse, ServeError> {
        self.submit(AssignRequest::new(model).type_index(type_index).docs(docs))
            .wait()
    }

    /// Requests accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth.load(Ordering::Acquire)
    }

    /// Queue bound, if this engine was built with one.
    pub fn queue_capacity(&self) -> Option<usize> {
        (self.inner.queue_capacity != usize::MAX).then_some(self.inner.queue_capacity)
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.inner.counters;
        StatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            documents: c.documents.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
            total_latency: Duration::from_nanos(c.latency_nanos.load(Ordering::Relaxed)),
            latency: c.latency_hist.snapshot(),
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Closing the channel ends `recv` with an error once the queue is
        // drained; workers then exit.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn record_shed(inner: &Inner) {
    let c = &inner.counters;
    c.errors.fetch_add(1, Ordering::Relaxed);
    c.shed.fetch_add(1, Ordering::Relaxed);
    if mtrl_obs::enabled() {
        let reg = mtrl_obs::global();
        reg.add("serve.errors", 1);
        reg.add("serve.shed", 1);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Pop under the lock, process outside it.
        let job = {
            let queue = inner.queue.lock().expect("job queue poisoned");
            queue.recv()
        };
        let Ok(job) = job else { break };
        inner.queue_depth.fetch_sub(1, Ordering::AcqRel);
        // A request that outlived its deadline in the queue is abandoned
        // before any compute is spent on it.
        if let Some(deadline) = job.request.deadline {
            let now = Instant::now();
            if now > deadline {
                record_shed(inner);
                let _ = job.reply.send(Err(ServeError::Deadline {
                    exceeded_by: now - deadline,
                }));
                continue;
            }
        }
        let started = Instant::now();
        let result = process(inner, &job.request, job.submitted);
        let busy = started.elapsed();
        let latency = job.submitted.elapsed();
        let c = &inner.counters;
        let obs = mtrl_obs::enabled();
        match &result {
            Ok(response) => {
                c.requests.fetch_add(1, Ordering::Relaxed);
                c.documents
                    .fetch_add(response.posteriors.len() as u64, Ordering::Relaxed);
                c.busy_nanos
                    .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
                c.latency_nanos
                    .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
                c.latency_hist.record_duration(latency);
                if obs {
                    let reg = mtrl_obs::global();
                    reg.add("serve.requests", 1);
                    reg.add("serve.documents", response.posteriors.len() as u64);
                    reg.histogram("serve.latency_ns").record_duration(latency);
                    reg.histogram("serve.busy_ns").record_duration(busy);
                }
            }
            Err(_) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
                if obs {
                    mtrl_obs::global().add("serve.errors", 1);
                }
            }
        }
        // The caller may have dropped its handle; that is fine.
        let _ = job.reply.send(result);
    }
}

fn process(
    inner: &Inner,
    request: &AssignRequest,
    submitted: Instant,
) -> Result<AssignResponse, ServeError> {
    let assigner = {
        let models = inner.models.read().expect("model registry poisoned");
        models
            .get(&request.model)
            .cloned()
            .ok_or_else(|| ServeError::NotFound(request.model.clone()))?
    };
    let posteriors = assigner.assign_batch(request.type_index, &request.docs)?;
    let labels = Assigner::labels(&posteriors);
    Ok(AssignResponse {
        posteriors,
        labels,
        // Submission-to-completion, matching the field's documentation —
        // queue wait counts, not just compute.
        latency: submitted.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_fitted_model;

    fn engine_with_model(name: &str, seed: u64) -> ServeEngine {
        let engine = ServeEngine::new(3);
        engine.register(name, tiny_fitted_model(seed)).unwrap();
        engine
    }

    fn some_docs(n: usize) -> Vec<SparseVec> {
        (0..n)
            .map(|i| SparseVec::new(vec![i % 7, (i % 7) + 3], vec![1.0, 0.5]).unwrap())
            .collect()
    }

    #[test]
    fn builder_sets_every_knob() {
        let at = Instant::now() + Duration::from_millis(5);
        let r = AssignRequest::new("m")
            .type_index(2)
            .docs(some_docs(3))
            .doc(some_docs(1).pop().unwrap())
            .batch_hint(64)
            .deadline_at(at);
        assert_eq!(r.model, "m");
        assert_eq!(r.type_index, 2);
        assert_eq!(r.num_docs(), 4);
        assert_eq!(r.batch_hint, Some(64));
        assert_eq!(r.deadline, Some(at));
        assert_eq!(r.into_docs().len(), 4);
        let r = AssignRequest::new("m").batch_hint(0);
        assert_eq!(r.batch_hint, Some(1), "hint is clamped to at least 1");
        assert!(AssignRequest::new("m")
            .deadline_in(Duration::from_millis(1))
            .deadline
            .is_some());
    }

    #[test]
    fn sync_assign_round_trip() {
        let engine = engine_with_model("m", 51);
        let response = engine.assign("m", 0, some_docs(10)).unwrap();
        assert_eq!(response.posteriors.len(), 10);
        assert_eq!(response.labels.len(), 10);
        for p in &response.posteriors {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.documents, 10);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.latency.count(), 1);
        assert!(stats.quantile(0.5) > Duration::ZERO);
        assert!(stats.max_latency() >= stats.quantile(0.5));
    }

    #[test]
    fn latency_quantiles_are_ordered_and_bounded() {
        let engine = engine_with_model("m", 62);
        for _ in 0..24 {
            engine.assign("m", 0, some_docs(2)).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.latency.count(), 24);
        let (p50, p90, p99) = (
            stats.quantile(0.5),
            stats.quantile(0.9),
            stats.quantile(0.99),
        );
        assert!(Duration::ZERO < p50 && p50 <= p90 && p90 <= p99);
        assert!(p99 <= stats.max_latency());
        assert!(stats.max_latency() <= stats.total_latency);
    }

    #[test]
    fn concurrent_submissions_all_resolve() {
        let engine = engine_with_model("m", 52);
        let pending: Vec<PendingAssign> = (0..32)
            .map(|_| engine.submit(AssignRequest::new("m").docs(some_docs(4))))
            .collect();
        for p in pending {
            let r = p.wait().unwrap();
            assert_eq!(r.posteriors.len(), 4);
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 32);
        assert_eq!(stats.documents, 128);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn unknown_model_is_an_error_not_a_crash() {
        let engine = engine_with_model("m", 53);
        match engine.assign("ghost", 0, some_docs(1)) {
            Err(ServeError::NotFound(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected NotFound, got {other:?}"),
        }
        assert_eq!(engine.stats().errors, 1);
        assert_eq!(engine.stats().shed, 0);
        // The engine still serves the real model afterwards.
        assert!(engine.assign("m", 0, some_docs(1)).is_ok());
    }

    #[test]
    fn expired_deadline_is_shed_not_served() {
        let engine = engine_with_model("m", 64);
        // A deadline in the past: whenever a worker picks this up, the
        // deadline check fires before any fold-in work happens.
        let request = AssignRequest::new("m")
            .docs(some_docs(2))
            .deadline_at(Instant::now() - Duration::from_millis(5));
        match engine.submit(request).wait() {
            Err(ServeError::Deadline { exceeded_by }) => {
                assert!(exceeded_by >= Duration::from_millis(5));
            }
            other => panic!("expected Deadline, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.shed, 1);
        // A generous deadline is honoured normally.
        let ok = engine
            .submit(
                AssignRequest::new("m")
                    .docs(some_docs(2))
                    .deadline_in(Duration::from_secs(30)),
            )
            .wait();
        assert!(ok.is_ok());
    }

    #[test]
    fn bounded_queue_sheds_with_overloaded() {
        // Occupy the single worker with a large batch, then flood the
        // capacity-1 queue: at most the one queued slot (plus the race
        // window while the worker pops) can be admitted — everything
        // else must resolve to Overloaded immediately, no hang, and
        // depth stays bounded.
        let engine = ServeEngine::with_queue_capacity(1, 1);
        engine.register("m", tiny_fitted_model(65)).unwrap();
        assert_eq!(engine.queue_capacity(), Some(1));
        let big = engine.submit(AssignRequest::new("m").docs(some_docs(20_000)));
        let flood: Vec<SparseVec> = some_docs(4);
        let pending: Vec<PendingAssign> = (0..64)
            .map(|_| engine.submit(AssignRequest::new("m").docs(flood.clone())))
            .collect();
        let mut served = 0u64;
        let mut shed = 0u64;
        for p in pending {
            match p.wait() {
                Ok(_) => served += 1,
                Err(ServeError::Overloaded { retry_after }) => {
                    assert!(retry_after > Duration::ZERO);
                    shed += 1;
                }
                Err(other) => panic!("unexpected error under flood: {other:?}"),
            }
        }
        assert!(big.wait().is_ok());
        assert_eq!(served + shed, 64);
        assert!(shed > 0, "flooding a capacity-1 queue must shed");
        assert!(served <= 2, "a full queue admitted {served} requests");
        assert_eq!(engine.stats().shed, shed);
        assert!(engine.queue_depth() <= 2, "depth must drain back down");
        // The unbounded default never sheds.
        assert_eq!(engine_with_model("u", 66).queue_capacity(), None);
    }

    #[test]
    fn registry_operations() {
        let engine = engine_with_model("a", 54);
        engine.register("b", tiny_fitted_model(55)).unwrap();
        assert_eq!(engine.model_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(engine.unregister("a"));
        assert!(!engine.unregister("a"));
        assert_eq!(engine.model_names(), vec!["b".to_string()]);
    }

    #[test]
    fn replace_model_under_same_name() {
        let engine = engine_with_model("m", 56);
        engine.register("m", tiny_fitted_model(57)).unwrap();
        assert_eq!(engine.model_names().len(), 1);
        assert!(engine.assign("m", 0, some_docs(2)).is_ok());
    }

    #[test]
    fn hot_swap_is_atomic_under_load() {
        // Hammer `assign` from several threads while the main thread
        // repeatedly re-registers the name with a different model. Every
        // response must succeed and equal one model's exact output —
        // half-swapped state would produce a posterior matching neither.
        let engine = Arc::new(ServeEngine::new(4));
        let a = tiny_fitted_model(60);
        let b = tiny_fitted_model(61);
        engine.register("m", a.clone()).unwrap();
        let probe = SparseVec::new(vec![1, 4, 9], vec![1.0, 0.5, 0.25]).unwrap();
        let pa = Assigner::new(a.clone()).unwrap().assign(0, &probe).unwrap();
        let pb = Assigner::new(b.clone()).unwrap().assign(0, &probe).unwrap();
        assert_ne!(pa, pb, "probe must distinguish the two models");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let probe = probe.clone();
                let (pa, pb) = (pa.clone(), pb.clone());
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let r = engine
                            .assign("m", 0, vec![probe.clone()])
                            .expect("assign across a swap must not error");
                        let p = &r.posteriors[0];
                        assert!(p == &pa || p == &pb, "torn read: {p:?}");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        for i in 0..200 {
            let next = if i % 2 == 0 { b.clone() } else { a.clone() };
            engine.register("m", next).unwrap();
            if i % 50 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "hammer threads never got a response");
        assert_eq!(engine.stats().errors, 0);
    }

    #[test]
    fn drop_joins_workers() {
        let engine = engine_with_model("m", 58);
        let _ = engine.assign("m", 0, some_docs(3));
        drop(engine); // must not hang or panic
    }

    #[test]
    fn multiple_threads_share_engine() {
        let engine = Arc::new(engine_with_model("m", 59));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let r = engine.assign("m", 0, some_docs(2)).unwrap();
                        assert_eq!(r.posteriors.len(), 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().documents, 64);
    }
}
