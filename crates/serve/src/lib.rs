//! # mtrl-serve
//!
//! The serving subsystem of the RHCHME reproduction: fit once with
//! `rhchme`, then answer "which cluster does this unseen document belong
//! to?" at request rates — without re-running Algorithm 2.
//!
//! Three layers:
//!
//! * [`persist`] — versioned on-disk bundles around
//!   [`rhchme::FittedModel`]: the v1 JSON envelope ([`persist::save`] /
//!   [`persist::load`], bit-exact `f64` round-trips) and the v2 binary
//!   format ([`persist::save_binary`] / [`persist::load_binary`],
//!   length-prefixed LE sections + FNV digest, ≥10× faster loads for
//!   fleet restarts), with [`persist::load_any`] sniffing either;
//! * [`assign`] — the fold-in predictor: [`Assigner`] maps a sparse
//!   feature vector of any object type to a posterior over that type's
//!   clusters via cosine similarity against the learned centroids
//!   (soft co-association scores, not just a hard label), batched;
//! * [`engine`] — [`ServeEngine`]: a named-model registry plus an
//!   std-only worker pool draining [`AssignRequest`] batches from an
//!   mpsc queue, with latency histograms, optional bounded-queue
//!   admission control, and per-request deadlines.
//!
//! The [`AssignRequest`] builder and the [`ServeError`] taxonomy are
//! shared verbatim with the network front end (`mtrl-gateway`): one
//! request shape and one failure taxonomy whether a caller is
//! in-process or on the wire (see the [`error`] module docs for the
//! 1:1 HTTP status mapping).
//!
//! ```
//! use mtrl_datagen::{corpus::generate, split_corpus, CorpusConfig};
//! use mtrl_serve::{Assigner, ServeEngine, SparseVec};
//! use rhchme::{Rhchme, RhchmeConfig};
//!
//! // Fit on the training side of a split corpus.
//! let corpus = generate(&CorpusConfig {
//!     docs_per_class: vec![10, 10],
//!     vocab_size: 60,
//!     concept_count: 15,
//!     doc_len_range: (25, 40),
//!     background_frac: 0.25,
//!     topic_noise: 0.2,
//!     concept_map_noise: 0.1,
//!     corrupt_frac: 0.0,
//!     subtopics_per_class: 1,
//!     view_confusion: 0.0,
//!     seed: 7,
//! });
//! let (train, heldout) = split_corpus(&corpus, 0.2, 7);
//! let rhchme = Rhchme::new(RhchmeConfig { lambda: 1.0, ..RhchmeConfig::fast() });
//! let result = rhchme.fit_corpus(&train).unwrap();
//! let model = rhchme.export_model(&result, &train).unwrap();
//!
//! // Serve the held-out documents.
//! let engine = ServeEngine::new(2);
//! engine.register("demo", model).unwrap();
//! let docs: Vec<SparseVec> = heldout
//!     .iter()
//!     .map(|d| SparseVec::new(d.indices.clone(), d.values.clone()).unwrap())
//!     .collect();
//! let response = engine.assign("demo", 0, docs).unwrap();
//! assert_eq!(response.labels.len(), heldout.len());
//! ```

pub mod assign;
pub mod engine;
pub mod error;
pub mod persist;

pub use assign::{Assigner, SparseVec};
pub use engine::{AssignRequest, AssignResponse, PendingAssign, ServeEngine, StatsSnapshot};
pub use error::ServeError;
pub use persist::{load, load_any, load_binary, save, save_binary, BINARY_MAGIC, FORMAT_MARKER};
pub use rhchme::export::{FittedModel, SCHEMA_VERSION};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
pub(crate) mod test_support {
    use rhchme::export::FittedModel;
    use rhchme::rhchme::{Rhchme, RhchmeConfig};

    /// Fit RHCHME on a small clean corpus and export the model.
    pub fn tiny_fitted_model(seed: u64) -> FittedModel {
        let corpus = mtrl_datagen::corpus::generate(&mtrl_datagen::CorpusConfig {
            docs_per_class: vec![8, 8, 8],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.25,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed,
        });
        let model = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let result = model.fit_corpus(&corpus).unwrap();
        model.export_model(&result, &corpus).unwrap()
    }
}
