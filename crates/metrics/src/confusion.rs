//! Confusion (contingency) matrix between two labelings.

use std::collections::HashMap;

/// Contingency counts `n_jl` between true classes `j` and predicted
/// clusters `l`, with marginals — the shared substrate of every metric in
/// this crate.
#[derive(Debug, Clone)]
pub struct Confusion {
    counts: Vec<Vec<usize>>,
    class_sizes: Vec<usize>,
    cluster_sizes: Vec<usize>,
    total: usize,
}

impl Confusion {
    /// Build from parallel label slices. Labels may be arbitrary `usize`
    /// values; they are densified internally.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn new(truth: &[usize], pred: &[usize]) -> Self {
        assert_eq!(truth.len(), pred.len(), "label length mismatch");
        let t_map = densify(truth);
        let p_map = densify(pred);
        let mut counts = vec![vec![0usize; p_map.len()]; t_map.len()];
        for (&t, &p) in truth.iter().zip(pred) {
            counts[t_map[&t]][p_map[&p]] += 1;
        }
        let class_sizes: Vec<usize> = counts.iter().map(|row| row.iter().sum()).collect();
        let mut cluster_sizes = vec![0usize; p_map.len()];
        for row in &counts {
            for (acc, &v) in cluster_sizes.iter_mut().zip(row) {
                *acc += v;
            }
        }
        Confusion {
            counts,
            class_sizes,
            cluster_sizes,
            total: truth.len(),
        }
    }

    /// `n_jl`: objects in (dense) class `j` and (dense) cluster `l`.
    pub fn count(&self, j: usize, l: usize) -> usize {
        self.counts[j][l]
    }

    /// Per-class totals `n_j`.
    pub fn class_sizes(&self) -> &[usize] {
        &self.class_sizes
    }

    /// Per-cluster totals `n_l`.
    pub fn cluster_sizes(&self) -> &[usize] {
        &self.cluster_sizes
    }

    /// Total object count `n`.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Map arbitrary label values to dense `0..k` indices, in order of first
/// appearance.
fn densify(labels: &[usize]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    for &l in labels {
        let next = map.len();
        map.entry(l).or_insert(next);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_marginals() {
        let truth = vec![0, 0, 1, 1, 1];
        let pred = vec![7, 9, 9, 9, 7];
        let c = Confusion::new(&truth, &pred);
        assert_eq!(c.total(), 5);
        assert_eq!(c.class_sizes(), &[2, 3]);
        assert_eq!(c.cluster_sizes(), &[2, 3]); // 7 -> 0 (first seen), 9 -> 1
        assert_eq!(c.count(0, 0), 1); // class 0, cluster "7"
        assert_eq!(c.count(0, 1), 1);
        assert_eq!(c.count(1, 1), 2);
        assert_eq!(c.count(1, 0), 1);
    }

    #[test]
    fn sparse_label_values() {
        let truth = vec![100, 100, 5000];
        let pred = vec![1, 2, 2];
        let c = Confusion::new(&truth, &pred);
        assert_eq!(c.class_sizes().len(), 2);
        assert_eq!(c.cluster_sizes().len(), 2);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn empty_labels() {
        let c = Confusion::new(&[], &[]);
        assert_eq!(c.total(), 0);
        assert!(c.class_sizes().is_empty());
    }

    #[test]
    fn marginals_sum_to_total() {
        let truth = vec![0, 1, 2, 0, 1, 2, 1];
        let pred = vec![0, 0, 1, 1, 2, 2, 0];
        let c = Confusion::new(&truth, &pred);
        assert_eq!(c.class_sizes().iter().sum::<usize>(), c.total());
        assert_eq!(c.cluster_sizes().iter().sum::<usize>(), c.total());
    }
}
