//! # mtrl-metrics
//!
//! External clustering-quality metrics for the RHCHME reproduction.
//!
//! The paper evaluates with two criteria (Sec. IV-C):
//!
//! * **FScore** (Eq. 38) — class-weighted best-match F1 between true
//!   classes and predicted clusters ([`fscore`]);
//! * **NMI** (Eq. 39) — normalised mutual information ([`nmi`]); we use
//!   the standard Strehl–Ghosh normalisation `MI / sqrt(H_L · H_C)`
//!   (the paper's printed denominator omits the square root, which would
//!   not be bounded by 1; ref \[26\] uses the sqrt form).
//!
//! [`purity`], [`adjusted_rand_index`] and the pairwise P/R/F of
//! [`pairwise_scores`] are provided for the extended analyses in
//! EXPERIMENTS.md.

pub mod confusion;

pub use confusion::Confusion;

/// The three external criteria the evaluation layer reports per
/// scenario, computed in one call by [`quality_scores`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityScores {
    /// FScore (Eq. 38).
    pub fscore: f64,
    /// Normalised mutual information (Eq. 39, sqrt-normalised).
    pub nmi: f64,
    /// Adjusted Rand index (Hubert & Arabie).
    pub ari: f64,
}

/// Compute [`fscore`], [`nmi`] and [`adjusted_rand_index`] together —
/// the report hook `mtrl-eval` scenario runs and `pipeline::MethodOutput`
/// funnel through.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn quality_scores(truth: &[usize], pred: &[usize]) -> QualityScores {
    QualityScores {
        fscore: fscore(truth, pred),
        nmi: nmi(truth, pred),
        ari: adjusted_rand_index(truth, pred),
    }
}

/// FScore of Eq. (38): `Σ_j (n_j/n) · max_l F(j, l)` with
/// `F(j, l) = 2 n_jl / (n_j + n_l)`.
///
/// `truth` and `pred` are parallel label slices; label values need not be
/// contiguous. Returns 0.0 for empty input.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn fscore(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Confusion::new(truth, pred);
    if c.total() == 0 {
        return 0.0;
    }
    let n = c.total() as f64;
    let mut score = 0.0;
    for (j, &nj) in c.class_sizes().iter().enumerate() {
        if nj == 0 {
            continue;
        }
        let mut best = 0.0f64;
        for (l, &nl) in c.cluster_sizes().iter().enumerate() {
            let njl = c.count(j, l);
            if njl == 0 || nl == 0 {
                continue;
            }
            let f = 2.0 * njl as f64 / (nj + nl) as f64;
            best = best.max(f);
        }
        score += (nj as f64 / n) * best;
    }
    score
}

/// Normalised mutual information `MI / sqrt(H_truth · H_pred)` (Eq. 39,
/// sqrt-normalised per ref \[26\]).
///
/// Returns 1.0 when both partitions are trivial-and-identical, 0.0 when
/// either partition carries no information (single cluster) but the other
/// does.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn nmi(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Confusion::new(truth, pred);
    let n = c.total() as f64;
    if c.total() == 0 {
        return 0.0;
    }
    let h_t = entropy(c.class_sizes(), n);
    let h_p = entropy(c.cluster_sizes(), n);
    if h_t <= 0.0 && h_p <= 0.0 {
        // Both partitions are a single cluster: identical by definition.
        return 1.0;
    }
    if h_t <= 0.0 || h_p <= 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (j, &nj) in c.class_sizes().iter().enumerate() {
        if nj == 0 {
            continue;
        }
        for (l, &nl) in c.cluster_sizes().iter().enumerate() {
            let njl = c.count(j, l);
            if njl == 0 || nl == 0 {
                continue;
            }
            let p_jl = njl as f64 / n;
            mi += p_jl * ((n * njl as f64) / (nj as f64 * nl as f64)).ln();
        }
    }
    (mi / (h_t * h_p).sqrt()).clamp(0.0, 1.0)
}

/// Purity: `Σ_l max_j n_jl / n` — the fraction of objects assigned to the
/// majority class of their cluster.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn purity(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Confusion::new(truth, pred);
    if c.total() == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for l in 0..c.cluster_sizes().len() {
        let mut best = 0usize;
        for j in 0..c.class_sizes().len() {
            best = best.max(c.count(j, l));
        }
        correct += best;
    }
    correct as f64 / c.total() as f64
}

/// Adjusted Rand Index (Hubert & Arabie): chance-corrected pair agreement
/// in `[-1, 1]`, 1.0 for identical partitions, ≈0 for random ones.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn adjusted_rand_index(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Confusion::new(truth, pred);
    let n = c.total();
    if n < 2 {
        return 1.0;
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_cells: f64 = (0..c.class_sizes().len())
        .flat_map(|j| (0..c.cluster_sizes().len()).map(move |l| (j, l)))
        .map(|(j, l)| choose2(c.count(j, l)))
        .sum();
    let sum_rows: f64 = c.class_sizes().iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = c.cluster_sizes().iter().map(|&x| choose2(x)).sum();
    let total = choose2(n);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-300 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Pairwise precision / recall / F1 over same-cluster object pairs.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pairwise_scores(truth: &[usize], pred: &[usize]) -> (f64, f64, f64) {
    assert_eq!(truth.len(), pred.len(), "label length mismatch");
    let n = truth.len();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for i in 0..n {
        for j in i + 1..n {
            let same_t = truth[i] == truth[j];
            let same_p = pred[i] == pred[j];
            match (same_t, same_p) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall <= 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

fn entropy(sizes: &[usize], n: f64) -> f64 {
    let mut h = 0.0;
    for &s in sizes {
        if s > 0 {
            let p = s as f64 / n;
            h -= p * p.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        // Same grouping, different label names.
        let pred = vec![5, 5, 9, 9, 7, 7];
        assert!((fscore(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((nmi(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((purity(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
        let (p, r, f) = pairwise_scores(&truth, &pred);
        assert_eq!((p, r, f), (1.0, 1.0, 1.0));
    }

    #[test]
    fn quality_scores_bundles_the_three_criteria() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![0, 0, 1, 2, 2, 2];
        let q = quality_scores(&truth, &pred);
        assert_eq!(q.fscore, fscore(&truth, &pred));
        assert_eq!(q.nmi, nmi(&truth, &pred));
        assert_eq!(q.ari, adjusted_rand_index(&truth, &pred));
    }

    #[test]
    fn single_cluster_prediction() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        // NMI of an uninformative partition is 0.
        assert_eq!(nmi(&truth, &pred), 0.0);
        // Purity: majority class covers half.
        assert_eq!(purity(&truth, &pred), 0.5);
        // FScore: each class j has F(j, only-cluster) = 2*2/(2+4) = 2/3.
        assert!((fscore(&truth, &pred) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![1, 1, 0, 0, 2, 1, 0, 2];
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn metrics_bounded() {
        // A scrambled labelling.
        let truth = vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0];
        let pred = vec![2, 2, 1, 0, 0, 1, 1, 0, 2, 2];
        for v in [
            fscore(&truth, &pred),
            nmi(&truth, &pred),
            purity(&truth, &pred),
        ] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
        let ari = adjusted_rand_index(&truth, &pred);
        assert!((-1.0..=1.0).contains(&ari));
    }

    #[test]
    fn fscore_hand_computed() {
        // truth: class0 = {0,1,2}, class1 = {3,4}
        // pred:  cluster0 = {0,1,3}, cluster1 = {2,4}
        let truth = vec![0, 0, 0, 1, 1];
        let pred = vec![0, 0, 1, 0, 1];
        // class0: F(0,c0)=2*2/(3+3)=2/3; F(0,c1)=2*1/(3+2)=0.4 -> 2/3
        // class1: F(1,c0)=2*1/(2+3)=0.4; F(1,c1)=2*1/(2+2)=0.5 -> 0.5
        // FScore = 3/5 * 2/3 + 2/5 * 0.5 = 0.4 + 0.2 = 0.6
        assert!((fscore(&truth, &pred) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nmi_hand_computed_two_by_two() {
        // Perfectly anti-correlated 2x2: identical partitions up to naming.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        assert!((nmi(&truth, &pred) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_random_labels_near_zero() {
        // Independent labels: expectation of ARI is 0 (allow generous tol).
        let truth: Vec<usize> = (0..200).map(|i| i % 4).collect();
        let pred: Vec<usize> = (0..200).map(|i| (i * 7 + 3) % 5).collect();
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 0.1, "{ari}");
    }

    #[test]
    fn empty_input() {
        assert_eq!(fscore(&[], &[]), 0.0);
        assert_eq!(nmi(&[], &[]), 0.0);
        assert_eq!(purity(&[], &[]), 0.0);
    }

    #[test]
    fn both_trivial_partitions_identical() {
        let t = vec![0, 0, 0];
        let p = vec![4, 4, 4];
        assert_eq!(nmi(&t, &p), 1.0);
        assert_eq!(adjusted_rand_index(&t, &p), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        fscore(&[0, 1], &[0]);
    }

    #[test]
    fn refinement_keeps_high_purity_lower_recall() {
        // Splitting every class into two clusters: purity stays 1,
        // pairwise recall drops below 1.
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 2, 2, 3, 3];
        assert_eq!(purity(&truth, &pred), 1.0);
        let (p, r, _) = pairwise_scores(&truth, &pred);
        assert_eq!(p, 1.0);
        assert!(r < 1.0);
    }
}
