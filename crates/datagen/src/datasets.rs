//! D1–D4 dataset presets (paper Table II), at three scales.
//!
//! | id | paper name      | classes | profile                      |
//! |----|-----------------|---------|------------------------------|
//! | D1 | Multi5          | 5       | balanced (100 docs/class)    |
//! | D2 | Multi10         | 10      | balanced (50 docs/class)     |
//! | D3 | R-Min20Max200   | 25      | skewed, 20–200 docs/class    |
//! | D4 | R-Top10         | 10      | 10 largest (big, skewed)     |
//!
//! `Scale::Paper` matches Table II's raw counts; `Scale::Small` (default
//! for the benches) shrinks everything ~4–10x while preserving the class
//! structure and skew profile; `Scale::Tiny` is for unit tests.

use crate::corpus::{generate, CorpusConfig, MultiTypeCorpus};
use serde::Serialize;

/// The four evaluation datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DatasetId {
    /// Multi5: 5 balanced classes from 20Newsgroups.
    D1,
    /// Multi10: 10 balanced classes from 20Newsgroups.
    D2,
    /// R-Min20Max200: 25 skewed classes from Reuters-21578.
    D3,
    /// R-Top10: the 10 largest Reuters classes.
    D4,
}

impl DatasetId {
    /// All four datasets in paper order.
    pub fn all() -> [DatasetId; 4] {
        [DatasetId::D1, DatasetId::D2, DatasetId::D3, DatasetId::D4]
    }

    /// Paper name of the dataset.
    pub fn paper_name(self) -> &'static str {
        match self {
            DatasetId::D1 => "Multi5",
            DatasetId::D2 => "Multi10",
            DatasetId::D3 => "R-Min20Max200",
            DatasetId::D4 => "R-Top10",
        }
    }

    /// Short id string ("D1".."D4").
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetId::D1 => "D1",
            DatasetId::D2 => "D2",
            DatasetId::D3 => "D3",
            DatasetId::D4 => "D4",
        }
    }
}

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Unit-test sizes (tens of documents).
    Tiny,
    /// Bench default: preserves class structure at ~4–10x reduction.
    Small,
    /// Table II's raw document/term/concept counts. Slow; provided for
    /// completeness.
    Paper,
}

/// Build the generator configuration for a dataset at a scale.
pub fn config(id: DatasetId, scale: Scale) -> CorpusConfig {
    // Class-size profiles. D3's sizes interpolate 20..200 (paper: classes
    // with at least 20 and at most 200 docs); D4's follow a Zipf-ish decay
    // of "largest classes".
    let (docs_per_class, vocab, concepts): (Vec<usize>, usize, usize) = match (id, scale) {
        (DatasetId::D1, Scale::Tiny) => (vec![8; 5], 100, 60),
        (DatasetId::D1, Scale::Small) => (vec![40; 5], 420, 320),
        (DatasetId::D1, Scale::Paper) => (vec![100; 5], 2000, 1667),

        (DatasetId::D2, Scale::Tiny) => (vec![5; 10], 120, 70),
        (DatasetId::D2, Scale::Small) => (vec![20; 10], 420, 320),
        (DatasetId::D2, Scale::Paper) => (vec![50; 10], 2000, 1658),

        (DatasetId::D3, Scale::Tiny) => ((0..6).map(|i| 4 + i).collect(), 160, 80),
        (DatasetId::D3, Scale::Small) => (skewed_sizes(25, 5, 24), 520, 380),
        (DatasetId::D3, Scale::Paper) => (skewed_sizes(25, 20, 200), 2904, 2450),

        (DatasetId::D4, Scale::Tiny) => ((0..4).map(|i| 8 + 2 * i).collect(), 160, 80),
        (DatasetId::D4, Scale::Small) => (zipf_sizes(10, 90, 18), 560, 400),
        (DatasetId::D4, Scale::Paper) => (zipf_sizes(10, 1800, 250), 5146, 4109),
    };
    // Noise profiles: the Reuters-derived sets (D3, D4) are harder in the
    // paper (lower absolute scores), so they get more topic noise,
    // view confusion and corruption. D2 has twice the classes of D1 at
    // the same total size. All presets use two sub-topics per class
    // (multi-modal classes — the manifold structure of Fig. 1) and
    // complementary view confusion (some class pairs lexically close,
    // others conceptually close), which is what separates the method
    // families the way Table III does.
    let (topic_noise, view_confusion, corrupt_frac) = match id {
        DatasetId::D1 => (0.35, 0.26, 0.12),
        DatasetId::D2 => (0.38, 0.28, 0.14),
        DatasetId::D3 => (0.42, 0.32, 0.15),
        DatasetId::D4 => (0.40, 0.30, 0.15),
    };
    CorpusConfig {
        docs_per_class,
        vocab_size: vocab,
        concept_count: concepts,
        doc_len_range: (50, 100),
        background_frac: 0.3,
        topic_noise,
        concept_map_noise: 0.15,
        corrupt_frac,
        subtopics_per_class: 2,
        view_confusion,
        seed: dataset_seed(id),
    }
}

/// Generate a dataset at a scale.
pub fn load(id: DatasetId, scale: Scale) -> MultiTypeCorpus {
    generate(&config(id, scale))
}

/// The fixed seed for each dataset (documented in EXPERIMENTS.md).
pub fn dataset_seed(id: DatasetId) -> u64 {
    match id {
        DatasetId::D1 => 101,
        DatasetId::D2 => 102,
        DatasetId::D3 => 103,
        DatasetId::D4 => 104,
    }
}

/// Linearly interpolated skewed class sizes from `lo` to `hi`.
fn skewed_sizes(k: usize, lo: usize, hi: usize) -> Vec<usize> {
    (0..k)
        .map(|i| lo + (hi - lo) * i / (k - 1).max(1))
        .collect()
}

/// Zipf-like decaying sizes: class `i` gets `max(largest / (i+1), floor)`.
fn zipf_sizes(k: usize, largest: usize, floor: usize) -> Vec<usize> {
    (0..k).map(|i| (largest / (i + 1)).max(floor)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_generates_quickly() {
        for id in DatasetId::all() {
            let c = load(id, Scale::Tiny);
            assert!(c.num_docs() >= 20, "{id:?}");
            assert!(c.num_classes >= 2);
            assert_eq!(c.labels.len(), c.num_docs());
        }
    }

    #[test]
    fn d1_small_is_balanced() {
        let cfg = config(DatasetId::D1, Scale::Small);
        assert_eq!(cfg.docs_per_class, vec![40; 5]);
    }

    #[test]
    fn d3_small_is_skewed_25_classes() {
        let cfg = config(DatasetId::D3, Scale::Small);
        assert_eq!(cfg.docs_per_class.len(), 25);
        assert!(cfg.docs_per_class.first().unwrap() < cfg.docs_per_class.last().unwrap());
        assert_eq!(*cfg.docs_per_class.first().unwrap(), 5);
        assert_eq!(*cfg.docs_per_class.last().unwrap(), 24);
    }

    #[test]
    fn d4_sizes_decay() {
        let sizes = zipf_sizes(10, 90, 18);
        assert_eq!(sizes[0], 90);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(sizes.iter().all(|&s| s >= 18));
    }

    #[test]
    fn paper_scale_matches_table2_counts() {
        let d1 = config(DatasetId::D1, Scale::Paper);
        assert_eq!(d1.docs_per_class.iter().sum::<usize>(), 500);
        assert_eq!(d1.vocab_size, 2000);
        assert_eq!(d1.concept_count, 1667);
        let d4 = config(DatasetId::D4, Scale::Paper);
        assert_eq!(d4.vocab_size, 5146);
        assert_eq!(d4.concept_count, 4109);
    }

    #[test]
    fn seeds_differ_across_datasets() {
        let seeds: Vec<u64> = DatasetId::all().iter().map(|&i| dataset_seed(i)).collect();
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }

    #[test]
    fn names_stable() {
        assert_eq!(DatasetId::D1.paper_name(), "Multi5");
        assert_eq!(DatasetId::D3.short_name(), "D3");
    }
}
