//! Typed corruption specifications for evaluation scenarios.
//!
//! The robustness experiments perturb a corpus along three independent
//! axes, each previously dialled through ad-hoc `CorpusConfig` edits
//! scattered across the examples:
//!
//! * **feature noise** — more tokens drawn from the shared background
//!   vocabulary instead of the class anchors (`topic_noise`), degrading
//!   every document a little;
//! * **relation corruption** — a fraction of documents replaced by
//!   uniform random tokens (`corrupt_frac`), destroying some rows
//!   entirely — the sample-wise regime the paper's `E_R` targets
//!   (Sec. III-C);
//! * **drift** — the class anchor windows rotate mid-stream
//!   ([`crate::stream::StreamConfig::drift_shift`]), so a fitted model
//!   goes stale — the streaming robustness axis.
//!
//! [`CorruptionSpec`] names the axis and its level once, so the
//! `mtrl-eval` scenario registry, the examples and the tests all derive
//! their perturbed corpora from the same typed knob and stay
//! bit-reproducible given `(base config, spec, seed)`.

use crate::corpus::{generate, CorpusConfig, MultiTypeCorpus};
use serde::Serialize;

/// Which corruption axis a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CorruptionKind {
    /// No corruption: `corrupt_frac` forced to zero.
    Clean,
    /// Background-token noise added to every document (`topic_noise`).
    FeatureNoise,
    /// Sample-wise destruction of whole documents (`corrupt_frac`).
    RelationCorruption,
    /// Anchor-window rotation applied to streamed batches; the base
    /// corpus itself stays clean (stream scenarios only).
    Drift,
}

impl CorruptionKind {
    /// Stable scenario-key fragment (`clean`, `feature_noise`, …).
    pub fn key(self) -> &'static str {
        match self {
            CorruptionKind::Clean => "clean",
            CorruptionKind::FeatureNoise => "feature_noise",
            CorruptionKind::RelationCorruption => "relation_corruption",
            CorruptionKind::Drift => "drift",
        }
    }
}

/// A corruption axis plus its level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CorruptionSpec {
    /// The corruption axis.
    pub kind: CorruptionKind,
    /// Axis-specific level in `[0, 1]`: extra `topic_noise` for
    /// [`CorruptionKind::FeatureNoise`], `corrupt_frac` for
    /// [`CorruptionKind::RelationCorruption`], anchor-window shift
    /// fraction for [`CorruptionKind::Drift`]; ignored for
    /// [`CorruptionKind::Clean`].
    pub level: f64,
}

impl CorruptionSpec {
    /// No corruption.
    pub fn clean() -> Self {
        CorruptionSpec {
            kind: CorruptionKind::Clean,
            level: 0.0,
        }
    }

    /// Extra background-token probability added to the base
    /// `topic_noise` (capped at 0.95).
    ///
    /// # Panics
    /// Panics if `level` is outside `[0, 1]`.
    pub fn feature_noise(level: f64) -> Self {
        Self::checked(CorruptionKind::FeatureNoise, level)
    }

    /// Fraction of documents replaced by uniform random tokens.
    ///
    /// # Panics
    /// Panics if `level` is outside `[0, 1]`.
    pub fn relation_corruption(level: f64) -> Self {
        Self::checked(CorruptionKind::RelationCorruption, level)
    }

    /// Anchor-window rotation (fraction of a class block) applied to
    /// post-drift stream batches.
    ///
    /// # Panics
    /// Panics if `level` is outside `[0, 1]`.
    pub fn drift(level: f64) -> Self {
        Self::checked(CorruptionKind::Drift, level)
    }

    fn checked(kind: CorruptionKind, level: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&level),
            "corruption level {level} outside [0, 1]"
        );
        CorruptionSpec { kind, level }
    }

    /// Rewrite `cfg`'s corruption knobs in place. [`CorruptionKind::Clean`]
    /// and [`CorruptionKind::Drift`] zero `corrupt_frac` (a drift
    /// scenario's base corpus is clean; the rotation applies to the
    /// streamed batches via [`Self::drift_shift`]).
    pub fn apply(&self, cfg: &mut CorpusConfig) {
        match self.kind {
            CorruptionKind::Clean | CorruptionKind::Drift => cfg.corrupt_frac = 0.0,
            CorruptionKind::FeatureNoise => {
                cfg.corrupt_frac = 0.0;
                cfg.topic_noise = (cfg.topic_noise + self.level).min(0.95);
            }
            CorruptionKind::RelationCorruption => cfg.corrupt_frac = self.level,
        }
    }

    /// The anchor-window shift for stream generation, when this spec is
    /// a drift spec.
    pub fn drift_shift(&self) -> Option<f64> {
        (self.kind == CorruptionKind::Drift).then_some(self.level)
    }

    /// Generate the corpus `base` describes under this corruption at
    /// `seed` (deterministic: same `(base, self, seed)` → bit-identical
    /// matrices).
    pub fn corpus(&self, base: &CorpusConfig, seed: u64) -> MultiTypeCorpus {
        let mut cfg = base.clone();
        cfg.seed = seed;
        self.apply(&mut cfg);
        generate(&cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CorpusConfig {
        CorpusConfig {
            docs_per_class: vec![10, 10, 10],
            vocab_size: 90,
            concept_count: 30,
            doc_len_range: (30, 50),
            background_frac: 0.3,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.5, // specs must override this
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn clean_zeroes_corruption() {
        let c = CorruptionSpec::clean().corpus(&base(), 3);
        assert!(c.corrupted_docs.is_empty());
    }

    #[test]
    fn relation_corruption_sets_fraction() {
        let c = CorruptionSpec::relation_corruption(0.3).corpus(&base(), 9);
        assert!(!c.corrupted_docs.is_empty());
        assert_eq!(c.config.corrupt_frac, 0.3);
    }

    #[test]
    fn feature_noise_raises_topic_noise_and_caps() {
        let mut cfg = base();
        CorruptionSpec::feature_noise(0.25).apply(&mut cfg);
        assert_eq!(cfg.topic_noise, 0.45);
        assert_eq!(cfg.corrupt_frac, 0.0);
        let mut hot = base();
        hot.topic_noise = 0.9;
        CorruptionSpec::feature_noise(0.25).apply(&mut hot);
        assert_eq!(hot.topic_noise, 0.95);
    }

    #[test]
    fn drift_shift_only_for_drift() {
        assert_eq!(CorruptionSpec::drift(0.4).drift_shift(), Some(0.4));
        assert_eq!(CorruptionSpec::clean().drift_shift(), None);
        assert_eq!(CorruptionSpec::feature_noise(0.1).drift_shift(), None);
    }

    #[test]
    fn corpus_is_reproducible() {
        for spec in [
            CorruptionSpec::clean(),
            CorruptionSpec::feature_noise(0.2),
            CorruptionSpec::relation_corruption(0.15),
        ] {
            let a = spec.corpus(&base(), 17);
            let b = spec.corpus(&base(), 17);
            assert_eq!(a.doc_term, b.doc_term, "{spec:?}");
            assert_eq!(a.doc_concept, b.doc_concept, "{spec:?}");
            assert_eq!(a.term_concept, b.term_concept, "{spec:?}");
            assert_eq!(a.corrupted_docs, b.corrupted_docs, "{spec:?}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_out_of_range_level() {
        CorruptionSpec::feature_noise(1.5);
    }

    #[test]
    fn kind_keys_are_stable() {
        assert_eq!(CorruptionKind::Clean.key(), "clean");
        assert_eq!(CorruptionKind::FeatureNoise.key(), "feature_noise");
        assert_eq!(
            CorruptionKind::RelationCorruption.key(),
            "relation_corruption"
        );
        assert_eq!(CorruptionKind::Drift.key(), "drift");
    }
}
