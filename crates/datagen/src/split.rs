//! Train / held-out splitting of a generated corpus.
//!
//! Out-of-sample serving needs documents the model never saw at fit
//! time. [`split_corpus`] carves a generated [`MultiTypeCorpus`] into a
//! training corpus (a stratified subset of document rows; terms and
//! concepts are shared vocabulary and stay intact) and a list of
//! held-out documents, each expressed as a sparse vector over the
//! *document feature view* — the `[doc_term | doc_concept]` column
//! layout that `rhchme::MultiTypeData::features(0)` produces and that
//! `mtrl_serve::Assigner` folds in against.

use crate::corpus::MultiTypeCorpus;
use mtrl_sparse::Coo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A held-out document in document-feature-view coordinates.
///
/// `indices[i]` is a column of the doc view: term `t` maps to column `t`,
/// concept `c` to column `num_terms + c`. `values` carries the same
/// tf-idf-style weights the document row had in the full corpus.
#[derive(Debug, Clone)]
pub struct HeldOutDoc {
    /// Feature-view column indices (strictly increasing).
    pub indices: Vec<usize>,
    /// Matching feature values.
    pub values: Vec<f64>,
    /// Ground-truth class of the document.
    pub label: usize,
    /// Row index this document had in the original corpus.
    pub original_index: usize,
}

/// Stratified split: holds out `heldout_frac` of each class's documents
/// (seeded, deterministic) and returns the training corpus plus the
/// held-out documents in feature-view form.
///
/// Every class keeps at least two training documents so the training
/// corpus stays fittable; the held-out side gets at most
/// `class_size - 2` documents of a class.
///
/// # Panics
/// Panics if `heldout_frac` is outside `[0, 1)`, or if a nonzero
/// fraction is requested while some class has fewer than three
/// documents (it could not keep two for training and still contribute).
/// A fraction of exactly `0.0` never panics and holds nothing out.
pub fn split_corpus(
    corpus: &MultiTypeCorpus,
    heldout_frac: f64,
    seed: u64,
) -> (MultiTypeCorpus, Vec<HeldOutDoc>) {
    assert!(
        (0.0..1.0).contains(&heldout_frac),
        "heldout_frac must be in [0, 1)"
    );
    let n_docs = corpus.num_docs();
    let n_terms = corpus.num_terms();
    let mut rng = StdRng::seed_from_u64(seed);

    // Group documents by class, shuffle within each class, and take the
    // tail as held-out.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); corpus.num_classes];
    for (d, &label) in corpus.labels.iter().enumerate() {
        by_class[label].push(d);
    }
    let mut heldout_mask = vec![false; n_docs];
    for docs in &mut by_class {
        // Fisher–Yates with the split's own RNG.
        for i in (1..docs.len()).rev() {
            let j = rng.gen_range(0..=i);
            docs.swap(i, j);
        }
        let take = if heldout_frac == 0.0 {
            0
        } else {
            // A class must keep two training documents, so it needs at
            // least three to contribute anything to the held-out side.
            assert!(
                docs.len() >= 3,
                "class with {} documents cannot contribute held-out docs",
                docs.len()
            );
            (((docs.len() as f64) * heldout_frac).round() as usize).min(docs.len() - 2)
        };
        for &d in docs.iter().rev().take(take) {
            heldout_mask[d] = true;
        }
    }

    // Rebuild the train corpus from the kept rows (original order).
    let kept: Vec<usize> = (0..n_docs).filter(|&d| !heldout_mask[d]).collect();
    let mut dt = Coo::new(kept.len(), n_terms);
    let mut dc = Coo::new(kept.len(), corpus.num_concepts());
    for (new_row, &d) in kept.iter().enumerate() {
        let (cols, vals) = corpus.doc_term.row(d);
        for (&j, &v) in cols.iter().zip(vals) {
            dt.push(new_row, j, v);
        }
        let (cols, vals) = corpus.doc_concept.row(d);
        for (&j, &v) in cols.iter().zip(vals) {
            dc.push(new_row, j, v);
        }
    }
    let old_to_new: std::collections::HashMap<usize, usize> = kept
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let train = MultiTypeCorpus {
        doc_term: dt.to_csr(),
        doc_concept: dc.to_csr(),
        term_concept: corpus.term_concept.clone(),
        labels: kept.iter().map(|&d| corpus.labels[d]).collect(),
        num_classes: corpus.num_classes,
        corrupted_docs: corpus
            .corrupted_docs
            .iter()
            .filter_map(|d| old_to_new.get(d).copied())
            .collect(),
        config: corpus.config.clone(),
    };

    // Held-out documents in feature-view coordinates.
    let heldout: Vec<HeldOutDoc> = (0..n_docs)
        .filter(|&d| heldout_mask[d])
        .map(|d| {
            let mut indices = Vec::new();
            let mut values = Vec::new();
            let (cols, vals) = corpus.doc_term.row(d);
            for (&j, &v) in cols.iter().zip(vals) {
                indices.push(j);
                values.push(v);
            }
            let (cols, vals) = corpus.doc_concept.row(d);
            for (&j, &v) in cols.iter().zip(vals) {
                indices.push(n_terms + j);
                values.push(v);
            }
            HeldOutDoc {
                indices,
                values,
                label: corpus.labels[d],
                original_index: d,
            }
        })
        .collect();

    (train, heldout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};

    fn corpus() -> MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![12, 12, 12],
            vocab_size: 90,
            concept_count: 30,
            doc_len_range: (25, 40),
            background_frac: 0.3,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.1,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 21,
        })
    }

    #[test]
    fn split_is_stratified_and_complete() {
        let c = corpus();
        let (train, heldout) = split_corpus(&c, 0.25, 5);
        assert_eq!(train.num_docs() + heldout.len(), c.num_docs());
        assert_eq!(heldout.len(), 9); // 3 per class
                                      // Per-class held-out counts.
        for class in 0..3 {
            let h = heldout.iter().filter(|d| d.label == class).count();
            assert_eq!(h, 3, "class {class}");
            let t = train.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(t, 9, "class {class}");
        }
        // Shared vocabulary untouched.
        assert_eq!(train.num_terms(), c.num_terms());
        assert_eq!(train.num_concepts(), c.num_concepts());
        assert_eq!(train.term_concept, c.term_concept);
    }

    #[test]
    fn heldout_features_match_original_rows() {
        let c = corpus();
        let (_, heldout) = split_corpus(&c, 0.25, 5);
        let n_terms = c.num_terms();
        for doc in &heldout {
            let (cols, vals) = c.doc_term.row(doc.original_index);
            let (ccols, cvals) = c.doc_concept.row(doc.original_index);
            assert_eq!(doc.indices.len(), cols.len() + ccols.len());
            for (i, (&j, &v)) in cols.iter().zip(vals).enumerate() {
                assert_eq!(doc.indices[i], j);
                assert_eq!(doc.values[i], v);
            }
            for (i, (&j, &v)) in ccols.iter().zip(cvals).enumerate() {
                assert_eq!(doc.indices[cols.len() + i], n_terms + j);
                assert_eq!(doc.values[cols.len() + i], v);
            }
            assert_eq!(doc.label, c.labels[doc.original_index]);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let c = corpus();
        let (t1, h1) = split_corpus(&c, 0.3, 9);
        let (t2, h2) = split_corpus(&c, 0.3, 9);
        assert_eq!(t1.labels, t2.labels);
        assert_eq!(
            h1.iter().map(|d| d.original_index).collect::<Vec<_>>(),
            h2.iter().map(|d| d.original_index).collect::<Vec<_>>()
        );
        let (_, h3) = split_corpus(&c, 0.3, 10);
        assert_ne!(
            h1.iter().map(|d| d.original_index).collect::<Vec<_>>(),
            h3.iter().map(|d| d.original_index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_docs_remapped() {
        let c = corpus();
        let (train, _) = split_corpus(&c, 0.25, 5);
        for &d in &train.corrupted_docs {
            assert!(d < train.num_docs());
        }
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let c = corpus();
        let (train, heldout) = split_corpus(&c, 0.0, 1);
        assert_eq!(train.num_docs(), c.num_docs());
        assert!(heldout.is_empty());
    }
}
