//! Streaming corpus generation: timestamped batches with optional
//! concept drift.
//!
//! A production deployment of the reproduction never sees its corpus at
//! once — documents arrive continuously, and the term distribution they
//! are drawn from may *drift*. [`generate_stream`] produces exactly that
//! workload from the latent topic model of [`crate::corpus::generate`]:
//!
//! 1. an **initial corpus** (the training side a model is first fitted
//!    on), bit-identical to `generate(&cfg.base)`;
//! 2. a sequence of [`StreamBatch`]es drawn from the *same* latent model
//!    (same vocabulary layout, same term→concept mapping, same
//!    relatedness weights) with fresh documents;
//! 3. optional **concept drift**: from batch `drift_after` onwards the
//!    class anchor windows rotate by `drift_shift` of a class block, so
//!    every class mean moves part-way towards its neighbour's old
//!    position. A model fitted pre-drift starts confusing adjacent
//!    classes — the scenario `mtrl-stream`'s drift-triggered warm refit
//!    exists for.
//!
//! Batch rows are tf-idf weighted with the **initial corpus's** idf and
//! row-ℓ2 normalised — the same convention a serving system would use
//! (document frequencies are fixed at fit time; a fold-in request cannot
//! re-weight the corpus).

use crate::corpus::{
    generate_with_sampler, idf_from_df, CorpusConfig, MultiTypeCorpus, TopicSampler,
};
use mtrl_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the streaming generator.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The initial (training) corpus configuration; its `seed` drives
    /// the whole stream.
    pub base: CorpusConfig,
    /// Number of batches to emit after the initial corpus.
    pub batches: usize,
    /// Documents per batch.
    pub docs_per_batch: usize,
    /// Batch index (0-based) from which drift applies; `None` disables.
    pub drift_after: Option<usize>,
    /// Anchor-window rotation as a fraction of one class block in
    /// `[0, 1]`; `0.5` moves every class mean halfway towards its
    /// neighbour's old position.
    pub drift_shift: f64,
}

/// One timestamped batch of newly arrived documents, in relation
/// coordinates over the fixed term / concept vocabularies.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// Monotone batch sequence number (0 = first post-training batch).
    pub timestamp: u64,
    /// Per-document sparse tf-idf rows over terms (indices strictly
    /// increasing, row-ℓ2 normalised).
    pub doc_term: Vec<(Vec<usize>, Vec<f64>)>,
    /// Per-document sparse rows over concepts (same conventions).
    pub doc_concept: Vec<(Vec<usize>, Vec<f64>)>,
    /// Ground-truth class per document (synthetic-evaluation side
    /// channel; a consumer must not feed it back into the model).
    pub labels: Vec<usize>,
    /// Whether this batch was drawn from the drifted distribution.
    pub drifted: bool,
}

impl StreamBatch {
    /// Number of documents in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Document `i` as one sparse vector over the document *feature
    /// view* (`[terms | concepts]` — the layout
    /// `rhchme::MultiTypeData::features(0)` and `mtrl_serve::Assigner`
    /// use), given the vocabulary width `num_terms`.
    pub fn feature_row(&self, i: usize, num_terms: usize) -> (Vec<usize>, Vec<f64>) {
        let (tc, tv) = &self.doc_term[i];
        let (cc, cv) = &self.doc_concept[i];
        let mut indices = Vec::with_capacity(tc.len() + cc.len());
        let mut values = Vec::with_capacity(tc.len() + cc.len());
        indices.extend_from_slice(tc);
        values.extend_from_slice(tv);
        indices.extend(cc.iter().map(|&j| num_terms + j));
        values.extend_from_slice(cv);
        (indices, values)
    }
}

/// Generate the initial corpus plus `cfg.batches` streaming batches.
///
/// The initial corpus is bit-identical to `generate(&cfg.base)`; batches
/// continue the same RNG stream, draw classes uniformly, inherit the
/// base configuration's corruption rate, and apply the drift shift from
/// `cfg.drift_after` onwards.
///
/// # Panics
/// Panics on degenerate configurations (propagated from the corpus
/// generator) or a `drift_shift` outside `[0, 1]`.
pub fn generate_stream(cfg: &StreamConfig) -> (MultiTypeCorpus, Vec<StreamBatch>) {
    assert!(
        (0.0..=1.0).contains(&cfg.drift_shift),
        "drift_shift must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.base.seed);
    let sampler = TopicSampler::new(&cfg.base, &mut rng);
    let corpus = generate_with_sampler(&cfg.base, &sampler, &mut rng);

    // Serving-side idf: fixed at fit time from the initial corpus (a
    // tf-idf entry is nonzero iff the raw count was, so document
    // frequencies are recoverable from the stored matrix).
    let v = corpus.num_terms();
    let mut df = vec![0usize; v];
    for i in 0..corpus.num_docs() {
        for &t in corpus.doc_term.row(i).0 {
            df[t] += 1;
        }
    }
    let idf = idf_from_df(&df, corpus.num_docs());

    let k = sampler.num_classes();
    let shift_terms = sampler.drift_shift_terms(cfg.drift_shift);
    let relatedness = sampler.relatedness();

    let mut batches = Vec::with_capacity(cfg.batches);
    for b in 0..cfg.batches {
        let drifted = cfg.drift_after.is_some_and(|at| b >= at);
        let shift = if drifted { shift_terms } else { 0 };
        let mut doc_term = Vec::with_capacity(cfg.docs_per_batch);
        let mut doc_concept = Vec::with_capacity(cfg.docs_per_batch);
        let mut labels = Vec::with_capacity(cfg.docs_per_batch);
        for _ in 0..cfg.docs_per_batch {
            let class = rng.gen_range(0..k);
            let corrupted = rng.gen_range(0.0..1.0) < cfg.base.corrupt_frac;
            let (tc, cc) = sampler.sample_doc(&mut rng, class, corrupted, shift);
            doc_term.push(sorted_normalized(
                tc.into_iter().map(|(t, c)| (t, c as f64 * idf[t])),
            ));
            doc_concept.push(sorted_normalized(
                cc.into_iter().map(|(c, n)| (c, n as f64 * relatedness[c])),
            ));
            labels.push(class);
        }
        batches.push(StreamBatch {
            timestamp: b as u64,
            doc_term,
            doc_concept,
            labels,
            drifted: drifted && shift_terms > 0,
        });
    }
    (corpus, batches)
}

/// Append a batch's documents to an accumulated corpus (rows stacked
/// below the existing documents; vocabulary matrices untouched) — the
/// corpus-maintenance step of a streaming session.
///
/// # Panics
/// Panics if a row index exceeds the corpus vocabularies.
pub fn append_batch(corpus: &mut MultiTypeCorpus, batch: &StreamBatch) {
    let dt = Csr::from_sparse_rows(&batch.doc_term, corpus.num_terms());
    let dc = Csr::from_sparse_rows(&batch.doc_concept, corpus.num_concepts());
    corpus.doc_term = corpus.doc_term.vstack(&dt);
    corpus.doc_concept = corpus.doc_concept.vstack(&dc);
    corpus.labels.extend_from_slice(&batch.labels);
}

/// Collect `(index, value)` pairs into a sorted, ℓ2-normalised sparse
/// row, dropping zeros (empty rows stay empty).
fn sorted_normalized(entries: impl Iterator<Item = (usize, f64)>) -> (Vec<usize>, Vec<f64>) {
    let mut pairs: Vec<(usize, f64)> = entries.filter(|&(_, v)| v != 0.0).collect();
    pairs.sort_unstable_by_key(|&(j, _)| j);
    let norm = pairs.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for (_, v) in &mut pairs {
            *v /= norm;
        }
    }
    pairs.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate;

    fn cfg() -> StreamConfig {
        StreamConfig {
            base: CorpusConfig {
                docs_per_class: vec![10, 10, 10],
                vocab_size: 90,
                concept_count: 30,
                doc_len_range: (30, 50),
                background_frac: 0.3,
                topic_noise: 0.2,
                concept_map_noise: 0.1,
                corrupt_frac: 0.0,
                subtopics_per_class: 1,
                view_confusion: 0.0,
                seed: 31,
            },
            batches: 4,
            docs_per_batch: 6,
            drift_after: Some(2),
            drift_shift: 0.5,
        }
    }

    #[test]
    fn initial_corpus_matches_plain_generate() {
        let c = cfg();
        let (initial, _) = generate_stream(&c);
        let plain = generate(&c.base);
        assert_eq!(initial.doc_term, plain.doc_term);
        assert_eq!(initial.doc_concept, plain.doc_concept);
        assert_eq!(initial.term_concept, plain.term_concept);
        assert_eq!(initial.labels, plain.labels);
    }

    #[test]
    fn batches_shaped_and_deterministic() {
        let c = cfg();
        let (_, a) = generate_stream(&c);
        let (_, b) = generate_stream(&c);
        assert_eq!(a.len(), 4);
        for (i, batch) in a.iter().enumerate() {
            assert_eq!(batch.timestamp, i as u64);
            assert_eq!(batch.len(), 6);
            assert_eq!(batch.doc_term.len(), 6);
            assert_eq!(batch.doc_concept.len(), 6);
            assert_eq!(batch.drifted, i >= 2);
            assert_eq!(batch.doc_term, b[i].doc_term);
            assert_eq!(batch.labels, b[i].labels);
            for (idx, vals) in batch.doc_term.iter().chain(&batch.doc_concept) {
                assert_eq!(idx.len(), vals.len());
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "unsorted row");
                if !vals.is_empty() {
                    let n: f64 = vals.iter().map(|v| v * v).sum::<f64>().sqrt();
                    assert!((n - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn drift_moves_class_term_mass() {
        // Post-drift documents of a class should look less like the
        // initial corpus's same-class documents than pre-drift ones do.
        let c = cfg();
        let (initial, batches) = generate_stream(&c);
        let dense = initial.doc_term.to_dense();
        let class_mean = |class: usize| {
            let mut acc = vec![0.0; initial.num_terms()];
            let mut count = 0.0;
            for (d, &l) in initial.labels.iter().enumerate() {
                if l == class {
                    for (a, &x) in acc.iter_mut().zip(dense.row(d)) {
                        *a += x;
                    }
                    count += 1.0;
                }
            }
            for a in &mut acc {
                *a /= count;
            }
            acc
        };
        let means: Vec<Vec<f64>> = (0..3).map(class_mean).collect();
        let sim_to_own = |batch: &StreamBatch| {
            let mut total = 0.0;
            for (i, &l) in batch.labels.iter().enumerate() {
                let (idx, vals) = &batch.doc_term[i];
                total += mtrl_linalg::vecops::sparse_dense_dot(idx, vals, &means[l]);
            }
            total / batch.len() as f64
        };
        let pre = sim_to_own(&batches[0]);
        let post = sim_to_own(&batches[3]);
        assert!(
            post < pre * 0.7,
            "drift did not move class mass: pre {pre} post {post}"
        );
    }

    #[test]
    fn append_batch_grows_docs_only() {
        let c = cfg();
        let (mut corpus, batches) = generate_stream(&c);
        let docs0 = corpus.num_docs();
        append_batch(&mut corpus, &batches[0]);
        assert_eq!(corpus.num_docs(), docs0 + 6);
        assert_eq!(corpus.labels.len(), docs0 + 6);
        assert_eq!(corpus.num_terms(), 90);
        assert_eq!(corpus.num_concepts(), 30);
        // The appended rows reproduce the batch content.
        let (idx, vals) = corpus.doc_term.row(docs0);
        assert_eq!(idx, batches[0].doc_term[0].0.as_slice());
        assert_eq!(vals, batches[0].doc_term[0].1.as_slice());
    }

    #[test]
    fn feature_row_concatenates_views() {
        let c = cfg();
        let (corpus, batches) = generate_stream(&c);
        let (idx, vals) = batches[0].feature_row(0, corpus.num_terms());
        let (tc, tv) = &batches[0].doc_term[0];
        let (cc, cv) = &batches[0].doc_concept[0];
        assert_eq!(idx.len(), tc.len() + cc.len());
        assert_eq!(&idx[..tc.len()], tc.as_slice());
        assert_eq!(&vals[..tv.len()], tv.as_slice());
        assert_eq!(idx[tc.len()], corpus.num_terms() + cc[0]);
        assert_eq!(&vals[tc.len()..], cv.as_slice());
    }

    #[test]
    #[should_panic(expected = "drift_shift")]
    fn rejects_bad_shift() {
        let mut c = cfg();
        c.drift_shift = 1.5;
        generate_stream(&c);
    }
}
