//! # mtrl-datagen
//!
//! Synthetic workloads for the RHCHME reproduction.
//!
//! The paper evaluates on subsets of 20Newsgroups and Reuters-21578
//! enriched with Wikipedia concepts (Table II). Those corpora and the
//! Wikipedia mapping pipeline (ref \[12\]) are not available offline, so —
//! per the substitution policy in DESIGN.md §4 — this crate generates
//! *statistically equivalent* multi-type relational data:
//!
//! * [`corpus`] — a latent-topic generator producing the three-type star
//!   structure documents–terms–concepts with tf-idf-style weighting,
//!   background noise and sample-wise corruption;
//! * [`datasets`] — presets mirroring the class structure of D1–D4
//!   (balanced Multi5/Multi10, skewed 25-class R-Min20Max200, large-class
//!   R-Top10) at laptop scale, with a `Paper` scale matching Table II's
//!   raw counts;
//! * [`manifold`] — the Fig. 1 toy geometries (two intersecting circles,
//!   unions of linear subspaces);
//! * [`noise`] — corruption injectors used by the robustness experiments;
//! * [`corruption`] — typed [`CorruptionSpec`] naming a corruption axis
//!   (feature noise / relation corruption / drift) and its level, the
//!   knob the `mtrl-eval` scenario matrix and the examples share;
//! * [`split`] — train / held-out document splitting for out-of-sample
//!   serving experiments;
//! * [`stream`] — timestamped document batches from the same latent
//!   model as the initial corpus, with optional concept drift
//!   (anchor-window rotation), for the `mtrl-stream` subsystem.
//!
//! Everything is seeded and deterministic. The `MTRL_SEED` environment
//! variable (see [`seed_from_env`]) shifts every seeded experiment so CI
//! can exercise more than one RNG stream per push.

pub mod corpus;
pub mod corruption;
pub mod datasets;
pub mod manifold;
pub mod noise;
pub mod split;
pub mod stream;

pub use corpus::{CorpusConfig, MultiTypeCorpus};
pub use corruption::{CorruptionKind, CorruptionSpec};
pub use datasets::{DatasetId, Scale};
pub use manifold::{two_circles, union_of_subspaces};
pub use split::{split_corpus, HeldOutDoc};
pub use stream::{append_batch, generate_stream, StreamBatch, StreamConfig};

/// Base seed from the `MTRL_SEED` environment variable, or `default`
/// when unset/unparseable. Integration tests add this to their fixed
/// per-test seeds, so the CI seed matrix (`MTRL_SEED=7,42`) runs the
/// whole tier-1 suite on genuinely different corpus realisations while
/// local `cargo test` keeps the historical streams.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("MTRL_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}
