//! Latent-topic multi-type corpus generator.
//!
//! Produces the three co-occurrence matrices the paper's pipeline consumes
//! (Sec. IV-A):
//!
//! * **document–term** — tf-idf weighted token counts;
//! * **document–concept** — counts aggregated through a noisy term→concept
//!   mapping, scaled by a semantic-relatedness factor (mimicking the
//!   Wikipedia mapping of refs [12, 13, 32]);
//! * **term–concept** — number of times a term/concept pair co-occurs in
//!   the same document.
//!
//! Generative model: each class owns a block of *anchor terms*; a token is
//! drawn from the class anchors with probability `1 − topic_noise`, else
//! from a shared background vocabulary. Concepts are a coarsening of the
//! term space (several anchor blocks per concept group) with mapping noise
//! — a second, noisier view of the same latent classes, exactly the role
//! concepts play in the paper. A `corrupt_frac` of documents is replaced
//! by uniform random tokens: those rows carry no class signal and exercise
//! the sample-wise sparse error matrix `E_R` (Eq. 13).

use mtrl_sparse::{Coo, Csr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Parameters of the corpus generator.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusConfig {
    /// Documents per class (its length is the number of classes).
    pub docs_per_class: Vec<usize>,
    /// Vocabulary size (terms). Must exceed the background block.
    pub vocab_size: usize,
    /// Number of concepts.
    pub concept_count: usize,
    /// Tokens per document drawn uniformly from this inclusive range.
    pub doc_len_range: (usize, usize),
    /// Fraction of the vocabulary reserved as shared background terms.
    pub background_frac: f64,
    /// Probability a token comes from the background instead of the class
    /// anchors — the "noise level" of the corpus.
    pub topic_noise: f64,
    /// Probability a term maps to a random concept instead of its true one.
    pub concept_map_noise: f64,
    /// Fraction of documents whose content is replaced by uniform random
    /// tokens (sample-wise corruption).
    pub corrupt_frac: f64,
    /// Sub-topics per class: each document leans on one sub-topic, so a
    /// class is a *multi-modal* region ("manifold") in feature space.
    /// Same-class documents from different sub-topics look dissimilar in
    /// Euclidean space — the structure that makes intra-type relationship
    /// learning (pNN + subspace ensemble) matter. `1` disables.
    pub subtopics_per_class: usize,
    /// View confusion: with this probability a class-anchored token is
    /// drawn from the class's *confusion partner* instead. Partners differ
    /// between the term view (pairs `(0,1), (2,3), …`) and the concept
    /// view (pairs shifted by one), so each single view confuses some
    /// class pairs while the *combination* of views separates all of them
    /// — mimicking real topics that are lexically close but conceptually
    /// distinct (and vice versa). `0.0` disables.
    pub view_confusion: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            docs_per_class: vec![40; 5],
            vocab_size: 400,
            concept_count: 300,
            doc_len_range: (60, 120),
            background_frac: 0.3,
            topic_noise: 0.35,
            concept_map_noise: 0.15,
            corrupt_frac: 0.06,
            subtopics_per_class: 2,
            view_confusion: 0.25,
            seed: 2015,
        }
    }
}

/// A generated multi-type relational dataset (documents, terms, concepts).
#[derive(Debug, Clone)]
pub struct MultiTypeCorpus {
    /// tf-idf weighted document–term matrix (`docs x terms`).
    pub doc_term: Csr,
    /// Document–concept matrix (`docs x concepts`).
    pub doc_concept: Csr,
    /// Term–concept co-occurrence matrix (`terms x concepts`).
    pub term_concept: Csr,
    /// Ground-truth class of every document.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Indices of the corrupted documents (useful for robustness checks).
    pub corrupted_docs: Vec<usize>,
    /// The configuration that produced this corpus.
    pub config: CorpusConfig,
}

impl MultiTypeCorpus {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.doc_term.rows()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.doc_term.cols()
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.doc_concept.cols()
    }

    /// Total object count `n = docs + terms + concepts`.
    pub fn total_objects(&self) -> usize {
        self.num_docs() + self.num_terms() + self.num_concepts()
    }
}

/// The fitted generative machinery behind [`generate`]: vocabulary
/// layout, confusion pairings, the (noisy, per-term-fixed) term→concept
/// mapping and the concept relatedness weights.
///
/// Extracted so the streaming generator ([`crate::stream`]) can keep
/// emitting batches from the *same* latent model that produced the
/// initial corpus — same anchors, same concept mapping, same class
/// structure — optionally with a concept-drift shift of the anchor
/// windows. Construction consumes the RNG in exactly the order the
/// monolithic generator did, so every seeded corpus in the workspace is
/// bit-identical to before the extraction.
pub(crate) struct TopicSampler {
    cfg: CorpusConfig,
    k: usize,
    v: usize,
    background: usize,
    anchors: usize,
    per_class: usize,
    subtopics: usize,
    eff_concept: Vec<usize>,
    relatedness: Vec<f64>,
}

/// Probability that a non-confused token stays on the document's own
/// sub-topic (the remainder spreads over the class's other sub-topics,
/// keeping the class connected as one manifold).
const OWN_SUBTOPIC: f64 = 0.75;

impl TopicSampler {
    /// Validate the configuration and draw the latent model parameters
    /// (relatedness, effective concept mapping) from `rng`.
    ///
    /// # Panics
    /// Panics on degenerate configurations — see [`generate`].
    pub(crate) fn new(cfg: &CorpusConfig, rng: &mut StdRng) -> Self {
        let k = cfg.docs_per_class.len();
        assert!(k >= 2, "need at least 2 classes");
        assert!(
            cfg.vocab_size >= 4 * k,
            "vocabulary too small for {k} classes"
        );
        assert!(
            cfg.concept_count >= k,
            "need at least one concept per class"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.topic_noise)
                && (0.0..=1.0).contains(&cfg.concept_map_noise)
                && (0.0..=1.0).contains(&cfg.corrupt_frac)
                && (0.0..1.0).contains(&cfg.background_frac),
            "probabilities out of range"
        );
        assert!(
            cfg.doc_len_range.0 > 0 && cfg.doc_len_range.0 <= cfg.doc_len_range.1,
            "bad doc length range"
        );
        let v = cfg.vocab_size;
        // Vocabulary layout: the first `background` terms are shared; the
        // rest is split into k anchor blocks.
        let background = ((v as f64) * cfg.background_frac).round() as usize;
        let anchors = v - background;
        let per_class = anchors / k;
        let subtopics = cfg.subtopics_per_class.max(1);
        assert!(
            per_class >= 2 * subtopics,
            "fewer than 2 anchor terms per sub-topic ({per_class} anchors / class, {subtopics} sub-topics)"
        );
        // True term -> concept mapping: concepts tile the vocabulary in
        // order, so anchor blocks map to class-correlated concept groups.
        let true_concept: Vec<usize> = (0..v).map(|t| (t * cfg.concept_count) / v).collect();
        // Concept "semantic relatedness" weights (refs [13, 32]) in [0.5, 1].
        let relatedness: Vec<f64> = (0..cfg.concept_count)
            .map(|_| rng.gen_range(0.5..1.0))
            .collect();
        // Noisy effective mapping, fixed per term (a term always maps to
        // the same concept, as a real knowledge base would).
        let eff_concept: Vec<usize> = (0..v)
            .map(|t| {
                if rng.gen_range(0.0..1.0) < cfg.concept_map_noise {
                    rng.gen_range(0..cfg.concept_count)
                } else {
                    true_concept[t]
                }
            })
            .collect();
        TopicSampler {
            cfg: cfg.clone(),
            k,
            v,
            background,
            anchors,
            per_class,
            subtopics,
            eff_concept,
            relatedness,
        }
    }

    pub(crate) fn num_classes(&self) -> usize {
        self.k
    }

    pub(crate) fn relatedness(&self) -> &[f64] {
        &self.relatedness
    }

    /// Anchor-window rotation (in terms) for a drift fraction of one
    /// class block — derived here so the streaming generator cannot
    /// desynchronise from the sampler's actual vocabulary layout.
    pub(crate) fn drift_shift_terms(&self, fraction: f64) -> usize {
        ((self.per_class as f64) * fraction).round() as usize
    }

    fn anchor_range(&self, class: usize) -> (usize, usize) {
        let start = self.background + class * self.per_class;
        let end = if class == self.k - 1 {
            self.v
        } else {
            start + self.per_class
        };
        (start, end)
    }

    /// Sub-topic sub-block inside a class's anchor range.
    fn subtopic_range(&self, class: usize, sub: usize) -> (usize, usize) {
        let (a_start, a_end) = self.anchor_range(class);
        let width = (a_end - a_start) / self.subtopics;
        let s_start = a_start + sub * width;
        let s_end = if sub == self.subtopics - 1 {
            a_end
        } else {
            s_start + width
        };
        (s_start, s_end)
    }

    /// Complementary confusion pairings: the term view confuses classes
    /// (0,1), (2,3), …; the concept view confuses the shifted pairs
    /// (1,2), (3,4), …, (k-1, 0). Any single view mixes half the pairs;
    /// the union of views separates everything.
    fn term_partner(&self, c: usize) -> usize {
        if c.is_multiple_of(2) {
            (c + 1).min(self.k - 1)
        } else {
            c - 1
        }
    }

    fn concept_partner(&self, c: usize) -> usize {
        if c == 0 {
            self.k - 1
        } else if c % 2 == 1 {
            (c + 1) % self.k
        } else {
            c - 1
        }
    }

    /// Draw one token. `shift` rotates anchored tokens cyclically within
    /// the anchor region of the vocabulary — the concept-drift knob: at
    /// `shift = per_class / 2` every class mean moves halfway towards
    /// its neighbour's old position, so a model fitted pre-drift
    /// confuses adjacent classes until it refreshes. `shift = 0` is the
    /// stationary distribution. RNG draw order is identical for every
    /// shift (the rotation is applied after sampling).
    #[allow(clippy::too_many_arguments)] // mirrors the sampling state of the original closure
    fn sample_token(
        &self,
        rng: &mut StdRng,
        class: usize,
        own_sub: usize,
        partner: usize,
        corrupted: bool,
        shift: usize,
    ) -> usize {
        if corrupted {
            return rng.gen_range(0..self.v);
        }
        if rng.gen_range(0.0..1.0) < self.cfg.topic_noise {
            return rng.gen_range(0..self.background.max(1));
        }
        let (cls, sub) = if rng.gen_range(0.0..1.0) < self.cfg.view_confusion {
            (partner, rng.gen_range(0..self.subtopics))
        } else if rng.gen_range(0.0..1.0) < OWN_SUBTOPIC {
            (class, own_sub)
        } else {
            (class, rng.gen_range(0..self.subtopics))
        };
        let (s, e) = self.subtopic_range(cls, sub);
        let t = rng.gen_range(s..e);
        if shift == 0 {
            t
        } else {
            self.background + (t - self.background + shift) % self.anchors
        }
    }

    /// Sample one document's two token streams: term counts and (mapped)
    /// concept counts. The *term stream* fills the document-term view
    /// (term-view confusion pairing); the *concept stream* is routed
    /// through the term→concept mapping to fill the document-concept
    /// view (concept-view pairing). Both streams share the document's
    /// class and sub-topic, so the term-concept co-occurrence matrix
    /// ties the two views together — the signal HOCC methods exploit and
    /// two-way methods cannot.
    pub(crate) fn sample_doc(
        &self,
        rng: &mut StdRng,
        class: usize,
        corrupted: bool,
        shift: usize,
    ) -> (
        std::collections::HashMap<usize, usize>,
        std::collections::HashMap<usize, usize>,
    ) {
        let len = rng.gen_range(self.cfg.doc_len_range.0..=self.cfg.doc_len_range.1);
        let own_sub = rng.gen_range(0..self.subtopics);
        let t_partner = self.term_partner(class);
        let c_partner = self.concept_partner(class);
        let mut term_counts = std::collections::HashMap::new();
        let mut concept_counts = std::collections::HashMap::new();
        for _ in 0..len {
            let t = self.sample_token(rng, class, own_sub, t_partner, corrupted, shift);
            *term_counts.entry(t).or_insert(0) += 1;
            let ct = self.sample_token(rng, class, own_sub, c_partner, corrupted, shift);
            *concept_counts.entry(self.eff_concept[ct]).or_insert(0) += 1;
        }
        (term_counts, concept_counts)
    }
}

/// Inverse document frequency from per-term document counts.
pub(crate) fn idf_from_df(df: &[usize], n_docs: usize) -> Vec<f64> {
    df.iter()
        .map(|&f| ((1.0 + n_docs as f64) / (1.0 + f as f64)).ln() + 1.0)
        .collect()
}

/// Generate a corpus from a configuration.
///
/// # Panics
/// Panics on degenerate configurations (no classes, empty vocabulary,
/// out-of-range probabilities) — configurations are programmer-supplied
/// constants, so panicking is the right failure mode.
pub fn generate(cfg: &CorpusConfig) -> MultiTypeCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = TopicSampler::new(cfg, &mut rng);
    generate_with_sampler(cfg, &sampler, &mut rng)
}

/// The document-sampling and matrix-assembly half of [`generate`],
/// shared with the streaming generator (which reuses `sampler` and `rng`
/// to keep emitting batches from the same latent model).
pub(crate) fn generate_with_sampler(
    cfg: &CorpusConfig,
    sampler: &TopicSampler,
    rng: &mut StdRng,
) -> MultiTypeCorpus {
    let k = cfg.docs_per_class.len();
    let n_docs: usize = cfg.docs_per_class.iter().sum();
    let v = cfg.vocab_size;

    // Labels & corruption choices.
    let mut labels = Vec::with_capacity(n_docs);
    for (class, &count) in cfg.docs_per_class.iter().enumerate() {
        labels.extend(std::iter::repeat_n(class, count));
    }
    let mut corrupted_docs = Vec::new();
    let corrupted: Vec<bool> = (0..n_docs)
        .map(|d| {
            let c = rng.gen_range(0.0..1.0) < cfg.corrupt_frac;
            if c {
                corrupted_docs.push(d);
            }
            c
        })
        .collect();

    let mut term_counts: Vec<std::collections::HashMap<usize, usize>> = Vec::with_capacity(n_docs);
    let mut concept_counts: Vec<std::collections::HashMap<usize, usize>> =
        Vec::with_capacity(n_docs);
    for d in 0..n_docs {
        let (tc, cc) = sampler.sample_doc(rng, labels[d], corrupted[d], 0);
        term_counts.push(tc);
        concept_counts.push(cc);
    }

    // Document frequencies for idf (term view).
    let mut df = vec![0usize; v];
    for c in &term_counts {
        for &t in c.keys() {
            df[t] += 1;
        }
    }
    let idf = idf_from_df(&df, n_docs);
    let relatedness = sampler.relatedness();

    // Assemble the three relation matrices.
    let mut dt = Coo::new(n_docs, v);
    let mut dc = Coo::new(n_docs, cfg.concept_count);
    let mut tc = Coo::new(v, cfg.concept_count);
    for d in 0..n_docs {
        let concept_hist = &concept_counts[d];
        for (&t, &c) in &term_counts[d] {
            dt.push(d, t, c as f64 * idf[t]);
            // term-concept: the pair (t, concept) co-occurs in this
            // document `count_t * count_concept_tokens` times.
            for (&cc, &ch) in concept_hist {
                tc.push(t, cc, (c * ch) as f64);
            }
        }
        for (&cc, &ch) in concept_hist {
            // Doc-concept weighting: tf-idf-style mass of the mapped
            // tokens, scaled by the concept's semantic relatedness.
            dc.push(d, cc, ch as f64 * relatedness[cc]);
        }
    }

    let mut doc_term = dt.to_csr();
    let mut doc_concept = dc.to_csr();
    let mut term_concept = tc.to_csr();
    normalize_rows(&mut doc_term);
    normalize_rows(&mut doc_concept);
    normalize_rows(&mut term_concept);

    MultiTypeCorpus {
        doc_term,
        doc_concept,
        term_concept,
        labels,
        num_classes: k,
        corrupted_docs,
        config: cfg.clone(),
    }
}

/// Scale each row to unit l2 norm (in CSR form), leaving empty rows alone.
fn normalize_rows(m: &mut Csr) {
    let norms: Vec<f64> = (0..m.rows())
        .map(|i| m.row(i).1.iter().map(|v| v * v).sum::<f64>().sqrt())
        .collect();
    let mut coo = Coo::with_capacity(m.rows(), m.cols(), m.nnz());
    for (i, j, v) in m.iter() {
        if norms[i] > 1e-300 {
            coo.push(i, j, v / norms[i]);
        }
    }
    *m = coo.to_csr();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            docs_per_class: vec![10, 10, 10],
            vocab_size: 90,
            concept_count: 30,
            doc_len_range: (30, 50),
            background_frac: 0.3,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.1,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn shapes_and_labels() {
        let c = generate(&small_cfg());
        assert_eq!(c.num_docs(), 30);
        assert_eq!(c.num_terms(), 90);
        assert_eq!(c.num_concepts(), 30);
        assert_eq!(c.labels.len(), 30);
        assert_eq!(c.num_classes, 3);
        assert_eq!(c.total_objects(), 150);
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[29], 2);
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.doc_term, b.doc_term);
        assert_eq!(a.doc_concept, b.doc_concept);
        assert_eq!(a.term_concept, b.term_concept);
        assert_eq!(a.corrupted_docs, b.corrupted_docs);
        let mut cfg2 = small_cfg();
        cfg2.seed = 2;
        let c = generate(&cfg2);
        assert_ne!(a.doc_term, c.doc_term);
    }

    #[test]
    fn rows_unit_norm() {
        let c = generate(&small_cfg());
        for m in [&c.doc_term, &c.doc_concept, &c.term_concept] {
            for i in 0..m.rows() {
                let (_, vals) = m.row(i);
                if vals.is_empty() {
                    continue;
                }
                let n: f64 = vals.iter().map(|v| v * v).sum::<f64>().sqrt();
                assert!((n - 1.0).abs() < 1e-9, "row {i} norm {n}");
            }
        }
    }

    #[test]
    fn nonnegative_entries() {
        let c = generate(&small_cfg());
        for m in [&c.doc_term, &c.doc_concept, &c.term_concept] {
            for (_, _, v) in m.iter() {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn class_signal_present() {
        // Same-class documents must be more similar (cosine on doc_term)
        // than cross-class ones, on average.
        let mut cfg = small_cfg();
        cfg.corrupt_frac = 0.0;
        let c = generate(&cfg);
        let dense = c.doc_term.to_dense();
        let (mut within, mut across) = (vec![], vec![]);
        for i in 0..30 {
            for j in i + 1..30 {
                let s = mtrl_linalg::vecops::cosine(dense.row(i), dense.row(j));
                if c.labels[i] == c.labels[j] {
                    within.push(s);
                } else {
                    across.push(s);
                }
            }
        }
        let mw = mtrl_linalg::vecops::mean(&within);
        let ma = mtrl_linalg::vecops::mean(&across);
        assert!(mw > ma + 0.1, "within {mw} vs across {ma}");
    }

    #[test]
    fn corruption_destroys_signal() {
        let mut cfg = small_cfg();
        cfg.corrupt_frac = 0.3;
        cfg.seed = 9;
        let c = generate(&cfg);
        assert!(!c.corrupted_docs.is_empty());
        let dense = c.doc_term.to_dense();
        // A corrupted doc should look less like its class than a clean one.
        let clean: Vec<usize> = (0..30).filter(|d| !c.corrupted_docs.contains(d)).collect();
        let mean_sim_to_class = |d: usize| {
            let sims: Vec<f64> = clean
                .iter()
                .filter(|&&o| o != d && c.labels[o] == c.labels[d])
                .map(|&o| mtrl_linalg::vecops::cosine(dense.row(d), dense.row(o)))
                .collect();
            mtrl_linalg::vecops::mean(&sims)
        };
        let corrupt_mean = mtrl_linalg::vecops::mean(
            &c.corrupted_docs
                .iter()
                .map(|&d| mean_sim_to_class(d))
                .collect::<Vec<_>>(),
        );
        let clean_mean = mtrl_linalg::vecops::mean(
            &clean
                .iter()
                .map(|&d| mean_sim_to_class(d))
                .collect::<Vec<_>>(),
        );
        assert!(
            corrupt_mean < clean_mean,
            "corrupted {corrupt_mean} vs clean {clean_mean}"
        );
    }

    #[test]
    fn concepts_correlate_with_classes() {
        let mut cfg = small_cfg();
        cfg.corrupt_frac = 0.0;
        cfg.concept_map_noise = 0.05;
        let c = generate(&cfg);
        let dense = c.doc_concept.to_dense();
        let (mut within, mut across) = (vec![], vec![]);
        for i in 0..30 {
            for j in i + 1..30 {
                let s = mtrl_linalg::vecops::cosine(dense.row(i), dense.row(j));
                if c.labels[i] == c.labels[j] {
                    within.push(s);
                } else {
                    across.push(s);
                }
            }
        }
        assert!(
            mtrl_linalg::vecops::mean(&within) > mtrl_linalg::vecops::mean(&across),
            "concept view carries no class signal"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn rejects_single_class() {
        let mut cfg = small_cfg();
        cfg.docs_per_class = vec![10];
        generate(&cfg);
    }

    #[test]
    fn zero_corruption_has_no_corrupted_docs() {
        let mut cfg = small_cfg();
        cfg.corrupt_frac = 0.0;
        let c = generate(&cfg);
        assert!(c.corrupted_docs.is_empty());
    }
}
