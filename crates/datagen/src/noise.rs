//! Corruption injectors for robustness experiments.
//!
//! The paper's `E_R` machinery targets *sample-wise* corruption: "only
//! some data vectors are corrupted in the dataset" (Sec. III-C). These
//! helpers inject exactly that into dense matrices, so the ablation
//! benches can dial corruption independently of the corpus generator.

use mtrl_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replace a `frac` fraction of rows of `m` with uniform random values in
/// `[0, scale)`. Returns the corrupted row indices (sorted).
///
/// # Panics
/// Panics if `frac` is outside `[0, 1]` or `scale` is not positive.
pub fn corrupt_rows(m: &mut Mat, frac: f64, scale: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
    assert!(scale > 0.0, "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_corrupt = ((m.rows() as f64) * frac).round() as usize;
    let mut idx = mtrl_linalg::random::permutation(m.rows(), seed ^ 0x9e3779b97f4a7c15);
    idx.truncate(n_corrupt);
    idx.sort_unstable();
    for &i in &idx {
        for v in m.row_mut(i) {
            *v = rng.gen_range(0.0..scale);
        }
    }
    idx
}

/// Add sparse "salt" noise: each entry independently replaced with a
/// uniform value in `[0, scale)` with probability `p`. Returns the number
/// of entries changed.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or `scale` is not positive.
pub fn salt_noise(m: &mut Mat, p: f64, scale: f64, seed: u64) -> usize {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    assert!(scale > 0.0, "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut changed = 0;
    for v in m.as_mut_slice() {
        if rng.gen_range(0.0..1.0) < p {
            *v = rng.gen_range(0.0..scale);
            changed += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    #[test]
    fn corrupt_rows_count_and_indices() {
        let mut m = Mat::zeros(20, 5);
        let idx = corrupt_rows(&mut m, 0.25, 1.0, 3);
        assert_eq!(idx.len(), 5);
        // Corrupted rows are nonzero, others untouched.
        for i in 0..20 {
            let s: f64 = m.row(i).iter().sum();
            if idx.contains(&i) {
                assert!(s > 0.0);
            } else {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn corrupt_rows_zero_frac_noop() {
        let mut m = rand_uniform(5, 5, 0.0, 1.0, 4);
        let orig = m.clone();
        let idx = corrupt_rows(&mut m, 0.0, 1.0, 5);
        assert!(idx.is_empty());
        assert!(m.approx_eq(&orig, 0.0));
    }

    #[test]
    fn corrupt_rows_deterministic() {
        let mut a = Mat::zeros(10, 3);
        let mut b = Mat::zeros(10, 3);
        let ia = corrupt_rows(&mut a, 0.3, 1.0, 6);
        let ib = corrupt_rows(&mut b, 0.3, 1.0, 6);
        assert_eq!(ia, ib);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn salt_noise_rate_roughly_p() {
        let mut m = Mat::zeros(100, 100);
        let changed = salt_noise(&mut m, 0.1, 1.0, 7);
        let rate = changed as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn salt_noise_zero_p_noop() {
        let mut m = rand_uniform(5, 5, 0.0, 1.0, 8);
        let orig = m.clone();
        assert_eq!(salt_noise(&mut m, 0.0, 1.0, 9), 0);
        assert!(m.approx_eq(&orig, 0.0));
    }
}
