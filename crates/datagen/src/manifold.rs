//! Toy manifold geometries for the Fig. 1 reproduction.
//!
//! Fig. 1 of the paper shows data in R² drawn from a union of two
//! intersecting circle-shaped manifolds plus background noise, and argues
//! that pNN graphs cannot separate points near the intersection while
//! subspace/manifold-aware affinities can. [`two_circles`] generates
//! exactly that scene; [`union_of_subspaces`] generates the linear-subspace
//! analogue on which reconstruction-based methods (Sec. II-B) are exact.

use mtrl_linalg::random::NormalGen;
use mtrl_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Label used for background noise points in [`two_circles`].
pub const NOISE_LABEL: usize = 2;

/// Two intersecting circles in R² with optional background noise.
///
/// Returns `(points, labels)` where labels are `0` / `1` for the circles
/// and [`NOISE_LABEL`] for noise points. The circles are centred `1.2·r`
/// apart so they intersect (as in the paper's figure).
pub fn two_circles(
    n_per_circle: usize,
    radius: f64,
    noise_std: f64,
    n_noise: usize,
    seed: u64,
) -> (Mat, Vec<usize>) {
    assert!(n_per_circle > 0 && radius > 0.0, "degenerate circle spec");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = NormalGen::new();
    let centers = [(0.0, 0.0), (1.2 * radius, 0.0)];
    let mut rows = Vec::with_capacity(2 * n_per_circle + n_noise);
    let mut labels = Vec::with_capacity(2 * n_per_circle + n_noise);
    for (c, &(cx, cy)) in centers.iter().enumerate() {
        for i in 0..n_per_circle {
            let theta: f64 = 2.0 * std::f64::consts::PI * (i as f64) / (n_per_circle as f64)
                + rng.gen_range(0.0..0.05);
            let x = cx + radius * theta.cos() + noise_std * gauss.next(&mut rng);
            let y = cy + radius * theta.sin() + noise_std * gauss.next(&mut rng);
            rows.push(vec![x, y]);
            labels.push(c);
        }
    }
    // Background noise: uniform over the bounding box of both circles.
    let (lo_x, hi_x) = (-1.5 * radius, 2.7 * radius);
    let (lo_y, hi_y) = (-1.5 * radius, 1.5 * radius);
    for _ in 0..n_noise {
        rows.push(vec![rng.gen_range(lo_x..hi_x), rng.gen_range(lo_y..hi_y)]);
        labels.push(NOISE_LABEL);
    }
    (Mat::from_rows(&rows).expect("consistent rows"), labels)
}

/// Points drawn from a union of `k` random linear subspaces of dimension
/// `dim` inside R^`ambient`, `n_per` points each, with isotropic Gaussian
/// noise of `noise_std`.
///
/// Returns `(points, labels)` with labels `0..k`.
///
/// # Panics
/// Panics if `dim >= ambient` or any count is zero.
pub fn union_of_subspaces(
    k: usize,
    dim: usize,
    ambient: usize,
    n_per: usize,
    noise_std: f64,
    seed: u64,
) -> (Mat, Vec<usize>) {
    assert!(k > 0 && n_per > 0, "degenerate subspace spec");
    assert!(dim >= 1 && dim < ambient, "need 1 <= dim < ambient");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = NormalGen::new();
    let mut rows = Vec::with_capacity(k * n_per);
    let mut labels = Vec::with_capacity(k * n_per);
    for s in 0..k {
        // Random (non-orthonormalised) basis: spans a `dim`-dimensional
        // subspace with probability 1.
        let basis: Vec<Vec<f64>> = (0..dim)
            .map(|_| (0..ambient).map(|_| gauss.next(&mut rng)).collect())
            .collect();
        for _ in 0..n_per {
            let mut point = vec![0.0; ambient];
            for b in &basis {
                let coeff = rng.gen_range(-2.0..2.0);
                for (p, &bv) in point.iter_mut().zip(b) {
                    *p += coeff * bv;
                }
            }
            for p in point.iter_mut() {
                *p += noise_std * gauss.next(&mut rng);
            }
            rows.push(point);
            labels.push(s);
        }
    }
    (Mat::from_rows(&rows).expect("consistent rows"), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::vecops::norm2;

    #[test]
    fn circles_shapes_and_labels() {
        let (pts, labels) = two_circles(50, 1.0, 0.02, 10, 42);
        assert_eq!(pts.rows(), 110);
        assert_eq!(pts.cols(), 2);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 50);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 50);
        assert_eq!(labels.iter().filter(|&&l| l == NOISE_LABEL).count(), 10);
    }

    #[test]
    fn circle_points_lie_near_radius() {
        let (pts, labels) = two_circles(40, 2.0, 0.01, 0, 43);
        for (i, &l) in labels.iter().enumerate() {
            let (cx, cy) = if l == 0 { (0.0, 0.0) } else { (2.4, 0.0) };
            let r = ((pts[(i, 0)] - cx).powi(2) + (pts[(i, 1)] - cy).powi(2)).sqrt();
            assert!((r - 2.0).abs() < 0.1, "point {i} radius {r}");
        }
    }

    #[test]
    fn circles_intersect() {
        // Centres are 1.2r apart with equal radii r: circles overlap.
        let (pts, labels) = two_circles(200, 1.0, 0.0, 0, 44);
        // There must exist points of circle 0 and circle 1 that are very
        // close to each other (near the intersection).
        let mut best = f64::INFINITY;
        for i in 0..pts.rows() {
            for j in 0..pts.rows() {
                if labels[i] == 0 && labels[j] == 1 {
                    let d = mtrl_linalg::vecops::sq_dist(pts.row(i), pts.row(j)).sqrt();
                    best = best.min(d);
                }
            }
        }
        assert!(best < 0.05, "circles do not touch: min dist {best}");
    }

    #[test]
    fn deterministic() {
        let (a, _) = two_circles(20, 1.0, 0.05, 5, 7);
        let (b, _) = two_circles(20, 1.0, 0.05, 5, 7);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn subspace_points_near_their_span() {
        let (pts, labels) = union_of_subspaces(3, 2, 6, 30, 0.0, 8);
        assert_eq!(pts.rows(), 90);
        assert_eq!(labels.len(), 90);
        // Noiseless points from a 2-D subspace: any 3 points from the same
        // subspace plus the origin are linearly dependent. Check rank via
        // Gram determinant of 3 same-class points being ~0 in the
        // orthogonal complement: simpler proxy — points are nonzero and
        // each class has correct count.
        for s in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == s).count(), 30);
        }
        assert!(pts.rows_iter().all(|r| norm2(r) > 0.0));
    }

    #[test]
    #[should_panic(expected = "dim < ambient")]
    fn rejects_full_dim_subspace() {
        union_of_subspaces(2, 3, 3, 5, 0.0, 1);
    }
}
