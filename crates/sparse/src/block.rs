//! Sparse block-diagonal operator.
//!
//! Section I-A of the paper makes the global intra-type Laplacian `L`
//! block diagonal with one `n_k x n_k` block per object type, and a pNN
//! Laplacian block carries at most `2pn_k + n_k` entries. Keeping the
//! blocks in CSR form turns the fit loop's `L·G` products into
//! `O(nnz · c)` work and its `tr(GᵀLG)` regulariser into `O(nnz · c)`
//! reductions — no `n x n` matrix is ever materialised while fitting.
//!
//! This is the sparse sibling of [`mtrl_linalg::BlockDiag`] and shares
//! its [`BlockSpec`] layout type; [`SparseBlockDiag::to_block_diag`]
//! densifies for the tests and the spectral utilities.

use crate::Csr;
use mtrl_linalg::block::{BlockDiag, BlockSpec};
use mtrl_linalg::error::LinalgError;
use mtrl_linalg::Mat;

/// Block-diagonal square matrix with one square sparse block per type.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBlockDiag {
    blocks: Vec<Csr>,
    spec: BlockSpec,
}

impl SparseBlockDiag {
    /// Assemble from square sparse blocks.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] if any block is not square.
    pub fn new(blocks: Vec<Csr>) -> Result<Self, LinalgError> {
        for b in &blocks {
            if b.rows() != b.cols() {
                return Err(LinalgError::NotSquare {
                    op: "SparseBlockDiag::new",
                    shape: b.shape(),
                });
            }
        }
        let sizes: Vec<usize> = blocks.iter().map(|b| b.rows()).collect();
        Ok(SparseBlockDiag {
            blocks,
            spec: BlockSpec::from_sizes(&sizes),
        })
    }

    /// The underlying block layout.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow block `k`.
    pub fn block(&self, k: usize) -> &Csr {
        &self.blocks[k]
    }

    /// Total stacked dimension `n`.
    pub fn n(&self) -> usize {
        self.spec.total()
    }

    /// Total stored entries over all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Csr::nnz).sum()
    }

    /// Product with a stacked dense matrix: `out = blockdiag(L_k) * G`,
    /// `O(nnz · c)`. Each block product runs on the [`mtrl_linalg::par`]
    /// pool (see [`Csr::spmm_dense`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `g.rows() != n`.
    pub fn mul_dense(&self, g: &Mat) -> Result<Mat, LinalgError> {
        if g.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch {
                op: "SparseBlockDiag::mul_dense",
                lhs: (self.n(), self.n()),
                rhs: g.shape(),
            });
        }
        let mut out = Mat::zeros(g.rows(), g.cols());
        for (k, block) in self.blocks.iter().enumerate() {
            block.spmm_dense_at(g, self.spec.offset(k), &mut out);
        }
        Ok(out)
    }

    /// The quadratic form `tr(Gᵀ L G) = Σ_k tr(G_kᵀ L_k G_k)` in
    /// `O(nnz · c)` without materialising `L G` or copying `G` blocks.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `g.rows() != n`.
    pub fn trace_quad(&self, g: &Mat) -> Result<f64, LinalgError> {
        if g.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch {
                op: "SparseBlockDiag::trace_quad",
                lhs: (self.n(), self.n()),
                rhs: g.shape(),
            });
        }
        Ok(self
            .blocks
            .iter()
            .enumerate()
            .map(|(k, block)| block.quad_form_at(g, self.spec.offset(k)))
            .sum())
    }

    /// Linear combination `alpha * self + beta * other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if the block layouts differ.
    pub fn lin_comb(
        &self,
        alpha: f64,
        other: &SparseBlockDiag,
        beta: f64,
    ) -> Result<Self, LinalgError> {
        if self.spec != other.spec {
            return Err(LinalgError::ShapeMismatch {
                op: "SparseBlockDiag::lin_comb",
                lhs: (self.n(), self.n()),
                rhs: (other.n(), other.n()),
            });
        }
        Ok(SparseBlockDiag {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a.lin_comb(alpha, b, beta))
                .collect(),
            spec: self.spec.clone(),
        })
    }

    /// Scale every block.
    pub fn scaled(&self, s: f64) -> Self {
        SparseBlockDiag {
            blocks: self.blocks.iter().map(|b| b.scaled(s)).collect(),
            spec: self.spec.clone(),
        }
    }

    /// Split every block into positive and negative parts (Eq. 21 needs
    /// `L⁺` and `L⁻` separately).
    pub fn split_parts(&self) -> (SparseBlockDiag, SparseBlockDiag) {
        let (pos, neg): (Vec<Csr>, Vec<Csr>) = self.blocks.iter().map(Csr::split_parts).unzip();
        (
            SparseBlockDiag {
                blocks: pos,
                spec: self.spec.clone(),
            },
            SparseBlockDiag {
                blocks: neg,
                spec: self.spec.clone(),
            },
        )
    }

    /// Densify into the dense block-diagonal sibling (tests, spectral
    /// utilities, small problems only).
    pub fn to_block_diag(&self) -> BlockDiag {
        BlockDiag::new(self.blocks.iter().map(Csr::to_dense).collect())
            .expect("blocks are square by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use mtrl_linalg::ops;
    use mtrl_linalg::random::rand_uniform;

    fn random_block(n: usize, seed: u64) -> Csr {
        let dense = rand_uniform(n, n, -1.0, 1.0, seed);
        let mask = rand_uniform(n, n, 0.0, 1.0, seed + 1);
        let mut c = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if mask[(i, j)] < 0.3 {
                    c.push(i, j, dense[(i, j)]);
                }
            }
        }
        c.to_csr()
    }

    fn sample() -> SparseBlockDiag {
        SparseBlockDiag::new(vec![random_block(6, 80), random_block(9, 82)]).unwrap()
    }

    #[test]
    fn rejects_non_square_blocks() {
        let mut c = Coo::new(2, 3);
        c.push(0, 2, 1.0);
        assert!(SparseBlockDiag::new(vec![c.to_csr()]).is_err());
    }

    #[test]
    fn mul_dense_matches_dense_sibling() {
        let s = sample();
        let g = rand_uniform(15, 3, -1.0, 1.0, 84);
        let fast = s.mul_dense(&g).unwrap();
        let slow = s.to_block_diag().mul_dense(&g).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(s.mul_dense(&Mat::zeros(4, 2)).is_err());
    }

    #[test]
    fn trace_quad_matches_dense_sibling() {
        let s = sample();
        let g = rand_uniform(15, 4, -1.0, 1.0, 85);
        let fast = s.trace_quad(&g).unwrap();
        let lg = ops::matmul(&s.to_block_diag().to_dense(), &g).unwrap();
        let slow = ops::trace_product_tn(&lg, &g).unwrap();
        assert!((fast - slow).abs() < 1e-10);
    }

    #[test]
    fn lin_comb_and_scaled() {
        let a = sample();
        let b = sample().scaled(0.5);
        let c = a.lin_comb(2.0, &b, -1.0).unwrap();
        let expect = a
            .to_block_diag()
            .lin_comb(2.0, &b.to_block_diag(), -1.0)
            .unwrap();
        assert!(c
            .to_block_diag()
            .to_dense()
            .approx_eq(&expect.to_dense(), 1e-12));
        // Layout mismatch rejected.
        let d = SparseBlockDiag::new(vec![random_block(15, 86)]).unwrap();
        assert!(a.lin_comb(1.0, &d, 1.0).is_err());
    }

    #[test]
    fn split_parts_reconstruct_nonneg() {
        let s = sample();
        let (p, n) = s.split_parts();
        for k in 0..s.num_blocks() {
            assert!(p.block(k).iter().all(|(_, _, v)| v > 0.0));
            assert!(n.block(k).iter().all(|(_, _, v)| v > 0.0));
        }
        let rec = p.lin_comb(1.0, &n, -1.0).unwrap();
        assert!(rec
            .to_block_diag()
            .to_dense()
            .approx_eq(&s.to_block_diag().to_dense(), 0.0));
    }

    #[test]
    fn layout_accessors() {
        let s = sample();
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.n(), 15);
        assert_eq!(s.spec().offset(1), 6);
        assert!(s.nnz() > 0);
        assert_eq!(s.block(0).rows(), 6);
    }
}
