//! # mtrl-sparse
//!
//! Sparse matrix substrate for the RHCHME reproduction.
//!
//! The inter-type relationship matrix `R` (Section I-A) and the pNN graphs
//! (Eq. 3) are sparse by construction: document–term co-occurrence is
//! mostly zeros and a pNN graph has at most `2pn` edges. The complexity
//! analysis in Section III-F depends on `z = nnz(R)`, so the harness needs
//! a real sparse representation to honour it.
//!
//! Three types:
//! * [`Coo`] — a triplet builder (push `(i, j, v)` in any order);
//! * [`Csr`] — compressed sparse row storage with the products the engine
//!   needs (parallel CSR×dense, quadratic forms, linear combinations,
//!   positive/negative splits, `spmv`, transpose, row reductions);
//! * [`SparseBlockDiag`] — the block-diagonal Laplacian operator of
//!   Section I-A, kept sparse through the whole fit loop.

pub mod block;
pub mod coo;
pub mod csr;

pub use block::SparseBlockDiag;
pub use coo::Coo;
pub use csr::{Csr, CsrBuilder};
