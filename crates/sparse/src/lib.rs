//! # mtrl-sparse
//!
//! Sparse matrix substrate for the RHCHME reproduction.
//!
//! The inter-type relationship matrix `R` (Section I-A) and the pNN graphs
//! (Eq. 3) are sparse by construction: document–term co-occurrence is
//! mostly zeros and a pNN graph has at most `2pn` edges. The complexity
//! analysis in Section III-F depends on `z = nnz(R)`, so the harness needs
//! a real sparse representation to honour it.
//!
//! Six types:
//! * [`Coo`] — a triplet builder (push `(i, j, v)` in any order);
//! * [`Csr`] — compressed sparse row storage with the products the engine
//!   needs (parallel CSR×dense, quadratic forms, linear combinations,
//!   positive/negative splits, `spmv`, transpose, row reductions);
//! * [`SparseBlockDiag`] — the block-diagonal Laplacian operator of
//!   Section I-A, kept sparse through the whole fit loop;
//! * [`CsrF32`] / [`SparseBlockDiagF32`] — `f32`/`u32` storage twins of
//!   the two operators above with `f64` accumulation, the sparse half of
//!   the mixed-precision backend ([`mtrl_linalg::Precision`]);
//! * [`RowSparse`] — row-sparse storage (sparse in rows, dense within a
//!   row) for the ℓ2,1-structured error matrix `E_R` of Sec. III-C:
//!   only the shrunk-active rows are stored.

pub mod block;
pub mod coo;
pub mod csr;
pub mod csr_f32;
pub mod rowsparse;

pub use block::SparseBlockDiag;
pub use coo::Coo;
pub use csr::{Csr, CsrBuilder};
pub use csr_f32::{CsrF32, SparseBlockDiagF32};
pub use rowsparse::RowSparse;
