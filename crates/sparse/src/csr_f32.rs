//! `f32`-storage CSR and block-diagonal operators for the
//! mixed-precision engine path.
//!
//! [`CsrF32`] halves the per-entry stream of [`Csr`] twice over: column
//! indices shrink to `u32` and values to `f32` (16 → 8 bytes per stored
//! entry), and the dense operand arrives as [`MatF32`] — so the two
//! `O(nnz · c)` hot loops of the sparse-first engine (`R·G` SpMM and the
//! `tr(GᵀLG)` quadratic form) move half the bytes per multiply-add.
//! Accumulation stays `f64`: every element is widened before it enters
//! an accumulation chain, and widening is exact, so each kernel is
//! bit-identical to its `f64` reference applied to the widened
//! (f32-quantised) operands — the same contract as the `_f32` kernels in
//! `mtrl_linalg::lowrank`.
//!
//! These are *operator snapshots*, not general sparse matrices: build
//! one from a finished [`Csr`] (the engine does this once per fit for
//! `R` and the fixed Laplacian parts), apply it, and rebuild it if the
//! `f64` original changes.

use crate::{Csr, SparseBlockDiag};
use mtrl_linalg::block::BlockSpec;
use mtrl_linalg::error::LinalgError;
use mtrl_linalg::{Mat, MatF32};

/// Compressed sparse row matrix with `u32` column indices and `f32`
/// values — the f32-storage twin of [`Csr`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrF32 {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrF32 {
    /// Snapshot a [`Csr`] into `f32`/`u32` storage.
    ///
    /// # Panics
    /// Panics if the column count exceeds `u32::MAX` (no realistic
    /// corpus does).
    pub fn from_csr(m: &Csr) -> Self {
        assert!(
            m.cols() <= u32::MAX as usize,
            "CsrF32: column count exceeds u32"
        );
        let mut indptr = Vec::with_capacity(m.rows() + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        for i in 0..m.rows() {
            let (cols, vals) = m.row(i);
            indices.extend(cols.iter().map(|&j| j as u32));
            values.extend(vals.iter().map(|&v| v as f32));
            indptr.push(indices.len());
        }
        CsrF32 {
            rows: m.rows(),
            cols: m.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Widen back into an `f64` [`Csr`] whose values are exactly the
    /// stored `f32` values — the "quantise through f32" map, used by the
    /// cross-precision tests.
    pub fn widen(&self) -> Csr {
        Csr::from_raw_parts(
            self.rows,
            self.cols,
            self.indptr.clone(),
            self.indices.iter().map(|&j| j as usize).collect(),
            self.values.iter().map(|&v| v as f64).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        assert!(i < self.rows, "row index out of bounds");
        let span = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Per-row sums of squared (widened) values — `Σ_j R_ij²` of the
    /// quantised relation matrix, the constant term of the engine's
    /// row-residual norms in F32 mode.
    pub fn row_sq_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .1
                    .iter()
                    .map(|&v| {
                        let w = v as f64;
                        w * w
                    })
                    .sum()
            })
            .collect()
    }

    /// Sparse × dense product `self * B` with `f64` accumulation — the
    /// f32-storage twin of [`Csr::spmm_dense`], bit-identical to it on
    /// the widened operands for every thread count.
    ///
    /// # Panics
    /// Panics if `self.cols != b.rows()`.
    pub fn spmm_dense(&self, b: &MatF32) -> Mat {
        assert_eq!(self.cols, b.rows(), "spmm_dense: dimension mismatch");
        let mut out = Mat::zeros(self.rows, b.cols());
        self.spmm_dense_at(b, 0, &mut out);
        out
    }

    /// [`Self::spmm_dense`] as one diagonal block of a stacked operator —
    /// see [`Csr::spmm_dense_at`]; same thresholds, same chunking.
    ///
    /// # Panics
    /// Panics if either matrix ends before the block does or the column
    /// counts differ.
    pub fn spmm_dense_at(&self, b: &MatF32, offset: usize, out: &mut Mat) {
        assert!(
            b.rows() >= offset + self.cols,
            "spmm_dense_at: B ends before the block does"
        );
        assert!(
            out.rows() >= offset + self.rows,
            "spmm_dense_at: out ends before the block does"
        );
        assert_eq!(b.cols(), out.cols(), "spmm_dense_at: column mismatch");
        let n = b.cols();
        let span = &mut out.as_mut_slice()[offset * n..(offset + self.rows) * n];
        if self.nnz() * n < (1 << 20) {
            self.spmm_rows_into(b, offset, span, 0, self.rows);
        } else {
            mtrl_linalg::par::par_row_chunks(span, self.rows, n, |r0, r1, chunk| {
                self.spmm_rows_into(b, offset, chunk, r0, r1)
            });
        }
    }

    /// Accumulate rows `[r0, r1)` of `self * B[offset..]` into `chunk`,
    /// widening each factor before the `f64` multiply-add.
    fn spmm_rows_into(&self, b: &MatF32, offset: usize, chunk: &mut [f64], r0: usize, r1: usize) {
        let n = b.cols();
        for (local, i) in (r0..r1).enumerate() {
            let (cols, vals) = self.row(i);
            let orow = &mut chunk[local * n..(local + 1) * n];
            for (&j, &v) in cols.iter().zip(vals) {
                let vw = v as f64;
                let brow = b.row(offset + j as usize);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += vw * bv as f64;
                }
            }
        }
    }

    /// Quadratic form `tr(Gᵀ A G)` with `f64` accumulation — the
    /// f32-storage twin of [`Csr::quad_form`].
    ///
    /// # Panics
    /// Panics if `self` is not square or `g.rows() != self.rows`.
    pub fn quad_form(&self, g: &MatF32) -> f64 {
        assert_eq!(g.rows(), self.rows, "quad_form: dimension mismatch");
        self.quad_form_at(g, 0)
    }

    /// [`Self::quad_form`] against rows `[offset, offset + n)` of a
    /// taller stacked `G` — see [`Csr::quad_form_at`].
    ///
    /// # Panics
    /// Panics if `self` is not square or `g` has fewer than
    /// `offset + rows` rows.
    pub fn quad_form_at(&self, g: &MatF32, offset: usize) -> f64 {
        assert_eq!(self.rows, self.cols, "quad_form requires square");
        assert!(
            g.rows() >= offset + self.rows,
            "quad_form_at: G ends before the block does"
        );
        let mut acc = 0.0;
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let gi = g.row(offset + i);
            for (&j, &v) in cols.iter().zip(vals) {
                let gj = g.row(offset + j as usize);
                let dot: f64 = gi.iter().zip(gj).map(|(&a, &b)| a as f64 * b as f64).sum();
                acc += v as f64 * dot;
            }
        }
        acc
    }
}

/// Block-diagonal operator over [`CsrF32`] blocks — the f32-storage twin
/// of [`SparseBlockDiag`], snapshotted once per fit from the fixed
/// Laplacian (and its positive/negative parts) in F32 mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBlockDiagF32 {
    blocks: Vec<CsrF32>,
    spec: BlockSpec,
}

impl SparseBlockDiagF32 {
    /// Snapshot a [`SparseBlockDiag`] into `f32`/`u32` storage.
    pub fn from_block_diag(l: &SparseBlockDiag) -> Self {
        SparseBlockDiagF32 {
            blocks: (0..l.num_blocks())
                .map(|k| CsrF32::from_csr(l.block(k)))
                .collect(),
            spec: l.spec().clone(),
        }
    }

    /// Total stacked dimension `n`.
    pub fn n(&self) -> usize {
        self.spec.total()
    }

    /// Total stored entries over all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(CsrF32::nnz).sum()
    }

    /// `blockdiag(L_k) * G` with `f64` accumulation — the f32-storage
    /// twin of [`SparseBlockDiag::mul_dense`].
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `g.rows() != n`.
    pub fn mul_dense(&self, g: &MatF32) -> Result<Mat, LinalgError> {
        if g.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch {
                op: "SparseBlockDiagF32::mul_dense",
                lhs: (self.n(), self.n()),
                rhs: g.shape(),
            });
        }
        let mut out = Mat::zeros(g.rows(), g.cols());
        for (k, block) in self.blocks.iter().enumerate() {
            block.spmm_dense_at(g, self.spec.offset(k), &mut out);
        }
        Ok(out)
    }

    /// `tr(Gᵀ L G)` with `f64` accumulation — the f32-storage twin of
    /// [`SparseBlockDiag::trace_quad`].
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `g.rows() != n`.
    pub fn trace_quad(&self, g: &MatF32) -> Result<f64, LinalgError> {
        if g.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch {
                op: "SparseBlockDiagF32::trace_quad",
                lhs: (self.n(), self.n()),
                rhs: g.shape(),
            });
        }
        Ok(self
            .blocks
            .iter()
            .enumerate()
            .map(|(k, block)| block.quad_form_at(g, self.spec.offset(k)))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use mtrl_linalg::par::{num_threads, set_num_threads};
    use mtrl_linalg::random::rand_uniform;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Csr {
        let dense = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let mask = rand_uniform(rows, cols, 0.0, 1.0, seed + 1);
        let mut c = Coo::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if mask[(i, j)] < density {
                    c.push(i, j, dense[(i, j)]);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn from_csr_widen_is_quantisation() {
        let s = random_sparse(9, 7, 0.4, 90);
        let q = CsrF32::from_csr(&s).widen();
        assert_eq!(q.shape(), s.shape());
        assert_eq!(q.nnz(), s.nnz());
        for ((i, j, a), (i2, j2, b)) in q.iter().zip(s.iter()) {
            assert_eq!((i, j), (i2, j2));
            assert_eq!(a, (b as f32) as f64);
        }
    }

    #[test]
    fn spmm_bit_equal_reference_on_widened_operands() {
        // The mixed-precision pin: f32-storage SpMM equals the f64 SpMM
        // applied to the widened (quantised) operands, bit for bit —
        // for every thread count, including above the parallel
        // threshold.
        let s = random_sparse(600, 500, 0.4, 91);
        let b = rand_uniform(500, 12, -1.0, 1.0, 93);
        let s32 = CsrF32::from_csr(&s);
        let b32 = MatF32::from_mat(&b);
        assert!(
            s32.nnz() * b.cols() >= (1 << 20),
            "below parallel threshold"
        );
        let (sw, bw) = (s32.widen(), b32.widen());
        let before = num_threads();
        for threads in [1usize, 3, 8] {
            set_num_threads(threads);
            let fast = s32.spmm_dense(&b32);
            let reference = sw.spmm_dense(&bw);
            assert_eq!(fast.as_slice(), reference.as_slice(), "threads={threads}");
        }
        set_num_threads(before);
    }

    #[test]
    fn quad_form_bit_equal_reference_on_widened_operands() {
        let s = random_sparse(25, 25, 0.3, 94);
        let g = rand_uniform(25, 4, -1.0, 1.0, 96);
        let s32 = CsrF32::from_csr(&s);
        let g32 = MatF32::from_mat(&g);
        assert_eq!(s32.quad_form(&g32), s32.widen().quad_form(&g32.widen()));
    }

    #[test]
    fn row_sq_sums_match_widened() {
        let s = random_sparse(11, 8, 0.5, 97);
        let s32 = CsrF32::from_csr(&s);
        let expect: Vec<f64> = (0..11)
            .map(|i| s32.widen().row(i).1.iter().map(|v| v * v).sum())
            .collect();
        assert_eq!(s32.row_sq_sums(), expect);
    }

    #[test]
    fn block_diag_twins_match_widened() {
        let l = SparseBlockDiag::new(vec![
            random_sparse(6, 6, 0.4, 98),
            random_sparse(9, 9, 0.4, 100),
        ])
        .unwrap();
        let g = rand_uniform(15, 3, -1.0, 1.0, 102);
        let l32 = SparseBlockDiagF32::from_block_diag(&l);
        let g32 = MatF32::from_mat(&g);
        assert_eq!(l32.n(), 15);
        assert_eq!(l32.nnz(), l.nnz());
        // Widened block-diag reference.
        let lw = SparseBlockDiag::new(vec![
            CsrF32::from_csr(l.block(0)).widen(),
            CsrF32::from_csr(l.block(1)).widen(),
        ])
        .unwrap();
        let gw = g32.widen();
        assert_eq!(
            l32.mul_dense(&g32).unwrap().as_slice(),
            lw.mul_dense(&gw).unwrap().as_slice()
        );
        assert_eq!(l32.trace_quad(&g32).unwrap(), lw.trace_quad(&gw).unwrap());
        assert!(l32.mul_dense(&MatF32::zeros(4, 2)).is_err());
        assert!(l32.trace_quad(&MatF32::zeros(4, 2)).is_err());
    }
}
