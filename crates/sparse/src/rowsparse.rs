//! Row-sparse matrix: sparse in *rows*, dense within a stored row.
//!
//! The shape the paper's ℓ2,1-regularised error matrix `E_R` takes
//! (Sec. III-C/D): the row-wise shrinkage of Eq. 27 drives most rows to
//! (near-)zero norm and leaves a small set of *active* rows — the
//! corrupted samples — with large dense rows `f_i·q_i`. Storing only the
//! active rows keeps the representation at `O(active · n)` instead of
//! `n²`, and row-level operations (norms, products, densification) never
//! visit the implicit zero rows.

use mtrl_linalg::Mat;

/// Matrix stored as a sorted list of `(row index, dense row)` pairs;
/// every unlisted row is implicitly zero.
///
/// Invariants (enforced by [`RowSparse::push_row`]):
/// * row indices are strictly increasing and `< rows`;
/// * every stored row has exactly `cols` entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowSparse {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, Vec<f64>)>,
}

impl RowSparse {
    /// An all-zero `rows x cols` matrix with no stored rows.
    pub fn new(rows: usize, cols: usize) -> Self {
        RowSparse {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Append an active row. Rows must arrive in strictly increasing
    /// index order (the natural order for the engine's row sweep).
    ///
    /// # Panics
    /// Panics if `i` is out of range, not increasing, or `values` has
    /// the wrong length.
    pub fn push_row(&mut self, i: usize, values: Vec<f64>) {
        assert!(i < self.rows, "row index {i} out of range");
        assert_eq!(values.len(), self.cols, "row {i}: wrong width");
        if let Some(&(last, _)) = self.entries.last() {
            assert!(last < i, "rows must be pushed in increasing order");
        }
        self.entries.push((i, values));
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (active) rows.
    pub fn num_active(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no row is stored (the matrix is exactly zero).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored row `i`, or `None` when row `i` is implicitly zero —
    /// `O(log active)` by binary search.
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        self.entries
            .binary_search_by_key(&i, |&(r, _)| r)
            .ok()
            .map(|pos| self.entries[pos].1.as_slice())
    }

    /// Iterate over `(row index, row)` pairs in increasing row order.
    pub fn active_iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.entries.iter().map(|(i, v)| (*i, v.as_slice()))
    }

    /// ℓ2 norm of every row (zero for implicit rows) — the paper's
    /// corruption indicator `‖(E_R)_i‖₂`.
    pub fn row_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        for (i, row) in self.active_iter() {
            out[i] = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        }
        out
    }

    /// Squared Frobenius norm — only active rows contribute.
    pub fn frobenius_sq(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, row)| row.iter().map(|v| v * v).sum::<f64>())
            .sum()
    }

    /// Product with a dense matrix, `O(active · cols · b.cols())`: only
    /// active rows produce nonzero output rows.
    ///
    /// # Panics
    /// Panics if `b.rows() != cols`.
    pub fn mul_dense(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.cols, "mul_dense: dimension mismatch");
        let mut out = Mat::zeros(self.rows, b.cols());
        for (i, row) in self.active_iter() {
            let orow = out.row_mut(i);
            for (k, &v) in row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                for (o, &bv) in orow.iter_mut().zip(b.row(k)) {
                    *o += v * bv;
                }
            }
        }
        out
    }

    /// Materialise as dense (tests and small matrices only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for (i, row) in self.active_iter() {
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::ops::matmul;
    use mtrl_linalg::random::rand_uniform;

    fn sample() -> RowSparse {
        let mut e = RowSparse::new(6, 4);
        e.push_row(1, vec![1.0, -2.0, 0.0, 0.5]);
        e.push_row(4, vec![0.0, 3.0, 1.0, 0.0]);
        e
    }

    #[test]
    fn shape_and_lookup() {
        let e = sample();
        assert_eq!(e.shape(), (6, 4));
        assert_eq!(e.num_active(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.row(1).unwrap()[1], -2.0);
        assert!(e.row(0).is_none());
        assert!(e.row(5).is_none());
    }

    #[test]
    fn norms_and_frobenius() {
        let e = sample();
        let norms = e.row_norms();
        assert_eq!(norms.len(), 6);
        assert_eq!(norms[0], 0.0);
        assert!((norms[1] - (1.0f64 + 4.0 + 0.25).sqrt()).abs() < 1e-12);
        assert!((e.frobenius_sq() - (5.25 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn dense_roundtrip_and_product() {
        let e = sample();
        let d = e.to_dense();
        assert_eq!(d.shape(), (6, 4));
        assert_eq!(d[(4, 1)], 3.0);
        assert_eq!(d[(3, 2)], 0.0);
        let b = rand_uniform(4, 3, -1.0, 1.0, 7);
        let fast = e.mul_dense(&b);
        let slow = matmul(&d, &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn out_of_order_rows_panic() {
        let mut e = RowSparse::new(5, 2);
        e.push_row(3, vec![1.0, 2.0]);
        e.push_row(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn wrong_width_panics() {
        let mut e = RowSparse::new(5, 2);
        e.push_row(0, vec![1.0]);
    }
}
