//! Triplet (coordinate) builder for sparse matrices.

use crate::csr::Csr;

/// Coordinate-format sparse matrix builder.
///
/// Entries may be pushed in any order; duplicates are *summed* when the
/// matrix is finalised into CSR (convenient for co-occurrence counting:
/// each document–term event is just pushed and accumulation happens at
/// build time).
#[derive(Debug, Clone)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Create an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Create an empty builder with pre-reserved capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of pushed triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Push one entry. Zero values are skipped.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "Coo::push out of bounds");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Finalise into CSR, sorting and summing duplicate coordinates.
    pub fn to_csr(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for &(i, j, v) in &self.entries {
            if last == Some((i, j)) {
                *values.last_mut().expect("non-empty on merge") += v;
            } else {
                indices.push(j);
                values.push(v);
                indptr[i + 1] += 1;
                last = Some((i, j));
            }
        }
        // Prefix-sum the per-row counts into offsets.
        for r in 0..self.rows {
            indptr[r + 1] += indptr[r];
        }
        Csr::from_raw_parts(self.rows, self.cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple() {
        let mut c = Coo::new(2, 3);
        c.push(0, 1, 2.0);
        c.push(1, 2, 3.0);
        c.push(0, 0, 1.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.5);
        c.push(1, 1, 1.0);
        c.push(0, 0, 0.5);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn zeros_skipped() {
        let mut c = Coo::new(1, 1);
        c.push(0, 0, 0.0);
        assert!(c.is_empty());
        let m = c.to_csr();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut c = Coo::new(1, 1);
        c.push(1, 0, 1.0);
    }

    #[test]
    fn unsorted_input_sorted_on_build() {
        let mut c = Coo::new(3, 3);
        c.push(2, 2, 9.0);
        c.push(0, 2, 3.0);
        c.push(1, 0, 4.0);
        c.push(0, 0, 1.0);
        let m = c.to_csr();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(2, 2), 9.0);
        // CSR invariant: strictly increasing column indices per row.
        for r in 0..3 {
            let (cols, _) = m.row(r);
            for w in cols.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn empty_rows_handled() {
        let mut c = Coo::new(5, 5);
        c.push(4, 4, 1.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
        for r in 0..4 {
            assert_eq!(m.row(r).0.len(), 0);
        }
    }
}
