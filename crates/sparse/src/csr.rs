//! Compressed sparse row matrix.

use mtrl_linalg::Mat;

/// Compressed sparse row (CSR) matrix of `f64`.
///
/// Invariants (maintained by all constructors):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing;
/// * `indices` / `values` have length `indptr[rows]`;
/// * within each row, column indices are strictly increasing;
/// * stored values may be zero only transiently (constructors drop them).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics (debug and release) if the CSR invariants are violated —
    /// this is an internal constructor used by [`crate::Coo::to_csr`] and
    /// trusted transformation code.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr end");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr monotone");
            let cols_r = &indices[indptr[r]..indptr[r + 1]];
            for w in cols_r.windows(2) {
                assert!(w[0] < w[1], "row {r}: columns not strictly increasing");
            }
            if let Some(&last) = cols_r.last() {
                assert!(last < cols, "row {r}: column out of range");
            }
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: vec![],
            values: vec![],
        }
    }

    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Convert a dense matrix, keeping entries with `|v| > threshold`.
    pub fn from_dense(m: &Mat, threshold: f64) -> Self {
        let mut indptr = Vec::with_capacity(m.rows() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v.abs() > threshold {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            rows: m.rows(),
            cols: m.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Materialise as dense.
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let dst = m.row_mut(i);
            for (&j, &v) in cols.iter().zip(vals) {
                dst[j] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row index out of bounds");
        let span = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Entry lookup by binary search within the row — `O(log nnz_row)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix × dense vector.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            *yi = cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum();
        }
        y
    }

    /// Sparse × dense product `self * B` — the workhorse for `R * G` and
    /// the engine's `L · G` when the Laplacian is kept sparse.
    ///
    /// Output rows are split across the [`mtrl_linalg::par`] pool above a
    /// work threshold; each row is an independent accumulation, so the
    /// result is bit-identical for every thread count.
    ///
    /// # Panics
    /// Panics if `self.cols != b.rows()`.
    pub fn spmm_dense(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows(), "spmm_dense: dimension mismatch");
        let mut out = Mat::zeros(self.rows, b.cols());
        self.spmm_dense_at(b, 0, &mut out);
        out
    }

    /// [`Self::spmm_dense`] as one diagonal block of a stacked operator:
    /// multiplies against rows `[offset, offset + cols)` of `b` and
    /// accumulates into rows `[offset, offset + rows)` of `out` — the
    /// per-block step of [`crate::SparseBlockDiag::mul_dense`], with no
    /// submatrix copies.
    ///
    /// # Panics
    /// Panics if either matrix ends before the block does or the column
    /// counts differ.
    pub fn spmm_dense_at(&self, b: &Mat, offset: usize, out: &mut Mat) {
        assert!(
            b.rows() >= offset + self.cols,
            "spmm_dense_at: B ends before the block does"
        );
        assert!(
            out.rows() >= offset + self.rows,
            "spmm_dense_at: out ends before the block does"
        );
        assert_eq!(b.cols(), out.cols(), "spmm_dense_at: column mismatch");
        let n = b.cols();
        let span = &mut out.as_mut_slice()[offset * n..(offset + self.rows) * n];
        // nnz * b.cols multiply-adds; below ~1M the row fan-out costs
        // more than it saves.
        if self.nnz() * n < (1 << 20) {
            self.spmm_rows_into(b, offset, span, 0, self.rows);
        } else {
            mtrl_linalg::par::par_row_chunks(span, self.rows, n, |r0, r1, chunk| {
                self.spmm_rows_into(b, offset, chunk, r0, r1)
            });
        }
    }

    /// Accumulate rows `[r0, r1)` of `self * B[offset..]` into `chunk`.
    fn spmm_rows_into(&self, b: &Mat, offset: usize, chunk: &mut [f64], r0: usize, r1: usize) {
        let n = b.cols();
        for (local, i) in (r0..r1).enumerate() {
            let (cols, vals) = self.row(i);
            let orow = &mut chunk[local * n..(local + 1) * n];
            for (&j, &v) in cols.iter().zip(vals) {
                let brow = b.row(offset + j);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        }
    }

    /// Alias of [`Self::spmm_dense`] kept for the original API name.
    pub fn mul_dense(&self, b: &Mat) -> Mat {
        self.spmm_dense(b)
    }

    /// Quadratic form `tr(Gᵀ A G) = Σ_{(i,j) ∈ nnz(A)} A_ij · (g_i · g_j)`
    /// without materialising `A·G` — `O(nnz · c)`.
    ///
    /// Accumulated serially in row-major entry order so the value is
    /// deterministic.
    ///
    /// # Panics
    /// Panics if `self` is not square or `g.rows() != self.rows`.
    pub fn quad_form(&self, g: &Mat) -> f64 {
        assert_eq!(g.rows(), self.rows, "quad_form: dimension mismatch");
        self.quad_form_at(g, 0)
    }

    /// [`Self::quad_form`] against the rows `[offset, offset + n)` of a
    /// taller stacked `G` — the per-block step of
    /// [`crate::SparseBlockDiag::trace_quad`], shared here so both
    /// `tr(GᵀLG)` paths use one accumulation.
    ///
    /// # Panics
    /// Panics if `self` is not square or `g` has fewer than
    /// `offset + rows` rows.
    pub fn quad_form_at(&self, g: &Mat, offset: usize) -> f64 {
        assert_eq!(self.rows, self.cols, "quad_form requires square");
        assert!(
            g.rows() >= offset + self.rows,
            "quad_form_at: G ends before the block does"
        );
        let mut acc = 0.0;
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let gi = g.row(offset + i);
            for (&j, &v) in cols.iter().zip(vals) {
                let gj = g.row(offset + j);
                let dot: f64 = gi.iter().zip(gj).map(|(a, b)| a * b).sum();
                acc += v * dot;
            }
        }
        acc
    }

    /// Linear combination `alpha * self + beta * other` with merged
    /// sparsity patterns. Entries that combine to exactly zero are
    /// dropped (keeps the no-stored-zeros invariant).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn lin_comb(&self, alpha: f64, other: &Csr, beta: f64) -> Csr {
        assert_eq!(self.shape(), other.shape(), "lin_comb: shape mismatch");
        let mut out = CsrBuilder::with_capacity(self.rows, self.cols, self.nnz().max(other.nnz()));
        for i in 0..self.rows {
            let (ca, va) = self.row(i);
            let (cb, vb) = other.row(i);
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                if q >= cb.len() || (p < ca.len() && ca[p] < cb[q]) {
                    out.push(ca[p], alpha * va[p]);
                    p += 1;
                } else if p >= ca.len() || cb[q] < ca[p] {
                    out.push(cb[q], beta * vb[q]);
                    q += 1;
                } else {
                    out.push(ca[p], alpha * va[p] + beta * vb[q]);
                    p += 1;
                    q += 1;
                }
            }
            out.finish_row();
        }
        out.build()
    }

    /// Positive/negative part split `A = A⁺ − A⁻` with `A⁺, A⁻ ≥ 0` —
    /// what the multiplicative update of Eq. (21) needs from a Laplacian.
    pub fn split_parts(&self) -> (Csr, Csr) {
        let mut pos = CsrBuilder::new(self.rows, self.cols);
        let mut neg = CsrBuilder::new(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if v > 0.0 {
                    pos.push(j, v);
                } else if v < 0.0 {
                    neg.push(j, -v);
                }
            }
            pos.finish_row();
            neg.finish_row();
        }
        (pos.build(), neg.build())
    }

    /// Copy with every stored value scaled; exact zeros (from `s == 0`)
    /// are dropped.
    pub fn scaled(&self, s: f64) -> Csr {
        if s == 0.0 {
            return Csr::zeros(self.rows, self.cols);
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| v * s).collect(),
        }
    }

    /// Transpose (CSR → CSR of the transpose) in `O(nnz + rows + cols)`.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let pos = next[j];
                indices[pos] = i;
                values[pos] = v;
                next[j] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).1.iter().sum()).collect()
    }

    /// Column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.cols];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                s[j] += v;
            }
        }
        s
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scale every stored value in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Drop stored entries with `|v| <= tol`, compacting storage.
    pub fn prune(&self, tol: f64) -> Csr {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if v.abs() > tol {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Stack `other` below `self` — the streaming-ingest primitive: an
    /// accumulated relation matrix grows by a batch of new object rows
    /// in `O(nnz)` copying without touching existing entries.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Csr) -> Csr {
        assert_eq!(self.cols, other.cols, "vstack: column count mismatch");
        let mut indptr = Vec::with_capacity(self.rows + other.rows + 1);
        indptr.extend_from_slice(&self.indptr);
        let base = self.nnz();
        indptr.extend(other.indptr[1..].iter().map(|&p| base + p));
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        indices.extend_from_slice(&self.indices);
        indices.extend_from_slice(&other.indices);
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Csr {
            rows: self.rows + other.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Build from per-row `(indices, values)` pairs with strictly
    /// increasing column indices (the layout sparse feature rows arrive
    /// in from a stream); exact zeros are dropped.
    ///
    /// # Panics
    /// Panics if a row's lengths differ, columns are out of range or not
    /// strictly increasing (via the builder's invariant check).
    pub fn from_sparse_rows(rows: &[(Vec<usize>, Vec<f64>)], cols: usize) -> Csr {
        let nnz = rows.iter().map(|(idx, _)| idx.len()).sum();
        let mut b = CsrBuilder::with_capacity(rows.len(), cols, nnz);
        for (idx, vals) in rows {
            assert_eq!(idx.len(), vals.len(), "row index/value length mismatch");
            for (&j, &v) in idx.iter().zip(vals) {
                b.push(j, v);
            }
            b.finish_row();
        }
        b.build()
    }

    /// Elementwise maximum with the transpose: `max(A, Aᵀ)` — the standard
    /// symmetrisation of a pNN graph (Eq. 3's "or" rule: an edge exists if
    /// either endpoint selects the other).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn max_symmetrize(&self) -> Csr {
        assert_eq!(self.rows, self.cols, "max_symmetrize requires square");
        let t = self.transpose();
        let mut builder = crate::Coo::with_capacity(self.rows, self.cols, self.nnz() * 2);
        for i in 0..self.rows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            // Merge two sorted runs taking elementwise max.
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                if q >= cb.len() || (p < ca.len() && ca[p] < cb[q]) {
                    builder.push(i, ca[p], va[p]);
                    p += 1;
                } else if p >= ca.len() || cb[q] < ca[p] {
                    builder.push(i, cb[q], vb[q]);
                    q += 1;
                } else {
                    builder.push(i, ca[p], va[p].max(vb[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        builder.to_csr()
    }

    /// `true` if `self` equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            // Different sparsity patterns can still be numerically
            // symmetric if the asymmetric entries are < tol; fall back to
            // a value-level comparison.
            for i in 0..self.rows {
                let (cols, vals) = self.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    if (v - t.get(i, j)).abs() > tol {
                        return false;
                    }
                }
                let (tcols, tvals) = t.row(i);
                for (&j, &v) in tcols.iter().zip(tvals) {
                    if (v - self.get(i, j)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Iterate over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }
}

/// Row-ordered CSR assembly for transformation code that already visits
/// rows in order with strictly increasing columns (cheaper than a [`Coo`]
/// round-trip: no sort, no duplicate merge). Exact zeros are dropped on
/// `push`, so built matrices keep the no-stored-zeros invariant — this
/// is the one assembly path shared by `lin_comb`, `split_parts`,
/// `mtrl-graph`'s Laplacian and pNN construction.
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Start an empty `rows x cols` assembly positioned at row 0.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_capacity(rows, cols, 0)
    }

    /// [`Self::new`] with entry capacity pre-reserved.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        CsrBuilder {
            rows,
            cols,
            indptr,
            indices: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Append an entry to the current row; exact zeros are skipped.
    /// Columns must arrive in strictly increasing order per row
    /// (enforced by `build`).
    pub fn push(&mut self, j: usize, v: f64) {
        if v != 0.0 {
            self.indices.push(j);
            self.values.push(v);
        }
    }

    /// Close the current row.
    pub fn finish_row(&mut self) {
        self.indptr.push(self.indices.len());
    }

    /// Finalise, checking every CSR invariant.
    ///
    /// # Panics
    /// Panics if fewer/more than `rows` rows were finished or columns
    /// were not strictly increasing within a row.
    pub fn build(self) -> Csr {
        Csr::from_raw_parts(self.rows, self.cols, self.indptr, self.indices, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;
    use mtrl_linalg::ops::matmul;
    use mtrl_linalg::random::rand_uniform;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Csr {
        let dense = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let mask = rand_uniform(rows, cols, 0.0, 1.0, seed + 1);
        let mut c = Coo::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if mask[(i, j)] < density {
                    c.push(i, j, dense[(i, j)]);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn dense_roundtrip() {
        let m = rand_uniform(9, 7, -1.0, 1.0, 50);
        let s = Csr::from_dense(&m, 0.0);
        assert!(s.to_dense().approx_eq(&m, 0.0));
        assert_eq!(s.nnz(), 63);
    }

    #[test]
    fn from_dense_thresholds() {
        let m = Mat::from_vec(1, 3, vec![0.05, -0.5, 0.0]).unwrap();
        let s = Csr::from_dense(&m, 0.1);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(0, 1), -0.5);
    }

    #[test]
    fn identity_spmv() {
        let i = Csr::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn spmv_matches_dense() {
        let s = random_sparse(20, 15, 0.3, 51);
        let d = s.to_dense();
        let x: Vec<f64> = (0..15).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let ys = s.spmv(&x);
        let yd = mtrl_linalg::ops::matvec(&d, &x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_dense_matches_dense() {
        let s = random_sparse(12, 10, 0.4, 52);
        let b = rand_uniform(10, 6, -1.0, 1.0, 53);
        let fast = s.mul_dense(&b);
        let slow = matmul(&s.to_dense(), &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn transpose_roundtrip() {
        let s = random_sparse(8, 13, 0.35, 54);
        let tt = s.transpose().transpose();
        assert_eq!(s, tt);
        assert!(s
            .transpose()
            .to_dense()
            .approx_eq(&s.to_dense().transpose(), 0.0));
    }

    #[test]
    fn sums() {
        let mut c = Coo::new(2, 3);
        c.push(0, 0, 1.0);
        c.push(0, 2, 2.0);
        c.push(1, 1, 4.0);
        let s = c.to_csr();
        assert_eq!(s.row_sums(), vec![3.0, 4.0]);
        assert_eq!(s.col_sums(), vec![1.0, 4.0, 2.0]);
        assert_eq!(s.sum(), 7.0);
    }

    #[test]
    fn prune_drops_small() {
        let mut c = Coo::new(1, 3);
        c.push(0, 0, 1e-12);
        c.push(0, 1, 0.5);
        c.push(0, 2, -1e-12);
        let s = c.to_csr().prune(1e-9);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(0, 1), 0.5);
    }

    #[test]
    fn max_symmetrize_properties() {
        let s = random_sparse(10, 10, 0.2, 55).prune(0.0);
        // Make values nonnegative (graph weights).
        let mut c = Coo::new(10, 10);
        for (i, j, v) in s.iter() {
            c.push(i, j, v.abs());
        }
        let g = c.to_csr();
        let sym = g.max_symmetrize();
        assert!(sym.is_symmetric(1e-12));
        // Every original edge survives with weight >= original.
        for (i, j, v) in g.iter() {
            assert!(sym.get(i, j) >= v - 1e-15);
            assert!(sym.get(j, i) >= v - 1e-15);
        }
    }

    #[test]
    fn is_symmetric_negative_case() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        assert!(!c.to_csr().is_symmetric(1e-12));
        let mut c2 = Coo::new(2, 2);
        c2.push(0, 1, 1.0);
        c2.push(1, 0, 1.0);
        assert!(c2.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn scale_inplace_works() {
        let mut s = Csr::identity(3);
        s.scale_inplace(2.5);
        assert_eq!(s.get(1, 1), 2.5);
    }

    #[test]
    fn iter_yields_all_triplets() {
        let s = random_sparse(6, 6, 0.5, 56);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected.len(), s.nnz());
        for (i, j, v) in collected {
            assert_eq!(s.get(i, j), v);
        }
    }

    #[test]
    fn get_missing_is_zero() {
        let s = Csr::zeros(3, 3);
        assert_eq!(s.get(2, 2), 0.0);
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "columns not strictly increasing")]
    fn invariant_violation_panics() {
        Csr::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn vstack_matches_dense_stack() {
        let a = random_sparse(5, 7, 0.4, 70);
        let b = random_sparse(3, 7, 0.6, 71);
        let stacked = a.vstack(&b);
        assert_eq!(stacked.shape(), (8, 7));
        let expect = a.to_dense().vstack(&b.to_dense()).unwrap();
        assert!(stacked.to_dense().approx_eq(&expect, 0.0));
        // Empty sides are fine.
        assert_eq!(a.vstack(&Csr::zeros(0, 7)), a);
        assert_eq!(Csr::zeros(0, 7).vstack(&a), a);
    }

    #[test]
    fn from_sparse_rows_roundtrip() {
        let rows = vec![
            (vec![1usize, 4], vec![0.5, -2.0]),
            (vec![], vec![]),
            (vec![0, 2, 5], vec![1.0, 0.0, 3.0]), // exact zero dropped
        ];
        let s = Csr::from_sparse_rows(&rows, 6);
        assert_eq!(s.shape(), (3, 6));
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.get(0, 4), -2.0);
        assert_eq!(s.get(2, 2), 0.0);
        assert_eq!(s.get(2, 5), 3.0);
    }

    #[test]
    fn spmm_dense_matches_serial_across_threads() {
        // Workload chosen above the 1<<20 nnz·cols threshold so the
        // thread sweep genuinely exercises the par_row_chunks branch.
        let s = random_sparse(600, 500, 0.4, 57);
        let b = rand_uniform(500, 12, -1.0, 1.0, 58);
        assert!(
            s.nnz() * b.cols() >= (1 << 20),
            "workload fell below the parallel threshold ({} entries)",
            s.nnz()
        );
        let dense = matmul(&s.to_dense(), &b).unwrap();
        let before = mtrl_linalg::par::num_threads();
        for threads in [1usize, 3, 8] {
            mtrl_linalg::par::set_num_threads(threads);
            let fast = s.spmm_dense(&b);
            assert!(fast.approx_eq(&dense, 1e-10), "threads={threads}");
        }
        mtrl_linalg::par::set_num_threads(before);
    }

    #[test]
    fn quad_form_matches_dense_trace() {
        let s = random_sparse(25, 25, 0.3, 59);
        let g = rand_uniform(25, 4, -1.0, 1.0, 60);
        let fast = s.quad_form(&g);
        let lg = matmul(&s.to_dense(), &g).unwrap();
        let slow: f64 = lg
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
    }

    #[test]
    fn lin_comb_merges_patterns() {
        let a = random_sparse(15, 15, 0.2, 61);
        let b = random_sparse(15, 15, 0.25, 62);
        let c = a.lin_comb(2.0, &b, -0.5);
        let expect = a
            .to_dense()
            .scaled(2.0)
            .add(&b.to_dense().scaled(-0.5))
            .unwrap();
        assert!(c.to_dense().approx_eq(&expect, 1e-12));
        // Exact cancellation drops the entry.
        let z = a.lin_comb(1.0, &a, -1.0);
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn split_parts_reconstruct() {
        let s = random_sparse(20, 20, 0.3, 63);
        let (p, n) = s.split_parts();
        assert!(p.values.iter().all(|&v| v > 0.0));
        assert!(n.values.iter().all(|&v| v > 0.0));
        let rec = p.lin_comb(1.0, &n, -1.0);
        assert!(rec.to_dense().approx_eq(&s.to_dense(), 0.0));
    }

    #[test]
    fn scaled_and_zero_scale() {
        let s = random_sparse(10, 10, 0.3, 64);
        let twice = s.scaled(2.0);
        assert!(twice.to_dense().approx_eq(&s.to_dense().scaled(2.0), 0.0));
        assert_eq!(s.scaled(0.0).nnz(), 0);
    }
}
