//! End-to-end HTTP/1.1 pipelining: a client may write several requests
//! back-to-back in one TCP segment before reading any response; the
//! gateway must answer every one, in order, on the same connection.

use mtrl_datagen::corpus::{generate, CorpusConfig};
use mtrl_gateway::{Gateway, GatewayConfig};
use mtrl_serve::ServeEngine;
use rhchme::rhchme::{Rhchme, RhchmeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn gateway_with_model() -> Gateway {
    let corpus = generate(&CorpusConfig {
        docs_per_class: vec![12, 12, 12],
        vocab_size: 120,
        concept_count: 40,
        doc_len_range: (30, 50),
        background_frac: 0.3,
        topic_noise: 0.3,
        concept_map_noise: 0.1,
        corrupt_frac: 0.0,
        subtopics_per_class: 1,
        view_confusion: 0.0,
        seed: 17,
    });
    let rhchme = Rhchme::new(RhchmeConfig {
        lambda: 1.0,
        ..RhchmeConfig::fast()
    });
    let result = rhchme.fit_corpus(&corpus).expect("fit");
    let model = rhchme.export_model(&result, &corpus).expect("export");
    let engine = Arc::new(ServeEngine::new(2));
    engine.register("m", model).expect("register");
    Gateway::bind(engine, GatewayConfig::default()).expect("bind")
}

/// One assign request with `docs` single-term documents, as raw bytes
/// ready to concatenate into a pipelined segment.
fn assign_request(docs: usize, close: bool) -> String {
    let entries: Vec<String> = (0..docs)
        .map(|d| format!("{{\"indices\":[{d}],\"values\":[1.0]}}"))
        .collect();
    let body = format!("{{\"docs\":[{}]}}", entries.join(","));
    let connection = if close { "connection: close\r\n" } else { "" };
    format!(
        "POST /v1/models/m/assign HTTP/1.1\r\ncontent-length: {}\r\n{connection}\r\n{body}",
        body.len()
    )
}

/// Read one response off the connection: status code and body text.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

#[test]
fn two_pipelined_assigns_in_one_segment_answered_in_order() {
    let gateway = gateway_with_model();
    let mut stream = TcpStream::connect(gateway.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Both requests land in a single write (and, with nodelay, one
    // segment) before any response is read. Distinguishable doc counts
    // pin the response order to the request order.
    let segment = format!("{}{}", assign_request(1, false), assign_request(2, false));
    stream.write_all(segment.as_bytes()).expect("send burst");

    let (status_a, body_a) = read_response(&mut reader);
    let (status_b, body_b) = read_response(&mut reader);
    assert_eq!(status_a, 200, "{body_a}");
    assert_eq!(status_b, 200, "{body_b}");
    assert!(body_a.contains("\"count\":1"), "{body_a}");
    assert!(body_b.contains("\"count\":2"), "{body_b}");

    // The connection is still keep-alive: a third, unpipelined request
    // must work on the same socket.
    stream
        .write_all(assign_request(3, false).as_bytes())
        .expect("follow-up");
    let (status_c, body_c) = read_response(&mut reader);
    assert_eq!(status_c, 200, "{body_c}");
    assert!(body_c.contains("\"count\":3"), "{body_c}");
}

#[test]
fn pipelined_close_request_ends_the_connection_after_its_response() {
    let gateway = gateway_with_model();
    let mut stream = TcpStream::connect(gateway.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let segment = format!("{}{}", assign_request(1, false), assign_request(2, true));
    stream.write_all(segment.as_bytes()).expect("send burst");

    let (status_a, body_a) = read_response(&mut reader);
    let (status_b, body_b) = read_response(&mut reader);
    assert_eq!(status_a, 200, "{body_a}");
    assert_eq!(status_b, 200, "{body_b}");
    assert!(body_a.contains("\"count\":1"), "{body_a}");
    assert!(body_b.contains("\"count\":2"), "{body_b}");

    // `connection: close` on the second request: the gateway must shut
    // the connection down after answering it.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("eof");
    assert_eq!(n, 0, "expected EOF after a close-marked response");
}

#[test]
fn pipelined_mixed_methods_resolve_in_order() {
    let gateway = gateway_with_model();
    let mut stream = TcpStream::connect(gateway.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // assign + healthz + assign in one segment: immediate routes must
    // not jump the queue ahead of engine-bound ones.
    let segment = format!(
        "{}GET /healthz HTTP/1.1\r\n\r\n{}",
        assign_request(1, false),
        assign_request(2, false)
    );
    stream.write_all(segment.as_bytes()).expect("send burst");

    let (status_a, body_a) = read_response(&mut reader);
    let (status_b, body_b) = read_response(&mut reader);
    let (status_c, body_c) = read_response(&mut reader);
    assert_eq!((status_a, status_b, status_c), (200, 200, 200));
    assert!(body_a.contains("\"count\":1"), "{body_a}");
    assert!(body_b.contains("\"status\":\"ok\""), "{body_b}");
    assert!(body_c.contains("\"count\":2"), "{body_c}");
}
