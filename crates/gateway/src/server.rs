//! The gateway server: acceptor + per-connection threads in front of a
//! bounded coalescing queue, drained by one dispatcher that merges
//! jobs and a responder pool that resolves engine batches.
//!
//! # Request path
//!
//! ```text
//! accept ──► connection thread ──► admission ──► coalesce queue
//!                 ▲                   │  429 when full      │
//!                 │                   ▼                     ▼
//!                 │                          dispatcher: merge same
//!                 │                          (model, type_index) jobs
//!                 │                          within the wait window,
//!                 │                          one engine submit per
//!                 │                          batch; never blocks on
//!                 │                          compute
//!                 │                                  │ bounded channel
//!                 │                                  ▼
//!              response ◄── per-job reply ◄── responders: wait on the
//!                                             engine, split posterior
//!                                             rows back per wire job
//! ```
//!
//! # Admission control and shedding
//!
//! Memory is bounded at every stage: the HTTP parser caps head and body
//! bytes, the coalesce queue holds at most `queue_capacity` jobs
//! (excess is answered `429` with `Retry-After` *without* being
//! enqueued), and connections beyond `max_connections` are answered
//! `503` at accept. A job whose deadline lapses while queued is
//! answered `504` instead of being computed. Under overload the
//! gateway therefore degrades by rejecting quickly — it never buffers
//! unboundedly and never hangs a well-behaved client.
//!
//! # Coalescing
//!
//! The fold-in kernel is batch-oriented: one engine round trip for 64
//! documents costs far less than 64 round trips (see
//! `BENCH_gateway.json`). The dispatcher exploits that across *clients*:
//! it takes the oldest queued job as batch leader, then waits up to
//! `wait_window` for more jobs against the same `(model, type_index)`,
//! merging until `max_batch_docs` (or the leader's `batch_hint`) is
//! reached. The merged batch is one [`ServeEngine::submit`]; the
//! posterior rows are split back per job. `wait_window = 0` disables
//! coalescing (each job ships alone, no added latency).
//!
//! # Hot swap
//!
//! The gateway holds the same `Arc<ServeEngine>` the rest of the
//! process uses, so a live `StreamSession` refit that re-registers a
//! model swaps atomically under the gateway too: in-flight batches
//! finish on the assigner they resolved, later requests see the new
//! one, and no request ever observes a half-updated model.
//!
//! # Metrics
//!
//! `gateway.{requests,shed,coalesced_batches,bytes}` counters and the
//! `gateway.assign_latency_ns` histogram are recorded into the
//! process-global `mtrl-obs` registry *unconditionally* (the network
//! layer is cold next to fold-in compute, and `/metrics` must work
//! without `MTRL_OBS`). `/metrics` serves the Prometheus rendering of
//! that registry; `/healthz` serves a JSON snapshot with p50/p99.

use crate::http::{self, HttpError, Request, Response};
use crate::wire;
use mtrl_obs::{Histogram, HistogramSnapshot};
use mtrl_serve::{AssignRequest, AssignResponse, PendingAssign, ServeEngine, ServeError};
use serde::Value;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Cursor, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Gateway knobs. `Default` is tuned for tests and demos; production
/// callers should size `queue_capacity` and `max_connections` to their
/// memory budget.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Upper bound on how long a batch leader waits for co-batchable
    /// jobs. Zero disables coalescing. Rarely paid in full: the wait
    /// is skipped when only one connection is live (nobody to
    /// coalesce with) and cut short once a merge happened and the
    /// queue is drained.
    pub wait_window: Duration,
    /// Hard cap on documents merged into one engine submit.
    pub max_batch_docs: usize,
    /// Coalesce-queue capacity in jobs; arrivals beyond it are shed
    /// with `429 Retry-After`.
    pub queue_capacity: usize,
    /// Connections beyond this are answered `503` at accept.
    pub max_connections: usize,
    /// Socket read timeout for idle keep-alive connections.
    pub read_timeout: Duration,
    /// Responder threads: each blocks on one in-flight engine batch,
    /// so this bounds dispatch concurrency. The dispatcher itself is a
    /// single thread that never blocks on compute.
    pub responders: usize,
    /// `Retry-After` hint attached to shed responses.
    pub shed_retry_after: Duration,
    /// Fault injection: sleep this long before every engine submit.
    /// Lets tests fill the queue deterministically; `None` in
    /// production.
    pub service_delay: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            wait_window: Duration::from_micros(100),
            max_batch_docs: 512,
            queue_capacity: 256,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            responders: 4,
            shed_retry_after: Duration::from_millis(50),
            service_delay: None,
        }
    }
}

/// Point-in-time gateway counters (mirrors of the `gateway.*` obs
/// metrics, readable without the global registry).
#[derive(Debug, Clone)]
pub struct GatewayStats {
    /// HTTP requests routed (any endpoint, any outcome).
    pub requests: u64,
    /// Assign jobs shed by the *gateway*: queue full (`429`) or
    /// deadline lapsed in queue (`504`). Engine-level sheds are
    /// reported by `ServeEngine::stats` instead.
    pub shed: u64,
    /// Engine submits that merged two or more wire jobs.
    pub coalesced_batches: u64,
    /// Request body bytes in + response bytes out.
    pub bytes: u64,
    /// End-to-end assign latency (parse → reply), nanoseconds.
    pub latency: HistogramSnapshot,
}

impl GatewayStats {
    /// Assign latency quantile, e.g. `quantile(0.99)` for p99.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(q))
    }
}

struct Job {
    request: AssignRequest,
    reply: Sender<Result<AssignResponse, ServeError>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    shed: AtomicU64,
    coalesced_batches: AtomicU64,
    bytes: AtomicU64,
    latency: Histogram,
}

struct Inner {
    engine: Arc<ServeEngine>,
    config: GatewayConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    connections: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Inner {
    fn bump(&self, local: &AtomicU64, obs_name: &str, delta: u64) {
        local.fetch_add(delta, Ordering::Relaxed);
        mtrl_obs::global().add(obs_name, delta);
    }

    fn record_shed(&self) {
        self.bump(&self.counters.shed, "gateway.shed", 1);
    }

    fn record_latency(&self, elapsed: Duration) {
        self.counters.latency.record_duration(elapsed);
        mtrl_obs::global().record_hist(
            "gateway.assign_latency_ns",
            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
    }

    /// Admission control: reject (`Overloaded`/`Shutdown`) without
    /// enqueueing anything, or enqueue and hand back the reply channel.
    fn enqueue(
        &self,
        request: AssignRequest,
    ) -> Result<Receiver<Result<AssignResponse, ServeError>>, ServeError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let (tx, rx) = channel();
        {
            let mut queue = self.queue.lock().expect("gateway queue poisoned");
            if queue.len() >= self.config.queue_capacity {
                drop(queue);
                self.record_shed();
                return Err(ServeError::Overloaded {
                    retry_after: self.config.shed_retry_after,
                });
            }
            queue.push_back(Job { request, reply: tx });
        }
        self.queue_cv.notify_one();
        Ok(rx)
    }
}

/// `ServeError` is not `Clone` (it can wrap `io::Error`); batched jobs
/// that fail together each need their own copy of the failure.
fn replicate_error(err: &ServeError) -> ServeError {
    match err {
        ServeError::Io(e) => ServeError::Corrupt(format!("engine io error: {e}")),
        ServeError::Corrupt(m) => ServeError::Corrupt(m.clone()),
        ServeError::SchemaVersion { found, supported } => ServeError::SchemaVersion {
            found: *found,
            supported: *supported,
        },
        ServeError::NotFound(m) => ServeError::NotFound(m.clone()),
        ServeError::BadRequest(m) => ServeError::BadRequest(m.clone()),
        ServeError::Overloaded { retry_after } => ServeError::Overloaded {
            retry_after: *retry_after,
        },
        ServeError::Deadline { exceeded_by } => ServeError::Deadline {
            exceeded_by: *exceeded_by,
        },
        ServeError::Shutdown => ServeError::Shutdown,
    }
}

/// One dispatched batch: the engine handle plus how to split the
/// answer back per wire job.
struct InFlight {
    pending: PendingAssign,
    counts: Vec<usize>,
    replies: Vec<Sender<Result<AssignResponse, ServeError>>>,
}

fn dispatcher_loop(inner: Arc<Inner>, batch_tx: SyncSender<InFlight>) {
    loop {
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut queue = inner.queue.lock().expect("gateway queue poisoned");
            // Wait for a leader. Pending jobs are drained even during
            // shutdown (the pop precedes the shutdown check), so every
            // accepted request gets an answer.
            loop {
                if let Some(job) = queue.pop_front() {
                    batch.push(job);
                    break;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("gateway queue poisoned");
            }
            let model = batch[0].request.model.clone();
            let type_index = batch[0].request.type_index;
            let doc_cap = batch[0]
                .request
                .batch_hint
                .unwrap_or(inner.config.max_batch_docs)
                .min(inner.config.max_batch_docs);
            let mut doc_total = batch[0].request.num_docs();
            // The window only opens when another connection is live:
            // with a single client there is nobody to coalesce with,
            // and a lone caller must not pay the wait as latency.
            let window = if inner.connections.load(Ordering::Relaxed) > 1 {
                inner.config.wait_window
            } else {
                Duration::ZERO
            };
            let window_end = Instant::now() + window;
            loop {
                // Sweep co-batchable jobs, preserving queue order for
                // the rest.
                let mut i = 0;
                while i < queue.len() && doc_total < doc_cap {
                    let matches = queue[i].request.model == model
                        && queue[i].request.type_index == type_index;
                    if matches {
                        let job = queue.remove(i).expect("index in bounds");
                        doc_total += job.request.num_docs();
                        batch.push(job);
                    } else {
                        i += 1;
                    }
                }
                if doc_total >= doc_cap || inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Once at least one co-batch job is merged and the
                // queue is swept dry, ship: while this batch computes,
                // the next burst accumulates behind it (self-clocking
                // batching), so holding the window open any longer
                // would only add latency.
                if batch.len() > 1 && queue.is_empty() {
                    break;
                }
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(queue, window_end - now)
                    .expect("gateway queue poisoned");
                queue = guard;
            }
        }
        dispatch_batch(&inner, batch, &batch_tx);
    }
}

/// Merge a batch into one engine submit and hand the in-flight handle
/// to the responder pool. The bounded channel is the backpressure
/// link: with every responder busy and its buffer full, the dispatcher
/// blocks here, the coalesce queue backs up, and admission control
/// starts shedding — overload never turns into unbounded in-flight
/// work.
fn dispatch_batch(inner: &Inner, batch: Vec<Job>, batch_tx: &SyncSender<InFlight>) {
    if let Some(delay) = inner.config.service_delay {
        thread::sleep(delay);
    }
    // Enforce deadlines at dispatch: a job that waited past its budget
    // is answered 504 instead of burning compute on an answer nobody
    // is waiting for.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        match job.request.deadline {
            Some(d) if now > d => {
                inner.record_shed();
                let _ = job.reply.send(Err(ServeError::Deadline {
                    exceeded_by: now - d,
                }));
            }
            _ => live.push(job),
        }
    }
    if live.is_empty() {
        return;
    }
    if live.len() > 1 {
        inner.bump(
            &inner.counters.coalesced_batches,
            "gateway.coalesced_batches",
            1,
        );
    }

    let model = live[0].request.model.clone();
    let type_index = live[0].request.type_index;
    let counts: Vec<usize> = live.iter().map(|j| j.request.num_docs()).collect();
    let mut docs = Vec::with_capacity(counts.iter().sum());
    let mut replies = Vec::with_capacity(live.len());
    for job in live {
        docs.extend(job.request.into_docs());
        replies.push(job.reply);
    }
    // Deadlines were enforced above; the merged request carries none so
    // one lagging job cannot expire the whole batch inside the engine.
    let merged = AssignRequest::new(model).type_index(type_index).docs(docs);
    let pending = inner.engine.submit(merged);
    if let Err(failed) = batch_tx.send(InFlight {
        pending,
        counts,
        replies,
    }) {
        // Responders are gone, which only happens during shutdown.
        for reply in failed.0.replies {
            let _ = reply.send(Err(ServeError::Shutdown));
        }
    }
}

fn responder_loop(batch_rx: Arc<Mutex<Receiver<InFlight>>>) {
    loop {
        // Take the lock only to receive; waiting on the engine happens
        // outside it so responders resolve batches in parallel.
        let message = {
            let rx = batch_rx.lock().expect("gateway responder rx poisoned");
            rx.recv()
        };
        let Ok(InFlight {
            pending,
            counts,
            replies,
        }) = message
        else {
            return;
        };
        match pending.wait() {
            Ok(response) => {
                let mut offset = 0;
                for (count, reply) in counts.into_iter().zip(replies) {
                    let slice = AssignResponse {
                        posteriors: response.posteriors[offset..offset + count].to_vec(),
                        labels: response.labels[offset..offset + count].to_vec(),
                        latency: response.latency,
                    };
                    offset += count;
                    let _ = reply.send(Ok(slice));
                }
            }
            Err(err) => {
                for reply in replies {
                    let _ = reply.send(Err(replicate_error(&err)));
                }
            }
        }
    }
}

fn error_response(err: &ServeError) -> Response {
    let mut response = Response::json(err.http_status(), wire::error_json(err));
    if let Some(retry) = err.retry_after() {
        // Retry-After is whole seconds on the wire; round up so the
        // hint is never an understatement. The JSON body carries the
        // millisecond-precision value.
        let secs = retry.as_secs() + u64::from(retry.subsec_nanos() > 0);
        response = response.header("retry-after", secs.max(1).to_string());
    }
    response
}

/// A routed request whose response may still be in flight.
///
/// Assignments split into an *enqueue* phase (parse + admission, done
/// while later pipelined requests are still being drained from the
/// read buffer) and a *resolve* phase (wait on the engine reply).
/// Enqueueing a whole pipelined burst before resolving lets the
/// dispatcher coalesce the burst into one engine batch instead of
/// serialising a round trip per request. Everything else resolves
/// immediately.
enum PendingResponse {
    Ready(Response),
    Assign {
        model: String,
        t0: Instant,
        rx: Receiver<Result<AssignResponse, ServeError>>,
    },
}

/// Enqueue phase of an assignment: parse the wire request and admit it
/// to the coalesce queue without waiting for the engine.
fn start_assign(inner: &Inner, path: &str, body: &[u8]) -> PendingResponse {
    let rest = &path["/v1/models/".len()..];
    let Some(model) = rest.strip_suffix("/assign") else {
        return PendingResponse::Ready(error_response(&ServeError::NotFound(path.to_string())));
    };
    if model.is_empty() || model.contains('/') {
        return PendingResponse::Ready(error_response(&ServeError::NotFound(path.to_string())));
    }
    let t0 = Instant::now();
    match wire::parse_assign(model, body).and_then(|request| inner.enqueue(request)) {
        Ok(rx) => PendingResponse::Assign {
            model: model.to_string(),
            t0,
            rx,
        },
        Err(err) => {
            inner.record_latency(t0.elapsed());
            PendingResponse::Ready(error_response(&err))
        }
    }
}

/// Resolve phase: block on the engine reply (if any) and render it.
fn resolve_response(inner: &Inner, pending: PendingResponse) -> Response {
    match pending {
        PendingResponse::Ready(response) => response,
        PendingResponse::Assign { model, t0, rx } => {
            let result = rx
                .recv()
                .map_err(|_| ServeError::Shutdown)
                .and_then(|reply| reply);
            inner.record_latency(t0.elapsed());
            match result {
                Ok(response) => Response::json(200, wire::assign_response_json(&model, &response)),
                Err(err) => error_response(&err),
            }
        }
    }
}

fn health_json(inner: &Inner) -> String {
    let latency = inner.counters.latency.snapshot();
    let models = inner.engine.model_names();
    let value = Value::Object(vec![
        ("status".into(), Value::String("ok".into())),
        (
            "models".into(),
            Value::Array(models.into_iter().map(Value::String).collect()),
        ),
        (
            "queue_depth".into(),
            Value::Number(inner.queue.lock().expect("gateway queue poisoned").len() as f64),
        ),
        (
            "requests".into(),
            Value::Number(inner.counters.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "shed".into(),
            Value::Number(inner.counters.shed.load(Ordering::Relaxed) as f64),
        ),
        (
            "coalesced_batches".into(),
            Value::Number(inner.counters.coalesced_batches.load(Ordering::Relaxed) as f64),
        ),
        (
            "latency_p50_us".into(),
            Value::Number(latency.quantile(0.5) as f64 / 1e3),
        ),
        (
            "latency_p99_us".into(),
            Value::Number(latency.quantile(0.99) as f64 / 1e3),
        ),
    ]);
    serde_json::to_string(&value).expect("value tree serialises")
}

/// Route a parsed request: bump the request counter, start assignments
/// (enqueue only), answer everything else immediately.
fn route(inner: &Inner, request: &Request) -> PendingResponse {
    inner.bump(&inner.counters.requests, "gateway.requests", 1);
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", path) if path.starts_with("/v1/models/") => {
            start_assign(inner, path, &request.body)
        }
        _ => PendingResponse::Ready(route_immediate(inner, request)),
    }
}

/// The non-assign routes, all of which resolve without the engine.
fn route_immediate(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, health_json(inner)),
        ("GET", "/metrics") => {
            Response::text(200, mtrl_obs::export::prometheus_text(mtrl_obs::global()))
        }
        ("GET", "/v1/models") => {
            // Each entry carries the model's method provenance (`src`,
            // `rhchme`, `ensemble`, …) — `null` for models exported
            // before provenance existed.
            let models = Value::Array(
                inner
                    .engine
                    .model_methods()
                    .into_iter()
                    .map(|(name, method)| {
                        Value::Object(vec![
                            ("name".into(), Value::String(name)),
                            ("method".into(), method.map_or(Value::Null, Value::String)),
                        ])
                    })
                    .collect(),
            );
            let body = Value::Object(vec![("models".into(), models)]);
            Response::json(200, serde_json::to_string(&body).expect("value tree"))
        }
        (_, "/healthz" | "/metrics" | "/v1/models") => Response::json(
            405,
            wire::error_json(&ServeError::BadRequest("method not allowed".into())),
        ),
        _ => error_response(&ServeError::NotFound(request.path.clone())),
    }
}

/// Most requests accepted per pipelined burst before responses are
/// written; bounds the per-connection pending set.
const MAX_PIPELINE: usize = 32;

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // One blocking read yields the burst leader; parse errors
        // produce an error response and close the connection, exactly
        // as before pipelining.
        let mut batch: Vec<(PendingResponse, bool, usize)> = Vec::new();
        let mut keep_alive = match http::read_request(&mut reader) {
            Ok(request) => {
                let keep = !request.wants_close();
                batch.push((route(inner, &request), keep, request.body.len()));
                keep
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(msg)) => {
                let response = error_response(&ServeError::BadRequest(msg));
                batch.push((PendingResponse::Ready(response), false, 0));
                false
            }
            Err(HttpError::HeadTooLarge) => {
                let response = Response::json(
                    431,
                    wire::error_json(&ServeError::BadRequest("header block too large".into())),
                );
                batch.push((PendingResponse::Ready(response), false, 0));
                false
            }
            Err(HttpError::BodyTooLarge) => {
                let response = Response::json(
                    413,
                    wire::error_json(&ServeError::BadRequest("body too large".into())),
                );
                batch.push((PendingResponse::Ready(response), false, 0));
                false
            }
        };
        // HTTP/1.1 pipelining: drain further *complete* requests the
        // leader's socket read already buffered, enqueueing each before
        // any response is written (one coalescing window for the whole
        // burst). A partial or malformed tail is left buffered for the
        // next blocking read — only fully parsed requests are consumed.
        while keep_alive && batch.len() < MAX_PIPELINE {
            let buffered = reader.buffer();
            if buffered.is_empty() {
                break;
            }
            let mut cursor = Cursor::new(buffered);
            let Ok(request) = http::read_request(&mut cursor) else {
                break;
            };
            let consumed = cursor.position() as usize;
            keep_alive = !request.wants_close();
            reader.consume(consumed);
            batch.push((route(inner, &request), keep_alive, request.body.len()));
        }
        // Responses go out strictly in request order.
        for (pending, keep, body_in) in batch {
            let response = resolve_response(inner, pending);
            match response.write_to(&mut writer, keep) {
                Ok(bytes_out) => {
                    inner.bump(
                        &inner.counters.bytes,
                        "gateway.bytes",
                        (body_in + bytes_out) as u64,
                    );
                }
                Err(_) => return,
            }
            if !keep {
                return;
            }
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    for conn in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = conn else { continue };
        if inner.connections.fetch_add(1, Ordering::AcqRel) >= inner.config.max_connections {
            inner.connections.fetch_sub(1, Ordering::AcqRel);
            // Best-effort refusal; the client may already be gone.
            let mut stream = stream;
            let _ = Response::json(
                503,
                wire::error_json(&ServeError::Overloaded {
                    retry_after: inner.config.shed_retry_after,
                }),
            )
            .write_to(&mut stream, false);
            let _ = stream.flush();
            continue;
        }
        let inner_conn = Arc::clone(&inner);
        let spawned = thread::Builder::new()
            .name("gw-conn".to_string())
            .spawn(move || {
                handle_connection(&inner_conn, stream);
                inner_conn.connections.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            inner.connections.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A running gateway. Dropping it shuts the server down (acceptor and
/// batchers joined; open connections finish their in-flight exchange
/// and then observe the shutdown flag).
pub struct Gateway {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    responders: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Bind `config.addr` and start serving `engine`'s models.
    ///
    /// # Errors
    /// Propagates socket bind/inspect failures.
    pub fn bind(engine: Arc<ServeEngine>, config: GatewayConfig) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let responder_count = config.responders.max(1);
        let inner = Arc::new(Inner {
            engine,
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            connections: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        // The channel bound caps in-flight batches at ~2× the
        // responder count; see `dispatch_batch` for why this bound is
        // the gateway's backpressure link.
        let (batch_tx, batch_rx) = sync_channel::<InFlight>(responder_count);
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let mut responders = Vec::with_capacity(responder_count);
        for i in 0..responder_count {
            let rx = Arc::clone(&batch_rx);
            responders.push(
                thread::Builder::new()
                    .name(format!("gw-respond-{i}"))
                    .spawn(move || responder_loop(rx))
                    .expect("spawn gateway responder"),
            );
        }
        let inner_d = Arc::clone(&inner);
        let dispatcher = thread::Builder::new()
            .name("gw-dispatch".to_string())
            .spawn(move || dispatcher_loop(inner_d, batch_tx))
            .expect("spawn gateway dispatcher");
        let inner_a = Arc::clone(&inner);
        let acceptor = thread::Builder::new()
            .name("gw-accept".to_string())
            .spawn(move || accept_loop(inner_a, listener))
            .expect("spawn gateway acceptor");
        Ok(Gateway {
            inner,
            addr,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            responders,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the gateway. Registering / re-registering
    /// models here (e.g. from a `StreamSession` refit) hot-swaps them
    /// for network callers atomically.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.inner.engine
    }

    /// Snapshot the gateway counters.
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            requests: self.inner.counters.requests.load(Ordering::Relaxed),
            shed: self.inner.counters.shed.load(Ordering::Relaxed),
            coalesced_batches: self
                .inner
                .counters
                .coalesced_batches
                .load(Ordering::Relaxed),
            bytes: self.inner.counters.bytes.load(Ordering::Relaxed),
            latency: self.inner.counters.latency.snapshot(),
        }
    }

    /// Stop accepting, drain queued jobs, and join the server threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.queue_cv.notify_all();
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // The dispatcher drains the queue and exits, dropping its
        // channel end; the responders then finish in-flight batches
        // and see the hangup.
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        for handle in self.responders.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}
