//! JSON codec between HTTP bodies and the serve crate's request /
//! response / error types.
//!
//! The wire schema is deliberately a transliteration of
//! [`AssignRequest`] — the gateway adds no request vocabulary of its
//! own, so in-process callers and network callers exercise the same
//! API surface:
//!
//! ```json
//! {
//!   "type_index": 0,
//!   "docs": [{"indices": [3, 17], "values": [1.0, 0.5]}],
//!   "batch_hint": 64,
//!   "deadline_ms": 25
//! }
//! ```
//!
//! Every decode failure is a [`ServeError::BadRequest`] naming the
//! offending field, which the server maps to `400` — malformed JSON can
//! reject a request but never kill a connection thread.

use mtrl_serve::{AssignRequest, AssignResponse, ServeError, SparseVec};
use serde::Value;
use std::time::Duration;

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

/// Largest integer exactly representable in the shim's f64 numbers.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0;

fn as_usize(v: &Value, field: &str) -> Result<usize, ServeError> {
    let n = v
        .as_f64()
        .ok_or_else(|| bad(format!("`{field}` must be a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > MAX_SAFE_INT {
        return Err(bad(format!("`{field}` must be a non-negative integer")));
    }
    Ok(n as usize)
}

fn usize_array(v: &Value, field: &str) -> Result<Vec<usize>, ServeError> {
    v.as_array()
        .ok_or_else(|| bad(format!("`{field}` must be an array")))?
        .iter()
        .map(|x| as_usize(x, field))
        .collect()
}

fn f64_array(v: &Value, field: &str) -> Result<Vec<f64>, ServeError> {
    v.as_array()
        .ok_or_else(|| bad(format!("`{field}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| bad(format!("`{field}` must hold numbers")))
        })
        .collect()
}

/// Decode a `POST .../assign` body into an [`AssignRequest`] for
/// `model` (taken from the URL path, not the body).
pub fn parse_assign(model: &str, body: &[u8]) -> Result<AssignRequest, ServeError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    let value: Value = serde_json::from_str(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    if !matches!(value, Value::Object(_)) {
        return Err(bad("body must be a JSON object"));
    }

    let docs_value = value
        .get("docs")
        .ok_or_else(|| bad("missing field `docs`"))?;
    let raw_docs = docs_value
        .as_array()
        .ok_or_else(|| bad("`docs` must be an array"))?;
    if raw_docs.is_empty() {
        return Err(bad("`docs` must not be empty"));
    }
    let mut docs = Vec::with_capacity(raw_docs.len());
    for (i, d) in raw_docs.iter().enumerate() {
        let indices = usize_array(
            d.get("indices")
                .ok_or_else(|| bad(format!("doc {i}: missing `indices`")))?,
            "indices",
        )?;
        let values = f64_array(
            d.get("values")
                .ok_or_else(|| bad(format!("doc {i}: missing `values`")))?,
            "values",
        )?;
        docs.push(SparseVec::new(indices, values).map_err(|e| bad(format!("doc {i}: {e}")))?);
    }

    let mut request = AssignRequest::new(model).docs(docs);
    if let Some(t) = value.get("type_index") {
        request = request.type_index(as_usize(t, "type_index")?);
    }
    if let Some(h) = value.get("batch_hint") {
        request = request.batch_hint(as_usize(h, "batch_hint")?);
    }
    if let Some(d) = value.get("deadline_ms") {
        request = request.deadline_in(Duration::from_millis(as_usize(d, "deadline_ms")? as u64));
    }
    Ok(request)
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

/// Encode a successful assignment for the wire.
pub fn assign_response_json(model: &str, response: &AssignResponse) -> String {
    let labels = Value::Array(response.labels.iter().map(|&l| num(l as f64)).collect());
    let posteriors = Value::Array(
        response
            .posteriors
            .iter()
            .map(|row| Value::Array(row.iter().map(|&p| num(p)).collect()))
            .collect(),
    );
    let value = Value::Object(vec![
        ("model".into(), Value::String(model.to_string())),
        ("count".into(), num(response.labels.len() as f64)),
        ("labels".into(), labels),
        ("posteriors".into(), posteriors),
        (
            "latency_us".into(),
            num(response.latency.as_micros() as f64),
        ),
    ]);
    serde_json::to_string(&value).expect("value tree serialises")
}

fn error_kind(err: &ServeError) -> &'static str {
    match err {
        ServeError::Io(_) => "io",
        ServeError::Corrupt(_) => "corrupt",
        ServeError::SchemaVersion { .. } => "schema_version",
        ServeError::NotFound(_) => "not_found",
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Overloaded { .. } => "overloaded",
        ServeError::Deadline { .. } => "deadline",
        ServeError::Shutdown => "shutdown",
    }
}

/// Encode a [`ServeError`] as the gateway's error body. The HTTP
/// status is `err.http_status()`; this is the JSON payload beside it.
pub fn error_json(err: &ServeError) -> String {
    let mut fields = vec![
        ("error".into(), Value::String(error_kind(err).to_string())),
        ("status".into(), num(err.http_status() as f64)),
        ("message".into(), Value::String(err.to_string())),
    ];
    if let Some(retry) = err.retry_after() {
        fields.push(("retry_after_ms".into(), num(retry.as_millis() as f64)));
    }
    serde_json::to_string(&Value::Object(fields)).expect("value tree serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_full_request() {
        let body = br#"{"type_index":1,"docs":[{"indices":[3,7],"values":[1.0,0.5]},
            {"indices":[0],"values":[2.0]}],"batch_hint":16,"deadline_ms":25}"#;
        let req = parse_assign("demo", body).unwrap();
        assert_eq!(req.model, "demo");
        assert_eq!(req.type_index, 1);
        assert_eq!(req.num_docs(), 2);
        assert_eq!(req.batch_hint, Some(16));
        assert!(req.deadline.is_some());
    }

    #[test]
    fn defaults_apply_when_fields_absent() {
        let req = parse_assign("m", br#"{"docs":[{"indices":[0],"values":[1.0]}]}"#).unwrap();
        assert_eq!(req.type_index, 0);
        assert_eq!(req.batch_hint, None);
        assert!(req.deadline.is_none());
    }

    #[test]
    fn rejects_shape_errors_as_bad_request() {
        for body in [
            &b"not json"[..],
            b"[]",
            b"{}",
            br#"{"docs":"nope"}"#,
            br#"{"docs":[]}"#,
            br#"{"docs":[{"values":[1.0]}]}"#,
            br#"{"docs":[{"indices":[0]}]}"#,
            br#"{"docs":[{"indices":[0,1],"values":[1.0]}]}"#,
            br#"{"docs":[{"indices":[-1],"values":[1.0]}]}"#,
            br#"{"docs":[{"indices":[0.5],"values":[1.0]}]}"#,
            br#"{"docs":[{"indices":[0],"values":[1.0]}],"type_index":"x"}"#,
            br#"{"docs":[{"indices":[0],"values":[1.0]}],"deadline_ms":-2}"#,
        ] {
            let err = parse_assign("m", body).unwrap_err();
            assert!(
                matches!(err, ServeError::BadRequest(_)),
                "{:?} for {:?}",
                err,
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn response_json_carries_labels_and_posteriors() {
        let resp = AssignResponse {
            posteriors: vec![vec![0.75, 0.25]],
            labels: vec![0],
            latency: Duration::from_micros(42),
        };
        let json = assign_response_json("demo", &resp);
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("latency_us").unwrap().as_f64(), Some(42.0));
        let rows = v.get("posteriors").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_f64(), Some(0.75));
    }

    #[test]
    fn error_json_includes_retry_hint_only_when_overloaded() {
        let shed = ServeError::Overloaded {
            retry_after: Duration::from_millis(50),
        };
        let v: Value = serde_json::from_str(&error_json(&shed)).unwrap();
        assert_eq!(v.get("status").unwrap().as_f64(), Some(429.0));
        assert_eq!(v.get("retry_after_ms").unwrap().as_f64(), Some(50.0));

        let missing = ServeError::NotFound("m".into());
        let v: Value = serde_json::from_str(&error_json(&missing)).unwrap();
        assert_eq!(v.get("status").unwrap().as_f64(), Some(404.0));
        assert!(v.get("retry_after_ms").is_none());
    }
}
