//! A minimal, std-only HTTP/1.1 subset: just enough wire protocol for
//! the gateway's four routes, with hard input limits so arbitrary bytes
//! from a socket can never allocate unboundedly or panic the server.
//!
//! Scope (deliberate):
//! - requests: request-line + headers + `Content-Length` bodies; no
//!   chunked transfer encoding, no continuation lines, no trailers;
//! - responses: always `Content-Length`-framed;
//! - keep-alive: HTTP/1.1 persistent connections honoured unless the
//!   client sends `Connection: close`.
//!
//! Anything outside that subset maps to a typed [`HttpError`] which the
//! connection loop turns into `400`/`413`/`431` — malformed input is a
//! *response*, never a panic (pinned by proptest over garbage bytes in
//! `tests/integration_gateway.rs`).

use std::io::{self, BufRead, Read, Write};

/// Cap on request-line + headers, bytes. Over → `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body, bytes. Over → `413`.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Cap on header count (each costs an allocation).
pub const MAX_HEADERS: usize = 64;

/// One parsed request. Header names are lower-cased at parse time.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Everything except `Closed` / `Io`
/// is answerable on the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// Not an HTTP/1.x request we can parse → `400 Bad Request`.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// Transport error (timeout, reset); the connection is unusable.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// Read one line (through `\n`), enforcing the running head budget.
fn read_line(
    r: &mut impl BufRead,
    head_bytes: &mut usize,
    first: bool,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    // take() bounds the read so a \n-free flood cannot grow `line`
    // past the head budget.
    let budget = (MAX_HEAD_BYTES - *head_bytes + 1) as u64;
    let n = r.take(budget).read_until(b'\n', &mut line)?;
    if n == 0 {
        return if first {
            Err(HttpError::Closed)
        } else {
            Err(malformed("unexpected end of header block"))
        };
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    if line.last() != Some(&b'\n') {
        return Err(malformed("header line without newline"));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| malformed("non-UTF-8 bytes in header"))
}

/// Read and parse one request off the stream.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut head_bytes = 0usize;
    // RFC 9112 §2.2: tolerate CRLFs before the request-line.
    let mut request_line = read_line(r, &mut head_bytes, true)?;
    let mut skipped = 0;
    while request_line.is_empty() {
        skipped += 1;
        if skipped > 4 {
            return Err(malformed("blank flood before request line"));
        }
        request_line = read_line(r, &mut head_bytes, true)?;
    }

    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(malformed(format!("bad request line: {request_line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(malformed(format!("bad method: {method:?}")));
    }
    if !path.starts_with('/') {
        return Err(malformed(format!("bad path: {path:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version: {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut head_bytes, false)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(format!("bad header line: {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(malformed(format!("bad header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| malformed(format!("bad content-length: {v:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response, always `Content-Length`-framed.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub extra_headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serialise onto the wire. Returns total bytes written (for the
    /// `gateway.bytes` counter).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<usize> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(head.len() + self.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_headers() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Tag: a b\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("x-tag"), Some("a b"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(b"POST /v1/x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn lf_only_lines_are_accepted() {
        let req = parse(b"GET / HTTP/1.0\nHost: y\n\n").unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn eof_before_any_bytes_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn garbage_is_malformed_not_panic() {
        for bytes in [
            &b"\x00\xffbinary\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Malformed(_))),
                "{bytes:?}"
            );
        }
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));
        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            flood.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(32)));
        }
        flood.push_str("\r\n");
        assert!(matches!(
            parse(flood.as_bytes()),
            Err(HttpError::HeadTooLarge)
        ));
    }

    #[test]
    fn newline_free_flood_stops_at_head_cap() {
        let flood = vec![b'A'; MAX_HEAD_BYTES * 2];
        assert!(matches!(
            parse(&flood),
            Err(HttpError::HeadTooLarge) | Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format_and_byte_count() {
        let mut out = Vec::new();
        let n = Response::json(429, "{}".into())
            .header("retry-after", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(n, text.len());
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
