//! `mtrl-gateway`: the networked serving front end for the RHCHME
//! stack.
//!
//! A std-only HTTP/1.1 server over [`std::net::TcpListener`] in front
//! of [`mtrl_serve::ServeEngine`]. No async runtime, no TLS, no
//! external dependencies — the wire layer is ~one file of plain
//! blocking sockets, which is all a fold-in service needs: requests
//! are small JSON bodies and the engine does the real work.
//!
//! What the gateway adds over calling the engine directly:
//!
//! - **Cross-client coalescing** ([`server`]): concurrent assign
//!   requests against the same `(model, type_index)` are merged into
//!   one engine batch within a wait window, recovering the batched
//!   fold-in kernel's throughput for single-document network callers.
//! - **Admission control** ([`server`]): a bounded job queue (full →
//!   `429` + `Retry-After`), a connection cap (over → `503`), hard
//!   HTTP input limits, and per-request deadlines (lapsed in queue →
//!   `504`). Overload degrades into fast rejections, never unbounded
//!   memory.
//! - **Observability**: `gateway.*` counters and an assign-latency
//!   histogram in the process-global `mtrl-obs` registry, served as
//!   Prometheus text at `/metrics` and as JSON (with p50/p99) at
//!   `/healthz`.
//!
//! # Wire API
//!
//! | route                          | meaning                                      |
//! |--------------------------------|----------------------------------------------|
//! | `POST /v1/models/{name}/assign`| fold in documents, return posteriors + labels|
//! | `GET /v1/models`               | registered models + method provenance        |
//! | `GET /healthz`                 | liveness + counters + latency quantiles      |
//! | `GET /metrics`                 | Prometheus text format                       |
//!
//! The assign body is a transliteration of
//! [`mtrl_serve::AssignRequest`] (see [`wire`]), and error responses
//! carry [`mtrl_serve::ServeError`]'s taxonomy — HTTP status codes come
//! from [`mtrl_serve::ServeError::http_status`], so in-process and
//! network callers share one error contract.
//!
//! ```no_run
//! use mtrl_gateway::{Gateway, GatewayConfig};
//! use mtrl_serve::ServeEngine;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(ServeEngine::with_queue_capacity(2, 1024));
//! // engine.register("demo", model)?;
//! let gateway = Gateway::bind(engine, GatewayConfig::default())?;
//! println!("listening on http://{}", gateway.addr());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod http;
pub mod server;
pub mod wire;

pub use server::{Gateway, GatewayConfig, GatewayStats};

use mtrl_serve::{persist, ServeEngine, ServeError};
use std::path::Path;

/// Register every model file in `dir` (any format [`persist::load_any`]
/// understands — v1 JSON or v2 binary) under its file stem. Returns the
/// registered names, sorted.
///
/// # Errors
/// Propagates directory-read and model-load failures; a directory with
/// an unloadable model file is a configuration error, not something to
/// skip silently.
pub fn register_models_from_dir(
    engine: &ServeEngine,
    dir: impl AsRef<Path>,
) -> Result<Vec<String>, ServeError> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_file() {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let model = persist::load_any(&path)?;
        engine.register(stem, model)?;
        names.push(stem.to_string());
    }
    names.sort();
    Ok(names)
}
