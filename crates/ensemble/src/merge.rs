//! Robust merge: probability-trajectory random walk with a
//! hyperedge-medoid fallback.
//!
//! The default merge treats the sparse co-association matrix as a random
//! walk seeded by the reference partition and discretised step by step:
//! each step re-votes every object by its co-association mass toward the
//! current clusters and folds the vote into a θ-decayed trajectory memory
//! `E_t = θ·E_{t-1} + W·onehot(labels_{t-1})`, relabelling by each row's
//! argmax (first maximum → deterministic ties). Step 1 is a pure
//! direct-evidence vote — so strongly co-associated neighbourhoods
//! immediately outvote a noisy reference assignment — and later steps
//! propagate consensus along trajectories, the probability-trajectory
//! reading of Huang et al.'s PTA (PAPERS.md).
//!
//! When the walk degenerates (fewer than two consensus clusters) — or
//! when explicitly selected — the k-hyperedge-medoid fallback takes every
//! base cluster as a hyperedge, greedily selects `k` of them by uncovered
//! coverage, and assigns each object to its highest-affinity selected
//! edge (containment plus mean co-association into the edge).

use mtrl_linalg::{vecops, Mat};
use mtrl_sparse::Csr;
use std::collections::HashMap;

/// Consensus labels for one object type, plus how they were produced.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// One consensus label `< k` per object.
    pub labels: Vec<usize>,
    /// Whether the hyperedge-medoid fallback produced the labels.
    pub used_fallback: bool,
}

/// Merge one type's co-associations into `k` consensus clusters,
/// selecting the best walk anchor among several candidate references.
///
/// Every candidate whose labels fit in `k` clusters seeds its own
/// trajectory walk (the hyperedge-medoid labels are always added as one
/// more candidate, so a bad member pool cannot pin the consensus), and
/// the non-degenerate outcome with the highest ratio-association score —
/// total intra-cluster co-association mass per cluster, normalised by
/// cluster size — wins. Ties and the empty-candidate case resolve to the
/// earliest candidate, keeping selection deterministic.
///
/// # Panics
/// Panics if any candidate's length differs from the co-association
/// dimension.
pub fn consensus_over_references(
    coassoc: &Csr,
    candidates: &[&[usize]],
    k: usize,
    walk_steps: usize,
    walk_decay: f64,
    force_fallback: bool,
    hyperedges: &[Vec<usize>],
) -> MergeOutcome {
    let n = coassoc.rows();
    let medoid = hyperedge_medoid_labels(
        coassoc,
        k,
        hyperedges,
        candidates.first().map_or(&[], |c| c),
    );
    if force_fallback {
        return MergeOutcome {
            labels: medoid,
            used_fallback: true,
        };
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    for reference in candidates
        .iter()
        .copied()
        .chain(std::iter::once(&medoid[..]))
    {
        assert_eq!(reference.len(), n, "reference length mismatch");
        if reference.iter().any(|&c| c >= k) {
            continue;
        }
        let labels = trajectory_labels(coassoc, reference, k, walk_steps, walk_decay);
        if distinct_clusters(&labels, k) < 2.min(k) {
            continue;
        }
        let score = ratio_association(coassoc, &labels, k);
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, labels));
        }
    }
    match best {
        Some((_, labels)) => MergeOutcome {
            labels,
            used_fallback: false,
        },
        None => MergeOutcome {
            labels: medoid,
            used_fallback: true,
        },
    }
}

fn distinct_clusters(labels: &[usize], k: usize) -> usize {
    let mut seen = vec![false; k];
    labels.iter().for_each(|&c| seen[c] = true);
    seen.iter().filter(|&&s| s).count()
}

/// Ratio-association consensus score: per-cluster intra-cluster
/// co-association mass divided by cluster size, summed over clusters.
/// The per-size normalisation keeps one giant cluster from absorbing
/// all the mass trivially.
fn ratio_association(coassoc: &Csr, labels: &[usize], k: usize) -> f64 {
    let mut mass = vec![0.0f64; k];
    let mut size = vec![0usize; k];
    for (i, &c) in labels.iter().enumerate() {
        size[c] += 1;
        let (idx, vals) = coassoc.row(i);
        for (&j, &w) in idx.iter().zip(vals) {
            if labels[j] == c {
                mass[c] += w;
            }
        }
    }
    mass.iter()
        .zip(&size)
        .filter(|&(_, &s)| s > 0)
        .map(|(&m, &s)| m / s as f64)
        .sum()
}

/// Merge one type's co-associations into `k` consensus clusters.
///
/// `reference` is the anchor partition (labels `< k`); `hyperedges` are
/// every base cluster's member list (used by the fallback).
///
/// # Panics
/// Panics if `reference.len()` differs from the co-association dimension
/// or a reference label is `>= k`.
pub fn consensus_labels(
    coassoc: &Csr,
    reference: &[usize],
    k: usize,
    walk_steps: usize,
    walk_decay: f64,
    force_fallback: bool,
    hyperedges: &[Vec<usize>],
) -> MergeOutcome {
    let n = coassoc.rows();
    assert_eq!(reference.len(), n, "reference length mismatch");
    assert!(
        reference.iter().all(|&c| c < k),
        "reference label out of range"
    );
    if !force_fallback {
        let labels = trajectory_labels(coassoc, reference, k, walk_steps, walk_decay);
        let distinct = {
            let mut seen = vec![false; k];
            labels.iter().for_each(|&c| seen[c] = true);
            seen.iter().filter(|&&s| s).count()
        };
        if distinct >= 2.min(k) {
            return MergeOutcome {
                labels,
                used_fallback: false,
            };
        }
    }
    MergeOutcome {
        labels: hyperedge_medoid_labels(coassoc, k, hyperedges, reference),
        used_fallback: true,
    }
}

/// The probability-trajectory walk, discretised: starting from the
/// reference partition, each step re-votes every object by its
/// co-association mass toward each current cluster (the row-stochastic
/// walk operator and the raw co-association row give the same argmax, so
/// no normalisation pass is needed), accumulated into a θ-decayed
/// trajectory memory `E_t = θ·E_{t-1} + W·onehot(labels_{t-1})`. Step 1
/// is a pure direct-evidence vote; later steps let consensus propagate
/// along trajectories while θ bounds how far a noisy region can drift.
/// Objects with empty co-association rows keep their reference label.
fn trajectory_labels(
    coassoc: &Csr,
    reference: &[usize],
    k: usize,
    walk_steps: usize,
    walk_decay: f64,
) -> Vec<usize> {
    let n = coassoc.rows();
    let mut labels = reference.to_vec();
    let mut memory = Mat::zeros(n, k);
    let mut votes = vec![0.0f64; k];
    for _ in 0..walk_steps.max(1) {
        // Synchronous step: all votes read the previous step's labels.
        let prev = labels.clone();
        for (i, label) in labels.iter_mut().enumerate() {
            votes.iter_mut().for_each(|v| *v = 0.0);
            let (idx, vals) = coassoc.row(i);
            for (&j, &w) in idx.iter().zip(vals) {
                votes[prev[j]] += w;
            }
            let row = memory.row_mut(i);
            for (m, &v) in row.iter_mut().zip(&votes) {
                *m = walk_decay * *m + v;
            }
            if let Some(best) = vecops::argmax(row) {
                if row[best] > 0.0 {
                    *label = best;
                }
            }
        }
    }
    labels
}

/// k-hyperedge-medoid consensus (the fallback merge).
fn hyperedge_medoid_labels(
    coassoc: &Csr,
    k: usize,
    hyperedges: &[Vec<usize>],
    reference: &[usize],
) -> Vec<usize> {
    let n = coassoc.rows();
    let edges: Vec<&Vec<usize>> = hyperedges.iter().filter(|e| !e.is_empty()).collect();
    if edges.is_empty() {
        return reference.to_vec();
    }
    // Greedy coverage selection of k medoid edges; ties and zero-gain
    // slots resolve to the lowest unselected index, keeping the
    // selection deterministic and exactly k-sized when possible.
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut covered = vec![false; n];
    while selected.len() < k.min(edges.len()) {
        let mut best: Option<(usize, usize)> = None; // (gain, edge index)
        for (e, members) in edges.iter().enumerate() {
            if selected.contains(&e) {
                continue;
            }
            let gain = members.iter().filter(|&&i| !covered[i]).count();
            let better = match best {
                None => true,
                Some((bg, _)) => gain > bg,
            };
            if better {
                best = Some((gain, e));
            }
        }
        let Some((_, e)) = best else { break };
        selected.push(e);
        for &i in edges[e] {
            covered[i] = true;
        }
    }
    // Assign each object to its highest-affinity selected edge:
    // containment bonus plus mean co-association into the edge.
    (0..n)
        .map(|i| {
            let (idx, vals) = coassoc.row(i);
            let weights: HashMap<usize, f64> =
                idx.iter().copied().zip(vals.iter().copied()).collect();
            let mut best = (0usize, f64::NEG_INFINITY);
            for (slot, &e) in selected.iter().enumerate() {
                let members = edges[e];
                let contained = f64::from(u8::from(members.contains(&i)));
                let affinity: f64 = members
                    .iter()
                    .map(|j| weights.get(j).copied().unwrap_or(0.0))
                    .sum::<f64>()
                    / members.len() as f64;
                let score = contained + affinity;
                if score > best.1 {
                    best = (slot, score);
                }
            }
            best.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coassoc::CoAssocBuilder;

    fn coassoc_of(partitions: &[Vec<usize>], n: usize, p: usize) -> Csr {
        let mut b = CoAssocBuilder::new(n);
        for labels in partitions {
            b.add_partition(labels);
        }
        b.build(p)
    }

    #[test]
    fn unanimous_partitions_are_reproduced() {
        let labels = vec![0, 0, 0, 1, 1, 1];
        let c = coassoc_of(&[labels.clone(), labels.clone()], 6, 4);
        let out = consensus_labels(&c, &labels, 2, 3, 0.8, false, &[]);
        assert!(!out.used_fallback);
        assert_eq!(out.labels, labels);
    }

    #[test]
    fn walk_outvotes_noisy_reference() {
        // Object 2 is misassigned by the reference but co-clusters with
        // 0 and 1 in every other partition.
        let majority = vec![0, 0, 0, 1, 1, 1];
        let reference = vec![0, 0, 1, 1, 1, 1];
        let c = coassoc_of(
            &[majority.clone(), majority.clone(), reference.clone()],
            6,
            4,
        );
        let out = consensus_labels(&c, &reference, 2, 3, 0.8, false, &[]);
        assert!(!out.used_fallback);
        assert_eq!(out.labels, majority);
    }

    #[test]
    fn degenerate_walk_falls_back_to_hyperedges() {
        // All-ones reference (single cluster used) with no co-association
        // signal would collapse to one cluster; the fallback must fire.
        let reference = vec![0, 0, 0, 0];
        let c = Csr::zeros(4, 4);
        let edges = vec![vec![0, 1], vec![2, 3]];
        let out = consensus_labels(&c, &reference, 2, 3, 0.8, false, &edges);
        assert!(out.used_fallback);
        assert_eq!(out.labels[0], out.labels[1]);
        assert_eq!(out.labels[2], out.labels[3]);
        assert_ne!(out.labels[0], out.labels[2]);
    }

    #[test]
    fn forced_fallback_selects_by_coverage() {
        let labels = vec![0, 0, 0, 1, 1, 1];
        let c = coassoc_of(std::slice::from_ref(&labels), 6, 4);
        let edges = vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 1]];
        let out = consensus_labels(&c, &labels, 2, 3, 0.8, true, &edges);
        assert!(out.used_fallback);
        assert_eq!(out.labels[..3], [out.labels[0]; 3]);
        assert_eq!(out.labels[3..], [out.labels[3]; 3]);
        assert_ne!(out.labels[0], out.labels[3]);
    }
}
