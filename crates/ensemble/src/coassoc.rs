//! Sparse co-association structure over base partitions.
//!
//! The classical evidence-accumulation matrix `C_ij = |{m : m(i) = m(j)}| / M`
//! is n×n dense; this module never materialises it. Instead each object
//! keeps only its `p` strongest co-cluster neighbours (count-descending,
//! index-ascending on ties), assembled straight into a [`Csr`] and then
//! max-symmetrised — the same sparsity contract as the pNN graphs, so the
//! PR-4 allocation oracle holds on the ensemble path.
//!
//! Determinism: rows are built with
//! [`mtrl_linalg::par::par_chunks_map`], which splices contiguous row
//! ranges back in order, and every per-row computation is a pure function
//! of the (order-insensitive) partition multiset — so the built matrix is
//! bit-identical across thread counts *and* across how partitions were
//! batched into the builder. The proptest suite pins both.

use mtrl_linalg::par::{num_threads, par_chunks_map};
use mtrl_sparse::Csr;
use std::collections::HashMap;

/// Incremental builder: feed base partitions (in any batching), then
/// [`CoAssocBuilder::build`].
#[derive(Debug, Clone)]
pub struct CoAssocBuilder {
    n: usize,
    partitions: Vec<Vec<usize>>,
}

impl CoAssocBuilder {
    /// A builder over `n` objects.
    pub fn new(n: usize) -> Self {
        CoAssocBuilder {
            n,
            partitions: Vec::new(),
        }
    }

    /// Add one base partition (a label per object).
    ///
    /// # Panics
    /// Panics if `labels.len() != n`.
    pub fn add_partition(&mut self, labels: &[usize]) {
        assert_eq!(
            labels.len(),
            self.n,
            "partition has {} labels for {} objects",
            labels.len(),
            self.n
        );
        self.partitions.push(labels.to_vec());
    }

    /// Number of partitions accumulated so far.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Build the sparse symmetric co-association matrix, keeping each
    /// object's `p` strongest co-cluster neighbours before
    /// symmetrisation. Entry values are co-clustering frequencies in
    /// `(0, 1]`.
    pub fn build(&self, p: usize) -> Csr {
        let n = self.n;
        let m = self.partitions.len();
        if m == 0 || p == 0 {
            return Csr::zeros(n, n);
        }
        // Bucket each partition's clusters once: cluster id -> members.
        let buckets: Vec<Vec<Vec<usize>>> = self
            .partitions
            .iter()
            .map(|labels| {
                let k = labels.iter().copied().max().unwrap_or(0) + 1;
                let mut b = vec![Vec::new(); k];
                for (i, &c) in labels.iter().enumerate() {
                    b[c].push(i);
                }
                b
            })
            .collect();
        let inv_m = 1.0 / m as f64;
        let rows: Vec<(Vec<usize>, Vec<f64>)> = par_chunks_map(n, num_threads(), |range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                let mut counts: HashMap<usize, u32> = HashMap::new();
                for (labels, bucket) in self.partitions.iter().zip(&buckets) {
                    for &j in &bucket[labels[i]] {
                        if j != i {
                            *counts.entry(j).or_insert(0) += 1;
                        }
                    }
                }
                // Full sort by (count desc, index asc) before truncation
                // makes the kept set independent of hash iteration order.
                let mut cand: Vec<(usize, u32)> = counts.into_iter().collect();
                cand.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                cand.truncate(p);
                cand.sort_unstable_by_key(|&(j, _)| j);
                let idx: Vec<usize> = cand.iter().map(|&(j, _)| j).collect();
                let vals: Vec<f64> = cand.iter().map(|&(_, c)| f64::from(c) * inv_m).collect();
                out.push((idx, vals));
            }
            out
        });
        Csr::from_sparse_rows(&rows, n).max_symmetrize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_agreement_gives_unit_cliques() {
        let mut b = CoAssocBuilder::new(6);
        let labels = vec![0, 0, 0, 1, 1, 1];
        b.add_partition(&labels);
        b.add_partition(&labels);
        let c = b.build(5);
        assert_eq!(c.shape(), (6, 6));
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(4, 5), 1.0);
        assert_eq!(c.get(0, 3), 0.0);
        assert_eq!(c.get(0, 0), 0.0, "no self loops");
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn disagreement_gives_fractional_weights() {
        let mut b = CoAssocBuilder::new(4);
        b.add_partition(&[0, 0, 1, 1]);
        b.add_partition(&[0, 1, 1, 0]);
        let c = b.build(5);
        assert_eq!(c.get(0, 1), 0.5);
        assert_eq!(c.get(0, 3), 0.5);
        assert_eq!(c.get(2, 3), 0.5);
        assert_eq!(c.get(1, 2), 0.5);
        assert_eq!(c.get(0, 2), 0.0);
    }

    #[test]
    fn top_p_truncates_but_symmetrisation_restores_mutual_edges() {
        // Object 0 co-clusters with 1..=3 equally; p = 2 keeps the two
        // lowest indices from 0's side, but 3 still keeps 0.
        let mut b = CoAssocBuilder::new(5);
        b.add_partition(&[0, 0, 0, 0, 1]);
        let c = b.build(2);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 1.0);
        // Kept through 3's own row + max_symmetrize.
        assert_eq!(c.get(0, 3), 1.0);
        assert!(c.is_symmetric(0.0));
    }

    #[test]
    fn partition_order_is_irrelevant() {
        let a = vec![0, 1, 0, 1, 0];
        let b2 = vec![1, 1, 0, 0, 0];
        let mut x = CoAssocBuilder::new(5);
        x.add_partition(&a);
        x.add_partition(&b2);
        let mut y = CoAssocBuilder::new(5);
        y.add_partition(&b2);
        y.add_partition(&a);
        assert_eq!(x.build(3), y.build(3));
    }

    #[test]
    fn empty_builder_yields_empty_matrix() {
        let b = CoAssocBuilder::new(4);
        let c = b.build(3);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.shape(), (4, 4));
    }
}
