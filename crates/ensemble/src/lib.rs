//! # mtrl-ensemble
//!
//! The consensus-ensemble method layer behind the redesigned
//! method-dispatch API (see `rhchme::pipeline`'s module docs for the
//! `Method` → `MethodSpec` contract). Three stages:
//!
//! 1. [`generator`] — diverse base partitions by perturbing seeds,
//!    random-k and method flavour over the shared
//!    [`rhchme::pipeline::Artifacts`];
//! 2. [`coassoc`] — a sparse per-type co-association structure keyed on
//!    each object's p-nearest co-cluster neighbours (never n×n);
//! 3. [`merge`] — probability-trajectory random-walk consensus with a
//!    k-hyperedge-medoid fallback.
//!
//! The merged per-type memberships export through the existing
//! [`rhchme::FittedModel`] path (association `S` re-estimated in closed
//! form), tagged with `method = "ensemble"` provenance, so serve,
//! gateway and stream consume ensemble models unchanged.
//!
//! [`run_spec`] is the *universal* dispatcher: it executes
//! [`MethodSpec::Ensemble`] here and delegates every base spec to
//! `rhchme::pipeline::run_spec` — callers that may receive either kind
//! (the eval runner, demos) route through this function.

pub mod coassoc;
pub mod generator;
pub mod merge;

use generator::{BasePartition, SharedRegularizers};
use mtrl_linalg::block::stack_membership;
use mtrl_linalg::kmeans::labels_to_membership;
use mtrl_linalg::{ops, solve, Mat};
use rhchme::multitype::MultiTypeData;
use rhchme::pipeline::{Artifacts, EnsembleSpec, MethodOutput, MethodSpec, PipelineParams};
use rhchme::rhchme::{RhchmeConfig, RhchmeResult};
use rhchme::{FittedModel, Result, RhchmeError};
use std::time::Instant;

pub use coassoc::CoAssocBuilder;
pub use merge::{consensus_labels, consensus_over_references, MergeOutcome};

/// One member's plan and outcome, for diagnostics and reports.
#[derive(Debug, Clone)]
pub struct MemberSummary {
    /// Method key of the flavour (`"src"`, `"snmtf"`, …).
    pub method: &'static str,
    /// Initialisation seed.
    pub seed: u64,
    /// Document cluster count used.
    pub doc_clusters: usize,
    /// Final engine objective.
    pub final_objective: f64,
}

/// A finished consensus-ensemble fit.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Consensus document labels.
    pub doc_labels: Vec<usize>,
    /// Consensus labels for every type, in type order.
    pub labels_per_type: Vec<Vec<usize>>,
    /// Consensus stacked membership `G` (smoothed one-hot blocks).
    pub g: Mat,
    /// Re-estimated association matrix `S` (closed form over `G`).
    pub s: Mat,
    /// Per-member plan and final objective.
    pub members: Vec<MemberSummary>,
    /// How many types were merged by the hyperedge-medoid fallback.
    pub fallback_types: usize,
}

/// Run the full consensus-ensemble fit on a corpus.
///
/// # Errors
/// Returns [`RhchmeError::InvalidConfig`] for a degenerate spec and
/// propagates artifact/engine failures.
pub fn fit_corpus(
    corpus: &mtrl_datagen::MultiTypeCorpus,
    spec: &EnsembleSpec,
    params: &PipelineParams,
) -> Result<EnsembleResult> {
    validate_spec(spec)?;
    let arts = Artifacts::new(corpus, params)?;
    let regs = SharedRegularizers::new(&arts, params)?;
    let members = generator::generate_members(&arts, &regs, spec, params)?;
    merge_members(&arts.data, &arts.r, &members, spec)
}

fn validate_spec(spec: &EnsembleSpec) -> Result<()> {
    if spec.coassoc_p == 0 {
        return Err(RhchmeError::InvalidConfig(
            "coassoc_p must be at least 1".into(),
        ));
    }
    if !(spec.walk_decay > 0.0 && spec.walk_decay <= 1.0) {
        return Err(RhchmeError::InvalidConfig(format!(
            "walk_decay {} outside (0, 1]",
            spec.walk_decay
        )));
    }
    if !(spec.smoothing >= 0.0 && spec.smoothing.is_finite()) {
        return Err(RhchmeError::InvalidConfig(format!(
            "smoothing {} must be finite and nonnegative",
            spec.smoothing
        )));
    }
    Ok(())
}

/// Merge fitted base partitions into a consensus result: per-type sparse
/// co-association, anchor-selected trajectory/hyperedge merge,
/// closed-form `S`. Public so callers with pre-fitted members (tests,
/// diagnostics) can drive the merge stage directly.
///
/// # Errors
/// Propagates the closed-form `S` solve's failures.
pub fn merge_members(
    data: &MultiTypeData,
    r: &mtrl_sparse::Csr,
    members: &[BasePartition],
    spec: &EnsembleSpec,
) -> Result<EnsembleResult> {
    let k_types = data.num_types();
    let mut labels_per_type = Vec::with_capacity(k_types);
    let mut blocks = Vec::with_capacity(k_types);
    let mut fallback_types = 0;
    for t in 0..k_types {
        let n_t = data.sizes()[t];
        let k_t = data.cluster_counts()[t];
        let mut builder = CoAssocBuilder::new(n_t);
        let mut hyperedges: Vec<Vec<usize>> = Vec::new();
        for member in members {
            let labels = &member.labels_per_type[t];
            builder.add_partition(labels);
            let clusters = labels.iter().copied().max().unwrap_or(0) + 1;
            let mut buckets = vec![Vec::new(); clusters];
            for (i, &c) in labels.iter().enumerate() {
                buckets[c].push(i);
            }
            hyperedges.extend(buckets.into_iter().filter(|b| !b.is_empty()));
        }
        let coassoc = builder.build(spec.coassoc_p);
        // Every member whose partition fits in k_t clusters is a candidate
        // walk anchor; the merge picks the best consensus by
        // ratio-association score, so one weak member cannot pin the
        // result (see `merge::consensus_over_references`).
        let candidates: Vec<&[usize]> = members
            .iter()
            .map(|m| m.labels_per_type[t].as_slice())
            .filter(|labels| labels.iter().all(|&c| c < k_t))
            .collect();
        let force_fallback = spec.merge == rhchme::pipeline::MergeStrategy::HyperedgeMedoid;
        let out = consensus_over_references(
            &coassoc,
            &candidates,
            k_t,
            spec.walk_steps,
            spec.walk_decay,
            force_fallback,
            &hyperedges,
        );
        fallback_types += usize::from(out.used_fallback);
        blocks.push(labels_to_membership(&out.labels, k_t, spec.smoothing));
        labels_per_type.push(out.labels);
    }
    let g = stack_membership(&blocks);
    let s = closed_form_s(r, &g)?;
    Ok(EnsembleResult {
        doc_labels: labels_per_type[0].clone(),
        labels_per_type,
        g,
        s,
        members: members
            .iter()
            .map(|m| MemberSummary {
                method: m.method.key(),
                seed: m.seed,
                doc_clusters: m.doc_clusters,
                final_objective: m.final_objective,
            })
            .collect(),
        fallback_types,
    })
}

/// The engine's closed-form association update evaluated once at the
/// consensus membership: `S = (GᵀG + εI)⁻¹ GᵀRG (GᵀG + εI)⁻¹`.
fn closed_form_s(r: &mtrl_sparse::Csr, g: &Mat) -> Result<Mat> {
    let gtg = ops::matmul_tn(g, g)?;
    let inv = solve::ridge_inverse(&gtg, 1e-10)?;
    let rg = r.mul_dense(g);
    let gtrg = ops::matmul_tn(g, &rg)?;
    Ok(ops::matmul(&ops::matmul(&inv, &gtrg)?, &inv)?)
}

/// Universal method dispatcher: executes [`MethodSpec::Ensemble`] here,
/// delegates every base spec to `rhchme::pipeline::run_spec`.
///
/// # Errors
/// Propagates fit errors from either path.
pub fn run_spec(
    corpus: &mtrl_datagen::MultiTypeCorpus,
    spec: &MethodSpec,
    params: &PipelineParams,
) -> Result<MethodOutput> {
    let ensemble_spec = match spec {
        MethodSpec::Base(_) => return rhchme::pipeline::run_spec(corpus, spec, params),
        MethodSpec::Ensemble(e) => e,
    };
    let start = Instant::now();
    let result = fit_corpus(corpus, ensemble_spec, params)?;
    let model = if params.export_model {
        Some(export_model(corpus, &result, params)?)
    } else {
        None
    };
    Ok(MethodOutput {
        method: spec.clone(),
        objective_trace: result.members.iter().map(|m| m.final_objective).collect(),
        doc_labels: result.doc_labels,
        label_trace: Vec::new(),
        elapsed: start.elapsed(),
        iterations: result.members.len(),
        converged: true,
        model,
    })
}

/// Export a consensus fit as a serving-ready [`FittedModel`] with
/// `method = "ensemble"` provenance.
///
/// # Errors
/// Propagates export validation failures.
pub fn export_model(
    corpus: &mtrl_datagen::MultiTypeCorpus,
    result: &EnsembleResult,
    params: &PipelineParams,
) -> Result<FittedModel> {
    let data = MultiTypeData::from_corpus(corpus, params.feature_cluster_divisor)?;
    export_model_from_data(&data, result, params)
}

/// [`export_model`] for pre-assembled data.
///
/// # Errors
/// Propagates export validation failures.
pub fn export_model_from_data(
    data: &MultiTypeData,
    result: &EnsembleResult,
    params: &PipelineParams,
) -> Result<FittedModel> {
    let packaged = RhchmeResult {
        doc_labels: result.doc_labels.clone(),
        labels_per_type: result.labels_per_type.clone(),
        g: result.g.clone(),
        s: result.s.clone(),
        objective_trace: result.members.iter().map(|m| m.final_objective).collect(),
        label_trace: Vec::new(),
        error_row_norms: Vec::new(),
        error_rows: mtrl_sparse::RowSparse::new(data.total_objects(), data.total_objects()),
        iterations: result.members.len(),
        converged: true,
    };
    let config = RhchmeConfig {
        lambda: params.lambda,
        gamma: params.gamma,
        alpha: params.alpha,
        beta: params.beta,
        p: params.p,
        graph_backend: params.graph_backend,
        precision: params.precision,
        spg_max_iter: params.spg_max_iter,
        max_iter: params.max_iter,
        tol: params.tol,
        seed: params.seed,
        feature_cluster_divisor: params.feature_cluster_divisor,
        record_doc_labels: false,
        ..RhchmeConfig::default()
    };
    Ok(rhchme::export::build_model(config, &packaged, data)?.with_method("ensemble"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};
    use rhchme::pipeline::Method;

    fn corpus() -> mtrl_datagen::MultiTypeCorpus {
        generate(&CorpusConfig {
            docs_per_class: vec![8, 8],
            vocab_size: 48,
            concept_count: 12,
            doc_len_range: (25, 40),
            background_frac: 0.25,
            topic_noise: 0.2,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 55,
        })
    }

    fn fast_params() -> PipelineParams {
        PipelineParams {
            lambda: 0.5,
            max_iter: 15,
            spg_max_iter: 15,
            feature_cluster_divisor: 10,
            ..PipelineParams::default()
        }
    }

    fn fast_spec() -> EnsembleSpec {
        EnsembleSpec::default().with_members(4)
    }

    #[test]
    fn ensemble_fits_and_scores() {
        let c = corpus();
        let result = fit_corpus(&c, &fast_spec(), &fast_params()).unwrap();
        assert_eq!(result.doc_labels.len(), 16);
        assert_eq!(result.labels_per_type.len(), 3);
        assert_eq!(result.members.len(), 4);
        // Member 0 anchors: canonical method, seed, cluster count.
        assert_eq!(result.members[0].method, "rhchme");
        assert_eq!(result.members[0].seed, fast_params().seed);
        assert_eq!(result.members[0].doc_clusters, 2);
        let f = mtrl_metrics::fscore(&c.labels, &result.doc_labels);
        assert!(f > 0.7, "fscore {f}");
        assert!(result.s.shape().0 == result.g.shape().1);
    }

    #[test]
    fn dispatcher_handles_both_kinds() {
        let c = corpus();
        let params = fast_params();
        let base = run_spec(&c, &MethodSpec::from(Method::Snmtf), &params).unwrap();
        assert_eq!(base.method.key(), "snmtf");
        let spec = MethodSpec::Ensemble(fast_spec());
        let ens = run_spec(&c, &spec, &params).unwrap();
        assert_eq!(ens.method.key(), "ensemble");
        assert_eq!(ens.iterations, 4);
        assert_eq!(ens.objective_trace.len(), 4);
        assert!(ens.model.is_none());
    }

    #[test]
    fn exported_model_is_valid_and_tagged() {
        let c = corpus();
        let params = PipelineParams {
            export_model: true,
            ..fast_params()
        };
        let out = run_spec(&c, &MethodSpec::Ensemble(fast_spec()), &params).unwrap();
        let model = out.model.expect("export requested");
        model.validate().unwrap();
        assert_eq!(model.method.as_deref(), Some("ensemble"));
        assert_eq!(model.sizes[0], 16);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let c = corpus();
        let params = fast_params();
        for bad in [
            EnsembleSpec::default().with_members(0),
            EnsembleSpec::default().with_pool(vec![]),
            EnsembleSpec::default().with_pool(vec![Method::DrT]),
            EnsembleSpec::default().with_coassoc_p(0),
            EnsembleSpec::default().with_walk(3, 0.0),
        ] {
            assert!(fit_corpus(&c, &bad, &params).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn random_k_perturbs_member_plans() {
        let c = corpus();
        let result =
            fit_corpus(&c, &EnsembleSpec::default().with_members(6), &fast_params()).unwrap();
        // With random-k on, members 1.. draw k ∈ [c, 2c]; at least the
        // plan fields are recorded and within range.
        for m in &result.members[1..] {
            assert!((2..=4).contains(&m.doc_clusters), "{m:?}");
        }
        assert!(result.members[1..].iter().any(|m| m.seed != 2015));
    }
}
