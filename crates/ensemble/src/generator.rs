//! Base-partition generator: diverse fits over the shared artifacts.
//!
//! All four HOCC methods in this workspace are the same sparse-first
//! NMTF engine under different graph regularisers (see the baseline
//! modules in `rhchme::baselines`), so the generator computes the
//! heavyweight inputs once — assembled `R`, feature views, pNN and
//! subspace Laplacians, RMC candidate pool, all via
//! [`rhchme::pipeline::Artifacts`] — and then runs one cheap engine fit
//! per member, perturbing three diversity axes:
//!
//! * **seed** — each member draws its k-means initialisation seed from a
//!   splitmix64 stream keyed on the canonical seed;
//! * **random-k** — odd-indexed members may re-spec the document cluster
//!   count to k ∈ [c, 2c] (cheap: [`MultiTypeData::with_cluster_counts`]
//!   changes only the cluster block layout); even-indexed members keep
//!   the canonical count so the merge always has same-k anchor
//!   candidates;
//! * **method** — the member's regulariser flavour cycles round-robin
//!   through the spec's pool (SRC / SNMTF / RMC / RHCHME).
//!
//! Member 0 is pinned to `pool[0]`, the canonical seed and the canonical
//! cluster counts, so the merge always has at least one same-k anchor
//! candidate; the merge then selects the best-scoring anchor among all
//! same-k members (see `merge::consensus_over_references`).

use rhchme::engine::{run_engine, EngineConfig, GraphRegularizer};
use rhchme::intra::{hetero_laplacian, rmc_candidates};
use rhchme::multitype::MultiTypeData;
use rhchme::pipeline::{Artifacts, EnsembleSpec, Method, PipelineParams};
use rhchme::rhchme::init_membership;
use rhchme::{Result, RhchmeError};

/// One fitted base partition.
#[derive(Debug, Clone)]
pub struct BasePartition {
    /// Regulariser flavour this member ran with.
    pub method: Method,
    /// Initialisation seed.
    pub seed: u64,
    /// Document cluster count used (canonical `c` or a random-k draw).
    pub doc_clusters: usize,
    /// Per-type hard labels of the fitted membership.
    pub labels_per_type: Vec<Vec<usize>>,
    /// Final engine objective (diagnostics; surfaced as the ensemble's
    /// objective trace).
    pub final_objective: f64,
}

/// Shared per-corpus inputs for all members, layered over
/// [`Artifacts`]: the regularisers each method flavour needs, built once.
pub struct SharedRegularizers {
    none: GraphRegularizer,
    pnn: GraphRegularizer,
    rmc: GraphRegularizer,
    hetero: GraphRegularizer,
}

impl SharedRegularizers {
    /// Build every flavour's regulariser from the cached artifacts.
    ///
    /// # Errors
    /// Propagates SPG / graph-construction failures.
    pub fn new(arts: &Artifacts, params: &PipelineParams) -> Result<Self> {
        let l_sub = arts.subspace_laplacian(params.gamma, params.spg_max_iter, params.seed)?;
        let l_hetero = hetero_laplacian(&l_sub, &arts.l_pnn, params.alpha)?;
        let candidates = rmc_candidates(&arts.features, mtrl_graph::LaplacianKind::SymNormalized)?;
        Ok(SharedRegularizers {
            none: GraphRegularizer::None,
            pnn: GraphRegularizer::Fixed(arts.l_pnn.clone()),
            rmc: GraphRegularizer::Ensemble {
                candidates,
                mu: params.rmc_mu,
            },
            hetero: GraphRegularizer::Fixed(l_hetero),
        })
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The member plan for one slot: flavour, seed and document k.
fn member_plan(
    i: usize,
    spec: &EnsembleSpec,
    params: &PipelineParams,
    data: &MultiTypeData,
    state: &mut u64,
) -> (Method, u64, usize) {
    let method = spec.pool[i % spec.pool.len()];
    let c0 = data.cluster_counts()[0];
    if i == 0 {
        return (method, params.seed, c0);
    }
    let seed = splitmix64(state);
    // Only odd slots draw a random k: the even half of the pool stays at
    // the canonical cluster count so the merge always has several
    // same-k partitions to evaluate as candidate walk anchors
    // (over-clustered members still contribute co-association mass).
    let doc_k = if spec.random_k && i % 2 == 1 {
        let draw = (splitmix64(state) % (c0 as u64 + 1)) as usize;
        (c0 + draw).clamp(2, (2 * c0).min(data.sizes()[0]))
    } else {
        c0
    };
    (method, seed, doc_k)
}

/// Generate `spec.members` base partitions over the shared artifacts.
///
/// # Errors
/// Returns [`RhchmeError::InvalidConfig`] for an empty pool or zero
/// members, and propagates engine failures.
pub fn generate_members(
    arts: &Artifacts,
    regs: &SharedRegularizers,
    spec: &EnsembleSpec,
    params: &PipelineParams,
) -> Result<Vec<BasePartition>> {
    if spec.members == 0 {
        return Err(RhchmeError::InvalidConfig(
            "ensemble needs at least one member".into(),
        ));
    }
    if spec.pool.is_empty() {
        return Err(RhchmeError::InvalidConfig(
            "ensemble method pool is empty".into(),
        ));
    }
    if let Some(m) = spec.pool.iter().find(|m| !m.is_hocc()) {
        return Err(RhchmeError::InvalidConfig(format!(
            "ensemble pool member {m:?} is not a multi-type method"
        )));
    }
    let mut state = params.seed ^ 0xE15E_B1E5_EED5_EED5;
    let mut members = Vec::with_capacity(spec.members);
    for i in 0..spec.members {
        let (method, seed, doc_k) = member_plan(i, spec, params, &arts.data, &mut state);
        members.push(fit_member(arts, regs, params, method, seed, doc_k)?);
    }
    Ok(members)
}

/// Run one member: re-spec cluster counts if needed, initialise, run the
/// engine with the flavour's regulariser, and extract per-type labels.
fn fit_member(
    arts: &Artifacts,
    regs: &SharedRegularizers,
    params: &PipelineParams,
    method: Method,
    seed: u64,
    doc_k: usize,
) -> Result<BasePartition> {
    let respecced;
    let data = if doc_k == arts.data.cluster_counts()[0] {
        &arts.data
    } else {
        let mut counts = arts.data.cluster_counts().to_vec();
        counts[0] = doc_k;
        respecced = arts.data.with_cluster_counts(counts)?;
        &respecced
    };
    let g0 = init_membership(data, &arts.features, seed);
    let (reg, cfg) = match method {
        Method::Src => (
            &regs.none,
            EngineConfig {
                lambda: 0.0,
                use_error_matrix: false,
                l1_row_normalize: false,
                max_iter: params.max_iter,
                tol: params.tol,
                ..EngineConfig::default()
            },
        ),
        Method::Snmtf => (
            &regs.pnn,
            EngineConfig {
                lambda: params.lambda,
                use_error_matrix: false,
                l1_row_normalize: false,
                max_iter: params.max_iter,
                tol: params.tol,
                ..EngineConfig::default()
            },
        ),
        Method::Rmc => (
            &regs.rmc,
            EngineConfig {
                lambda: params.lambda,
                use_error_matrix: false,
                l1_row_normalize: false,
                max_iter: params.max_iter,
                tol: params.tol,
                ..EngineConfig::default()
            },
        ),
        Method::Rhchme => (
            &regs.hetero,
            EngineConfig {
                lambda: params.lambda,
                beta: params.beta,
                use_error_matrix: true,
                l1_row_normalize: true,
                max_iter: params.max_iter,
                tol: params.tol,
                precision: params.precision,
                ..EngineConfig::default()
            },
        ),
        other => {
            return Err(RhchmeError::InvalidConfig(format!(
                "ensemble pool member {other:?} is not a multi-type method"
            )))
        }
    };
    let out = run_engine(&arts.r, data, reg, g0, &cfg)?;
    let labels_per_type = (0..data.num_types())
        .map(|k| data.labels_from_membership(&out.g, k))
        .collect();
    Ok(BasePartition {
        method,
        seed,
        doc_clusters: doc_k,
        labels_per_type,
        final_objective: out.objective_trace.last().copied().unwrap_or(f64::NAN),
    })
}
