//! Graph Laplacians.
//!
//! The paper writes `L = D − W` with `D_ii = Σ_j W_ij` (Sec. II-A) while
//! *calling* it the "normalized graph Laplacian"; the normalised form
//! `L = I − D^{-1/2} W D^{-1/2}` is what the cited SNMTF/RMC works use.
//! We implement both and default to the symmetric-normalised variant in
//! the clustering pipeline so the subspace-learned Laplacian `L_S` and the
//! pNN Laplacian `L_E` live on comparable scales inside the ensemble of
//! Eq. (12). DESIGN.md §3 records this choice.

use mtrl_linalg::Mat;
use mtrl_sparse::Csr;

/// Which Laplacian construction to apply to a weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaplacianKind {
    /// `L = D − W` (the formula printed in the paper).
    Unnormalized,
    /// `L = I − D^{-1/2} W D^{-1/2}` (symmetric normalised; isolated
    /// vertices get a zero row/column rather than a division by zero).
    SymNormalized,
}

/// Degree floor below which a vertex counts as isolated (its row of `W`
/// carries no usable mass and normalisation would divide by ~zero).
const DEGREE_FLOOR: f64 = 1e-300;

/// Build a **sparse** Laplacian from a symmetric nonnegative weight
/// matrix — the form the fit loop consumes. A pNN graph has at most
/// `2pn` edges, so `L` has at most `2pn + n` stored entries and the
/// engine's `L·G` products stay `O(nnz · c)` instead of `O(n² c)`.
///
/// Exact zeros (isolated vertices' diagonal) are not stored; the result
/// satisfies every [`Csr`] invariant.
///
/// # Panics
/// Panics if `w` is not square.
pub fn laplacian_csr(w: &Csr, kind: LaplacianKind) -> Csr {
    let _span = mtrl_obs::span!("graph.laplacian");
    assert_eq!(w.rows(), w.cols(), "laplacian of a non-square matrix");
    let n = w.rows();
    let degrees = w.row_sums();
    let inv_sqrt: Vec<f64> = match kind {
        LaplacianKind::Unnormalized => Vec::new(),
        LaplacianKind::SymNormalized => degrees
            .iter()
            .map(|&d| {
                if d > DEGREE_FLOOR {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect(),
    };
    let mut out = mtrl_sparse::CsrBuilder::with_capacity(n, n, w.nnz() + n);
    for i in 0..n {
        let (cols, vals) = w.row(i);
        // The diagonal value mirrors the dense construction bit for bit:
        // off-diagonal contributions are negated weights and the diagonal
        // accumulates degree (resp. +1) on top of any W_ii entry.
        let mut diag = match kind {
            LaplacianKind::Unnormalized => degrees[i],
            LaplacianKind::SymNormalized => {
                if degrees[i] > DEGREE_FLOOR {
                    1.0
                } else {
                    0.0
                }
            }
        };
        let mut diag_written = false;
        for (&j, &v) in cols.iter().zip(vals) {
            let off = match kind {
                LaplacianKind::Unnormalized => -v,
                LaplacianKind::SymNormalized => -(v * inv_sqrt[i] * inv_sqrt[j]),
            };
            if j == i {
                diag += off;
                continue;
            }
            if j > i && !diag_written {
                out.push(i, diag);
                diag_written = true;
            }
            out.push(j, off);
        }
        if !diag_written {
            out.push(i, diag);
        }
        out.finish_row();
    }
    out.build()
}

/// Build a dense Laplacian block from a symmetric nonnegative weight
/// matrix.
///
/// This is a thin `.to_dense()` shim over [`laplacian_csr`], kept for
/// tests and for consumers that genuinely need the dense form (e.g. the
/// Jacobi eigensolver); the fit loop uses the sparse construction.
///
/// # Panics
/// Panics if `w` is not square.
pub fn laplacian_dense(w: &Csr, kind: LaplacianKind) -> Mat {
    laplacian_csr(w, kind).to_dense()
}

/// Degree vector `D_ii = Σ_j W_ij`.
pub fn degrees(w: &Csr) -> Vec<f64> {
    w.row_sums()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::eigen::sym_eigen;
    use mtrl_linalg::ops::matvec;
    use mtrl_sparse::Coo;

    /// Path graph 0-1-2 with unit weights.
    fn path3() -> Csr {
        let mut c = Coo::new(3, 3);
        for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1)] {
            c.push(i, j, 1.0);
        }
        c.to_csr()
    }

    #[test]
    fn unnormalized_rows_sum_to_zero() {
        let l = laplacian_dense(&path3(), LaplacianKind::Unnormalized);
        for s in l.row_sums() {
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(l[(1, 1)], 2.0);
        assert_eq!(l[(0, 1)], -1.0);
    }

    #[test]
    fn unnormalized_kills_constant_vector() {
        let l = laplacian_dense(&path3(), LaplacianKind::Unnormalized);
        let y = matvec(&l, &[1.0, 1.0, 1.0]).unwrap();
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn both_kinds_are_psd() {
        let mut c = Coo::new(5, 5);
        for (i, j, v) in [
            (0, 1, 0.5),
            (1, 0, 0.5),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (3, 4, 2.0),
            (4, 3, 2.0),
            (0, 4, 0.1),
            (4, 0, 0.1),
        ] {
            c.push(i, j, v);
        }
        let w = c.to_csr();
        for kind in [LaplacianKind::Unnormalized, LaplacianKind::SymNormalized] {
            let l = laplacian_dense(&w, kind);
            let e = sym_eigen(&l, 1e-10, 200).unwrap();
            assert!(
                e.values.iter().all(|&v| v > -1e-9),
                "{kind:?} spectrum {:?}",
                e.values
            );
        }
    }

    #[test]
    fn normalized_diag_is_one_for_connected_vertices() {
        let l = laplacian_dense(&path3(), LaplacianKind::SymNormalized);
        for i in 0..3 {
            assert!((l[(i, i)] - 1.0).abs() < 1e-12);
        }
        // Off-diagonal of path: -1/sqrt(d_i d_j) = -1/sqrt(2) for edge (0,1).
        assert!((l[(0, 1)] + 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalized_spectrum_bounded_by_two() {
        let l = laplacian_dense(&path3(), LaplacianKind::SymNormalized);
        let e = sym_eigen(&l, 1e-10, 200).unwrap();
        assert!(e.values.iter().all(|&v| v <= 2.0 + 1e-9));
    }

    #[test]
    fn isolated_vertex_zero_row() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let w = c.to_csr();
        let l = laplacian_dense(&w, LaplacianKind::SymNormalized);
        assert_eq!(l[(2, 2)], 0.0);
        assert_eq!(l.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_graph_gives_zero_laplacian() {
        let w = Csr::zeros(4, 4);
        let lu = laplacian_dense(&w, LaplacianKind::Unnormalized);
        assert_eq!(lu.sum(), 0.0);
        let ln = laplacian_dense(&w, LaplacianKind::SymNormalized);
        assert_eq!(ln.sum(), 0.0);
    }

    #[test]
    fn degrees_match_row_sums() {
        let w = path3();
        assert_eq!(degrees(&w), vec![1.0, 2.0, 1.0]);
    }

    /// The seed repository's dense construction, kept verbatim as the
    /// reference the sparse builder must reproduce bit for bit.
    fn dense_reference(w: &Csr, kind: LaplacianKind) -> Mat {
        let n = w.rows();
        let degrees = w.row_sums();
        let mut l = Mat::zeros(n, n);
        match kind {
            LaplacianKind::Unnormalized => {
                for (i, j, v) in w.iter() {
                    l[(i, j)] -= v;
                }
                for i in 0..n {
                    l[(i, i)] += degrees[i];
                }
            }
            LaplacianKind::SymNormalized => {
                let inv_sqrt: Vec<f64> = degrees
                    .iter()
                    .map(|&d| if d > 1e-300 { 1.0 / d.sqrt() } else { 0.0 })
                    .collect();
                for (i, j, v) in w.iter() {
                    l[(i, j)] -= v * inv_sqrt[i] * inv_sqrt[j];
                }
                for i in 0..n {
                    if degrees[i] > 1e-300 {
                        l[(i, i)] += 1.0;
                    }
                }
            }
        }
        l
    }

    #[test]
    fn csr_matches_dense_construction_bitwise() {
        use crate::knn::pnn_graph;
        use crate::knn::WeightScheme;
        use mtrl_linalg::random::rand_uniform;
        let data = rand_uniform(40, 6, 0.0, 1.0, 77);
        for scheme in [
            WeightScheme::Cosine,
            WeightScheme::HeatKernel { sigma: -1.0 },
        ] {
            let w = pnn_graph(&data, 4, scheme);
            for kind in [LaplacianKind::Unnormalized, LaplacianKind::SymNormalized] {
                let sparse = laplacian_csr(&w, kind);
                let reference = dense_reference(&w, kind);
                assert_eq!(
                    sparse.to_dense().as_slice(),
                    reference.as_slice(),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    fn csr_isolated_vertex_stores_no_zero() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let w = c.to_csr();
        let l = laplacian_csr(&w, LaplacianKind::SymNormalized);
        // Vertex 2 is isolated: no stored entries in its row at all.
        assert_eq!(l.row(2).0.len(), 0);
        for (_, _, v) in l.iter() {
            assert_ne!(v, 0.0, "stored explicit zero");
        }
    }

    #[test]
    fn csr_handles_explicit_diagonal_weights() {
        // General W with a diagonal entry: the Laplacian folds it into
        // the diagonal exactly like the dense path.
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 0.5);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let w = c.to_csr();
        for kind in [LaplacianKind::Unnormalized, LaplacianKind::SymNormalized] {
            let sparse = laplacian_csr(&w, kind).to_dense();
            let reference = dense_reference(&w, kind);
            assert_eq!(sparse.as_slice(), reference.as_slice(), "{kind:?}");
        }
    }
}
