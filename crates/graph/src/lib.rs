//! # mtrl-graph
//!
//! Nearest-neighbour graphs and graph Laplacians for the RHCHME
//! reproduction.
//!
//! This crate implements the paper's Eq. (3) — the pNN intra-type
//! relationship `W_E` with binary / heat-kernel / cosine weighting — plus
//! the Laplacian constructions used by every HOCC method:
//!
//! * SNMTF uses a single pNN Laplacian (Eq. 1);
//! * RMC uses a linear ensemble of pre-given candidates (Eq. 2);
//! * RHCHME uses the *heterogeneous* ensemble `L = α·L_S + L_E` (Eq. 12)
//!   mixing the subspace-learned Laplacian with the pNN one.
//!
//! Graphs are built over objects given as **rows** of a dense feature
//! matrix; the resulting weight matrices are sparse ([`mtrl_sparse::Csr`])
//! and the Laplacians dense per-type blocks ([`mtrl_linalg::Mat`]), ready
//! for the positive/negative splits of the multiplicative update.

pub mod components;
pub mod ensemble;
pub mod knn;
pub mod laplacian;
mod serde_impl;

pub use ensemble::{hetero_ensemble, linear_combination};
pub use knn::{knn_indices, pnn_graph, WeightScheme};
pub use laplacian::{laplacian_dense, LaplacianKind};
