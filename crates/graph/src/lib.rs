//! # mtrl-graph
//!
//! Nearest-neighbour graphs and graph Laplacians for the RHCHME
//! reproduction.
//!
//! This crate implements the paper's Eq. (3) — the pNN intra-type
//! relationship `W_E` with binary / heat-kernel / cosine weighting — plus
//! the Laplacian constructions used by every HOCC method:
//!
//! * SNMTF uses a single pNN Laplacian (Eq. 1);
//! * RMC uses a linear ensemble of pre-given candidates (Eq. 2);
//! * RHCHME uses the *heterogeneous* ensemble `L = α·L_S + L_E` (Eq. 12)
//!   mixing the subspace-learned Laplacian with the pNN one.
//!
//! Graphs are built over objects given as **rows** of a dense feature
//! matrix with a parallel, blocked Gram-trick kernel (see [`knn`]) whose
//! output is bit-identical for every thread count; [`knn_f32`] provides
//! the f32-storage / f64-accumulation twins of the same chain for
//! [`mtrl_linalg::Precision::F32`] mode. The weight matrices
//! are sparse ([`mtrl_sparse::Csr`]) and the Laplacians stay sparse too
//! ([`laplacian_csr`], ≤ `2pn + n` entries) — the positive/negative
//! splits and `L·G` products of the multiplicative update run on CSR
//! blocks; [`laplacian_dense`] remains as a `.to_dense()` shim for
//! spectral utilities and tests.

pub mod components;
pub mod ensemble;
pub mod knn;
pub mod knn_f32;
pub mod laplacian;
mod serde_impl;

pub use ensemble::{hetero_ensemble, linear_combination};
pub use knn::{
    center_columns, cross_sq_dist_map, dist_less, gram_sq_dist, gram_sq_dist_x4,
    graph_from_neighbours, knn_indices, knn_indices_serial, knn_indices_with_threads, pnn_graph,
    pnn_graph_with_threads, select_p_nearest, WeightScheme,
};
pub use knn_f32::{
    cross_sq_dist_map_f32, gram_sq_dist_f32, gram_sq_dist_x4_f32, knn_indices_f32,
    knn_indices_f32_with_threads, pnn_graph_f32, pnn_graph_f32_with_threads,
};
pub use laplacian::{laplacian_csr, laplacian_dense, LaplacianKind};
