//! Laplacian ensembles — sparse end to end.
//!
//! * [`linear_combination`] — the RMC-style pre-given candidate ensemble
//!   `L = Σ βᵢ L̂ᵢ` with `Σβᵢ = 1, βᵢ > 0` (paper Eq. 2);
//! * [`hetero_ensemble`] — the paper's heterogeneous manifold ensemble
//!   `L = α·L_S + L_E` (Eq. 12) combining a subspace-learned member with a
//!   pNN member.
//!
//! Both operate on CSR members and produce CSR results with merged
//! sparsity patterns, matching the sparse fit loop introduced by the
//! parallel-sparse graph rewiring (`laplacian_csr`,
//! `mtrl_sparse::SparseBlockDiag`). The dense `Mat` versions that
//! predated that rewiring are retired; a consumer that genuinely needs a
//! dense ensemble calls `.to_dense()` on the result, exactly like
//! [`crate::laplacian_dense`] shims over [`crate::laplacian_csr`].

use mtrl_linalg::LinalgError;
use mtrl_sparse::Csr;

/// Linear combination `Σ βᵢ L̂ᵢ` of candidate Laplacians (Eq. 2), with
/// merged sparsity patterns (entries combining to exact zero are
/// dropped).
///
/// # Errors
/// * [`LinalgError::InvalidArgument`] if inputs are empty, lengths differ,
///   or any weight is negative;
/// * [`LinalgError::ShapeMismatch`] if candidate shapes differ.
pub fn linear_combination(laps: &[Csr], weights: &[f64]) -> Result<Csr, LinalgError> {
    if laps.is_empty() || laps.len() != weights.len() {
        return Err(LinalgError::InvalidArgument(format!(
            "linear_combination: {} candidates vs {} weights",
            laps.len(),
            weights.len()
        )));
    }
    if weights.iter().any(|&b| b < 0.0) {
        return Err(LinalgError::InvalidArgument(
            "linear_combination: negative ensemble weight".into(),
        ));
    }
    let shape = laps[0].shape();
    for l in &laps[1..] {
        if l.shape() != shape {
            return Err(LinalgError::ShapeMismatch {
                op: "linear_combination",
                lhs: shape,
                rhs: l.shape(),
            });
        }
    }
    let mut out = laps[0].scaled(weights[0]);
    for (l, &b) in laps.iter().zip(weights).skip(1) {
        out = out.lin_comb(1.0, l, b);
    }
    Ok(out)
}

/// The heterogeneous manifold ensemble of Eq. (12): `L = α·L_S + L_E`,
/// sparse with merged patterns.
///
/// `α → ∞` trusts only the subspace member, `α → 0` only the pNN member
/// (Sec. III-B).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] when the two members disagree in
/// shape, and [`LinalgError::InvalidArgument`] for negative `α`.
pub fn hetero_ensemble(l_s: &Csr, l_e: &Csr, alpha: f64) -> Result<Csr, LinalgError> {
    if alpha < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "hetero_ensemble: alpha must be nonnegative".into(),
        ));
    }
    if l_s.shape() != l_e.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "hetero_ensemble",
            lhs: l_e.shape(),
            rhs: l_s.shape(),
        });
    }
    Ok(l_e.lin_comb(1.0, l_s, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;
    use mtrl_linalg::Mat;

    fn sparse_of(m: &Mat) -> Csr {
        Csr::from_dense(m, 0.0)
    }

    #[test]
    fn single_member_identity_weighting() {
        let l = rand_uniform(4, 4, -1.0, 1.0, 70);
        let out = linear_combination(std::slice::from_ref(&sparse_of(&l)), &[1.0]).unwrap();
        assert!(out.to_dense().approx_eq(&l, 1e-15));
    }

    #[test]
    fn convex_combination() {
        let a = sparse_of(&Mat::filled(2, 2, 1.0));
        let b = sparse_of(&Mat::filled(2, 2, 3.0));
        let out = linear_combination(&[a, b], &[0.25, 0.75]).unwrap();
        assert!((out.get(0, 0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn patterns_merge_and_zeros_drop() {
        // Disjoint patterns merge; exact cancellation drops the entry.
        let mut a = mtrl_sparse::Coo::new(3, 3);
        a.push(0, 1, 2.0);
        a.push(2, 2, 1.0);
        let a = a.to_csr();
        let mut b = mtrl_sparse::Coo::new(3, 3);
        b.push(1, 0, 4.0);
        b.push(2, 2, 1.0);
        let b = b.to_csr();
        let out = linear_combination(&[a.clone(), b.clone()], &[1.0, 1.0]).unwrap();
        assert_eq!(out.nnz(), 3);
        assert_eq!(out.get(2, 2), 2.0);
        let cancelled = a.lin_comb(1.0, &a, -1.0);
        assert_eq!(cancelled.nnz(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Csr::zeros(2, 2);
        assert!(linear_combination(&[], &[]).is_err());
        assert!(linear_combination(std::slice::from_ref(&a), &[1.0, 2.0]).is_err());
        assert!(linear_combination(std::slice::from_ref(&a), &[-0.1]).is_err());
        let b = Csr::zeros(3, 3);
        assert!(linear_combination(&[a, b], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn hetero_matches_formula() {
        let ls = rand_uniform(3, 3, -1.0, 1.0, 71);
        let le = rand_uniform(3, 3, -1.0, 1.0, 72);
        let alpha = 0.7;
        let out = hetero_ensemble(&sparse_of(&ls), &sparse_of(&le), alpha).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((out.get(i, j) - (alpha * ls[(i, j)] + le[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hetero_alpha_zero_is_pnn_only() {
        let ls = sparse_of(&rand_uniform(3, 3, -1.0, 1.0, 73));
        let le = sparse_of(&rand_uniform(3, 3, -1.0, 1.0, 74));
        let out = hetero_ensemble(&ls, &le, 0.0).unwrap();
        assert!(out.to_dense().approx_eq(&le.to_dense(), 1e-15));
    }

    #[test]
    fn hetero_rejects_negative_alpha_and_shape_mismatch() {
        let ls = Csr::zeros(2, 2);
        let le = Csr::zeros(2, 2);
        assert!(hetero_ensemble(&ls, &le, -1.0).is_err());
        assert!(hetero_ensemble(&ls, &Csr::zeros(3, 3), 1.0).is_err());
    }
}
