//! Laplacian ensembles.
//!
//! * [`linear_combination`] — the RMC-style pre-given candidate ensemble
//!   `L = Σ βᵢ L̂ᵢ` with `Σβᵢ = 1, βᵢ > 0` (paper Eq. 2);
//! * [`hetero_ensemble`] — the paper's heterogeneous manifold ensemble
//!   `L = α·L_S + L_E` (Eq. 12) combining a subspace-learned member with a
//!   pNN member.

use mtrl_linalg::{LinalgError, Mat};

/// Linear combination `Σ βᵢ L̂ᵢ` of candidate Laplacians (Eq. 2).
///
/// # Errors
/// * [`LinalgError::InvalidArgument`] if inputs are empty, lengths differ,
///   or any weight is negative;
/// * [`LinalgError::ShapeMismatch`] if candidate shapes differ.
pub fn linear_combination(laps: &[Mat], weights: &[f64]) -> Result<Mat, LinalgError> {
    if laps.is_empty() || laps.len() != weights.len() {
        return Err(LinalgError::InvalidArgument(format!(
            "linear_combination: {} candidates vs {} weights",
            laps.len(),
            weights.len()
        )));
    }
    if weights.iter().any(|&b| b < 0.0) {
        return Err(LinalgError::InvalidArgument(
            "linear_combination: negative ensemble weight".into(),
        ));
    }
    let shape = laps[0].shape();
    let mut out = Mat::zeros(shape.0, shape.1);
    for (l, &b) in laps.iter().zip(weights) {
        if l.shape() != shape {
            return Err(LinalgError::ShapeMismatch {
                op: "linear_combination",
                lhs: shape,
                rhs: l.shape(),
            });
        }
        out.axpy_inplace(b, l)?;
    }
    Ok(out)
}

/// The heterogeneous manifold ensemble of Eq. (12): `L = α·L_S + L_E`.
///
/// `α → ∞` trusts only the subspace member, `α → 0` only the pNN member
/// (Sec. III-B).
///
/// # Errors
/// Returns [`LinalgError::ShapeMismatch`] when the two members disagree in
/// shape, and [`LinalgError::InvalidArgument`] for negative `α`.
pub fn hetero_ensemble(l_s: &Mat, l_e: &Mat, alpha: f64) -> Result<Mat, LinalgError> {
    if alpha < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "hetero_ensemble: alpha must be nonnegative".into(),
        ));
    }
    let mut out = l_e.clone();
    out.axpy_inplace(alpha, l_s)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    #[test]
    fn single_member_identity_weighting() {
        let l = rand_uniform(4, 4, -1.0, 1.0, 70);
        let out = linear_combination(std::slice::from_ref(&l), &[1.0]).unwrap();
        assert!(out.approx_eq(&l, 1e-15));
    }

    #[test]
    fn convex_combination() {
        let a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 3.0);
        let out = linear_combination(&[a, b], &[0.25, 0.75]).unwrap();
        assert!((out[(0, 0)] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = Mat::zeros(2, 2);
        assert!(linear_combination(&[], &[]).is_err());
        assert!(linear_combination(std::slice::from_ref(&a), &[1.0, 2.0]).is_err());
        assert!(linear_combination(std::slice::from_ref(&a), &[-0.1]).is_err());
        let b = Mat::zeros(3, 3);
        assert!(linear_combination(&[a, b], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn hetero_matches_formula() {
        let ls = rand_uniform(3, 3, -1.0, 1.0, 71);
        let le = rand_uniform(3, 3, -1.0, 1.0, 72);
        let alpha = 0.7;
        let out = hetero_ensemble(&ls, &le, alpha).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((out[(i, j)] - (alpha * ls[(i, j)] + le[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hetero_alpha_zero_is_pnn_only() {
        let ls = rand_uniform(3, 3, -1.0, 1.0, 73);
        let le = rand_uniform(3, 3, -1.0, 1.0, 74);
        let out = hetero_ensemble(&ls, &le, 0.0).unwrap();
        assert!(out.approx_eq(&le, 1e-15));
    }

    #[test]
    fn hetero_rejects_negative_alpha_and_shape_mismatch() {
        let ls = Mat::zeros(2, 2);
        let le = Mat::zeros(2, 2);
        assert!(hetero_ensemble(&ls, &le, -1.0).is_err());
        assert!(hetero_ensemble(&ls, &Mat::zeros(3, 3), 1.0).is_err());
    }
}
