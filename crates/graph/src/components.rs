//! Connected components of an undirected sparse graph.
//!
//! Used by the Fig. 1 reproduction (counting whether subspace-learned
//! affinity separates the two circles) and by dataset sanity checks.

use mtrl_sparse::Csr;

/// Label connected components of a symmetric adjacency matrix.
///
/// Returns `(labels, num_components)`; labels are `0..num_components` in
/// order of first appearance (BFS from vertex 0 upward). Edges with weight
/// `<= tol` are ignored.
///
/// # Panics
/// Panics if `w` is not square.
pub fn connected_components(w: &Csr, tol: f64) -> (Vec<usize>, usize) {
    assert_eq!(w.rows(), w.cols(), "components of a non-square matrix");
    let n = w.rows();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let (cols, vals) = w.row(u);
            for (&v, &wt) in cols.iter().zip(vals) {
                if wt.abs() > tol && label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_sparse::Coo;

    fn graph(edges: &[(usize, usize)], n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for &(i, j) in edges {
            c.push(i, j, 1.0);
            c.push(j, i, 1.0);
        }
        c.to_csr()
    }

    #[test]
    fn single_component() {
        let g = graph(&[(0, 1), (1, 2), (2, 3)], 4);
        let (labels, k) = connected_components(&g, 0.0);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_and_isolated() {
        let g = graph(&[(0, 1), (2, 3)], 5);
        let (labels, k) = connected_components(&g, 0.0);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(labels[4], 2);
    }

    #[test]
    fn empty_graph_all_isolated() {
        let g = Csr::zeros(3, 3);
        let (labels, k) = connected_components(&g, 0.0);
        assert_eq!(k, 3);
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn tolerance_ignores_weak_edges() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1e-12);
        c.push(1, 0, 1e-12);
        let g = c.to_csr();
        let (_, k_strict) = connected_components(&g, 1e-9);
        assert_eq!(k_strict, 2);
        let (_, k_loose) = connected_components(&g, 0.0);
        assert_eq!(k_loose, 1);
    }
}
