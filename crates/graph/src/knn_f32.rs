//! f32-storage twins of the Gram distance chain (mixed-precision mode).
//!
//! [`mtrl_linalg::Precision::F32`] halves the memory traffic of the pNN
//! construction: the centred data and its transpose are stored as
//! [`MatF32`], while every arithmetic step widens each element to `f64`
//! and performs **the identical operation sequence** as the `f64` kernels
//! in [`crate::knn`]. Widening `f32 → f64` is exact and `-2.0 * x` is
//! exact in `f64`, so each kernel here is bit-equal to its `f64` twin
//! applied to the widened (f32-quantised) operands — the tests pin this
//! with `assert_eq!` on the raw values. Consequences:
//!
//! * per-thread-count byte-determinism holds in f32 mode for exactly the
//!   same reason it holds in f64 mode (same ascending-`k` accumulation,
//!   same tie-breaking) — the CI determinism job runs both modes;
//! * quality stays pinned: the only perturbation relative to f64 mode is
//!   the initial quantisation of the centred features through `f32`,
//!   after which all accumulation is `f64`.
//!
//! Centring stays in `f64` (means of the raw data, exactly
//! [`center_columns`]) and quantisation happens *after* centring; edge
//! weighting ([`graph_from_neighbours`]) runs on the raw `f64` rows in
//! both modes, so an f32 graph differs from its f64 sibling only where
//! quantisation reorders a near-tied neighbour pair.

use mtrl_linalg::par::par_chunks_map;
use mtrl_linalg::{Mat, MatF32};
use mtrl_sparse::Csr;

use crate::knn::{
    auto_threads, center_columns, graph_from_neighbours, top_p_scan, WeightScheme, TILE,
};

/// Strip width of the f32 tile kernel. Narrower than the f64 kernel's
/// `JT` because the f32 kernel register-blocks **eight** query rows per
/// `Xᵀ` pass (vs four): 8 strip accumulators × 256 × 8 B = 16 KiB of
/// `f64` tile plus 4 KiB of `f32` strips sit comfortably in L1d.
const JT32: usize = 256;

/// f32-storage twin of [`crate::knn::knn_indices`]: `p` nearest
/// neighbours of every row with the centred features quantised through
/// `f32` and all accumulation in `f64`.
pub fn knn_indices_f32(data: &Mat, p: usize) -> Vec<Vec<usize>> {
    knn_indices_f32_with_threads(data, p, auto_threads(data))
}

/// [`knn_indices_f32`] with an explicit worker-thread count.
///
/// The output is bit-identical for every `threads` value.
pub fn knn_indices_f32_with_threads(data: &Mat, p: usize, threads: usize) -> Vec<Vec<usize>> {
    let n = data.rows();
    // Centre in f64 (the exact `center_columns` transformation), then
    // quantise. Quantise-after-centre keeps the origin inside the cloud
    // regardless of where the raw data sits, so the f32 mantissa is
    // spent on the pairwise separations, not on a common offset.
    let centered = MatF32::from_mat(&center_columns(data));
    // Squared norms of the rows *as stored* (widened f32 values), summed
    // in the same ascending order as `vecops::dot` — bit-equal to
    // `dot(row, row)` of the widened row.
    let sq_norms: Vec<f64> = (0..n)
        .map(|i| {
            centered
                .row(i)
                .iter()
                .map(|&v| {
                    let w = v as f64;
                    w * w
                })
                .sum()
        })
        .collect();
    let xt = centered.transpose();
    par_chunks_map(n, threads, |range| {
        knn_rows_f32(&centered, &xt, &sq_norms, p, range.start, range.end)
    })
}

/// Neighbour lists for rows `[r0, r1)` — the f32-storage mirror of
/// `knn_rows`, sharing `top_p_scan` so selection and tie-breaking are
/// identical by construction.
fn knn_rows_f32(
    data: &MatF32,
    xt: &MatF32,
    sq_norms: &[f64],
    p: usize,
    r0: usize,
    r1: usize,
) -> Vec<Vec<usize>> {
    let n = data.rows();
    let mut out = Vec::with_capacity(r1 - r0);
    let mut tile_buf = vec![0.0; TILE.min(r1 - r0).max(1) * n];
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(p + 1);
    let mut t0 = r0;
    while t0 < r1 {
        let t1 = (t0 + TILE).min(r1);
        let rows = t1 - t0;
        gram_tile_neg2_f32(data, xt, t0, t1, &mut tile_buf);
        for local in 0..rows {
            let i = t0 + local;
            let brow = &tile_buf[local * n..(local + 1) * n];
            out.push(top_p_scan(brow, sq_norms, i, p, &mut scratch));
        }
        t0 = t1;
    }
    out
}

/// f32-storage mirror of `gram_tile_neg2`: accumulate
/// `tile_buf[local][j] = −2 · src[t0 + local] · Xᵀ[.., j]` with `src` and
/// `xt` stored as `f32` and the tile accumulated in `f64`. Each element
/// is widened exactly once and every output `(i, j)` accumulates its
/// `k` terms in the same ascending order through the same FMA chain as
/// the `f64` kernel, so each value is bit-equal to `gram_tile_neg2` on
/// the widened matrices.
///
/// The blocking differs from the `f64` kernel where it pays: **eight**
/// query rows share each pass over the `f32` strips of `Xᵀ` (the `f64`
/// kernel uses four). Row-grouping only changes how often `Xᵀ` is
/// re-streamed, never the per-output rounding sequence, so the wider
/// group is bitwise free — and it halves the `Xᵀ` traffic on top of the
/// halved element width. Each element is widened at its point of use
/// (`vcvtps2pd` fuses with the load); widening into an `f64` scratch
/// first was measured slower — the extra L1 store/reload costs more
/// than the fused converts it saves. The entire bandwidth win of
/// mixed-precision mode lives here: at shapes where `Xᵀ` spills L2 in
/// `f64` but not in `f32` (e.g. `n = 2000, d = 256` against a 2 MiB
/// L2), the two effects compound.
fn gram_tile_neg2_f32(src: &MatF32, xt: &MatF32, t0: usize, t1: usize, tile_buf: &mut [f64]) {
    let n = xt.cols();
    let d = src.cols();
    let rows = t1 - t0;
    tile_buf[..rows * n].fill(0.0);
    let mut brows: Vec<&mut [f64]> = tile_buf[..rows * n].chunks_mut(n.max(1)).collect();
    for (g, group) in brows.chunks_mut(8).enumerate() {
        let i0 = t0 + g * 8;
        if let [b0, b1, b2, b3, b4, b5, b6, b7] = group {
            let xr = [
                src.row(i0),
                src.row(i0 + 1),
                src.row(i0 + 2),
                src.row(i0 + 3),
                src.row(i0 + 4),
                src.row(i0 + 5),
                src.row(i0 + 6),
                src.row(i0 + 7),
            ];
            let mut jt = 0;
            while jt < n {
                let je = (jt + JT32).min(n);
                let mut k = 0;
                while k + 4 <= d {
                    let xk = [
                        &xt.row(k)[jt..je],
                        &xt.row(k + 1)[jt..je],
                        &xt.row(k + 2)[jt..je],
                        &xt.row(k + 3)[jt..je],
                    ];
                    for (b, x) in [&mut **b0, b1, b2, b3, b4, b5, b6, b7].into_iter().zip(xr) {
                        let a = [
                            -2.0 * x[k] as f64,
                            -2.0 * x[k + 1] as f64,
                            -2.0 * x[k + 2] as f64,
                            -2.0 * x[k + 3] as f64,
                        ];
                        axpy4_fma_f32(&mut b[jt..je], a, xk);
                    }
                    k += 4;
                }
                while k < d {
                    let xk = &xt.row(k)[jt..je];
                    for (b, x) in [&mut **b0, b1, b2, b3, b4, b5, b6, b7].into_iter().zip(xr) {
                        axpy1_fma_f32(&mut b[jt..je], -2.0 * x[k] as f64, xk);
                    }
                    k += 1;
                }
                jt = je;
            }
        } else {
            for (local, brow) in group.iter_mut().enumerate() {
                let xrow = src.row(i0 + local);
                for (k, &xv) in xrow.iter().enumerate() {
                    axpy1_fma_f32(brow, -2.0 * xv as f64, xt.row(k));
                }
            }
        }
    }
}

/// f32-storage twin of [`crate::knn::gram_sq_dist`]: the cross term
/// widens each element and performs the same ascending-`k` FMA chain, so
/// the value is bit-equal to `gram_sq_dist` on the widened rows.
#[inline]
pub fn gram_sq_dist_f32(a: &[f32], b: &[f32], g_a: f64, g_b: f64) -> f64 {
    let mut acc = 0.0;
    for (&av, &bv) in a.iter().zip(b) {
        acc = (-2.0 * av as f64).mul_add(bv as f64, acc);
    }
    g_a + g_b + acc
}

/// f32-storage twin of [`crate::knn::gram_sq_dist_x4`]: four interleaved
/// [`gram_sq_dist_f32`] lanes, each bit-equal to its scalar call.
///
/// # Panics
/// Panics if any `b` row length differs from `a`'s.
#[inline]
pub fn gram_sq_dist_x4_f32(a: &[f32], b: [&[f32]; 4], g_a: f64, g_b: [f64; 4]) -> [f64; 4] {
    let d = a.len();
    let [b0, b1, b2, b3] = b;
    assert_eq!(b0.len(), d, "row length mismatch");
    assert_eq!(b1.len(), d, "row length mismatch");
    assert_eq!(b2.len(), d, "row length mismatch");
    assert_eq!(b3.len(), d, "row length mismatch");
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for k in 0..d {
        let m = -2.0 * a[k] as f64;
        a0 = m.mul_add(b0[k] as f64, a0);
        a1 = m.mul_add(b1[k] as f64, a1);
        a2 = m.mul_add(b2[k] as f64, a2);
        a3 = m.mul_add(b3[k] as f64, a3);
    }
    [
        g_a + g_b[0] + a0,
        g_a + g_b[1] + a1,
        g_a + g_b[2] + a2,
        g_a + g_b[3] + a3,
    ]
}

/// f32-storage twin of [`crate::knn::cross_sq_dist_map`]: blocked
/// distances of `queries` rows against all `corpus` rows with both
/// operands stored as `f32`. Strip values are bit-equal to the `f64`
/// kernel on the widened matrices (given matching widened norms).
///
/// # Panics
/// Panics if the column counts differ or a norm slice has the wrong
/// length.
pub fn cross_sq_dist_map_f32<T, F>(
    queries: &MatF32,
    q_norms: &[f64],
    corpus: &MatF32,
    c_norms: &[f64],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[f64]) -> T + Sync,
{
    assert_eq!(
        queries.cols(),
        corpus.cols(),
        "cross_sq_dist_map_f32: dimension mismatch"
    );
    assert_eq!(q_norms.len(), queries.rows(), "q_norms length");
    assert_eq!(c_norms.len(), corpus.rows(), "c_norms length");
    let n = corpus.rows();
    if n == 0 {
        return (0..queries.rows()).map(|q| f(q, &[])).collect();
    }
    let ct = corpus.transpose();
    par_chunks_map(queries.rows(), threads, |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut tile_buf = vec![0.0; TILE.min(range.len().max(1)) * n];
        let mut t0 = range.start;
        while t0 < range.end {
            let t1 = (t0 + TILE).min(range.end);
            gram_tile_neg2_f32(queries, &ct, t0, t1, &mut tile_buf);
            for local in 0..(t1 - t0) {
                let q = t0 + local;
                let gq = q_norms[q];
                let strip = &mut tile_buf[local * n..(local + 1) * n];
                for (s, &gj) in strip.iter_mut().zip(c_norms) {
                    *s += gq + gj;
                }
                out.push(f(q, strip));
            }
            t0 = t1;
        }
        out
    })
}

/// `o[j] += a · x[j]` with `x` stored as `f32`, one widening + one FMA
/// per element — the same rounding sequence as `axpy1_fma` on the
/// widened strip.
#[inline]
fn axpy1_fma_f32(o: &mut [f64], a: f64, x: &[f32]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov = a.mul_add(xv as f64, *ov);
    }
}

/// Four accumulation steps per element in ascending-`k` order over `f32`
/// strips — the widened mirror of `axpy4_fma`.
#[inline]
fn axpy4_fma_f32(o: &mut [f64], a: [f64; 4], x: [&[f32]; 4]) {
    let [x0, x1, x2, x3] = x;
    for ((((ov, &v0), &v1), &v2), &v3) in o.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        *ov = a[3].mul_add(
            v3 as f64,
            a[2].mul_add(
                v2 as f64,
                a[1].mul_add(v1 as f64, a[0].mul_add(v0 as f64, *ov)),
            ),
        );
    }
}

/// f32-storage twin of [`crate::knn::pnn_graph`]: the kNN search runs on
/// quantised centred features, then the weighting + symmetrisation half
/// ([`graph_from_neighbours`]) runs on the **raw `f64` rows**, exactly
/// as in f64 mode — weights are pairwise functions of the data, so only
/// the neighbour *sets* feel the quantisation.
pub fn pnn_graph_f32(data: &Mat, p: usize, scheme: WeightScheme) -> Csr {
    pnn_graph_f32_with_threads(data, p, scheme, auto_threads(data))
}

/// [`pnn_graph_f32`] with an explicit worker-thread count; bit-identical
/// output for every `threads` value.
pub fn pnn_graph_f32_with_threads(
    data: &Mat,
    p: usize,
    scheme: WeightScheme,
    threads: usize,
) -> Csr {
    let _span = mtrl_obs::span!("graph.pnn_build");
    let neighbours = {
        let _search_span = mtrl_obs::span!("graph.knn_search");
        knn_indices_f32_with_threads(data, p, threads)
    };
    let _weights_span = mtrl_obs::span!("graph.weights");
    graph_from_neighbours(data, &neighbours, scheme, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{cross_sq_dist_map, gram_sq_dist, knn_indices_with_threads, select_p_nearest};
    use mtrl_linalg::random::rand_uniform;
    use mtrl_linalg::vecops::dot;

    fn widen_slice(a: &[f32]) -> Vec<f64> {
        a.iter().map(|&v| v as f64).collect()
    }

    #[test]
    fn gram_sq_dist_f32_bit_equal_reference_on_widened_rows() {
        let m = MatF32::from_mat(&rand_uniform(6, 33, -2.0, 2.0, 7));
        let w = m.widen();
        for i in 0..m.rows() {
            for j in 0..m.rows() {
                let (ai, aj) = (m.row(i), m.row(j));
                let (wi, wj) = (w.row(i), w.row(j));
                let (gi, gj) = (dot(wi, wi), dot(wj, wj));
                let d32 = gram_sq_dist_f32(ai, aj, gi, gj);
                let d64 = gram_sq_dist(wi, wj, gi, gj);
                assert_eq!(d32.to_bits(), d64.to_bits(), "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn gram_sq_dist_x4_f32_matches_scalar_bitwise() {
        let m = MatF32::from_mat(&rand_uniform(5, 19, -1.0, 1.0, 11));
        let w = m.widen();
        let q = m.row(0);
        let b = [m.row(1), m.row(2), m.row(3), m.row(4)];
        let g: Vec<f64> = (0..5).map(|i| dot(w.row(i), w.row(i))).collect();
        let quad = gram_sq_dist_x4_f32(q, b, g[0], [g[1], g[2], g[3], g[4]]);
        for lane in 0..4 {
            let scalar = gram_sq_dist_f32(q, b[lane], g[0], g[lane + 1]);
            assert_eq!(quad[lane].to_bits(), scalar.to_bits(), "lane {lane}");
        }
    }

    #[test]
    fn blocked_f32_kernel_bit_equal_pair_function() {
        // The knn path must produce exactly the neighbour lists of the
        // pair-function reference on the same quantised operands: the
        // blocked f32 tile kernel, the x4 kernel and `gram_sq_dist_f32`
        // all share one rounding sequence.
        let data = rand_uniform(83, 13, -3.0, 3.0, 23);
        let p = 6;
        let centered = MatF32::from_mat(&center_columns(&data));
        let w = centered.widen();
        let n = data.rows();
        let g: Vec<f64> = (0..n).map(|i| dot(w.row(i), w.row(i))).collect();
        let mut expected = Vec::with_capacity(n);
        for i in 0..n {
            let mut scratch: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    (
                        gram_sq_dist_f32(centered.row(i), centered.row(j), g[i], g[j]),
                        j,
                    )
                })
                .collect();
            expected.push(select_p_nearest(&mut scratch, p));
        }
        assert_eq!(knn_indices_f32_with_threads(&data, p, 1), expected);
    }

    #[test]
    fn f32_knn_parallel_bit_identical_to_serial() {
        let data = rand_uniform(301, 17, -1.0, 4.0, 31);
        let serial = knn_indices_f32_with_threads(&data, 5, 1);
        for threads in [2, 3, 8] {
            assert_eq!(
                knn_indices_f32_with_threads(&data, 5, threads),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn f32_lists_match_f64_on_well_separated_data() {
        // Quantisation can only flip near-ties; on clustered data with
        // clear margins the f32 neighbour lists equal the f64 ones.
        let mut data = rand_uniform(120, 8, 0.0, 1.0, 43);
        for i in 0..data.rows() {
            let shift = (i % 3) as f64 * 50.0;
            for v in data.row_mut(i) {
                *v += shift;
            }
        }
        assert_eq!(
            knn_indices_f32_with_threads(&data, 7, 2),
            knn_indices_with_threads(&data, 7, 2),
        );
    }

    #[test]
    fn cross_f32_bit_equal_reference_on_widened_operands() {
        let queries = MatF32::from_mat(&rand_uniform(37, 9, -2.0, 2.0, 3));
        let corpus = MatF32::from_mat(&rand_uniform(111, 9, -2.0, 2.0, 5));
        let (qw, cw) = (queries.widen(), corpus.widen());
        let q_norms: Vec<f64> = (0..qw.rows()).map(|i| dot(qw.row(i), qw.row(i))).collect();
        let c_norms: Vec<f64> = (0..cw.rows()).map(|i| dot(cw.row(i), cw.row(i))).collect();
        for threads in [1, 4] {
            let got =
                cross_sq_dist_map_f32(&queries, &q_norms, &corpus, &c_norms, threads, |q, s| {
                    (q, s.to_vec())
                });
            let want = cross_sq_dist_map(&qw, &q_norms, &cw, &c_norms, 1, |q, s| (q, s.to_vec()));
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn cross_f32_strip_matches_pair_function_bitwise() {
        let queries = MatF32::from_mat(&rand_uniform(9, 21, -1.0, 1.0, 13));
        let corpus = MatF32::from_mat(&rand_uniform(64, 21, -1.0, 1.0, 17));
        let q_norms: Vec<f64> = (0..queries.rows())
            .map(|i| dot(&widen_slice(queries.row(i)), &widen_slice(queries.row(i))))
            .collect();
        let c_norms: Vec<f64> = (0..corpus.rows())
            .map(|j| dot(&widen_slice(corpus.row(j)), &widen_slice(corpus.row(j))))
            .collect();
        cross_sq_dist_map_f32(&queries, &q_norms, &corpus, &c_norms, 1, |q, strip| {
            for (j, &s) in strip.iter().enumerate() {
                let pair = gram_sq_dist_f32(queries.row(q), corpus.row(j), q_norms[q], c_norms[j]);
                assert_eq!(s.to_bits(), pair.to_bits(), "pair ({q}, {j})");
            }
        });
    }

    #[test]
    fn cross_f32_empty_corpus_yields_empty_strips() {
        let queries = MatF32::from_mat(&rand_uniform(4, 6, -1.0, 1.0, 29));
        let q_norms = vec![0.0; 4];
        let corpus = MatF32::zeros(0, 6);
        let lens = cross_sq_dist_map_f32(&queries, &q_norms, &corpus, &[], 1, |_, s| s.len());
        assert_eq!(lens, vec![0; 4]);
    }

    #[test]
    fn pnn_graph_f32_symmetric_nonneg_zero_diag_and_threads_agree() {
        let data = rand_uniform(90, 6, -1.0, 1.0, 37);
        let g1 = pnn_graph_f32_with_threads(&data, 4, WeightScheme::HeatKernel { sigma: 0.0 }, 1);
        assert!(g1.is_symmetric(1e-12));
        for (i, j, v) in g1.iter() {
            assert!(v >= 0.0);
            assert_ne!(i, j, "zero diagonal");
        }
        for threads in [2, 4] {
            let gt = pnn_graph_f32_with_threads(
                &data,
                4,
                WeightScheme::HeatKernel { sigma: 0.0 },
                threads,
            );
            assert_eq!(gt.to_dense().as_slice(), g1.to_dense().as_slice());
        }
    }

    #[test]
    fn pnn_graph_f32_weights_come_from_raw_rows() {
        // Same neighbour lists on well-separated data ⇒ the f32 graph is
        // byte-identical to the f64 one, because weighting runs on raw
        // f64 rows in both modes.
        let mut data = rand_uniform(60, 5, 0.0, 1.0, 41);
        for i in 0..data.rows() {
            let shift = (i % 2) as f64 * 40.0;
            for v in data.row_mut(i) {
                *v += shift;
            }
        }
        let f32_graph = pnn_graph_f32_with_threads(&data, 3, WeightScheme::Cosine, 2);
        let f64_graph = crate::knn::pnn_graph_with_threads(&data, 3, WeightScheme::Cosine, 2);
        assert_eq!(
            f32_graph.to_dense().as_slice(),
            f64_graph.to_dense().as_slice()
        );
    }
}
