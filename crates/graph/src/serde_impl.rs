//! Serde support for the graph configuration enums.
//!
//! Hand-written because [`WeightScheme::HeatKernel`] carries data, which
//! the vendored derive does not cover. Fieldless variants serialize as
//! their name string; `HeatKernel` as `{"kind": "HeatKernel", "sigma": σ}`.

use crate::knn::WeightScheme;
use crate::laplacian::LaplacianKind;
use serde::{Deserialize, Error, Serialize, Value};

impl Serialize for WeightScheme {
    fn to_value(&self) -> Value {
        match self {
            WeightScheme::Binary => Value::String("Binary".into()),
            WeightScheme::Cosine => Value::String("Cosine".into()),
            WeightScheme::HeatKernel { sigma } => Value::Object(vec![
                ("kind".to_string(), Value::String("HeatKernel".into())),
                ("sigma".to_string(), sigma.to_value()),
            ]),
        }
    }
}

impl Deserialize for WeightScheme {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => match s.as_str() {
                "Binary" => Ok(WeightScheme::Binary),
                "Cosine" => Ok(WeightScheme::Cosine),
                other => Err(Error(format!("unknown WeightScheme `{other}`"))),
            },
            Value::Object(_) => {
                let kind = v
                    .get_field("kind")?
                    .as_str()
                    .unwrap_or_default()
                    .to_string();
                if kind != "HeatKernel" {
                    return Err(Error(format!("unknown WeightScheme kind `{kind}`")));
                }
                Ok(WeightScheme::HeatKernel {
                    sigma: f64::from_value(v.get_field("sigma")?)?,
                })
            }
            other => Err(Error(format!(
                "expected a WeightScheme string or object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for LaplacianKind {
    fn to_value(&self) -> Value {
        Value::String(
            match self {
                LaplacianKind::Unnormalized => "Unnormalized",
                LaplacianKind::SymNormalized => "SymNormalized",
            }
            .to_string(),
        )
    }
}

impl Deserialize for LaplacianKind {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some("Unnormalized") => Ok(LaplacianKind::Unnormalized),
            Some("SymNormalized") => Ok(LaplacianKind::SymNormalized),
            Some(other) => Err(Error(format!("unknown LaplacianKind `{other}`"))),
            None => Err(Error(format!(
                "expected a LaplacianKind string, found {}",
                v.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_round_trip() {
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::Cosine,
            WeightScheme::HeatKernel { sigma: 2.5 },
        ] {
            let back = WeightScheme::from_value(&scheme.to_value()).unwrap();
            assert_eq!(back, scheme);
        }
    }

    #[test]
    fn kinds_round_trip() {
        for kind in [LaplacianKind::Unnormalized, LaplacianKind::SymNormalized] {
            assert_eq!(LaplacianKind::from_value(&kind.to_value()).unwrap(), kind);
        }
    }

    #[test]
    fn unknown_rejected() {
        assert!(WeightScheme::from_value(&Value::String("Nope".into())).is_err());
        assert!(LaplacianKind::from_value(&Value::Number(1.0)).is_err());
    }
}
