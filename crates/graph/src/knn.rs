//! pNN graph construction (paper Eq. 3).
//!
//! For each object `x_i` (a row of the feature matrix) the `p` nearest
//! neighbours in Euclidean distance are found; edge weights follow the
//! chosen [`WeightScheme`]. The graph is symmetrised with the "or" rule of
//! Eq. (3): `(W)_ij = w_ij` if `x_j ∈ N(x_i)` **or** `x_i ∈ N(x_j)`.

use mtrl_linalg::vecops::{cosine, sq_dist};
use mtrl_linalg::Mat;
use mtrl_sparse::{Coo, Csr};

/// Edge weighting schemes of Eq. (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightScheme {
    /// `w_ij = 1` whenever an edge exists.
    Binary,
    /// Heat kernel `w_ij = exp(-‖x_i − x_j‖² / σ)`. A non-positive σ
    /// activates the self-tuning heuristic (mean squared neighbour
    /// distance over the whole graph).
    HeatKernel {
        /// Local bandwidth σ (paper's user-defined parameter).
        sigma: f64,
    },
    /// Cosine similarity `w_ij = xᵢᵀxⱼ / (‖xᵢ‖‖xⱼ‖)`, clamped at zero so
    /// weights stay nonnegative (tf-idf features are nonnegative anyway).
    Cosine,
}

/// Indices of the `p` nearest neighbours (Euclidean) of every row of
/// `data`, excluding the object itself. Rows with fewer than `p` other
/// objects return everything available.
///
/// Brute force `O(n² D)` — the paper's complexity analysis (Sec. III-F)
/// assumes exactly this `O(n_k² p K)` construction.
pub fn knn_indices(data: &Mat, p: usize) -> Vec<Vec<usize>> {
    let n = data.rows();
    let mut out = Vec::with_capacity(n);
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        scratch.clear();
        let xi = data.row(i);
        for j in 0..n {
            if j == i {
                continue;
            }
            scratch.push((sq_dist(xi, data.row(j)), j));
        }
        let k = p.min(scratch.len());
        if k > 0 {
            scratch.select_nth_unstable_by(k - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("NaN distance in knn")
            });
        }
        let mut neigh: Vec<usize> = scratch[..k].iter().map(|&(_, j)| j).collect();
        neigh.sort_unstable();
        out.push(neigh);
    }
    out
}

/// Build the symmetric pNN weight matrix `W_E` of Eq. (3).
///
/// `data` holds one object per row. The output is a symmetric nonnegative
/// sparse matrix with zero diagonal.
pub fn pnn_graph(data: &Mat, p: usize, scheme: WeightScheme) -> Csr {
    let n = data.rows();
    let neighbours = knn_indices(data, p);
    let sigma = match scheme {
        WeightScheme::HeatKernel { sigma } if sigma <= 0.0 => self_tuning_sigma(data, &neighbours),
        WeightScheme::HeatKernel { sigma } => sigma,
        _ => 1.0,
    };
    let mut coo = Coo::with_capacity(n, n, 2 * p * n);
    for (i, neigh) in neighbours.iter().enumerate() {
        let xi = data.row(i);
        for &j in neigh {
            let w = match scheme {
                WeightScheme::Binary => 1.0,
                WeightScheme::HeatKernel { .. } => (-sq_dist(xi, data.row(j)) / sigma).exp(),
                WeightScheme::Cosine => cosine(xi, data.row(j)).max(0.0),
            };
            if w > 0.0 {
                coo.push(i, j, w);
            }
        }
    }
    // "or" symmetrisation: keep an edge if either endpoint chose it. Using
    // max avoids double-counting mutual neighbours.
    coo.to_csr().max_symmetrize()
}

/// Self-tuning bandwidth: mean squared neighbour distance across the graph.
fn self_tuning_sigma(data: &Mat, neighbours: &[Vec<usize>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, neigh) in neighbours.iter().enumerate() {
        let xi = data.row(i);
        for &j in neigh {
            total += sq_dist(xi, data.row(j));
            count += 1;
        }
    }
    if count == 0 || total <= 0.0 {
        1.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    /// Three tight, well-separated clusters on a line.
    fn clustered_data() -> Mat {
        let mut rows = Vec::new();
        for c in 0..3 {
            for k in 0..4 {
                rows.push(vec![c as f64 * 100.0 + k as f64 * 0.1, 0.0]);
            }
        }
        Mat::from_rows(&rows).unwrap()
    }

    #[test]
    fn knn_finds_cluster_mates() {
        let data = clustered_data();
        let nn = knn_indices(&data, 3);
        for (i, neigh) in nn.iter().enumerate() {
            assert_eq!(neigh.len(), 3);
            let my_cluster = i / 4;
            for &j in neigh {
                assert_eq!(j / 4, my_cluster, "object {i} got neighbour {j}");
            }
            assert!(!neigh.contains(&i), "self-neighbour");
        }
    }

    #[test]
    fn knn_handles_small_n() {
        let data = Mat::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let nn = knn_indices(&data, 5);
        assert_eq!(nn[0], vec![1]);
        assert_eq!(nn[1], vec![0]);
    }

    #[test]
    fn pnn_graph_symmetric_nonneg_zero_diag() {
        let data = rand_uniform(30, 5, -1.0, 1.0, 60);
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: 0.5 },
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            let w = pnn_graph(&data, 4, scheme);
            assert!(w.is_symmetric(1e-12), "{scheme:?} not symmetric");
            for (i, j, v) in w.iter() {
                assert!(v >= 0.0, "{scheme:?} negative weight");
                assert_ne!(i, j, "{scheme:?} self loop");
            }
        }
    }

    #[test]
    fn binary_weights_are_one() {
        let data = clustered_data();
        let w = pnn_graph(&data, 2, WeightScheme::Binary);
        for (_, _, v) in w.iter() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn heat_kernel_decays_with_distance() {
        let data = Mat::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]).unwrap();
        let w = pnn_graph(&data, 2, WeightScheme::HeatKernel { sigma: 1.0 });
        // d(0,1)=1 < d(0,2)=9 => w(0,1) > w(0,2).
        assert!(w.get(0, 1) > w.get(0, 2));
        assert!((w.get(0, 1) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn cosine_weights_bounded() {
        let data = rand_uniform(20, 4, 0.0, 1.0, 61);
        let w = pnn_graph(&data, 3, WeightScheme::Cosine);
        for (_, _, v) in w.iter() {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn edge_count_bounded_by_2pn() {
        let data = rand_uniform(40, 3, -1.0, 1.0, 62);
        let p = 5;
        let w = pnn_graph(&data, p, WeightScheme::Binary);
        assert!(w.nnz() <= 2 * p * 40);
        // And at least p*n (each object contributes p out-edges).
        assert!(w.nnz() >= p * 40);
    }

    #[test]
    fn separated_clusters_have_no_cross_edges() {
        let data = clustered_data();
        let w = pnn_graph(&data, 3, WeightScheme::Binary);
        for (i, j, _) in w.iter() {
            assert_eq!(i / 4, j / 4, "cross-cluster edge {i}-{j}");
        }
    }

    #[test]
    fn self_tuning_sigma_positive() {
        let data = rand_uniform(10, 2, -1.0, 1.0, 63);
        let nn = knn_indices(&data, 3);
        let s = self_tuning_sigma(&data, &nn);
        assert!(s > 0.0);
        // Degenerate: all points identical -> fallback 1.0.
        let same = Mat::zeros(5, 2);
        let nn2 = knn_indices(&same, 2);
        assert_eq!(self_tuning_sigma(&same, &nn2), 1.0);
    }
}
