//! pNN graph construction (paper Eq. 3).
//!
//! For each object `x_i` (a row of the feature matrix) the `p` nearest
//! neighbours in Euclidean distance are found; edge weights follow the
//! chosen [`WeightScheme`]. The graph is symmetrised with the "or" rule of
//! Eq. (3): `(W)_ij = w_ij` if `x_j ∈ N(x_i)` **or** `x_i ∈ N(x_j)`.
//!
//! ## The hot path
//!
//! Every method in the reproduction funnels through this construction
//! (Sec. III-F bounds it at `O(n_k² p K)`), so it is both **blocked** and
//! **parallel**:
//!
//! * distances come from the Gram identity
//!   `‖x_i − x_j‖² = g_i + g_j − 2·x_iᵀx_j`, with the `−2 X_tile Xᵀ`
//!   term computed one row tile at a time through a vectorisable
//!   axpy kernel over the pre-transposed data — memory stays
//!   `O(tile · n)` per worker instead of `O(n²)`;
//! * row tiles are distributed over [`mtrl_linalg::par`] worker threads.
//!
//! Each row's distance vector is accumulated in the same `k` order no
//! matter which tile or thread computes it, and ties are broken by
//! neighbour index under `f64::total_cmp`, so neighbour sets are
//! **bit-identical** for every thread count (see the cross-thread
//! proptests in `tests/proptest_invariants.rs`).

use mtrl_linalg::par::{num_threads, par_chunks_map};
use mtrl_linalg::vecops::{cosine, dot, sq_dist};
use mtrl_linalg::Mat;
use mtrl_sparse::Csr;

/// Edge weighting schemes of Eq. (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightScheme {
    /// `w_ij = 1` whenever an edge exists.
    Binary,
    /// Heat kernel `w_ij = exp(-‖x_i − x_j‖² / σ)`. A non-positive σ
    /// activates the self-tuning heuristic (mean squared neighbour
    /// distance over the whole graph).
    HeatKernel {
        /// Local bandwidth σ (paper's user-defined parameter).
        sigma: f64,
    },
    /// Cosine similarity `w_ij = xᵢᵀxⱼ / (‖xᵢ‖‖xⱼ‖)`, clamped at zero so
    /// weights stay nonnegative (tf-idf features are nonnegative anyway).
    Cosine,
}

/// Rows per distance tile: bounds the per-worker scratch at
/// `TILE * n` doubles (512 KB at `n = 2000`) while keeping the axpy
/// kernel long enough to vectorise.
pub(crate) const TILE: usize = 32;

/// Work threshold (`n² d` multiply-adds) below which the row fan-out is
/// not worth a thread spawn.
const PAR_THRESHOLD: usize = 1 << 20;

/// Indices of the `p` nearest neighbours (Euclidean) of every row of
/// `data`, excluding the object itself. Rows with fewer than `p` other
/// objects return everything available.
///
/// Ties (including the exact-zero distances of duplicate points) are
/// broken by ascending neighbour index; NaN distances order *after*
/// every real distance (`f64::total_cmp`), so a row containing NaN
/// features is never selected while finite alternatives exist and the
/// result is always well defined — no panic.
///
/// Runs on the [`mtrl_linalg::par`] pool; see
/// [`knn_indices_with_threads`] for an explicit thread count.
pub fn knn_indices(data: &Mat, p: usize) -> Vec<Vec<usize>> {
    knn_indices_with_threads(data, p, auto_threads(data))
}

/// [`knn_indices`] with an explicit worker-thread count.
///
/// The output is bit-identical for every `threads` value.
pub fn knn_indices_with_threads(data: &Mat, p: usize, threads: usize) -> Vec<Vec<usize>> {
    let n = data.rows();
    // Centre the columns before the Gram expansion. Euclidean distances
    // are translation-invariant, but `gi + gj − 2·xiᵀxj` cancels
    // catastrophically when ‖x‖² dwarfs the pairwise separations (data
    // clustered far from the origin — the classic euclidean_distances
    // pitfall); centring puts the origin inside the cloud where the
    // expansion is stable. Means are computed once, globally, so every
    // chunking sees the same centred values.
    let centered = center_columns(data);
    let sq_norms: Vec<f64> = (0..n)
        .map(|i| dot(centered.row(i), centered.row(i)))
        .collect();
    let xt = centered.transpose();
    par_chunks_map(n, threads, |range| {
        knn_rows(&centered, &xt, &sq_norms, p, range.start, range.end)
    })
}

/// Subtract each column's mean. A column whose mean is non-finite (any
/// NaN/∞ feature) is left untouched so one bad row poisons only its own
/// distances, exactly like the uncentred kernel.
///
/// Public because approximate indexes (`mtrl-ann`) must centre their
/// data with *this exact* transformation to stay on the bit-identical
/// distance contract of [`gram_sq_dist`].
pub fn center_columns(data: &Mat) -> Mat {
    let (n, d) = data.shape();
    if n == 0 {
        return data.clone();
    }
    let mut means = vec![0.0; d];
    for i in 0..n {
        for (m, &v) in means.iter_mut().zip(data.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
        if !m.is_finite() {
            *m = 0.0;
        }
    }
    let mut out = data.clone();
    for i in 0..n {
        for (v, &m) in out.row_mut(i).iter_mut().zip(&means) {
            *v -= m;
        }
    }
    out
}

/// Serial reference: identical kernel on a single chunk. The proptests
/// assert the parallel paths reproduce this bit for bit.
pub fn knn_indices_serial(data: &Mat, p: usize) -> Vec<Vec<usize>> {
    knn_indices_with_threads(data, p, 1)
}

/// Column-tile width of the Gram micro-kernel: four 4 KB output strips
/// plus one 4 KB strip of `Xᵀ` stay L1-resident across the `k` loop.
pub(crate) const JT: usize = 512;

/// Neighbour lists for rows `[r0, r1)` via tiled Gram-trick distances.
fn knn_rows(
    data: &Mat,
    xt: &Mat,
    sq_norms: &[f64],
    p: usize,
    r0: usize,
    r1: usize,
) -> Vec<Vec<usize>> {
    let n = data.rows();
    let mut out = Vec::with_capacity(r1 - r0);
    let mut tile_buf = vec![0.0; TILE.min(r1 - r0).max(1) * n];
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(p + 1);
    let mut t0 = r0;
    while t0 < r1 {
        let t1 = (t0 + TILE).min(r1);
        let rows = t1 - t0;
        gram_tile_neg2(data, xt, t0, t1, &mut tile_buf);
        for local in 0..rows {
            let i = t0 + local;
            let brow = &tile_buf[local * n..(local + 1) * n];
            out.push(top_p_scan(brow, sq_norms, i, p, &mut scratch));
        }
        t0 = t1;
    }
    out
}

/// Accumulate `tile_buf[local][j] = −2 · src[t0 + local] · Xᵀ[.., j]`
/// for the row tile `[t0, t1)` of `src` — the one Gram micro-kernel
/// behind both [`knn_indices`] (`src` = the data itself) and
/// [`cross_sq_dist_map`] (`src` = the query batch). Sharing the
/// implementation is what makes their per-pair values bit-identical
/// **by construction** — the exactness contract `mtrl-stream`'s
/// incremental maintenance rests on.
///
/// Every output row is accumulated over `k` in ascending order with no
/// skip, so the value of each `(i, j)` cross term is independent of
/// tiles, register blocking and threads.
fn gram_tile_neg2(src: &Mat, xt: &Mat, t0: usize, t1: usize, tile_buf: &mut [f64]) {
    let n = xt.cols();
    let d = src.cols();
    let rows = t1 - t0;
    tile_buf[..rows * n].fill(0.0);
    let mut brows: Vec<&mut [f64]> = tile_buf[..rows * n].chunks_mut(n.max(1)).collect();
    for (g, group) in brows.chunks_mut(4).enumerate() {
        let i0 = t0 + g * 4;
        if let [b0, b1, b2, b3] = group {
            // Register-blocked micro-kernel: four output rows share
            // each streamed strip of Xᵀ (quartering Xᵀ traffic) and
            // the k dimension is unrolled by four so each output
            // load/store amortises over four FMAs. `mul_add` maps to
            // one hardware FMA per element (the repo builds with
            // `target-cpu=native`, see .cargo/config.toml); on
            // FMA-less targets it falls back to a slow libm call but
            // stays exact. A nested `mul_add` chain performs the
            // exact same rounding sequence as the sequential k loop
            // of the remainder kernel below, keeping every path
            // bit-identical.
            let xr = [
                src.row(i0),
                src.row(i0 + 1),
                src.row(i0 + 2),
                src.row(i0 + 3),
            ];
            let mut jt = 0;
            while jt < n {
                let je = (jt + JT).min(n);
                let mut k = 0;
                while k + 4 <= d {
                    let xk = [
                        &xt.row(k)[jt..je],
                        &xt.row(k + 1)[jt..je],
                        &xt.row(k + 2)[jt..je],
                        &xt.row(k + 3)[jt..je],
                    ];
                    for (b, x) in [&mut **b0, b1, b2, b3].into_iter().zip(xr) {
                        let a = [
                            -2.0 * x[k],
                            -2.0 * x[k + 1],
                            -2.0 * x[k + 2],
                            -2.0 * x[k + 3],
                        ];
                        axpy4_fma(&mut b[jt..je], a, xk);
                    }
                    k += 4;
                }
                while k < d {
                    let xk = &xt.row(k)[jt..je];
                    for (b, x) in [&mut **b0, b1, b2, b3].into_iter().zip(xr) {
                        axpy1_fma(&mut b[jt..je], -2.0 * x[k], xk);
                    }
                    k += 1;
                }
                jt = je;
            }
        } else {
            // Remainder rows one at a time; per-(i, j) arithmetic is
            // the same k-ascending accumulation as the quad kernel.
            for (local, brow) in group.iter_mut().enumerate() {
                let xrow = src.row(i0 + local);
                for (k, &xv) in xrow.iter().enumerate() {
                    axpy1_fma(brow, -2.0 * xv, xt.row(k));
                }
            }
        }
    }
}

/// Squared distance `‖a − b‖²` through the Gram identity
/// `g_a + g_b − 2·aᵀb`, with the cross term accumulated in ascending-`k`
/// FMA order — **the exact rounding sequence of the blocked kernel**
/// ([`axpy1_fma`] / [`axpy4_fma`] chains), so the value equals what any
/// tile/thread layout of [`cross_sq_dist_map`] produces for the same
/// pair. `g_a` / `g_b` must be `dot(a, a)` / `dot(b, b)` of the rows as
/// passed (callers that centre their data pass centred rows and norms).
///
/// `mtrl-stream`'s `DynamicGraph` uses this for single-pair repairs so
/// repaired neighbour lists stay consistent with batch-inserted ones.
#[inline]
pub fn gram_sq_dist(a: &[f64], b: &[f64], g_a: f64, g_b: f64) -> f64 {
    let mut acc = 0.0;
    for (&av, &bv) in a.iter().zip(b) {
        acc = (-2.0 * av).mul_add(bv, acc);
    }
    g_a + g_b + acc
}

/// Four [`gram_sq_dist`] evaluations of one query against four corpus
/// rows with their accumulator chains interleaved. Each lane performs
/// the identical ascending-`k` FMA sequence of the scalar function —
/// the lanes are data-independent, so interleaving changes scheduling,
/// never rounding — which makes every returned value bit-equal to the
/// corresponding scalar call (pinned by `gram_sq_dist_x4_matches_scalar`).
///
/// The scalar chain is latency-bound (each `mul_add` waits on the
/// previous one); four independent chains keep the FMA unit fed, which
/// is worth ~3× on candidate re-ranking in `mtrl-ann`, where distances
/// are evaluated per candidate instead of per blocked tile.
///
/// # Panics
/// Panics if any `b` row length differs from `a`'s.
#[inline]
pub fn gram_sq_dist_x4(a: &[f64], b: [&[f64]; 4], g_a: f64, g_b: [f64; 4]) -> [f64; 4] {
    let d = a.len();
    let [b0, b1, b2, b3] = b;
    assert_eq!(b0.len(), d, "row length mismatch");
    assert_eq!(b1.len(), d, "row length mismatch");
    assert_eq!(b2.len(), d, "row length mismatch");
    assert_eq!(b3.len(), d, "row length mismatch");
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for k in 0..d {
        let m = -2.0 * a[k];
        a0 = m.mul_add(b0[k], a0);
        a1 = m.mul_add(b1[k], a1);
        a2 = m.mul_add(b2[k], a2);
        a3 = m.mul_add(b3[k], a3);
    }
    [
        g_a + g_b[0] + a0,
        g_a + g_b[1] + a1,
        g_a + g_b[2] + a2,
        g_a + g_b[3] + a3,
    ]
}

/// Blocked Gram-trick distances of `queries` rows against **all**
/// `corpus` rows, streamed to a per-query callback.
///
/// For each query row `q` (in order), `f(q, strip)` receives the strip
/// `strip[j] = g_q + g_j − 2·x_qᵀx_j` over every corpus row `j`,
/// computed with the same register-blocked ascending-`k` FMA kernel as
/// [`knn_indices`] — each `(q, j)` value is a pure function of the two
/// rows, independent of tiling, threading and of how queries are
/// batched across calls. Queries are distributed over `threads` workers
/// in contiguous chunks; results come back in query order.
///
/// Callers own the centring policy: the full-graph path centres by the
/// data's column means; an incremental consumer must pass rows (and
/// matching `q_norms` / `c_norms` of squared row norms) translated by
/// one *fixed* vector so distances compare consistently across batches.
///
/// # Panics
/// Panics if the column counts differ or a norm slice has the wrong
/// length.
pub fn cross_sq_dist_map<T, F>(
    queries: &Mat,
    q_norms: &[f64],
    corpus: &Mat,
    c_norms: &[f64],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[f64]) -> T + Sync,
{
    assert_eq!(
        queries.cols(),
        corpus.cols(),
        "cross_sq_dist_map: dimension mismatch"
    );
    assert_eq!(q_norms.len(), queries.rows(), "q_norms length");
    assert_eq!(c_norms.len(), corpus.rows(), "c_norms length");
    let n = corpus.rows();
    if n == 0 {
        // Degenerate but well-formed: every query sees an empty strip.
        return (0..queries.rows()).map(|q| f(q, &[])).collect();
    }
    let ct = corpus.transpose();
    par_chunks_map(queries.rows(), threads, |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut tile_buf = vec![0.0; TILE.min(range.len().max(1)) * n];
        let mut t0 = range.start;
        while t0 < range.end {
            let t1 = (t0 + TILE).min(range.end);
            // The shared micro-kernel of `knn_rows` — per-pair cross
            // terms are bit-identical between the two entry points by
            // construction.
            gram_tile_neg2(queries, &ct, t0, t1, &mut tile_buf);
            for local in 0..(t1 - t0) {
                let q = t0 + local;
                let gq = q_norms[q];
                let strip = &mut tile_buf[local * n..(local + 1) * n];
                for (s, &gj) in strip.iter_mut().zip(c_norms) {
                    *s += gq + gj;
                }
                out.push(f(q, strip));
            }
            t0 = t1;
        }
        out
    })
}

/// `o[j] += a · x[j]` as one FMA per element.
#[inline]
fn axpy1_fma(o: &mut [f64], a: f64, x: &[f64]) {
    for (ov, &xv) in o.iter_mut().zip(x) {
        *ov = a.mul_add(xv, *ov);
    }
}

/// Four accumulation steps per element in ascending-k order:
/// `o[j] += a₀x₀[j]; o[j] += a₁x₁[j]; …` as a nested FMA chain — the
/// same rounding sequence as four [`axpy1_fma`] calls, with the output
/// load/store amortised over all four.
#[inline]
fn axpy4_fma(o: &mut [f64], a: [f64; 4], x: [&[f64]; 4]) {
    let [x0, x1, x2, x3] = x;
    for ((((ov, &v0), &v1), &v2), &v3) in o.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        *ov = a[3].mul_add(
            v3,
            a[2].mul_add(v2, a[1].mul_add(v1, a[0].mul_add(v0, *ov))),
        );
    }
}

/// `(dist, index)` strict total order: `f64::total_cmp` on the distance
/// (NaN greater than every real), ascending index on ties. Both selection
/// paths — this scan and [`select_p_nearest`] — pick the `p` smallest
/// elements of the same order, so their neighbour *sets* always agree.
///
/// Public so candidate-based selections elsewhere (`mtrl-stream`'s
/// incremental maintenance, `mtrl-ann`'s probe unions) pick the same
/// `p` elements as the exact scan whenever their candidate sets cover
/// the true neighbours.
#[inline]
pub fn dist_less(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)) == std::cmp::Ordering::Less
}

/// Single fused pass over one row's distance strip: `dist(i, j) =
/// g_i + g_j + buf_j` and a `p`-element insertion set, no scratch tuple
/// vector. Expected insertions are `O(p log n)`, so the scan is one
/// compare per candidate almost everywhere.
pub(crate) fn top_p_scan(
    brow: &[f64],
    sq_norms: &[f64],
    i: usize,
    p: usize,
    best: &mut Vec<(f64, usize)>,
) -> Vec<usize> {
    best.clear();
    if p == 0 {
        return Vec::new();
    }
    let gi = sq_norms[i];
    for (j, (&b, &gj)) in brow.iter().zip(sq_norms).enumerate() {
        if j == i {
            continue;
        }
        let cand = (gi + gj + b, j);
        if best.len() < p {
            let pos = best.partition_point(|&e| dist_less(e, cand));
            best.insert(pos, cand);
        } else {
            let worst = *best.last().expect("p > 0");
            // Fast path: strictly worse than the current cut (false for
            // NaN, which then loses in dist_less below).
            if cand.0 > worst.0 {
                continue;
            }
            if dist_less(cand, worst) {
                let pos = best.partition_point(|&e| dist_less(e, cand));
                best.insert(pos, cand);
                best.pop();
            }
        }
    }
    let mut neigh: Vec<usize> = best.iter().map(|&(_, j)| j).collect();
    neigh.sort_unstable();
    neigh
}

/// Take the `p` smallest `(distance, index)` pairs, total-ordered with
/// index tie-break, returned as index-sorted neighbour lists. The order
/// is exactly [`dist_less`], so any candidate set that covers the true
/// `p` nearest selects the exact neighbour list.
pub fn select_p_nearest(scratch: &mut [(f64, usize)], p: usize) -> Vec<usize> {
    let k = p.min(scratch.len());
    if k > 0 && k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }
    let mut neigh: Vec<usize> = scratch[..k].iter().map(|&(_, j)| j).collect();
    neigh.sort_unstable();
    neigh
}

/// The seed repository's brute-force construction (serial `sq_dist`
/// per pair), kept as the correctness and performance reference for the
/// blocked kernel. Exposed for the tests and the `micro_graph` bench —
/// not part of the supported API.
#[doc(hidden)]
pub fn knn_indices_brute_reference(data: &Mat, p: usize) -> Vec<Vec<usize>> {
    let n = data.rows();
    let mut out = Vec::with_capacity(n);
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for i in 0..n {
        scratch.clear();
        let xi = data.row(i);
        for j in 0..n {
            if j == i {
                continue;
            }
            scratch.push((sq_dist(xi, data.row(j)), j));
        }
        out.push(select_p_nearest(&mut scratch, p));
    }
    out
}

/// The seed repository's full serial `pnn_graph` path (brute-force kNN
/// plus a COO round-trip) — the baseline the `micro_graph` scaling bench
/// and the committed `BENCH_graph.json` measure speedups against. Not
/// part of the supported API.
#[doc(hidden)]
pub fn pnn_graph_brute_reference(data: &Mat, p: usize, scheme: WeightScheme) -> Csr {
    let n = data.rows();
    let neighbours = knn_indices_brute_reference(data, p);
    let sigma = match scheme {
        WeightScheme::HeatKernel { sigma } if sigma <= 0.0 => self_tuning_sigma(data, &neighbours),
        WeightScheme::HeatKernel { sigma } => sigma,
        _ => 1.0,
    };
    let mut coo = mtrl_sparse::Coo::with_capacity(n, n, 2 * p * n);
    for (i, neigh) in neighbours.iter().enumerate() {
        let xi = data.row(i);
        for &j in neigh {
            let w = match scheme {
                WeightScheme::Binary => 1.0,
                WeightScheme::HeatKernel { .. } => (-sq_dist(xi, data.row(j)) / sigma).exp(),
                WeightScheme::Cosine => cosine(xi, data.row(j)).max(0.0),
            };
            if w > 0.0 {
                coo.push(i, j, w);
            }
        }
    }
    coo.to_csr().max_symmetrize()
}

pub(crate) fn auto_threads(data: &Mat) -> usize {
    let n = data.rows();
    if n * n * data.cols() < PAR_THRESHOLD {
        1
    } else {
        num_threads()
    }
}

/// Build the symmetric pNN weight matrix `W_E` of Eq. (3).
///
/// `data` holds one object per row. The output is a symmetric nonnegative
/// sparse matrix with zero diagonal. Runs on the [`mtrl_linalg::par`]
/// pool; see [`pnn_graph_with_threads`] for an explicit thread count.
pub fn pnn_graph(data: &Mat, p: usize, scheme: WeightScheme) -> Csr {
    pnn_graph_with_threads(data, p, scheme, auto_threads(data))
}

/// [`pnn_graph`] with an explicit worker-thread count; bit-identical
/// output for every `threads` value.
pub fn pnn_graph_with_threads(data: &Mat, p: usize, scheme: WeightScheme, threads: usize) -> Csr {
    let _span = mtrl_obs::span!("graph.pnn_build");
    let neighbours = {
        let _search_span = mtrl_obs::span!("graph.knn_search");
        knn_indices_with_threads(data, p, threads)
    };
    let _weights_span = mtrl_obs::span!("graph.weights");
    graph_from_neighbours(data, &neighbours, scheme, threads)
}

/// Assemble the symmetric weighted graph of Eq. (3) from precomputed
/// neighbour lists — the weighting + "or"-symmetrisation half of
/// [`pnn_graph`], shared with incremental constructions (`mtrl-stream`'s
/// `DynamicGraph`) so a dynamically maintained neighbour structure
/// exports *exactly* the graph the batch path would build from the same
/// lists. Weights are pairwise functions of the raw feature rows
/// (`sq_dist` / `cosine`), so they never depend on how the lists were
/// obtained; heat-kernel self-tuning (`sigma <= 0`) recomputes the mean
/// squared neighbour distance over the lists as given.
///
/// `neighbours[i]` must hold index-sorted, in-range neighbours of row
/// `i`, excluding `i` itself (rows with no neighbours are allowed and
/// yield empty graph rows).
///
/// # Panics
/// Panics if `neighbours.len() != data.rows()` or a list violates the
/// ordering contract (via the CSR builder).
pub fn graph_from_neighbours(
    data: &Mat,
    neighbours: &[Vec<usize>],
    scheme: WeightScheme,
    threads: usize,
) -> Csr {
    let n = data.rows();
    assert_eq!(neighbours.len(), n, "one neighbour list per data row");
    let sigma = match scheme {
        WeightScheme::HeatKernel { sigma } if sigma <= 0.0 => self_tuning_sigma(data, neighbours),
        WeightScheme::HeatKernel { sigma } => sigma,
        _ => 1.0,
    };
    // Edge weights per row, computed with the same pairwise formulas as
    // the seed path (weights depend only on the neighbour pair, never on
    // the chunking).
    let weights: Vec<Vec<f64>> = par_chunks_map(n, threads, |range| {
        range
            .map(|i| {
                let xi = data.row(i);
                neighbours[i]
                    .iter()
                    .map(|&j| match scheme {
                        WeightScheme::Binary => 1.0,
                        WeightScheme::HeatKernel { .. } => {
                            (-sq_dist(xi, data.row(j)) / sigma).exp()
                        }
                        WeightScheme::Cosine => cosine(xi, data.row(j)).max(0.0),
                    })
                    .collect()
            })
            .collect()
    });
    // Neighbour lists are index-sorted, so the CSR assembles directly.
    let max_p = neighbours.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = mtrl_sparse::CsrBuilder::with_capacity(n, n, 2 * max_p * n);
    for (neigh, ws) in neighbours.iter().zip(&weights) {
        for (&j, &w) in neigh.iter().zip(ws) {
            if w > 0.0 {
                out.push(j, w);
            }
        }
        out.finish_row();
    }
    // "or" symmetrisation: keep an edge if either endpoint chose it. Using
    // max avoids double-counting mutual neighbours.
    out.build().max_symmetrize()
}

/// Self-tuning bandwidth: mean squared neighbour distance across the graph.
fn self_tuning_sigma(data: &Mat, neighbours: &[Vec<usize>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, neigh) in neighbours.iter().enumerate() {
        let xi = data.row(i);
        for &j in neigh {
            total += sq_dist(xi, data.row(j));
            count += 1;
        }
    }
    if count == 0 || total <= 0.0 {
        1.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    /// Three tight, well-separated clusters on a line.
    fn clustered_data() -> Mat {
        let mut rows = Vec::new();
        for c in 0..3 {
            for k in 0..4 {
                rows.push(vec![c as f64 * 100.0 + k as f64 * 0.1, 0.0]);
            }
        }
        Mat::from_rows(&rows).unwrap()
    }

    #[test]
    fn knn_finds_cluster_mates() {
        let data = clustered_data();
        let nn = knn_indices(&data, 3);
        for (i, neigh) in nn.iter().enumerate() {
            assert_eq!(neigh.len(), 3);
            let my_cluster = i / 4;
            for &j in neigh {
                assert_eq!(j / 4, my_cluster, "object {i} got neighbour {j}");
            }
            assert!(!neigh.contains(&i), "self-neighbour");
        }
    }

    #[test]
    fn knn_handles_small_n() {
        let data = Mat::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let nn = knn_indices(&data, 5);
        assert_eq!(nn[0], vec![1]);
        assert_eq!(nn[1], vec![0]);
    }

    #[test]
    fn knn_single_row_has_no_neighbours() {
        let data = Mat::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let nn = knn_indices(&data, 4);
        assert_eq!(nn, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn gram_kernel_matches_brute_reference() {
        for (n, d, p, seed) in [(30, 5, 4, 70), (57, 17, 6, 71), (16, 1, 3, 72)] {
            let data = rand_uniform(n, d, -1.0, 1.0, seed);
            assert_eq!(
                knn_indices_serial(&data, p),
                knn_indices_brute_reference(&data, p),
                "n={n} d={d} p={p}"
            );
        }
    }

    #[test]
    fn parallel_bit_identical_to_serial() {
        let data = rand_uniform(83, 9, -1.0, 1.0, 73);
        let serial = knn_indices_serial(&data, 5);
        for threads in 2..=8 {
            assert_eq!(
                knn_indices_with_threads(&data, 5, threads),
                serial,
                "threads={threads}"
            );
        }
        let w_serial = pnn_graph_with_threads(&data, 5, WeightScheme::Cosine, 1);
        for threads in 2..=8 {
            let w = pnn_graph_with_threads(&data, 5, WeightScheme::Cosine, threads);
            assert_eq!(w, w_serial, "threads={threads}");
        }
    }

    #[test]
    fn blocked_graph_matches_seed_reference_path() {
        let data = rand_uniform(64, 7, 0.0, 1.0, 74);
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            let seed_path = pnn_graph_brute_reference(&data, 5, scheme);
            let blocked = pnn_graph(&data, 5, scheme);
            assert_eq!(blocked, seed_path, "{scheme:?}");
        }
    }

    #[test]
    fn far_from_origin_clusters_stay_stable() {
        // Regression: without column centring, gi + gj − 2·xiᵀxj loses
        // ~16 digits to cancellation when the cloud sits at ~1e8 and the
        // separations are ~1e-3, returning junk neighbours. The stable
        // sq_dist brute path is the ground truth here.
        let base = rand_uniform(60, 4, -1e-3, 1e-3, 75);
        let shifted = Mat::from_fn(60, 4, |i, j| 1.0e8 + base[(i, j)]);
        let nn = knn_indices(&shifted, 4);
        assert_eq!(nn, knn_indices_brute_reference(&shifted, 4));
        // And the parallel paths agree bit for bit as always.
        for threads in 2..=4 {
            assert_eq!(knn_indices_with_threads(&shifted, 4, threads), nn);
        }
    }

    #[test]
    fn duplicate_points_break_ties_by_index() {
        // Four identical points plus one far away: the duplicates are at
        // exact distance zero of each other and ties resolve to the
        // lowest indices, identically in every path.
        let data = Mat::from_rows(&[
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![50.0, 50.0],
        ])
        .unwrap();
        let nn = knn_indices(&data, 2);
        assert_eq!(nn[0], vec![1, 2]);
        assert_eq!(nn[1], vec![0, 2]);
        assert_eq!(nn[4], vec![0, 1]);
        assert_eq!(knn_indices_serial(&data, 2), nn);
        assert_eq!(knn_indices_brute_reference(&data, 2), nn);
    }

    #[test]
    fn nan_rows_do_not_panic_and_sort_last() {
        // Regression: the seed path panicked on NaN distances via
        // `partial_cmp().expect()` inside the selection. NaN distances
        // now order after every finite distance.
        let data = Mat::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![2.0, 0.0],
        ])
        .unwrap();
        let nn = knn_indices(&data, 2);
        // Finite rows never pick the NaN row while finite rows remain.
        assert_eq!(nn[0], vec![1, 3]);
        assert_eq!(nn[1], vec![0, 3]);
        assert_eq!(nn[3], vec![0, 1]);
        // The NaN row's own distances are all NaN; selection still
        // returns a deterministic, valid list (lowest indices).
        assert_eq!(nn[2].len(), 2);
        assert!(!nn[2].contains(&2));
        assert_eq!(knn_indices_brute_reference(&data, 2), nn);
        // And the graph construction stays finite-shaped too.
        let w = pnn_graph(&data, 2, WeightScheme::Binary);
        assert_eq!(w.rows(), 4);
    }

    #[test]
    fn cross_kernel_matches_pair_function_bitwise() {
        // Every strip value must equal the scalar `gram_sq_dist` of the
        // same two rows — the contract `DynamicGraph` repairs rely on —
        // and must be bit-identical for every thread count.
        let queries = rand_uniform(23, 9, -1.0, 1.0, 90);
        let corpus = rand_uniform(41, 9, -1.0, 1.0, 91);
        let qn: Vec<f64> = (0..23)
            .map(|i| dot(queries.row(i), queries.row(i)))
            .collect();
        let cn: Vec<f64> = (0..41).map(|i| dot(corpus.row(i), corpus.row(i))).collect();
        let strips = |threads| {
            cross_sq_dist_map(&queries, &qn, &corpus, &cn, threads, |_, strip| {
                strip.to_vec()
            })
        };
        let serial = strips(1);
        for (q, strip) in serial.iter().enumerate() {
            for (j, &v) in strip.iter().enumerate() {
                let pair = gram_sq_dist(queries.row(q), corpus.row(j), qn[q], cn[j]);
                assert_eq!(v.to_bits(), pair.to_bits(), "({q},{j})");
                // And the Gram value approximates the stable distance.
                let direct = sq_dist(queries.row(q), corpus.row(j));
                assert!((v - direct).abs() < 1e-9, "({q},{j}): {v} vs {direct}");
            }
        }
        for threads in 2..=5 {
            assert_eq!(strips(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn cross_kernel_batched_queries_identical() {
        // Distances are a pure pair function: splitting the query set
        // across calls must not change a single bit.
        let data = rand_uniform(37, 6, -1.0, 1.0, 92);
        let norms: Vec<f64> = (0..37).map(|i| dot(data.row(i), data.row(i))).collect();
        let whole = cross_sq_dist_map(&data, &norms, &data, &norms, 1, |_, s| s.to_vec());
        let mut pieces = Vec::new();
        for (r0, r1) in [(0usize, 5usize), (5, 6), (6, 30), (30, 37)] {
            let part = data.submatrix(r0, 0, r1 - r0, 6);
            pieces.extend(cross_sq_dist_map(
                &part,
                &norms[r0..r1],
                &data,
                &norms,
                2,
                |_, s| s.to_vec(),
            ));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn cross_kernel_empty_corpus_yields_empty_strips() {
        let queries = rand_uniform(3, 4, -1.0, 1.0, 94);
        let qn: Vec<f64> = (0..3)
            .map(|i| dot(queries.row(i), queries.row(i)))
            .collect();
        let strips = cross_sq_dist_map(&queries, &qn, &Mat::zeros(0, 4), &[], 2, |q, s| {
            (q, s.len())
        });
        assert_eq!(strips, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn graph_from_neighbours_matches_pnn_graph() {
        let data = rand_uniform(30, 5, 0.0, 1.0, 93);
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            let neighbours = knn_indices(&data, 4);
            assert_eq!(
                graph_from_neighbours(&data, &neighbours, scheme, 1),
                pnn_graph(&data, 4, scheme),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn pnn_graph_symmetric_nonneg_zero_diag() {
        let data = rand_uniform(30, 5, -1.0, 1.0, 60);
        for scheme in [
            WeightScheme::Binary,
            WeightScheme::HeatKernel { sigma: 0.5 },
            WeightScheme::HeatKernel { sigma: -1.0 },
            WeightScheme::Cosine,
        ] {
            let w = pnn_graph(&data, 4, scheme);
            assert!(w.is_symmetric(1e-12), "{scheme:?} not symmetric");
            for (i, j, v) in w.iter() {
                assert!(v >= 0.0, "{scheme:?} negative weight");
                assert_ne!(i, j, "{scheme:?} self loop");
            }
        }
    }

    #[test]
    fn binary_weights_are_one() {
        let data = clustered_data();
        let w = pnn_graph(&data, 2, WeightScheme::Binary);
        for (_, _, v) in w.iter() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn heat_kernel_decays_with_distance() {
        let data = Mat::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]).unwrap();
        let w = pnn_graph(&data, 2, WeightScheme::HeatKernel { sigma: 1.0 });
        // d(0,1)=1 < d(0,2)=9 => w(0,1) > w(0,2).
        assert!(w.get(0, 1) > w.get(0, 2));
        assert!((w.get(0, 1) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn cosine_weights_bounded() {
        let data = rand_uniform(20, 4, 0.0, 1.0, 61);
        let w = pnn_graph(&data, 3, WeightScheme::Cosine);
        for (_, _, v) in w.iter() {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn edge_count_bounded_by_2pn() {
        let data = rand_uniform(40, 3, -1.0, 1.0, 62);
        let p = 5;
        let w = pnn_graph(&data, p, WeightScheme::Binary);
        assert!(w.nnz() <= 2 * p * 40);
        // And at least p*n (each object contributes p out-edges).
        assert!(w.nnz() >= p * 40);
    }

    #[test]
    fn separated_clusters_have_no_cross_edges() {
        let data = clustered_data();
        let w = pnn_graph(&data, 3, WeightScheme::Binary);
        for (i, j, _) in w.iter() {
            assert_eq!(i / 4, j / 4, "cross-cluster edge {i}-{j}");
        }
    }

    #[test]
    fn gram_sq_dist_x4_matches_scalar_bitwise() {
        let data = rand_uniform(9, 37, -2.0, 2.0, 71);
        let norms: Vec<f64> = (0..9).map(|i| dot(data.row(i), data.row(i))).collect();
        let a = data.row(0);
        for base in [1usize, 5] {
            let rows = [
                data.row(base),
                data.row(base + 1),
                data.row(base + 2),
                data.row(base + 3),
            ];
            let g = [
                norms[base],
                norms[base + 1],
                norms[base + 2],
                norms[base + 3],
            ];
            let quad = gram_sq_dist_x4(a, rows, norms[0], g);
            for lane in 0..4 {
                let scalar = gram_sq_dist(a, rows[lane], norms[0], g[lane]);
                assert_eq!(
                    quad[lane].to_bits(),
                    scalar.to_bits(),
                    "lane {lane} diverged from the scalar chain"
                );
            }
        }
    }

    #[test]
    fn self_tuning_sigma_positive() {
        let data = rand_uniform(10, 2, -1.0, 1.0, 63);
        let nn = knn_indices(&data, 3);
        let s = self_tuning_sigma(&data, &nn);
        assert!(s > 0.0);
        // Degenerate: all points identical -> fallback 1.0.
        let same = Mat::zeros(5, 2);
        let nn2 = knn_indices(&same, 2);
        assert_eq!(self_tuning_sigma(&same, &nn2), 1.0);
    }
}
