//! Stream orchestration: ingest → fold-in → refresh policy → hot swap.
//!
//! [`StreamSession`] ties the pieces of the streaming subsystem
//! together for the canonical document stream:
//!
//! 1. every pushed [`StreamBatch`] is **folded in** against the current
//!    model (posteriors + confidence — the serving answer a live system
//!    would return immediately);
//! 2. the batch is appended to the accumulated corpus and inserted into
//!    the document [`DynamicGraph`] (incremental pNN maintenance — no
//!    `O(n² d)` rebuild on the hot path);
//! 3. the **refresh policy** decides whether to refit: every `k`
//!    batches, and/or drift-triggered when the batch's mean fold-in
//!    confidence drops below a floor (a drifted distribution no longer
//!    resembles any learned centroid, so max-posteriors sag);
//! 4. a refit is a **warm mini-batch refresh**: `G₀` seeded from the
//!    previous model (survivor rows copied, new rows from fold-in
//!    posteriors), the document Laplacian taken from the incrementally
//!    maintained graph, a capped iteration budget
//!    ([`rhchme::Rhchme::fit_warm`]);
//! 5. the refreshed [`FittedModel`] is **hot-swapped** into an attached
//!    [`ServeEngine`] under its registered name — in-flight requests
//!    finish against the old model, new submissions see the new one
//!    (see `ServeEngine::register`'s atomic-swap contract).
//!
//! Terms and concepts have feature views that *grow* with the document
//! count (their features are relations *to* documents), so their pNN
//! graphs are rebuilt per refit — they are the small types; the
//! documents, whose feature view has fixed width `terms + concepts`,
//! are the type that streams and the type whose graph is maintained
//! incrementally.

use crate::dynamic::{DynamicGraph, DynamicGraphConfig};
use crate::error::StreamError;
use crate::warm::{grown_survivors, warm_membership_opts, WarmOptions};
use mtrl_datagen::stream::{append_batch, StreamBatch};
use mtrl_datagen::MultiTypeCorpus;
use mtrl_graph::{laplacian_csr, pnn_graph};
use mtrl_linalg::Mat;
use mtrl_serve::{Assigner, ServeEngine, SparseVec};
use mtrl_sparse::SparseBlockDiag;
use mtrl_subspace::SpgConfig;
use rhchme::export::FittedModel;
use rhchme::intra::{hetero_laplacian, subspace_laplacians};
use rhchme::rhchme::WarmStart;
use rhchme::{MultiTypeData, Rhchme, RhchmeResult};
use std::sync::Arc;

/// When to refresh the model.
#[derive(Debug, Clone)]
pub struct RefreshPolicy {
    /// Refit after this many batches since the last refresh (`None`
    /// disables the cadence trigger).
    pub every_batches: Option<usize>,
    /// Drift trigger: refit when a batch's mean fold-in confidence
    /// (mean max-posterior) falls below this floor (`None` disables).
    pub min_confidence: Option<f64>,
    /// Batches to suppress the drift trigger for after any refit.
    /// Under *sustained* drift the confidence floor would otherwise
    /// refit on every single batch — each refit incorporates the new
    /// evidence, but it also rebuilds the growing term/concept graphs,
    /// so per-batch cost scales with corpus size. `0` (the default)
    /// keeps the maximally adaptive behaviour; raise it to bound the
    /// refresh rate during long drifts. The cadence trigger is not
    /// affected.
    pub drift_cooldown: usize,
    /// Iteration cap of a warm refit (a cold fit runs the full
    /// `RhchmeConfig::max_iter`).
    pub warm_iters: usize,
    /// Recompute the subspace ensemble member `L_S` on refresh. SPG is
    /// the expensive stage; `false` (the streaming default) refreshes
    /// against the pNN member alone, which the incremental graphs
    /// provide for free.
    pub refresh_subspace: bool,
    /// Partial-reseed floor for warm refits: rows whose fold-in
    /// max-posterior falls below this value are reseeded from
    /// drift-tracking k-means (Lloyd from the model's own centroids)
    /// instead of inheriting the stale basin — see
    /// [`crate::warm::WarmOptions::reseed_confidence`]. `None` (the
    /// default) keeps the plain warm path.
    pub reseed_confidence: Option<f64>,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        RefreshPolicy {
            every_batches: None,
            min_confidence: Some(0.5),
            drift_cooldown: 0,
            warm_iters: 15,
            refresh_subspace: false,
            reseed_confidence: None,
        }
    }
}

/// What triggered a refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitTrigger {
    /// The `every_batches` cadence.
    Cadence,
    /// Fold-in confidence fell below the policy floor.
    Drift,
    /// Explicit [`StreamSession::refit_now`] call.
    Manual,
}

/// Outcome of one (warm) refit.
#[derive(Debug, Clone)]
pub struct RefitReport {
    /// Why the refit ran.
    pub trigger: RefitTrigger,
    /// Multiplicative-update iterations the warm refresh performed.
    pub iterations: usize,
    /// Final objective value of the refresh.
    pub final_objective: f64,
    /// Documents in the corpus the model is now fitted on.
    pub corpus_docs: usize,
}

/// Outcome of one [`StreamSession::push_batch`].
#[derive(Debug, Clone)]
pub struct PushReport {
    /// Fold-in hard labels of the batch, in order (the serving answer).
    pub labels: Vec<usize>,
    /// Mean max-posterior of the batch under the pre-push model.
    pub mean_confidence: f64,
    /// The refit this push triggered, if any.
    pub refit: Option<RefitReport>,
}

/// What the refresh policy decided for one pushed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshDecision {
    /// A refit ran, for this reason.
    Refit(RefitTrigger),
    /// Confidence fell below the drift floor, but the cooldown
    /// suppressed the refit.
    CooldownSuppressed,
    /// No trigger fired.
    NoTrigger,
}

/// Per-batch observables of one [`StreamSession::push_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTelemetry {
    /// 1-based batch index over the session's lifetime.
    pub batch: usize,
    /// Documents in the batch.
    pub docs: usize,
    /// Mean fold-in max-posterior under the pre-push model.
    pub mean_confidence: f64,
    /// The policy's decision for this batch.
    pub decision: RefreshDecision,
}

/// Accumulated session telemetry, exposed by
/// [`StreamSession::telemetry`] — the machine-readable version of what
/// `stream_demo` used to print. Always tracked (it is a handful of
/// counters and one small struct per batch), independent of `MTRL_OBS`.
#[derive(Debug, Clone, Default)]
pub struct SessionTelemetry {
    /// One entry per pushed batch, in order.
    pub batches: Vec<BatchTelemetry>,
    /// Refits triggered by the confidence floor.
    pub drift_refits: usize,
    /// Refits triggered by the batch cadence.
    pub cadence_refits: usize,
    /// Refits forced via [`StreamSession::refit_now`].
    pub manual_refits: usize,
    /// Warm refits that ran with partial reseeding enabled
    /// ([`RefreshPolicy::reseed_confidence`] set).
    pub reseed_refits: usize,
    /// Warm refits on the plain (no-reseed) path.
    pub plain_warm_refits: usize,
    /// Full consensus-ensemble refreshes
    /// ([`StreamSession::refit_ensemble`]).
    pub ensemble_refits: usize,
    /// Multiplicative-update iterations summed over all warm refits
    /// (each capped at [`RefreshPolicy::warm_iters`]).
    pub total_warm_iterations: usize,
    /// Models hot-swapped into an attached [`ServeEngine`].
    pub hot_swaps: usize,
}

impl SessionTelemetry {
    /// Total refits, over all triggers (ensemble refreshes included).
    pub fn total_refits(&self) -> usize {
        self.drift_refits + self.cadence_refits + self.manual_refits + self.ensemble_refits
    }

    /// Batches whose drift trigger was suppressed by the cooldown.
    pub fn cooldown_suppressed(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| b.decision == RefreshDecision::CooldownSuppressed)
            .count()
    }
}

fn trigger_name(trigger: RefitTrigger) -> &'static str {
    match trigger {
        RefitTrigger::Cadence => "cadence",
        RefitTrigger::Drift => "drift",
        RefitTrigger::Manual => "manual",
    }
}

/// A live streaming session over one growing corpus.
pub struct StreamSession {
    rhchme: Rhchme,
    policy: RefreshPolicy,
    corpus: MultiTypeCorpus,
    doc_graph: DynamicGraph,
    assigner: Arc<Assigner>,
    last_result: RhchmeResult,
    engine: Option<(Arc<ServeEngine>, String)>,
    batches_since_refit: usize,
    total_batches: usize,
    telemetry: SessionTelemetry,
}

impl StreamSession {
    /// Cold-fit `rhchme` on the initial corpus and stand the session up
    /// around the fitted model.
    ///
    /// # Errors
    /// Propagates fit and export errors.
    pub fn new(
        initial: MultiTypeCorpus,
        rhchme: Rhchme,
        policy: RefreshPolicy,
    ) -> Result<Self, StreamError> {
        // Assemble the multi-type data once and share it between the
        // fit, the export and the graph construction.
        let data = MultiTypeData::from_corpus(&initial, rhchme.config().feature_cluster_divisor)?;
        let result = rhchme.fit_data(&data)?;
        let model = rhchme.export_model_from_data(&result, &data)?;
        let doc_graph = DynamicGraph::new(
            &data.features(0),
            DynamicGraphConfig {
                p: rhchme.config().p,
                scheme: rhchme.config().weight_scheme,
                ..DynamicGraphConfig::default()
            },
        );
        let assigner = Arc::new(Assigner::new(model)?);
        Ok(StreamSession {
            rhchme,
            policy,
            corpus: initial,
            doc_graph,
            assigner,
            last_result: result,
            engine: None,
            batches_since_refit: 0,
            total_batches: 0,
            telemetry: SessionTelemetry::default(),
        })
    }

    /// Register the current model with a serving engine under `name`;
    /// every future refit hot-swaps the refreshed model in.
    ///
    /// # Errors
    /// Propagates registration errors.
    pub fn attach_engine(
        &mut self,
        engine: Arc<ServeEngine>,
        name: impl Into<String>,
    ) -> Result<(), StreamError> {
        let name = name.into();
        // Zero-copy: the engine shares the session's already-validated
        // assigner instead of cloning and re-validating the model.
        engine.register_shared(name.clone(), Arc::clone(&self.assigner));
        self.engine = Some((engine, name));
        Ok(())
    }

    /// The current fitted model.
    pub fn model(&self) -> &FittedModel {
        self.assigner.model()
    }

    /// The most recent fit result (cold fit at construction, then each
    /// refresh).
    pub fn last_result(&self) -> &RhchmeResult {
        &self.last_result
    }

    /// The accumulated corpus.
    pub fn corpus(&self) -> &MultiTypeCorpus {
        &self.corpus
    }

    /// The incrementally maintained document graph.
    pub fn doc_graph(&self) -> &DynamicGraph {
        &self.doc_graph
    }

    /// Batches pushed since the last refresh.
    pub fn batches_since_refit(&self) -> usize {
        self.batches_since_refit
    }

    /// Accumulated session telemetry: per-batch fold-in confidence and
    /// refresh decisions, refit counts by trigger, warm-vs-reseed
    /// split, warm-iteration totals and hot-swap count.
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// Ingest one batch: fold in (serving answer), append to the
    /// corpus, update the document graph, and refit if the policy says
    /// so.
    ///
    /// # Errors
    /// Propagates fold-in and refit errors; a batch with mismatched
    /// per-document row counts is rejected as [`StreamError::Invalid`].
    pub fn push_batch(&mut self, batch: &StreamBatch) -> Result<PushReport, StreamError> {
        let _span = mtrl_obs::span!("stream.push_batch");
        if batch.doc_term.len() != batch.len() || batch.doc_concept.len() != batch.len() {
            return Err(StreamError::Invalid(format!(
                "batch rows mismatch: {} terms / {} concepts / {} labels",
                batch.doc_term.len(),
                batch.doc_concept.len(),
                batch.len()
            )));
        }
        let num_terms = self.corpus.num_terms();
        // 1. Fold in against the current model — the serving answer.
        let docs: Vec<SparseVec> = (0..batch.len())
            .map(|i| {
                let (indices, values) = batch.feature_row(i, num_terms);
                SparseVec::new(indices, values)
            })
            .collect::<Result<_, _>>()?;
        let posteriors = self.assigner.assign_batch(0, &docs)?;
        let labels = Assigner::labels(&posteriors);
        let mean_confidence = if posteriors.is_empty() {
            1.0
        } else {
            posteriors
                .iter()
                .map(|p| p.iter().cloned().fold(0.0, f64::max))
                .sum::<f64>()
                / posteriors.len() as f64
        };

        // 2. Accumulate: corpus rows + incremental graph insertion.
        append_batch(&mut self.corpus, batch);
        let dense_rows: Vec<Vec<f64>> = docs
            .iter()
            .map(|d| {
                let mut row = vec![0.0; self.doc_graph.dim()];
                for (&j, &v) in d.indices.iter().zip(&d.values) {
                    row[j] = v;
                }
                row
            })
            .collect();
        if !dense_rows.is_empty() {
            let mat =
                Mat::from_rows(&dense_rows).map_err(|e| StreamError::Invalid(e.to_string()))?;
            self.doc_graph.insert_batch(&mat);
        }
        self.total_batches += 1;
        self.batches_since_refit += 1;

        // 3. Policy. The drift trigger honours the cooldown (counted in
        // batches since the last refit of any kind); the cadence
        // trigger does not.
        let below_floor = self
            .policy
            .min_confidence
            .is_some_and(|floor| mean_confidence < floor);
        let drift = below_floor && self.batches_since_refit > self.policy.drift_cooldown;
        let cadence = self
            .policy
            .every_batches
            .is_some_and(|k| self.batches_since_refit >= k);
        let decision = if drift {
            RefreshDecision::Refit(RefitTrigger::Drift)
        } else if cadence {
            RefreshDecision::Refit(RefitTrigger::Cadence)
        } else if below_floor {
            RefreshDecision::CooldownSuppressed
        } else {
            RefreshDecision::NoTrigger
        };
        self.telemetry.batches.push(BatchTelemetry {
            batch: self.total_batches,
            docs: batch.len(),
            mean_confidence,
            decision,
        });
        if mtrl_obs::enabled() {
            let reg = mtrl_obs::global();
            reg.add("stream.batches", 1);
            reg.set_gauge("stream.last_confidence", mean_confidence);
            if drift {
                reg.record_event(mtrl_obs::StreamEvent {
                    kind: "drift_trigger".to_string(),
                    label: format!("batch {}", self.total_batches),
                    value: mean_confidence,
                });
            }
        }
        let refit = match decision {
            RefreshDecision::Refit(trigger) => Some(self.refit(trigger)?),
            _ => None,
        };
        Ok(PushReport {
            labels,
            mean_confidence,
            refit,
        })
    }

    /// Force a refresh outside the policy.
    ///
    /// # Errors
    /// Propagates refit errors.
    pub fn refit_now(&mut self) -> Result<RefitReport, StreamError> {
        self.refit(RefitTrigger::Manual)
    }

    /// Refresh the serving model with a **fresh consensus-ensemble fit**
    /// over the accumulated corpus — the heavyweight alternative to the
    /// warm mini-batch refresh for when drift has moved the stream far
    /// enough that warm-starting a single basin is not trusted. Runs
    /// `mtrl_ensemble::run_spec` on the current corpus (shared-artifact
    /// member generation, sparse co-association, robust merge), then
    /// hot-swaps the exported model exactly like [`Self::refit_now`]:
    /// one validated assigner, shared with any attached engine via
    /// `register_shared`, in-flight requests finishing on the old model.
    ///
    /// The refreshed model carries `method = "ensemble"` provenance, so
    /// a gateway's `/v1/models` shows which registered models came from
    /// an ensemble refresh.
    ///
    /// # Errors
    /// Propagates ensemble fit, export and validation errors.
    pub fn refit_ensemble(
        &mut self,
        spec: &rhchme::pipeline::EnsembleSpec,
    ) -> Result<RefitReport, StreamError> {
        let _span = mtrl_obs::span!("stream.refit_ensemble");
        let cfg = self.rhchme.config().clone();
        let params = rhchme::pipeline::PipelineParams {
            lambda: cfg.lambda,
            gamma: cfg.gamma,
            alpha: cfg.alpha,
            beta: cfg.beta,
            p: cfg.p,
            graph_backend: cfg.graph_backend,
            precision: cfg.precision,
            spg_max_iter: cfg.spg_max_iter,
            max_iter: cfg.max_iter,
            tol: cfg.tol,
            seed: cfg.seed,
            feature_cluster_divisor: cfg.feature_cluster_divisor,
            export_model: true,
            ..rhchme::pipeline::PipelineParams::default()
        };
        let out = mtrl_ensemble::run_spec(
            &self.corpus,
            &rhchme::pipeline::MethodSpec::Ensemble(spec.clone()),
            &params,
        )?;
        let model = out.model.ok_or_else(|| {
            StreamError::Invalid("ensemble run with export_model set returned no model".into())
        })?;
        self.assigner = Arc::new(Assigner::new(model)?);
        let swapped = if let Some((engine, name)) = &self.engine {
            engine.register_shared(name.clone(), Arc::clone(&self.assigner));
            true
        } else {
            false
        };
        self.telemetry.ensemble_refits += 1;
        if swapped {
            self.telemetry.hot_swaps += 1;
        }
        if mtrl_obs::enabled() {
            let reg = mtrl_obs::global();
            reg.add("stream.refit.ensemble", 1);
            reg.record_event(mtrl_obs::StreamEvent {
                kind: "refit".to_string(),
                label: "ensemble".to_string(),
                value: out.iterations as f64,
            });
            if swapped {
                reg.add("stream.hot_swap", 1);
            }
        }
        self.batches_since_refit = 0;
        Ok(RefitReport {
            trigger: RefitTrigger::Manual,
            iterations: out.iterations,
            final_objective: *out.objective_trace.last().unwrap_or(&f64::NAN),
            corpus_docs: self.corpus.num_docs(),
        })
    }

    /// The warm mini-batch refresh (step 4 of the module docs).
    fn refit(&mut self, trigger: RefitTrigger) -> Result<RefitReport, StreamError> {
        let _span = mtrl_obs::span!("stream.refit");
        let cfg = self.rhchme.config().clone();
        let data = MultiTypeData::from_corpus(&self.corpus, cfg.feature_cluster_divisor)?;

        // pNN member: the document block comes from the incrementally
        // maintained graph; term/concept blocks (small types, growing
        // feature views) are rebuilt.
        let mut blocks = vec![self.doc_graph.laplacian(cfg.laplacian_kind)];
        for t in 1..data.num_types() {
            let w = pnn_graph(&data.features(t), cfg.p, cfg.weight_scheme);
            blocks.push(laplacian_csr(&w, cfg.laplacian_kind));
        }
        let l_e = SparseBlockDiag::new(blocks)
            .map_err(|e| StreamError::Invalid(format!("laplacian block assembly failed: {e}")))?;
        let l = if self.policy.refresh_subspace {
            let spg_cfg = SpgConfig {
                gamma: cfg.gamma,
                max_iter: cfg.spg_max_iter,
                seed: cfg.seed,
                ..SpgConfig::default()
            };
            let l_s = subspace_laplacians(&data.all_features(), &spg_cfg, cfg.laplacian_kind)?;
            hetero_laplacian(&l_s, &l_e, cfg.alpha)?
        } else {
            l_e
        };

        let survivors = grown_survivors(&self.model().sizes, data.sizes());
        let g0 = warm_membership_opts(
            &data,
            &self.assigner,
            &survivors,
            &WarmOptions {
                reseed_confidence: self.policy.reseed_confidence,
                ..WarmOptions::default()
            },
        )?;
        let result = self.rhchme.fit_warm(
            &data,
            WarmStart {
                g0,
                laplacian: Some(l),
                max_iter: self.policy.warm_iters,
            },
        )?;
        let model = self.rhchme.export_model_from_data(&result, &data)?;
        // 5. Atomic hot swap: one validated assigner is built and
        // shared between the session and the attached engine
        // (ServeEngine::register_shared replaces in one map insert;
        // in-flight requests finish on the old model).
        self.assigner = Arc::new(Assigner::new(model)?);
        let swapped = if let Some((engine, name)) = &self.engine {
            engine.register_shared(name.clone(), Arc::clone(&self.assigner));
            true
        } else {
            false
        };
        let report = RefitReport {
            trigger,
            iterations: result.iterations,
            final_objective: *result.objective_trace.last().unwrap_or(&f64::NAN),
            corpus_docs: self.corpus.num_docs(),
        };
        match trigger {
            RefitTrigger::Cadence => self.telemetry.cadence_refits += 1,
            RefitTrigger::Drift => self.telemetry.drift_refits += 1,
            RefitTrigger::Manual => self.telemetry.manual_refits += 1,
        }
        if self.policy.reseed_confidence.is_some() {
            self.telemetry.reseed_refits += 1;
        } else {
            self.telemetry.plain_warm_refits += 1;
        }
        self.telemetry.total_warm_iterations += result.iterations;
        if swapped {
            self.telemetry.hot_swaps += 1;
        }
        if mtrl_obs::enabled() {
            let reg = mtrl_obs::global();
            reg.add(&format!("stream.refit.{}", trigger_name(trigger)), 1);
            if self.policy.reseed_confidence.is_some() {
                reg.add("stream.reseed_refits", 1);
            }
            reg.set_gauge("stream.warm_iter_budget", self.policy.warm_iters as f64);
            reg.record_event(mtrl_obs::StreamEvent {
                kind: "refit".to_string(),
                label: trigger_name(trigger).to_string(),
                value: result.iterations as f64,
            });
            if swapped {
                reg.add("stream.hot_swap", 1);
                reg.record_event(mtrl_obs::StreamEvent {
                    kind: "hot_swap".to_string(),
                    label: self
                        .engine
                        .as_ref()
                        .map(|(_, name)| name.clone())
                        .unwrap_or_default(),
                    value: self.corpus.num_docs() as f64,
                });
            }
        }
        self.last_result = result;
        self.batches_since_refit = 0;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::stream::{generate_stream, StreamConfig};
    use mtrl_datagen::CorpusConfig;
    use rhchme::RhchmeConfig;

    fn stream_cfg() -> StreamConfig {
        StreamConfig {
            base: CorpusConfig {
                docs_per_class: vec![10, 10, 10],
                vocab_size: 90,
                concept_count: 30,
                doc_len_range: (30, 50),
                background_frac: 0.3,
                topic_noise: 0.2,
                concept_map_noise: 0.1,
                corrupt_frac: 0.0,
                subtopics_per_class: 1,
                view_confusion: 0.0,
                seed: 130,
            },
            batches: 3,
            docs_per_batch: 6,
            drift_after: None,
            drift_shift: 0.0,
        }
    }

    fn fast_rhchme() -> Rhchme {
        Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        })
    }

    #[test]
    fn session_accumulates_and_serves() {
        let (initial, batches) = generate_stream(&stream_cfg());
        let mut session = StreamSession::new(
            initial,
            fast_rhchme(),
            RefreshPolicy {
                every_batches: None,
                min_confidence: None,
                ..RefreshPolicy::default()
            },
        )
        .unwrap();
        let docs0 = session.corpus().num_docs();
        for batch in &batches {
            let report = session.push_batch(batch).unwrap();
            assert_eq!(report.labels.len(), 6);
            assert!(report.mean_confidence > 0.0 && report.mean_confidence <= 1.0);
            assert!(report.refit.is_none());
        }
        assert_eq!(session.corpus().num_docs(), docs0 + 18);
        assert_eq!(session.doc_graph().num_rows(), docs0 + 18);
        assert_eq!(session.batches_since_refit(), 3);
        // Stationary, clean batches fold in with decent accuracy.
        let mut agree = 0;
        let mut total = 0;
        for batch in &batches {
            let report_labels = session
                .assigner
                .assign_batch(
                    0,
                    &(0..batch.len())
                        .map(|i| {
                            let (idx, vals) = batch.feature_row(i, session.corpus().num_terms());
                            SparseVec::new(idx, vals).unwrap()
                        })
                        .collect::<Vec<_>>(),
                )
                .unwrap();
            let labels = Assigner::labels(&report_labels);
            let f = mtrl_metrics::fscore(&batch.labels, &labels);
            assert!(f.is_finite());
            agree += (f * 100.0) as usize;
            total += 1;
        }
        assert!(agree / total > 50, "mean fold-in F {agree}/{total}");
    }

    #[test]
    fn cadence_policy_triggers_warm_refit_and_swaps_engine() {
        let (initial, batches) = generate_stream(&stream_cfg());
        let mut session = StreamSession::new(
            initial,
            fast_rhchme(),
            RefreshPolicy {
                every_batches: Some(2),
                min_confidence: None,
                drift_cooldown: 0,
                warm_iters: 8,
                refresh_subspace: false,
                reseed_confidence: None,
            },
        )
        .unwrap();
        let engine = Arc::new(ServeEngine::new(2));
        session.attach_engine(Arc::clone(&engine), "live").unwrap();
        let d0 = engine
            .assign("live", 0, vec![SparseVec::from_dense(&[0.5; 120])])
            .unwrap();
        assert_eq!(d0.posteriors.len(), 1);

        let r1 = session.push_batch(&batches[0]).unwrap();
        assert!(r1.refit.is_none());
        let r2 = session.push_batch(&batches[1]).unwrap();
        let refit = r2.refit.expect("cadence refit after 2 batches");
        assert_eq!(refit.trigger, RefitTrigger::Cadence);
        assert!(refit.iterations <= 8);
        assert_eq!(refit.corpus_docs, 30 + 12);
        assert_eq!(session.batches_since_refit(), 0);
        // The refreshed model covers the grown corpus and is live in
        // the engine.
        assert_eq!(session.model().sizes[0], 42);
        assert!(engine
            .assign("live", 0, vec![SparseVec::from_dense(&[0.5; 120])])
            .is_ok());
        let tel = session.telemetry();
        assert_eq!(tel.batches.len(), 2);
        assert_eq!(tel.batches[0].decision, RefreshDecision::NoTrigger);
        assert_eq!(
            tel.batches[1].decision,
            RefreshDecision::Refit(RefitTrigger::Cadence)
        );
        assert_eq!(tel.cadence_refits, 1);
        assert_eq!(tel.plain_warm_refits, 1);
        assert_eq!(tel.hot_swaps, 1);
        assert!(tel.total_warm_iterations >= 1 && tel.total_warm_iterations <= 8);
    }

    #[test]
    fn telemetry_tracks_decisions_and_refit_counts() {
        let (initial, batches) = generate_stream(&stream_cfg());
        let mut session = StreamSession::new(
            initial,
            fast_rhchme(),
            RefreshPolicy {
                every_batches: None,
                // A floor above 1.0 marks every batch "below floor", so
                // the cooldown interaction is deterministic.
                min_confidence: Some(2.0),
                drift_cooldown: 1,
                warm_iters: 5,
                refresh_subspace: false,
                reseed_confidence: None,
            },
        )
        .unwrap();
        let r1 = session.push_batch(&batches[0]).unwrap();
        assert!(r1.refit.is_none(), "cooldown must suppress the first push");
        let r2 = session.push_batch(&batches[1]).unwrap();
        assert_eq!(r2.refit.expect("drift refit").trigger, RefitTrigger::Drift);
        session.refit_now().unwrap();
        let tel = session.telemetry();
        assert_eq!(tel.batches.len(), 2);
        assert_eq!(tel.batches[0].decision, RefreshDecision::CooldownSuppressed);
        assert_eq!(
            tel.batches[1].decision,
            RefreshDecision::Refit(RefitTrigger::Drift)
        );
        assert_eq!(tel.batches[0].batch, 1);
        assert_eq!(tel.batches[0].docs, 6);
        assert!(tel.batches[0].mean_confidence > 0.0);
        assert_eq!(tel.drift_refits, 1);
        assert_eq!(tel.manual_refits, 1);
        assert_eq!(tel.cadence_refits, 0);
        assert_eq!(tel.total_refits(), 2);
        assert_eq!(tel.cooldown_suppressed(), 1);
        assert_eq!(tel.plain_warm_refits, 2);
        assert_eq!(tel.reseed_refits, 0);
        assert_eq!(tel.hot_swaps, 0, "no engine attached");
        assert!(tel.total_warm_iterations >= 2);
    }

    #[test]
    fn ensemble_refresh_swaps_a_tagged_model() {
        let (initial, batches) = generate_stream(&stream_cfg());
        let mut session = StreamSession::new(
            initial,
            fast_rhchme(),
            RefreshPolicy {
                every_batches: None,
                min_confidence: None,
                ..RefreshPolicy::default()
            },
        )
        .unwrap();
        let engine = Arc::new(ServeEngine::new(2));
        session.attach_engine(Arc::clone(&engine), "live").unwrap();
        // The cold fit is a plain RHCHME export.
        assert_eq!(session.model().method.as_deref(), Some("rhchme"));
        session.push_batch(&batches[0]).unwrap();

        let spec = rhchme::pipeline::EnsembleSpec::default().with_members(3);
        let report = session.refit_ensemble(&spec).unwrap();
        assert_eq!(report.iterations, 3, "one iteration per member");
        assert!(report.final_objective.is_finite());
        assert_eq!(report.corpus_docs, session.corpus().num_docs());
        assert_eq!(session.batches_since_refit(), 0);
        // The swapped model covers the grown corpus, carries ensemble
        // provenance, and is live in the engine.
        assert_eq!(session.model().sizes[0], session.corpus().num_docs());
        assert_eq!(session.model().method.as_deref(), Some("ensemble"));
        assert_eq!(
            engine.model_methods(),
            vec![("live".to_string(), Some("ensemble".to_string()))]
        );
        let tel = session.telemetry();
        assert_eq!(tel.ensemble_refits, 1);
        assert_eq!(tel.total_refits(), 1);
        assert_eq!(tel.hot_swaps, 1);
        // Serving still works against the refreshed model.
        assert!(engine
            .assign("live", 0, vec![SparseVec::from_dense(&[0.5; 120])])
            .is_ok());
    }

    #[test]
    fn manual_refit_reports() {
        let (initial, batches) = generate_stream(&stream_cfg());
        let mut session = StreamSession::new(
            initial,
            fast_rhchme(),
            RefreshPolicy {
                every_batches: None,
                min_confidence: None,
                drift_cooldown: 0,
                warm_iters: 5,
                refresh_subspace: false,
                reseed_confidence: None,
            },
        )
        .unwrap();
        session.push_batch(&batches[0]).unwrap();
        let report = session.refit_now().unwrap();
        assert_eq!(report.trigger, RefitTrigger::Manual);
        assert!(report.iterations <= 5 && report.iterations >= 1);
        assert!(report.final_objective.is_finite());
    }
}
