//! Error type of the streaming subsystem.

use mtrl_serve::ServeError;
use rhchme::RhchmeError;
use std::fmt;

/// Anything the streaming layer can fail with.
#[derive(Debug)]
pub enum StreamError {
    /// Fit / export / data-assembly failure from the core crate.
    Rhchme(RhchmeError),
    /// Fold-in / registration failure from the serving crate.
    Serve(ServeError),
    /// Streaming-layer contract violation (mismatched layouts, bad
    /// batch shapes).
    Invalid(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Rhchme(e) => write!(f, "core error: {e}"),
            StreamError::Serve(e) => write!(f, "serve error: {e}"),
            StreamError::Invalid(msg) => write!(f, "invalid stream operation: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<RhchmeError> for StreamError {
    fn from(e: RhchmeError) -> Self {
        StreamError::Rhchme(e)
    }
}

impl From<ServeError> for StreamError {
    fn from(e: ServeError) -> Self {
        StreamError::Serve(e)
    }
}
