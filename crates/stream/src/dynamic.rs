//! Incremental pNN graph maintenance.
//!
//! The batch pipeline rebuilds every pNN graph from scratch — `O(n² d)`
//! distance work — whenever the corpus changes. For a stream of arriving
//! objects that is the dominant cost: a batch of `b` new rows only
//! *needs* `O(b · n · d)` work (each new row against the corpus), plus
//! reverse-edge patches where a new row displaces an old row's current
//! p-th neighbour. [`DynamicGraph`] maintains exactly that:
//!
//! * per-row neighbour lists `(distance, index)` under the same total
//!   order as the batch kernel (`f64::total_cmp`, index tie-break);
//! * **insertion** runs the blocked Gram kernel
//!   ([`mtrl_graph::cross_sq_dist_map`]) of the new rows against the
//!   current corpus, selects each new row's `p` nearest, and patches
//!   reverse edges on existing rows — every pair is compared exactly
//!   once (when its later row arrives), so the maintained lists equal
//!   the true p-nearest lists of the full corpus *regardless of how the
//!   stream was batched*;
//! * **deletion** tombstones a row and exactly repairs the rows that
//!   held it as a neighbour (one [`mtrl_graph::gram_sq_dist`] scan per
//!   damaged row — the same pair function as the batch kernel, so
//!   repaired lists stay consistent with inserted ones);
//! * a **rebuild-threshold policy**: once the patched/tombstoned
//!   fraction since the last full build exceeds a knob, the next
//!   mutation falls back to a full rebuild (fresh centring, all lists
//!   recomputed) rather than letting a heavily rewritten graph drift
//!   from its batch-built equivalent.
//!
//! Distances are computed on rows translated by the column means of the
//! *initial* batch (fixed for the graph's lifetime, refreshed on
//! rebuild): Euclidean distances are translation invariant, the Gram
//! expansion needs the origin near the data for stability (see
//! `mtrl_graph::knn`), and a *fixed* centre makes every stored distance
//! a pure function of the two rows — comparable across batches.
//!
//! Exported graphs go through [`mtrl_graph::graph_from_neighbours`], the
//! exact weighting + "or"-symmetrisation code of the batch
//! [`mtrl_graph::pnn_graph`], so a `DynamicGraph` whose lists match the
//! batch kNN produces a bit-identical `Csr` (the cross-crate proptest in
//! `tests/integration_stream.rs` fuzzes this over random batch splits
//! and thread counts).
//!
//! With an approximate backend ([`DynamicGraphConfig::backend`]), the
//! same maintenance runs against an incrementally maintained
//! `mtrl_ann` index: inserts and removals route rows through the index
//! (whose routing is a pure function of the row, so they land exactly
//! where a batch build would place them) and neighbour candidates come
//! from it instead of full scans. Distances, selection order and graph
//! assembly are unchanged, so at exhaustive index settings the
//! maintained graph is bit-identical to exact mode.

use mtrl_ann::{build_any_index, insert_capped, AnyIndex, GraphBackend, NeighbourIndex};
use mtrl_graph::{
    cross_sq_dist_map, dist_less, gram_sq_dist, graph_from_neighbours, laplacian_csr,
    LaplacianKind, WeightScheme,
};
use mtrl_linalg::par::num_threads;
use mtrl_linalg::vecops::dot;
use mtrl_linalg::{Mat, Precision};
use mtrl_sparse::Csr;

/// Tuning knobs of a [`DynamicGraph`].
#[derive(Debug, Clone)]
pub struct DynamicGraphConfig {
    /// Neighbours per object (the paper's `p`, default 5).
    pub p: usize,
    /// Edge weighting of the exported graph (Eq. 3).
    pub scheme: WeightScheme,
    /// Patched-fraction knob of the rebuild policy: when more than this
    /// fraction of rows has been patched (or tombstoned) since the last
    /// full build (see [`DynamicGraph::patched_fraction`]), the next
    /// mutation triggers a full rebuild. `1.0` disables automatic
    /// rebuilds (the fraction never exceeds 1).
    pub rebuild_threshold: f64,
    /// Neighbour-search backend. [`GraphBackend::Exact`] (the default)
    /// keeps the blocked all-pairs kernel and the exact maintenance
    /// contract. An approximate backend maintains an ANN index
    /// incrementally — inserts and removals route through it, and
    /// neighbour candidates come from it instead of full scans — so
    /// per-mutation cost drops from `O(n · d)` per row to the index's
    /// candidate volume. Distances and selection still go through the
    /// exact kernel primitives: at exhaustive index settings the
    /// maintained graph is bit-identical to exact mode, and at any
    /// setting it is deterministic for a given mutation sequence.
    /// Threshold rebuilds re-batch-build the index, healing leaf/tile
    /// growth from long insert streams.
    pub backend: GraphBackend,
    /// Kernel storage precision. [`Precision::F32`] quantises every
    /// *centred* row through f32 on arrival (and on rebuild), so all
    /// stored distances are exactly what the f32-storage batch kernels
    /// (`mtrl_graph::knn_f32`) compute: widening f32 → f64 is exact, so
    /// running the unchanged f64 maintenance machinery on quantised
    /// rows is bit-identical to true f32 storage. Centring means stay
    /// f64 (quantise-after-centre, the same contract as the batch
    /// path), raw rows are kept at full precision, and the exported
    /// graph weights come from the raw rows — so precision only moves
    /// neighbour selection where quantisation reorders near-ties.
    pub precision: Precision,
}

impl Default for DynamicGraphConfig {
    fn default() -> Self {
        DynamicGraphConfig {
            p: 5,
            scheme: WeightScheme::Cosine,
            rebuild_threshold: 0.5,
            backend: GraphBackend::Exact,
            precision: Precision::F64,
        }
    }
}

/// What one [`DynamicGraph::insert_batch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// Rows inserted.
    pub inserted: usize,
    /// Existing rows whose neighbour list gained at least one new edge.
    pub patched_rows: usize,
    /// Whether the rebuild threshold tripped and a full rebuild ran.
    pub rebuilt: bool,
}

/// Incrementally maintained pNN graph over a growing (and shrinking)
/// set of feature rows. See the module docs for the maintenance
/// contract.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    cfg: DynamicGraphConfig,
    dim: usize,
    /// Raw feature rows, including tombstoned ones (indices are stable).
    features: Mat,
    /// Rows translated by `means` (the fixed centring).
    centered: Mat,
    means: Vec<f64>,
    /// Squared norms of the centred rows.
    sq_norms: Vec<f64>,
    alive: Vec<bool>,
    n_alive: usize,
    /// Per-row neighbour lists, `dist_less`-sorted, alive targets only.
    neigh: Vec<Vec<(f64, usize)>>,
    /// Rows patched since the last full build.
    patched: Vec<bool>,
    patched_rows: usize,
    /// The maintained ANN index over alive centred rows (`None` in
    /// exact mode). Refreshed by [`DynamicGraph::rebuild`].
    index: Option<AnyIndex>,
}

impl DynamicGraph {
    /// Build from an initial non-empty batch of feature rows (one object
    /// per row). Centring means are fixed from this batch.
    ///
    /// # Panics
    /// Panics if `initial` has no rows or `cfg.p == 0`.
    pub fn new(initial: &Mat, cfg: DynamicGraphConfig) -> Self {
        assert!(initial.rows() > 0, "DynamicGraph needs an initial batch");
        assert!(cfg.p > 0, "p must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.rebuild_threshold),
            "rebuild_threshold must be in [0, 1]"
        );
        let dim = initial.cols();
        let mut g = DynamicGraph {
            cfg,
            dim,
            features: Mat::zeros(0, dim),
            centered: Mat::zeros(0, dim),
            means: column_means(initial),
            sq_norms: Vec::new(),
            alive: Vec::new(),
            n_alive: 0,
            neigh: Vec::new(),
            patched: Vec::new(),
            patched_rows: 0,
            index: None,
        };
        // The initial batch always goes through the blocked exact kernel
        // (fastest way to seed the lists); ANN mode then batch-builds its
        // index over the seeded corpus so *subsequent* mutations route
        // through it.
        g.insert_core(initial);
        g.refresh_index();
        g
    }

    /// Neighbour count `p`.
    pub fn p(&self) -> usize {
        self.cfg.p
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows ever inserted (tombstones included) — the graph's index
    /// space.
    pub fn num_rows(&self) -> usize {
        self.features.rows()
    }

    /// Rows currently alive.
    pub fn num_alive(&self) -> usize {
        self.n_alive
    }

    /// Whether row `i` is alive (not tombstoned).
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Fraction of rows (tombstones included, so the value is always in
    /// `[0, 1]` and a threshold of `1.0` genuinely disables automatic
    /// rebuilds) patched or tombstoned since the last full build — what
    /// the rebuild policy compares against its threshold.
    pub fn patched_fraction(&self) -> f64 {
        let total = self.features.rows();
        if total == 0 {
            0.0
        } else {
            self.patched_rows as f64 / total as f64
        }
    }

    /// Index-sorted neighbour list of row `i` (empty for tombstones).
    pub fn neighbours(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.neigh[i].iter().map(|&(_, j)| j).collect();
        out.sort_unstable();
        out
    }

    /// Insert a batch of new rows; returns their global indices via the
    /// report (they occupy `num_rows() - batch..num_rows()`).
    ///
    /// Cost: `O(b · n · d)` blocked-Gram distance work plus `O(n)`
    /// reverse-edge checks per new row — no `O(n² d)` rebuild. If the
    /// patched fraction crosses the rebuild threshold afterwards, a full
    /// rebuild runs before returning (reported in the result).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn insert_batch(&mut self, rows: &Mat) -> InsertReport {
        let patched_before = self.patched_rows;
        self.insert_core(rows);
        let patched_rows = self.patched_rows - patched_before;
        let rebuilt = self.maybe_rebuild();
        InsertReport {
            inserted: rows.rows(),
            patched_rows,
            rebuilt,
        }
    }

    fn insert_core(&mut self, rows: &Mat) {
        assert_eq!(rows.cols(), self.dim, "insert_batch: dimension mismatch");
        let b = rows.rows();
        if b == 0 {
            return;
        }
        let base = self.features.rows();
        // Append raw + centred rows and their norms.
        self.features = self.features.vstack(rows).expect("same width");
        let mut centred_new = rows.clone();
        let f32_mode = !self.cfg.precision.is_f64();
        for i in 0..b {
            let r = centred_new.row_mut(i);
            for (v, &m) in r.iter_mut().zip(&self.means) {
                *v -= m;
            }
            if f32_mode {
                quantize_row_f32(r);
            }
        }
        self.centered = self.centered.vstack(&centred_new).expect("same width");
        for i in 0..b {
            let r = centred_new.row(i);
            self.sq_norms.push(dot(r, r));
        }
        self.alive.extend(std::iter::repeat_n(true, b));
        self.n_alive += b;
        self.neigh.extend(std::iter::repeat_with(Vec::new).take(b));
        self.patched.extend(std::iter::repeat_n(false, b));

        if self.index.is_some() {
            self.insert_lists_ann(base, b);
            return;
        }
        let p = self.cfg.p;
        let n_total = self.features.rows();
        let threads = auto_threads(b, n_total, self.dim);
        // Parallel phase: one Gram strip per new row against the whole
        // corpus (old rows and the new batch itself). Per strip: the new
        // row's own top-p selection, plus loosely filtered reverse
        // candidates (old rows the new row might improve); `alive` and
        // `neigh` are only read here.
        let alive = &self.alive;
        let neigh = &self.neigh;
        let q_norms = &self.sq_norms[base..];
        #[allow(clippy::type_complexity)]
        let per_query: Vec<(Vec<(f64, usize)>, Vec<(usize, f64)>)> = cross_sq_dist_map(
            &centred_new,
            q_norms,
            &self.centered,
            &self.sq_norms,
            threads,
            |q, strip| {
                let me = base + q;
                let mut own: Vec<(f64, usize)> = Vec::with_capacity(p + 1);
                let mut reverse: Vec<(usize, f64)> = Vec::new();
                for (j, &d) in strip.iter().enumerate() {
                    if j == me || !alive[j] {
                        continue;
                    }
                    insert_capped(&mut own, (d, j), p);
                    // Old rows only: in-batch pairs are covered by each
                    // query's own selection. The pre-batch threshold is
                    // a superset filter of the final one, so nothing
                    // that belongs in the final list is dropped here.
                    if j < base
                        && (neigh[j].len() < p
                            || dist_less((d, me), *neigh[j].last().expect("non-empty")))
                    {
                        reverse.push((j, d));
                    }
                }
                (own, reverse)
            },
        );
        // Serial merge in query order — deterministic for any thread
        // count and batch split.
        for (q, (own, reverse)) in per_query.into_iter().enumerate() {
            self.neigh[base + q] = own;
            for (j, d) in reverse {
                if insert_capped(&mut self.neigh[j], (d, base + q), p) && !self.patched[j] {
                    self.patched[j] = true;
                    self.patched_rows += 1;
                }
            }
        }
    }

    /// ANN-mode insertion: sequential maintenance through the index. Row
    /// `r` enters the index, then selects its own neighbours from the
    /// index's candidates — candidate sets therefore contain ids `≤ r`
    /// only, so every pair is considered exactly once (when its later
    /// row arrives), mirroring the exact path's contract on the index's
    /// candidate subsets. Reverse patches repair earlier rows whose own
    /// selection ran before `r` existed. Serial by construction, so the
    /// result is a pure function of the mutation sequence.
    fn insert_lists_ann(&mut self, base: usize, b: usize) {
        let p = self.cfg.p;
        let mut cands = Vec::new();
        for r in base..base + b {
            let row: Vec<f64> = self.centered.row(r).to_vec();
            let index = self.index.as_mut().expect("ANN insert path");
            index.insert(r, &row);
            cands.clear();
            index.candidates_into(&row, &mut cands);
            cands.sort_unstable();
            cands.dedup();
            let gr = self.sq_norms[r];
            let mut own: Vec<(f64, usize)> = Vec::with_capacity(p + 1);
            for &j in &cands {
                if j == r || !self.alive[j] {
                    continue;
                }
                let d = gram_sq_dist(&row, self.centered.row(j), gr, self.sq_norms[j]);
                insert_capped(&mut own, (d, j), p);
                if insert_capped(&mut self.neigh[j], (d, r), p) && !self.patched[j] {
                    self.patched[j] = true;
                    self.patched_rows += 1;
                }
            }
            self.neigh[r] = own;
        }
    }

    /// Tombstone row `idx`: it leaves every neighbour list, and each row
    /// that held it is exactly repaired by a fresh scan over the alive
    /// rows (same pair function as the batch kernel). Returns `false` if
    /// the row was already dead. May trigger a threshold rebuild.
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(idx < self.features.rows(), "row index out of range");
        if !self.alive[idx] {
            return false;
        }
        self.alive[idx] = false;
        self.n_alive -= 1;
        self.neigh[idx].clear();
        if let Some(index) = &mut self.index {
            let row: Vec<f64> = self.centered.row(idx).to_vec();
            index.remove(idx, &row);
        }
        if !self.patched[idx] {
            self.patched[idx] = true;
            self.patched_rows += 1;
        }
        let damaged: Vec<usize> = (0..self.neigh.len())
            .filter(|&i| self.alive[i] && self.neigh[i].iter().any(|&(_, j)| j == idx))
            .collect();
        for i in damaged {
            self.neigh[i] = self.row_list(i);
            if !self.patched[i] {
                self.patched[i] = true;
                self.patched_rows += 1;
            }
        }
        self.maybe_rebuild();
        true
    }

    /// Exact p-nearest list of row `i` by scanning every alive row with
    /// the kernel's pair function.
    fn scan_row(&self, i: usize) -> Vec<(f64, usize)> {
        let xi = self.centered.row(i);
        let gi = self.sq_norms[i];
        let mut list: Vec<(f64, usize)> = Vec::with_capacity(self.cfg.p + 1);
        for j in 0..self.features.rows() {
            if j == i || !self.alive[j] {
                continue;
            }
            let d = gram_sq_dist(xi, self.centered.row(j), gi, self.sq_norms[j]);
            insert_capped(&mut list, (d, j), self.cfg.p);
        }
        list
    }

    /// Fresh p-nearest list of row `i` under the configured backend: a
    /// full alive scan in exact mode, the index's candidate set in ANN
    /// mode — distances and selection identical either way.
    fn row_list(&self, i: usize) -> Vec<(f64, usize)> {
        let Some(index) = &self.index else {
            return self.scan_row(i);
        };
        let xi = self.centered.row(i);
        let gi = self.sq_norms[i];
        let mut cands = Vec::new();
        index.candidates_into(xi, &mut cands);
        cands.sort_unstable();
        cands.dedup();
        let mut list: Vec<(f64, usize)> = Vec::with_capacity(self.cfg.p + 1);
        for &j in &cands {
            if j == i || !self.alive[j] {
                continue;
            }
            let d = gram_sq_dist(xi, self.centered.row(j), gi, self.sq_norms[j]);
            insert_capped(&mut list, (d, j), self.cfg.p);
        }
        list
    }

    /// (Re)build the ANN index over the alive centred rows; no-op in
    /// exact mode.
    fn refresh_index(&mut self) {
        if self.cfg.backend.is_exact() {
            return;
        }
        let ids: Vec<usize> = (0..self.features.rows())
            .filter(|&i| self.alive[i])
            .collect();
        let rows: Vec<Vec<f64>> = ids.iter().map(|&i| self.centered.row(i).to_vec()).collect();
        let mat = if rows.is_empty() {
            Mat::zeros(0, self.dim)
        } else {
            Mat::from_rows(&rows).expect("rectangular alive rows")
        };
        self.index = build_any_index(&mat, &ids, &self.cfg.backend);
    }

    fn maybe_rebuild(&mut self) -> bool {
        if self.patched_fraction() > self.cfg.rebuild_threshold {
            self.rebuild();
            true
        } else {
            false
        }
    }

    /// Full rebuild: re-centre on the alive rows' column means and
    /// recompute every neighbour list with the blocked kernel. Indices
    /// are stable (tombstones keep their slots, with empty lists).
    pub fn rebuild(&mut self) {
        let n_total = self.features.rows();
        self.means = alive_column_means(&self.features, &self.alive, self.n_alive);
        self.centered = self.features.clone();
        let f32_mode = !self.cfg.precision.is_f64();
        for i in 0..n_total {
            let r = self.centered.row_mut(i);
            for (v, &m) in r.iter_mut().zip(&self.means) {
                *v -= m;
            }
            if f32_mode {
                quantize_row_f32(r);
            }
        }
        self.sq_norms = (0..n_total)
            .map(|i| {
                let r = self.centered.row(i);
                dot(r, r)
            })
            .collect();
        self.refresh_index();
        let lists: Vec<Vec<(f64, usize)>> = if self.index.is_some() {
            // ANN mode: fresh index, fresh candidate-based lists —
            // `O(n · candidates · d)`, not the quadratic blocked pass.
            (0..n_total)
                .map(|i| {
                    if self.alive[i] {
                        self.row_list(i)
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        } else {
            let p = self.cfg.p;
            let alive = &self.alive;
            let threads = auto_threads(n_total, n_total, self.dim);
            cross_sq_dist_map(
                &self.centered,
                &self.sq_norms,
                &self.centered,
                &self.sq_norms,
                threads,
                |i, strip| {
                    if !alive[i] {
                        return Vec::new();
                    }
                    let mut own: Vec<(f64, usize)> = Vec::with_capacity(p + 1);
                    for (j, &d) in strip.iter().enumerate() {
                        if j != i && alive[j] {
                            insert_capped(&mut own, (d, j), p);
                        }
                    }
                    own
                },
            )
        };
        self.neigh = lists;
        self.patched = vec![false; n_total];
        self.patched_rows = 0;
    }

    /// Export the symmetric weighted pNN graph (Eq. 3) over the current
    /// index space — tombstoned rows are isolated vertices. Weighting
    /// and "or"-symmetrisation are shared with the batch
    /// [`mtrl_graph::pnn_graph`] ([`graph_from_neighbours`]), so equal
    /// neighbour structure means an equal `Csr`. `O(nnz · d)` — no
    /// distance recomputation.
    pub fn graph(&self) -> Csr {
        let lists: Vec<Vec<usize>> = (0..self.neigh.len()).map(|i| self.neighbours(i)).collect();
        let threads = auto_threads(self.neigh.len(), self.cfg.p.max(1), self.dim);
        graph_from_neighbours(&self.features, &lists, self.cfg.scheme, threads)
    }

    /// The graph's Laplacian, refreshed from the incrementally
    /// maintained adjacency in `O(nnz · d)` — the streaming replacement
    /// for rebuild-then-`laplacian_csr` (`O(n² d)`).
    pub fn laplacian(&self, kind: LaplacianKind) -> Csr {
        laplacian_csr(&self.graph(), kind)
    }
}

/// Quantise a centred row through f32 storage in place: `v as f32 as
/// f64` is exactly the widened f32 value, so every downstream f64
/// primitive (`gram_sq_dist`, `cross_sq_dist_map`, the ANN candidate
/// path) computes bit-for-bit what the f32-storage kernels in
/// `mtrl_graph::knn_f32` would on the same rows.
fn quantize_row_f32(row: &mut [f64]) {
    for v in row {
        *v = *v as f32 as f64;
    }
}

fn column_means(data: &Mat) -> Vec<f64> {
    let alive = vec![true; data.rows()];
    alive_column_means(data, &alive, data.rows())
}

/// Column means over alive rows; a non-finite mean (any NaN/∞ feature)
/// falls back to 0 so one bad row only poisons itself — mirroring the
/// batch kernel's centring.
fn alive_column_means(data: &Mat, alive: &[bool], n_alive: usize) -> Vec<f64> {
    let mut means = vec![0.0; data.cols()];
    if n_alive == 0 {
        return means;
    }
    for (i, &live) in alive.iter().enumerate() {
        if !live {
            continue;
        }
        for (m, &v) in means.iter_mut().zip(data.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n_alive as f64;
        if !m.is_finite() {
            *m = 0.0;
        }
    }
    means
}

/// Mirror of the batch kernel's threshold: below ~1M multiply-adds the
/// row fan-out is not worth a thread spawn.
fn auto_threads(work_rows: usize, n: usize, d: usize) -> usize {
    if work_rows * n * d < (1 << 20) {
        1
    } else {
        num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_graph::{knn_indices, pnn_graph};
    use mtrl_linalg::random::rand_uniform;

    fn graph_cfg(p: usize) -> DynamicGraphConfig {
        DynamicGraphConfig {
            p,
            scheme: WeightScheme::Cosine,
            rebuild_threshold: 1.0, // manual control in tests
            backend: GraphBackend::Exact,
            precision: Precision::F64,
        }
    }

    fn graph_cfg_f32(p: usize) -> DynamicGraphConfig {
        DynamicGraphConfig {
            precision: Precision::F32,
            ..graph_cfg(p)
        }
    }

    #[test]
    fn single_batch_matches_batch_pnn() {
        // Built in one batch, the centring means equal the batch
        // kernel's, so the exported graph is identical.
        let data = rand_uniform(60, 7, -1.0, 1.0, 100);
        let g = DynamicGraph::new(&data, graph_cfg(4));
        assert_eq!(g.graph(), pnn_graph(&data, 4, WeightScheme::Cosine));
        let nn = knn_indices(&data, 4);
        for (i, expect) in nn.iter().enumerate() {
            assert_eq!(&g.neighbours(i), expect, "row {i}");
        }
    }

    #[test]
    fn incremental_inserts_match_batch_pnn() {
        let data = rand_uniform(80, 6, -1.0, 1.0, 101);
        let mut g = DynamicGraph::new(&data.submatrix(0, 0, 30, 6), graph_cfg(5));
        let mut at = 30;
        for step in [1usize, 7, 12, 30] {
            let report = g.insert_batch(&data.submatrix(at, 0, step, 6));
            assert_eq!(report.inserted, step);
            assert!(!report.rebuilt);
            at += step;
        }
        assert_eq!(at, 80);
        assert_eq!(g.num_rows(), 80);
        assert_eq!(g.graph(), pnn_graph(&data, 5, WeightScheme::Cosine));
    }

    #[test]
    fn insertion_patches_reverse_edges() {
        // Two far clusters; a new point lands on top of cluster A, so A
        // members must adopt it.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![i as f64 * 0.1, 0.0]);
            rows.push(vec![100.0 + i as f64 * 0.1, 0.0]);
        }
        let data = Mat::from_rows(&rows).unwrap();
        let mut g = DynamicGraph::new(&data, graph_cfg(3));
        let report = g.insert_batch(&Mat::from_rows(&[vec![0.15, 0.0]]).unwrap());
        assert_eq!(report.inserted, 1);
        assert!(report.patched_rows >= 3, "{report:?}");
        // The new row (index 10) neighbours only cluster-A members, and
        // several A members adopted it.
        for &j in &g.neighbours(10) {
            assert!(j % 2 == 0, "new row neighbours cluster B member {j}");
        }
        let adopters = (0..10).filter(|&i| g.neighbours(i).contains(&10)).count();
        assert!(adopters >= 3, "{adopters}");
    }

    #[test]
    fn removal_repairs_exactly() {
        let data = rand_uniform(40, 5, -1.0, 1.0, 102);
        let mut g = DynamicGraph::new(&data, graph_cfg(4));
        assert!(g.remove(17));
        assert!(!g.remove(17), "double removal");
        assert_eq!(g.num_alive(), 39);
        assert!(g.neighbours(17).is_empty());
        // Against the batch graph on the compacted corpus: neighbour
        // lists (translated through the index map) must agree.
        let kept: Vec<usize> = (0..40).filter(|&i| i != 17).collect();
        let compact_rows: Vec<Vec<f64>> = kept.iter().map(|&i| data.row(i).to_vec()).collect();
        let compact = Mat::from_rows(&compact_rows).unwrap();
        let nn = knn_indices(&compact, 4);
        for (new_i, &old_i) in kept.iter().enumerate() {
            let expect: Vec<usize> = nn[new_i].iter().map(|&j| kept[j]).collect();
            let mut expect = expect;
            expect.sort_unstable();
            assert_eq!(g.neighbours(old_i), expect, "row {old_i}");
        }
        // No list references the tombstone.
        for i in 0..40 {
            assert!(!g.neighbours(i).contains(&17));
        }
    }

    #[test]
    fn rebuild_threshold_triggers() {
        let data = rand_uniform(30, 4, -1.0, 1.0, 103);
        let mut g = DynamicGraph::new(
            &data,
            DynamicGraphConfig {
                p: 3,
                scheme: WeightScheme::Cosine,
                rebuild_threshold: 0.0, // any patch trips it
                backend: GraphBackend::Exact,
                precision: Precision::F64,
            },
        );
        // A duplicate of row 0 patches its nearest neighbours → rebuild.
        let report = g.insert_batch(&data.submatrix(0, 0, 1, 4));
        assert!(report.rebuilt);
        assert_eq!(g.patched_fraction(), 0.0, "rebuild resets the counter");
        // After the rebuild the graph still matches the batch path on
        // the full 31-row corpus (fresh means = batch means).
        let full = data.vstack(&data.submatrix(0, 0, 1, 4)).unwrap();
        assert_eq!(g.graph(), pnn_graph(&full, 3, WeightScheme::Cosine));
    }

    #[test]
    fn laplacian_matches_batch_construction() {
        let data = rand_uniform(50, 6, 0.0, 1.0, 104);
        let mut g = DynamicGraph::new(&data.submatrix(0, 0, 35, 6), graph_cfg(5));
        g.insert_batch(&data.submatrix(35, 0, 15, 6));
        let w = pnn_graph(&data, 5, WeightScheme::Cosine);
        for kind in [LaplacianKind::Unnormalized, LaplacianKind::SymNormalized] {
            assert_eq!(g.laplacian(kind), laplacian_csr(&w, kind), "{kind:?}");
        }
    }

    #[test]
    fn far_from_origin_insertions_stay_stable() {
        // The fixed centring keeps the Gram expansion stable for data
        // clustered far from the origin, batches included.
        let base = rand_uniform(40, 4, -1e-3, 1e-3, 105);
        let shifted = Mat::from_fn(40, 4, |i, j| 1.0e8 + base[(i, j)]);
        let mut g = DynamicGraph::new(&shifted.submatrix(0, 0, 25, 4), graph_cfg(4));
        g.insert_batch(&shifted.submatrix(25, 0, 15, 4));
        assert_eq!(g.graph(), pnn_graph(&shifted, 4, WeightScheme::Cosine));
    }

    #[test]
    fn ann_exhaustive_backends_match_exact_mode_bitwise() {
        // At exhaustive index settings the candidate sets cover every
        // alive row, so the whole insert/remove/rebuild lifecycle must
        // reproduce exact mode bit for bit.
        let data = rand_uniform(70, 5, -1.0, 1.0, 107);
        let run = |backend: GraphBackend| {
            let mut g = DynamicGraph::new(
                &data.submatrix(0, 0, 30, 5),
                DynamicGraphConfig {
                    p: 4,
                    scheme: WeightScheme::Cosine,
                    rebuild_threshold: 1.0,
                    backend,
                    precision: Precision::F64,
                },
            );
            g.insert_batch(&data.submatrix(30, 0, 25, 5));
            g.remove(12);
            g.insert_batch(&data.submatrix(55, 0, 15, 5));
            let before_rebuild = g.graph();
            g.rebuild();
            (before_rebuild, g.graph())
        };
        let exact = run(GraphBackend::Exact);
        for backend in [
            GraphBackend::ClusterPruned(mtrl_ann::ClusterParams {
                tiles: 1,
                probe_tiles: 1,
                quantiser_sample: 24,
                seed: 9,
            }),
            GraphBackend::RpForest(mtrl_ann::RpForestParams {
                trees: 2,
                leaf_size: 6,
                probes: usize::MAX,
                seed: 9,
            }),
        ] {
            assert_eq!(run(backend), exact, "{}", backend.key());
        }
    }

    #[test]
    fn ann_default_mode_maintains_valid_lists() {
        // Non-exhaustive settings: lists must stay structurally valid
        // (sorted, alive-only, ≤ p, self-free) through a full lifecycle,
        // and the run must be deterministic.
        let data = rand_uniform(120, 6, -1.0, 1.0, 108);
        let run = || {
            let mut g = DynamicGraph::new(
                &data.submatrix(0, 0, 60, 6),
                DynamicGraphConfig {
                    p: 5,
                    scheme: WeightScheme::Cosine,
                    rebuild_threshold: 1.0,
                    backend: GraphBackend::RpForest(mtrl_ann::RpForestParams {
                        trees: 4,
                        leaf_size: 8,
                        probes: 2,
                        seed: 3,
                    }),
                    precision: Precision::F64,
                },
            );
            g.insert_batch(&data.submatrix(60, 0, 40, 6));
            g.remove(5);
            g.remove(77);
            g.insert_batch(&data.submatrix(100, 0, 20, 6));
            g
        };
        let g = run();
        assert_eq!(g.num_rows(), 120);
        assert_eq!(g.num_alive(), 118);
        for i in 0..120 {
            let nb = g.neighbours(i);
            if !g.is_alive(i) {
                assert!(nb.is_empty());
                continue;
            }
            assert!(nb.len() <= 5);
            assert!(nb.windows(2).all(|w| w[0] < w[1]));
            assert!(!nb.contains(&i));
            assert!(nb.iter().all(|&j| g.is_alive(j)));
        }
        assert_eq!(g.graph(), run().graph(), "deterministic lifecycle");
    }

    #[test]
    fn f32_single_batch_matches_batch_pnn_f32() {
        // Built in one batch, the F32-mode graph equals the f32-storage
        // batch kernel's bit for bit: same f64 means, same
        // quantise-after-centre rows, same pair function by the
        // widening argument, and shared weighting from raw rows.
        let data = rand_uniform(60, 7, -1.0, 1.0, 100);
        let g = DynamicGraph::new(&data, graph_cfg_f32(4));
        assert_eq!(
            g.graph(),
            mtrl_graph::pnn_graph_f32(&data, 4, WeightScheme::Cosine)
        );
        let nn = mtrl_graph::knn_indices_f32(&data, 4);
        for (i, expect) in nn.iter().enumerate() {
            assert_eq!(&g.neighbours(i), expect, "row {i}");
        }
    }

    #[test]
    fn f32_lifecycle_is_batch_split_invariant() {
        // Same first batch → same means → identical quantised rows, so
        // the pairwise maintenance contract holds verbatim in F32 mode.
        let data = rand_uniform(55, 5, -1.0, 1.0, 106);
        let build = |splits: &[usize]| {
            let mut g = DynamicGraph::new(&data.submatrix(0, 0, splits[0], 5), graph_cfg_f32(4));
            let mut at = splits[0];
            for &s in &splits[1..] {
                g.insert_batch(&data.submatrix(at, 0, s, 5));
                at += s;
            }
            assert_eq!(at, 55);
            g
        };
        let a = build(&[20, 35]);
        let b = build(&[20, 1, 1, 33]);
        assert_eq!(a.graph(), b.graph());
        // Removal repair (gram_sq_dist scan over quantised rows) stays
        // consistent with insertion distances.
        let mut a = a;
        let mut b = b;
        assert!(a.remove(11));
        assert!(b.remove(11));
        assert_eq!(a.graph(), b.graph());
        // A forced rebuild re-centres and re-quantises; both orders
        // land on the same state.
        a.rebuild();
        b.rebuild();
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn f32_ann_exhaustive_matches_exact_f32_mode() {
        // The ANN index is built over the quantised centred rows and
        // distances go through the same pair function, so exhaustive
        // settings reproduce exact F32 mode bit for bit.
        let data = rand_uniform(70, 5, -1.0, 1.0, 107);
        let run = |backend: GraphBackend| {
            let mut g = DynamicGraph::new(
                &data.submatrix(0, 0, 30, 5),
                DynamicGraphConfig {
                    backend,
                    ..graph_cfg_f32(4)
                },
            );
            g.insert_batch(&data.submatrix(30, 0, 25, 5));
            g.remove(12);
            g.insert_batch(&data.submatrix(55, 0, 15, 5));
            g.graph()
        };
        let exact = run(GraphBackend::Exact);
        let forest = run(GraphBackend::RpForest(mtrl_ann::RpForestParams {
            trees: 2,
            leaf_size: 6,
            probes: usize::MAX,
            seed: 9,
        }));
        assert_eq!(forest, exact);
    }

    #[test]
    fn batch_split_invariant() {
        // The same rows in different batch splits produce the same
        // graph: every pair distance is computed by the same pure
        // function whenever the later row arrives.
        let data = rand_uniform(55, 5, -1.0, 1.0, 106);
        let build = |splits: &[usize]| {
            let mut g = DynamicGraph::new(&data.submatrix(0, 0, splits[0], 5), graph_cfg(4));
            let mut at = splits[0];
            for &s in &splits[1..] {
                g.insert_batch(&data.submatrix(at, 0, s, 5));
                at += s;
            }
            assert_eq!(at, 55);
            g.graph()
        };
        let a = build(&[20, 35]);
        let b = build(&[20, 1, 1, 33]);
        let c = build(&[20, 17, 18]);
        // Same first batch → same centring → identical graphs.
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
