//! Warm-start membership assembly.
//!
//! A warm refit ([`rhchme::Rhchme::fit_warm`]) needs an initial stacked
//! membership `G₀` for the *new* corpus layout. [`warm_membership`]
//! builds it from the previous fit's serving export:
//!
//! * a **surviving** object copies its membership row from the previous
//!   [`rhchme::export::FittedModel`]'s `G` block — the fitted state carries over
//!   (Luong & Nayak's warm-start property of matrix-factorisation
//!   multi-aspect clustering);
//! * a **new** object is initialised from its fold-in posterior against
//!   the previous centroids ([`mtrl_serve::Assigner`]) — the best
//!   available estimate before any optimisation, in the spirit of
//!   Huang et al.'s accumulated co-association evidence;
//! * every row is smoothed towards the in-block uniform distribution so
//!   no entry is an exact zero: the multiplicative update of Algorithm 2
//!   can never revive a hard zero, and a fold-in posterior may contain
//!   them (clamped negative similarities).

use crate::error::StreamError;
use mtrl_linalg::Mat;
use mtrl_serve::{Assigner, SparseVec};
use mtrl_sparse::Csr;
use rhchme::MultiTypeData;
use std::borrow::Cow;

/// Per-type survivor maps: `survivors[t][i]` is `Some(old_row)` when row
/// `i` of type `t` in the new layout is the same object as row
/// `old_row` in the model's layout, `None` for a newly arrived object.
pub type SurvivorMap = Vec<Vec<Option<usize>>>;

/// Identity survivor map for the common streaming case: every type
/// keeps its first `model_sizes[t]` objects and appends new ones at the
/// end (`new_sizes[t] >= model_sizes[t]`).
pub fn grown_survivors(model_sizes: &[usize], new_sizes: &[usize]) -> SurvivorMap {
    model_sizes
        .iter()
        .zip(new_sizes)
        .map(|(&old, &new)| {
            (0..new)
                .map(|i| if i < old { Some(i) } else { None })
                .collect()
        })
        .collect()
}

/// Knobs for [`warm_membership_opts`].
#[derive(Debug, Clone)]
pub struct WarmOptions {
    /// Uniform mixing weight in `[0, 1)` applied to every row (`0.1` is
    /// a good default; `labels_to_membership` uses a comparable 0.2 for
    /// cold k-means seeds).
    pub smoothing: f64,
    /// Partial-reseed confidence floor: rows whose max-posterior under
    /// the previous model falls below this value do **not** inherit the
    /// stale basin — they are reseeded from a k-means pass over their
    /// type's feature rows, Lloyd-iterated from the *model's own
    /// centroids* so cluster indices stay aligned while the centroids
    /// track the drifted data ([`rhchme::kmeans::kmeans_seeded`]).
    /// `None` disables reseeding (the pre-reseed warm path).
    pub reseed_confidence: Option<f64>,
    /// Lloyd iteration budget of the reseed k-means pass.
    pub reseed_kmeans_iters: usize,
}

impl Default for WarmOptions {
    fn default() -> Self {
        WarmOptions {
            smoothing: 0.1,
            reseed_confidence: None,
            reseed_kmeans_iters: 20,
        }
    }
}

/// Build the warm initial membership for `data` from the previous
/// model's live [`Assigner`] (borrowed, not rebuilt — the streaming
/// session passes the same assigner it serves fold-ins with).
///
/// Equivalent to [`warm_membership_opts`] with reseeding disabled.
///
/// # Errors
/// Returns [`StreamError::Invalid`] when the model and data disagree on
/// type count, cluster counts or feature dimensions, or a survivor map
/// is malformed; fold-in errors propagate as [`StreamError::Serve`].
pub fn warm_membership(
    data: &MultiTypeData,
    assigner: &Assigner,
    survivors: &SurvivorMap,
    smoothing: f64,
) -> Result<Mat, StreamError> {
    warm_membership_opts(
        data,
        assigner,
        survivors,
        &WarmOptions {
            smoothing,
            ..WarmOptions::default()
        },
    )
}

/// [`warm_membership`] with the full option set, including the
/// partial-reseed policy for low-confidence rows.
///
/// With `reseed_confidence` set, a row (surviving *or* new) whose
/// max-posterior falls below the floor is re-initialised from
/// drift-tracking k-means instead of the previous basin: the type's
/// feature rows are Lloyd-clustered starting from the model's
/// (denormalised) centroids, and the low-confidence rows take their
/// refreshed assignment. High-confidence rows keep the plain warm
/// behaviour, so the refit stays warm where the model is still right
/// and escapes the stale basin exactly where it is not. Types whose
/// feature-view width no longer matches the model (their views grow
/// with the streaming type) skip reseeding — their rows copy from the
/// previous `G` as before.
///
/// # Errors
/// Same contract as [`warm_membership`].
pub fn warm_membership_opts(
    data: &MultiTypeData,
    assigner: &Assigner,
    survivors: &SurvivorMap,
    opts: &WarmOptions,
) -> Result<Mat, StreamError> {
    let smoothing = opts.smoothing;
    let model = assigner.model();
    let k = data.num_types();
    if model.num_types() != k || survivors.len() != k {
        return Err(StreamError::Invalid(format!(
            "{k} data types vs {} model types / {} survivor maps",
            model.num_types(),
            survivors.len()
        )));
    }
    if data.cluster_counts() != model.cluster_counts.as_slice() {
        return Err(StreamError::Invalid(format!(
            "cluster counts changed: {:?} vs model {:?}",
            data.cluster_counts(),
            model.cluster_counts
        )));
    }
    if !(0.0..1.0).contains(&smoothing) {
        return Err(StreamError::Invalid(format!(
            "smoothing {smoothing} outside [0, 1)"
        )));
    }
    let mut g0 = Mat::zeros(data.total_objects(), data.total_clusters());
    for (t, type_survivors) in survivors.iter().enumerate() {
        if type_survivors.len() != data.sizes()[t] {
            return Err(StreamError::Invalid(format!(
                "type {t}: {} survivor entries for {} objects",
                type_survivors.len(),
                data.sizes()[t]
            )));
        }
        // Fold-in (and its feature-dim contract) is only needed for
        // types with new arrivals. Survivor-only types may have grown
        // feature views in the meantime — a term's features are its
        // relations to the (growing) document set — and that is fine:
        // their rows copy straight from the previous `G`. The view is
        // assembled *sparsely* (per-row CSR concatenation, no dense
        // materialisation), so refit cost scales with the number of new
        // rows, not the corpus size.
        let needs_foldin = type_survivors.iter().any(Option::is_none);
        let view = if needs_foldin {
            let v = SparseFeatureView::new(data, t);
            if v.dim != model.feature_dims[t] {
                return Err(StreamError::Invalid(format!(
                    "type {t}: feature dim {} vs model {} (cannot fold in new objects)",
                    v.dim, model.feature_dims[t]
                )));
            }
            Some(v)
        } else {
            None
        };
        let ck = data.cluster_counts()[t];
        let row_off = data.spec().offset(t);
        let col_off = data.cluster_spec().offset(t);
        let uniform = smoothing / ck as f64;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(type_survivors.len());
        for (i, origin) in type_survivors.iter().enumerate() {
            let row = match *origin {
                Some(old) => {
                    if old >= model.sizes[t] {
                        return Err(StreamError::Invalid(format!(
                            "type {t}: survivor {i} maps to row {old} of {} model rows",
                            model.sizes[t]
                        )));
                    }
                    model.g_blocks[t].row(old).to_vec()
                }
                None => {
                    let v = view.as_ref().expect("view built for fold-in types");
                    assigner.assign(t, &v.row(i)?)?
                }
            };
            rows.push(row);
        }
        // Partial reseed: rows whose max-posterior sags below the floor
        // do not inherit the stale basin. Both survivor rows (ℓ1
        // normalised by Eq. 22) and fold-in posteriors sum to 1, so the
        // row maximum is the confidence in either case. Reseeding needs
        // the type's feature view at the model's width — types whose
        // view grew with the stream keep the plain warm rows.
        if let Some(floor) = opts.reseed_confidence {
            let low: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.iter().cloned().fold(0.0, f64::max) < floor)
                .map(|(i, _)| i)
                .collect();
            if !low.is_empty() {
                let feats = data.features(t);
                if feats.cols() == model.feature_dims[t] {
                    // Denormalised model centroids seed Lloyd so cluster
                    // indices stay aligned with the model while the
                    // centroids move to track the drifted data.
                    let mut init = model.centroids[t].clone();
                    for (c, &norm) in model.centroid_norms[t].iter().enumerate() {
                        if norm > 0.0 {
                            for v in init.row_mut(c) {
                                *v *= norm;
                            }
                        }
                    }
                    let km = rhchme::kmeans::kmeans_seeded(&feats, init, opts.reseed_kmeans_iters);
                    for &i in &low {
                        let mut row = vec![0.0; ck];
                        row[km.labels[i]] = 1.0;
                        rows[i] = row;
                    }
                }
            }
        }
        for (i, row) in rows.iter().enumerate() {
            let dst = g0.row_mut(row_off + i);
            for (c, &v) in row.iter().enumerate() {
                dst[col_off + c] = (1.0 - smoothing) * v + uniform;
            }
        }
    }
    Ok(g0)
}

/// Sparse, per-row access to one type's feature view — the CSR
/// equivalent of `MultiTypeData::features(t)`'s column layout
/// (relations concatenated in ascending partner order, transposed where
/// stored the other way). Transposes are taken once per view (`O(nnz)`)
/// instead of densifying `n × D`, so folding in a handful of new rows
/// costs only those rows.
struct SparseFeatureView<'a> {
    /// `(matrix with one object per row, column offset in the view)`.
    parts: Vec<(Cow<'a, Csr>, usize)>,
    dim: usize,
}

impl<'a> SparseFeatureView<'a> {
    fn new(data: &'a MultiTypeData, t: usize) -> Self {
        let mut parts = Vec::new();
        let mut dim = 0;
        for l in 0..data.num_types() {
            if l == t {
                continue;
            }
            let (a, b) = if t < l { (t, l) } else { (l, t) };
            if let Some(rel) = data.relation(a, b) {
                let m: Cow<'a, Csr> = if t < l {
                    Cow::Borrowed(rel)
                } else {
                    Cow::Owned(rel.transpose())
                };
                let cols = m.cols();
                parts.push((m, dim));
                dim += cols;
            }
        }
        SparseFeatureView { parts, dim }
    }

    /// Row `i` as one sparse vector over the concatenated view — the
    /// same nonzeros, values and ordering `features(t).row(i)` would
    /// yield after sparsification.
    fn row(&self, i: usize) -> Result<SparseVec, StreamError> {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (m, offset) in &self.parts {
            let (cols, vals) = m.row(i);
            indices.extend(cols.iter().map(|&j| offset + j));
            values.extend_from_slice(vals);
        }
        Ok(SparseVec::new(indices, values)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_datagen::corpus::{generate, CorpusConfig};
    use rhchme::{Rhchme, RhchmeConfig};

    fn fitted() -> (mtrl_datagen::MultiTypeCorpus, Rhchme, Assigner) {
        let corpus = generate(&CorpusConfig {
            docs_per_class: vec![8, 8, 8],
            vocab_size: 60,
            concept_count: 15,
            doc_len_range: (30, 45),
            background_frac: 0.25,
            topic_noise: 0.25,
            concept_map_noise: 0.1,
            corrupt_frac: 0.0,
            subtopics_per_class: 1,
            view_confusion: 0.0,
            seed: 120,
        });
        let rhchme = Rhchme::new(RhchmeConfig {
            lambda: 1.0,
            ..RhchmeConfig::fast()
        });
        let result = rhchme.fit_corpus(&corpus).unwrap();
        let model = rhchme.export_model(&result, &corpus).unwrap();
        (corpus, rhchme, Assigner::new(model).unwrap())
    }

    #[test]
    fn identity_survivors_reproduce_previous_g() {
        let (corpus, rhchme, assigner) = fitted();
        let model = assigner.model().clone();
        let data =
            MultiTypeData::from_corpus(&corpus, rhchme.config().feature_cluster_divisor).unwrap();
        let survivors = grown_survivors(&model.sizes, data.sizes());
        let g0 = warm_membership(&data, &assigner, &survivors, 0.0).unwrap();
        // With zero smoothing and all-survivor maps, G0's blocks are the
        // model's blocks verbatim, block structure included.
        for t in 0..3 {
            let ro = data.spec().offset(t);
            let co = data.cluster_spec().offset(t);
            for i in 0..data.sizes()[t] {
                for c in 0..data.cluster_counts()[t] {
                    assert_eq!(g0[(ro + i, co + c)], model.g_blocks[t][(i, c)]);
                }
                for j in 0..data.total_clusters() {
                    if !(co..co + data.cluster_counts()[t]).contains(&j) {
                        assert_eq!(g0[(ro + i, j)], 0.0, "block leak at ({},{j})", ro + i);
                    }
                }
            }
        }
    }

    #[test]
    fn smoothing_keeps_rows_positive_distributions() {
        let (corpus, rhchme, assigner) = fitted();
        let model = assigner.model().clone();
        let data =
            MultiTypeData::from_corpus(&corpus, rhchme.config().feature_cluster_divisor).unwrap();
        // Pretend the last 6 documents are new arrivals.
        let mut survivors = grown_survivors(&model.sizes, data.sizes());
        for slot in survivors[0].iter_mut().skip(18) {
            *slot = None;
        }
        let g0 = warm_membership(&data, &assigner, &survivors, 0.1).unwrap();
        for t in 0..3 {
            let ro = data.spec().offset(t);
            let co = data.cluster_spec().offset(t);
            for i in 0..data.sizes()[t] {
                let row = &g0.row(ro + i)[co..co + data.cluster_counts()[t]];
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "type {t} row {i} sums to {sum}");
                assert!(
                    row.iter().all(|&v| v > 0.0),
                    "type {t} row {i} has a hard zero"
                );
            }
        }
    }

    #[test]
    fn sparse_view_matches_dense_features() {
        // The sparse fold-in path must see exactly the nonzeros (values
        // and order) of the dense feature view it replaced.
        let (corpus, rhchme, _assigner) = fitted();
        let data =
            MultiTypeData::from_corpus(&corpus, rhchme.config().feature_cluster_divisor).unwrap();
        for t in 0..3 {
            let dense = data.features(t);
            let view = SparseFeatureView::new(&data, t);
            assert_eq!(view.dim, dense.cols(), "type {t}");
            for i in 0..data.sizes()[t] {
                let sv = view.row(i).unwrap();
                let expect = SparseVec::from_dense(dense.row(i));
                assert_eq!(sv.indices, expect.indices, "type {t} row {i}");
                assert_eq!(sv.values, expect.values, "type {t} row {i}");
            }
        }
    }

    #[test]
    fn partial_reseed_floor_semantics() {
        let (corpus, rhchme, assigner) = fitted();
        let model = assigner.model().clone();
        let data =
            MultiTypeData::from_corpus(&corpus, rhchme.config().feature_cluster_divisor).unwrap();
        let survivors = grown_survivors(&model.sizes, data.sizes());
        // Floor 0.0: no row can fall below it — bit-identical to the
        // plain warm path.
        let plain = warm_membership(&data, &assigner, &survivors, 0.1).unwrap();
        let zero = warm_membership_opts(
            &data,
            &assigner,
            &survivors,
            &WarmOptions {
                smoothing: 0.1,
                reseed_confidence: Some(0.0),
                ..WarmOptions::default()
            },
        )
        .unwrap();
        assert!(plain == zero, "floor 0 must not reseed anything");
        // Floor above 1: every row reseeds from centroid-seeded k-means.
        // Rows stay valid in-block distributions, and because Lloyd is
        // seeded from the model's own centroids the reseeded labels stay
        // aligned with the fitted clustering on this clean corpus.
        let all = warm_membership_opts(
            &data,
            &assigner,
            &survivors,
            &WarmOptions {
                smoothing: 0.1,
                reseed_confidence: Some(1.1),
                ..WarmOptions::default()
            },
        )
        .unwrap();
        let ro = data.spec().offset(0);
        let co = data.cluster_spec().offset(0);
        let ck = data.cluster_counts()[0];
        let mut agree = 0;
        for i in 0..data.sizes()[0] {
            let row = &all.row(ro + i)[co..co + ck];
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "doc row {i} sums to {sum}");
            let reseeded = mtrl_linalg::vecops::argmax(row).unwrap();
            let previous = mtrl_linalg::vecops::argmax(model.g_blocks[0].row(i)).unwrap();
            if reseeded == previous {
                agree += 1;
            }
        }
        assert!(
            agree * 2 > data.sizes()[0],
            "reseeded labels lost cluster alignment: {agree}/{}",
            data.sizes()[0]
        );
    }

    #[test]
    fn rejects_layout_mismatches() {
        let (corpus, rhchme, assigner) = fitted();
        let model = assigner.model().clone();
        let data =
            MultiTypeData::from_corpus(&corpus, rhchme.config().feature_cluster_divisor).unwrap();
        let good = grown_survivors(&model.sizes, data.sizes());
        assert!(
            warm_membership(&data, &assigner, &good, 1.0).is_err(),
            "smoothing"
        );
        let mut short = good.clone();
        short[0].pop();
        assert!(warm_membership(&data, &assigner, &short, 0.1).is_err());
        let mut out_of_range = good.clone();
        out_of_range[0][0] = Some(999);
        assert!(warm_membership(&data, &assigner, &out_of_range, 0.1).is_err());
        let mut wrong_types = good;
        wrong_types.pop();
        assert!(warm_membership(&data, &assigner, &wrong_types, 0.1).is_err());
    }
}
