//! # mtrl-stream
//!
//! The streaming subsystem of the RHCHME reproduction: keep a fitted
//! model fresh while objects arrive continuously, without choosing
//! between "never update" (pure fold-in serving) and "rebuild
//! everything" (cold refit).
//!
//! Three layers, bottom up:
//!
//! * [`dynamic`] — [`DynamicGraph`]: incremental pNN maintenance.
//!   Inserting a batch costs `O(b · n · d)` blocked-Gram work (the new
//!   rows against the corpus) plus reverse-edge patches, instead of the
//!   `O(n² d)` batch rebuild; tombstone deletion with exact repair; a
//!   rebuild-threshold policy guards heavily rewritten graphs.
//! * [`warm`] — [`warm_membership`]: seed the next fit's `G₀` from the
//!   previous [`mtrl_serve::FittedModel`] (survivor rows copied, new
//!   rows from fold-in posteriors), consumed by
//!   [`rhchme::Rhchme::fit_warm`]'s capped-iteration refresh.
//! * [`session`] — [`StreamSession`]: per-batch fold-in, corpus
//!   accumulation, a refresh policy (cadence and/or drift-triggered via
//!   fold-in confidence), and atomic hot-swap of each refreshed model
//!   into a live [`mtrl_serve::ServeEngine`].
//!
//! ```
//! use mtrl_datagen::stream::{generate_stream, StreamConfig};
//! use mtrl_datagen::CorpusConfig;
//! use mtrl_stream::{RefreshPolicy, StreamSession};
//! use rhchme::{Rhchme, RhchmeConfig};
//!
//! let (initial, batches) = generate_stream(&StreamConfig {
//!     base: CorpusConfig {
//!         docs_per_class: vec![8, 8],
//!         vocab_size: 48,
//!         concept_count: 12,
//!         doc_len_range: (25, 40),
//!         background_frac: 0.25,
//!         topic_noise: 0.2,
//!         concept_map_noise: 0.1,
//!         corrupt_frac: 0.0,
//!         subtopics_per_class: 1,
//!         view_confusion: 0.0,
//!         seed: 7,
//!     },
//!     batches: 2,
//!     docs_per_batch: 4,
//!     drift_after: None,
//!     drift_shift: 0.0,
//! });
//! let rhchme = Rhchme::new(RhchmeConfig { lambda: 1.0, ..RhchmeConfig::fast() });
//! let mut session = StreamSession::new(initial, rhchme, RefreshPolicy {
//!     every_batches: Some(2),
//!     min_confidence: None,
//!     drift_cooldown: 0,
//!     warm_iters: 5,
//!     refresh_subspace: false,
//!     reseed_confidence: None,
//! }).unwrap();
//! let first = session.push_batch(&batches[0]).unwrap();
//! assert_eq!(first.labels.len(), 4);
//! assert!(first.refit.is_none());
//! let second = session.push_batch(&batches[1]).unwrap();
//! assert!(second.refit.is_some()); // cadence refresh, warm-started
//! ```

pub mod dynamic;
pub mod error;
pub mod session;
pub mod warm;

pub use dynamic::{DynamicGraph, DynamicGraphConfig, InsertReport};
pub use error::StreamError;
pub use session::{
    BatchTelemetry, PushReport, RefitReport, RefitTrigger, RefreshDecision, RefreshPolicy,
    SessionTelemetry, StreamSession,
};
pub use warm::{grown_survivors, warm_membership, warm_membership_opts, SurvivorMap, WarmOptions};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StreamError>;
