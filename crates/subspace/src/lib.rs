//! # mtrl-subspace
//!
//! Multiple subspace learning — stage 1 of RHCHME ("learning complete
//! intra-type relationships", Sec. III-A of Hou & Nayak, ICDE 2015).
//!
//! Objects of one type are expressed as sparse nonnegative combinations of
//! each other (the *self-expressive* model, Eq. 8):
//!
//! ```text
//! X = X·W + E,   W ≥ 0,  diag(W) = 0
//! ```
//!
//! and the affinity `W` is recovered by minimising Eq. (9):
//!
//! ```text
//! J₂(W) = γ‖X − XW‖²_F + ‖WWᵀ‖₁
//! ```
//!
//! with the Spectral Projected Gradient method of Algorithm 1 ([`spg`]).
//! Two objects get a nonzero affinity iff they lie in the same linear
//! subspace — including *distant* within-manifold pairs that a pNN graph
//! misses (Fig. 1's point `z`).
//!
//! [`ista`] provides an l1-regularised (SSC-style) alternative used as an
//! ablation in the benchmark suite.
//!
//! Layout convention: this crate takes objects as **rows** (`n x D`),
//! matching the rest of the workspace; the paper's column convention
//! (`X ∈ R^{D x n}`) is the transpose, and the recovered affinity is
//! symmetrised before graph use anyway.

pub mod ista;
pub mod spg;

pub use ista::{ista_affinity, IstaConfig};
pub use spg::{spg_affinity, SpgConfig, SpgResult};

use mtrl_linalg::Mat;
use mtrl_sparse::Csr;

/// Turn a (generally asymmetric) self-expressive affinity into a symmetric
/// nonnegative weight matrix `W_S = (A + Aᵀ)/2` with zero diagonal, pruning
/// entries below `tol` — the form consumed by the Laplacian builder.
pub fn affinity_to_weights(a: &Mat, tol: f64) -> Csr {
    assert!(a.is_square(), "affinity matrix must be square");
    let n = a.rows();
    let mut coo = mtrl_sparse::Coo::new(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let w = 0.5 * (a[(i, j)] + a[(j, i)]);
            if w > tol {
                coo.push(i, j, w);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrisation_and_pruning() {
        let a = Mat::from_vec(2, 2, vec![5.0, 0.4, 0.2, 7.0]).unwrap();
        let w = affinity_to_weights(&a, 0.0);
        assert!((w.get(0, 1) - 0.3).abs() < 1e-15);
        assert!((w.get(1, 0) - 0.3).abs() < 1e-15);
        assert_eq!(w.get(0, 0), 0.0); // diagonal dropped
        let w2 = affinity_to_weights(&a, 0.35);
        assert_eq!(w2.nnz(), 0);
    }
}
