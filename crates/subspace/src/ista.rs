//! ISTA solver for an l1-regularised (SSC-style) self-expressive model.
//!
//! The paper's related-work section contrasts its `‖WWᵀ‖₁` regulariser
//! (SSQP, ref \[10\]) with the l1 regulariser of Sparse Subspace Clustering
//! (SSC, ref \[8\]). This module implements the SSC-flavoured variant
//!
//! ```text
//! min_{W ≥ 0, diag W = 0}  ½‖X − XW‖²_F + λ‖W‖₁
//! ```
//!
//! with proximal gradient descent (ISTA). It exists as an *ablation*: the
//! `micro_subspace` bench and the ablation study compare the two
//! regularisers on identical workloads, backing the paper's claim that
//! `‖WWᵀ‖₁` "can encourage more sparsity … with less time consumption".

use mtrl_linalg::ops::{matmul, matmul_nt, matvec};
use mtrl_linalg::{LinalgError, Mat};

/// Configuration for the ISTA subspace learner.
#[derive(Debug, Clone)]
pub struct IstaConfig {
    /// l1 penalty weight λ.
    pub lambda: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Convergence threshold on the relative iterate change.
    pub tol: f64,
}

impl Default for IstaConfig {
    fn default() -> Self {
        IstaConfig {
            lambda: 0.05,
            max_iter: 300,
            tol: 1e-6,
        }
    }
}

/// Learn a sparse nonnegative self-expressive affinity with ISTA.
///
/// `data` holds one object per row (`n x D`).
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] for fewer than 2 objects or a
/// negative λ.
pub fn ista_affinity(data: &Mat, cfg: &IstaConfig) -> Result<Mat, LinalgError> {
    let n = data.rows();
    if n < 2 {
        return Err(LinalgError::InvalidArgument(
            "ista_affinity: need at least 2 objects".into(),
        ));
    }
    if cfg.lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "ista_affinity: lambda must be nonnegative".into(),
        ));
    }
    let k = matmul_nt(data, data)?;
    // Lipschitz constant of ∇½‖X − XW‖² = K(W − I) is λ_max(K); power
    // iteration gives it cheaply.
    let lip = power_iteration_sym(&k, 100, 1e-8).max(1e-12);
    let step = 1.0 / lip;
    let thresh = cfg.lambda * step;

    let mut w = Mat::zeros(n, n);
    let mut kw = Mat::zeros(n, n); // K·W, maintained by full recompute (n is small in ablations)
    for _ in 0..cfg.max_iter {
        // Gradient of the smooth part: K W − K (rows of W combine rows of X).
        // With objects as rows the model is X ≈ W X, so the gradient w.r.t.
        // W is (W X − X) Xᵀ = W K − K.
        kw = matmul(&w, &k)?;
        let mut w_new = w.clone();
        for i in 0..n {
            let gi = {
                let kwr = kw.row(i);
                let kr = k.row(i);
                kwr.iter().zip(kr).map(|(a, b)| a - b).collect::<Vec<f64>>()
            };
            let row = w_new.row_mut(i);
            for (j, rv) in row.iter_mut().enumerate() {
                if j == i {
                    *rv = 0.0;
                    continue;
                }
                // Nonnegative soft-threshold: prox of λ‖·‖₁ + indicator(≥0).
                let cand = *rv - step * gi[j] - thresh;
                *rv = cand.max(0.0);
            }
        }
        let diff = mtrl_linalg::norms::frobenius_sq_diff(&w_new, &w).sqrt();
        let base = mtrl_linalg::norms::frobenius(&w).max(1e-12);
        w = w_new;
        if diff / base < cfg.tol {
            break;
        }
    }
    let _ = kw;
    Ok(w)
}

/// Largest eigenvalue of a symmetric PSD matrix by power iteration.
fn power_iteration_sym(k: &Mat, iters: usize, tol: f64) -> f64 {
    let n = k.rows();
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        let kv = matvec(k, &v).expect("square matvec");
        let norm = kv.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 0.0;
        }
        let new_lambda = norm;
        v = kv.iter().map(|x| x / norm).collect();
        if (new_lambda - lambda).abs() < tol * new_lambda.abs().max(1.0) {
            return new_lambda;
        }
        lambda = new_lambda;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::rand_uniform;

    fn two_lines(n_per: usize, seed: u64) -> (Mat, Vec<usize>) {
        let dir_a = [1.0, 0.5, -1.0];
        let dir_b = [-0.5, 1.0, 1.0];
        let coeff = rand_uniform(2 * n_per, 1, 0.5, 2.0, seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let dir = if i < n_per { &dir_a } else { &dir_b };
            labels.push(usize::from(i >= n_per));
            let c = coeff[(i, 0)];
            rows.push(dir.iter().map(|d| c * d).collect::<Vec<_>>());
        }
        (Mat::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn constraints_hold() {
        let (data, _) = two_lines(8, 11);
        let w = ista_affinity(&data, &IstaConfig::default()).unwrap();
        assert!(w.min() >= 0.0);
        for i in 0..data.rows() {
            assert_eq!(w[(i, i)], 0.0);
        }
    }

    #[test]
    fn within_subspace_dominates() {
        let (data, labels) = two_lines(10, 12);
        let w = ista_affinity(
            &data,
            &IstaConfig {
                lambda: 0.01,
                ..IstaConfig::default()
            },
        )
        .unwrap();
        let (mut within, mut across) = (0.0, 0.0);
        for i in 0..data.rows() {
            for j in 0..data.rows() {
                if i == j {
                    continue;
                }
                if labels[i] == labels[j] {
                    within += w[(i, j)];
                } else {
                    across += w[(i, j)];
                }
            }
        }
        assert!(within > 5.0 * across, "within {within} across {across}");
    }

    #[test]
    fn larger_lambda_sparser() {
        let (data, _) = two_lines(8, 13);
        let count_nnz = |l: f64| {
            let w = ista_affinity(
                &data,
                &IstaConfig {
                    lambda: l,
                    ..IstaConfig::default()
                },
            )
            .unwrap();
            w.as_slice().iter().filter(|&&v| v > 1e-10).count()
        };
        assert!(count_nnz(1.0) <= count_nnz(0.001));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ista_affinity(&Mat::zeros(1, 2), &IstaConfig::default()).is_err());
        let cfg = IstaConfig {
            lambda: -1.0,
            ..IstaConfig::default()
        };
        assert!(ista_affinity(&Mat::zeros(4, 2), &cfg).is_err());
    }

    #[test]
    fn power_iteration_matches_known() {
        // diag(3, 1) has top eigenvalue 3.
        let k = Mat::from_diag(&[3.0, 1.0]);
        let l = power_iteration_sym(&k, 200, 1e-10);
        assert!((l - 3.0).abs() < 1e-6, "{l}");
    }
}
