//! Spectral Projected Gradient solver for Eq. (9) — paper Algorithm 1.
//!
//! Minimises `J₂(W) = γ‖X − XW‖²_F + ‖WWᵀ‖₁` over the closed convex set
//! `{W : W ≥ 0, diag(W) = 0}` (projection operator Eq. 11).
//!
//! Implementation notes, deviating from the paper's printed pseudo-code
//! only where the print is internally inconsistent (documented in
//! DESIGN.md §3):
//!
//! * The paper's gradient line places γ on the sparsity term while Eq. (9)
//!   places it on the fidelity term; the two differ only by rescaling the
//!   objective by `1/γ`. We implement the gradient of Eq. (9) as printed:
//!   `∇J₂ = 2γ(W K − K) + 2·1·colsum(W)ᵀ`, where `K = X Xᵀ` is the object
//!   Gram matrix (objects as rows) and the second term is `∂‖WWᵀ‖₁/∂W`
//!   for nonnegative `W`.
//! * The paper updates `σ ← yᵀy / sᵀy` and then steps `W − σ∇W`; that `σ`
//!   is the *reciprocal* of the Barzilai–Borwein BB2 step. We use the BB2
//!   step `σ ← sᵀy / yᵀy` (safeguarded to `[1e-10, 1e10]`), which is the
//!   standard SPG choice (Birgin–Martínez–Raydan, ref \[25\]).
//! * The line search is the nonmonotone Grippo–Lampariello–Lucidi rule
//!   over a sliding window of past objective values.
//!
//! Cost per iteration is a single `O(n³)` product `D·K`; all line-search
//! trial objectives reuse it (`(W + ℓD)K = WK + ℓ·DK`).

use mtrl_linalg::ops::{matmul, matmul_nt};
use mtrl_linalg::random::rand_uniform;
use mtrl_linalg::{LinalgError, Mat};

/// Configuration for the SPG subspace learner.
#[derive(Debug, Clone)]
pub struct SpgConfig {
    /// Noise-tolerance parameter γ of Eq. (9): larger γ assumes cleaner
    /// data (Sec. III-A). Paper's tuned default for the main experiments.
    pub gamma: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Convergence threshold on the projected-gradient Frobenius norm,
    /// relative to the matrix size.
    pub tol: f64,
    /// Length of the nonmonotone line-search history window.
    pub history: usize,
    /// Sufficient-decrease constant δ of the Armijo condition.
    pub armijo: f64,
    /// Seed for the random initial `W₀` (paper: random initialisation).
    pub seed: u64,
}

impl Default for SpgConfig {
    fn default() -> Self {
        SpgConfig {
            gamma: 25.0,
            max_iter: 150,
            tol: 1e-5,
            history: 10,
            armijo: 1e-4,
            seed: 7,
        }
    }
}

/// Output of the SPG solver.
#[derive(Debug, Clone)]
pub struct SpgResult {
    /// The learned affinity matrix (`n x n`, nonnegative, zero diagonal).
    pub w: Mat,
    /// Objective value `J₂` after every iteration (monotone up to the
    /// nonmonotone window).
    pub objective_trace: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the projected-gradient criterion was met.
    pub converged: bool,
}

/// Learn the subspace affinity of one object type.
///
/// `data` holds one object per row (`n x D`). Returns the affinity `W`
/// with `W_ij > 0` intended for same-subspace pairs (Eq. 5).
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] for degenerate inputs
/// (fewer than 2 objects, non-positive γ).
pub fn spg_affinity(data: &Mat, cfg: &SpgConfig) -> Result<SpgResult, LinalgError> {
    let n = data.rows();
    if n < 2 {
        return Err(LinalgError::InvalidArgument(
            "spg_affinity: need at least 2 objects".into(),
        ));
    }
    if cfg.gamma <= 0.0 {
        return Err(LinalgError::InvalidArgument(
            "spg_affinity: gamma must be positive".into(),
        ));
    }

    // Object Gram matrix K = X Xᵀ (objects as rows).
    let k = matmul_nt(data, data)?;
    let tr_k = k.trace();

    // Random nonnegative start, projected onto the constraint set. The
    // small scale keeps the first objective finite for large gamma.
    let mut w = rand_uniform(n, n, 0.0, 1.0 / n as f64, cfg.seed);
    project_inplace(&mut w);

    // M = W K, maintained incrementally across iterations.
    let mut m = matmul(&w, &k)?;
    let mut obj = objective(&w, &m, &k, tr_k, cfg.gamma);
    let mut grad = gradient(&w, &m, &k, cfg.gamma);

    let mut sigma = 1.0f64; // paper: σ ← 1
    let mut history = std::collections::VecDeque::with_capacity(cfg.history);
    history.push_back(obj);
    let mut trace = Vec::with_capacity(cfg.max_iter);
    let scale_tol = cfg.tol * (n as f64);

    let mut converged = false;
    let mut iterations = 0;
    for it in 0..cfg.max_iter {
        iterations = it + 1;
        // Step 2: search direction D = P(W − σ∇) − W.
        let mut trial = w.clone();
        trial.axpy_inplace(-sigma, &grad)?;
        project_inplace(&mut trial);
        let d = trial.sub(&w)?;

        let d_norm = mtrl_linalg::norms::frobenius(&d);
        if d_norm <= scale_tol {
            converged = true;
            trace.push(obj);
            break;
        }

        // ⟨∇, D⟩ for the Armijo condition (must be negative by convexity
        // of the feasible set; if not, the direction is numerically dead).
        let gd: f64 = grad
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(g, dd)| g * dd)
            .sum();
        if gd >= 0.0 {
            converged = true;
            trace.push(obj);
            break;
        }

        // Precompute D·K so every line-search trial is O(n²).
        let dk = matmul(&d, &k)?;
        let f_max = history.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Step 3: nonmonotone backtracking on ℓ ∈ (0, 1].
        let mut ell = 1.0f64;
        let mut accepted = false;
        for _ in 0..30 {
            let mut w_try = w.clone();
            w_try.axpy_inplace(ell, &d)?;
            let mut m_try = m.clone();
            m_try.axpy_inplace(ell, &dk)?;
            let obj_try = objective(&w_try, &m_try, &k, tr_k, cfg.gamma);
            if obj_try <= f_max + cfg.armijo * ell * gd {
                // Steps 4-7: accept, update BB quantities.
                let grad_new = gradient(&w_try, &m_try, &k, cfg.gamma);
                let (sty, yty) = bb_products(&w, &w_try, &grad, &grad_new);
                sigma = if sty > 0.0 && yty > 0.0 {
                    (sty / yty).clamp(1e-10, 1e10)
                } else {
                    1.0
                };
                w = w_try;
                m = m_try;
                grad = grad_new;
                obj = obj_try;
                accepted = true;
                break;
            }
            ell *= 0.5;
        }
        trace.push(obj);
        history.push_back(obj);
        if history.len() > cfg.history {
            history.pop_front();
        }
        if !accepted {
            // Line search exhausted: the iterate is numerically optimal.
            converged = true;
            break;
        }
    }

    Ok(SpgResult {
        w,
        objective_trace: trace,
        iterations,
        converged,
    })
}

/// Projection operator P of Eq. (11): clamp negatives, zero the diagonal.
pub fn project_inplace(w: &mut Mat) {
    debug_assert!(w.is_square());
    let n = w.rows();
    for v in w.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    for i in 0..n {
        w[(i, i)] = 0.0;
    }
}

/// `J₂ = γ(tr K − 2 Σ W∘K + Σ (WK)∘W) + Σ_k colsum_k(W)²`.
///
/// The fidelity expansion uses `‖X − WX‖² = tr((I−W)K(I−W)ᵀ)` with
/// `K = XXᵀ`; `M = WK` is passed in precomputed. For nonnegative `W`,
/// `‖WWᵀ‖₁ = Σ_k (Σ_i W_ik)²`.
fn objective(w: &Mat, m: &Mat, k: &Mat, tr_k: f64, gamma: f64) -> f64 {
    let wk: f64 = w
        .as_slice()
        .iter()
        .zip(k.as_slice())
        .map(|(a, b)| a * b)
        .sum();
    let wmw: f64 = m
        .as_slice()
        .iter()
        .zip(w.as_slice())
        .map(|(a, b)| a * b)
        .sum();
    let fidelity = tr_k - 2.0 * wk + wmw;
    let col_sums = w.col_sums();
    let sparsity: f64 = col_sums.iter().map(|c| c * c).sum();
    gamma * fidelity + sparsity
}

/// `∇J₂ = 2γ(M − K) + 2·1·colsum(W)ᵀ` with `M = WK`.
fn gradient(w: &Mat, m: &Mat, k: &Mat, gamma: f64) -> Mat {
    let n = w.rows();
    let col_sums = w.col_sums();
    let mut g = Mat::zeros(n, n);
    for i in 0..n {
        let grow = g.row_mut(i);
        let mrow = m.row(i);
        let krow = k.row(i);
        for j in 0..n {
            grow[j] = 2.0 * gamma * (mrow[j] - krow[j]) + 2.0 * col_sums[j];
        }
    }
    g
}

/// Returns `(sᵀy, yᵀy)` for the BB step, with `s = W⁺ − W`,
/// `y = ∇(W⁺) − ∇(W)`.
fn bb_products(w_old: &Mat, w_new: &Mat, g_old: &Mat, g_new: &Mat) -> (f64, f64) {
    let mut sty = 0.0;
    let mut yty = 0.0;
    for (((wo, wn), go), gn) in w_old
        .as_slice()
        .iter()
        .zip(w_new.as_slice())
        .zip(g_old.as_slice())
        .zip(g_new.as_slice())
    {
        let s = wn - wo;
        let y = gn - go;
        sty += s * y;
        yty += y * y;
    }
    (sty, yty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtrl_linalg::random::{rand_normal, rand_uniform};

    /// Points on two independent 1-D subspaces (lines) in R^4, with n/2
    /// points each: the classic identifiable multiple-subspace setup.
    fn two_lines(n_per: usize, noise: f64, seed: u64) -> (Mat, Vec<usize>) {
        let dir_a = [1.0, 2.0, 0.0, -1.0];
        let dir_b = [0.0, 1.0, -3.0, 1.0];
        let coeff = rand_uniform(2 * n_per, 1, 0.5, 2.0, seed);
        let noise_m = rand_normal(2 * n_per, 4, 0.0, noise, seed + 1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let dir = if i < n_per { &dir_a } else { &dir_b };
            labels.push(usize::from(i >= n_per));
            let c = coeff[(i, 0)];
            let row: Vec<f64> = (0..4).map(|d| c * dir[d] + noise_m[(i, d)]).collect();
            rows.push(row);
        }
        (Mat::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn constraints_hold_at_solution() {
        let (data, _) = two_lines(8, 0.01, 1);
        let res = spg_affinity(&data, &SpgConfig::default()).unwrap();
        assert!(res.w.min() >= 0.0, "negative affinity");
        for i in 0..data.rows() {
            assert_eq!(res.w[(i, i)], 0.0, "nonzero diagonal");
        }
        assert!(!res.w.has_non_finite());
    }

    #[test]
    fn objective_decreases_nonmonotone_window() {
        let (data, _) = two_lines(10, 0.02, 2);
        let res = spg_affinity(&data, &SpgConfig::default()).unwrap();
        let t = &res.objective_trace;
        assert!(t.len() >= 2);
        // The nonmonotone rule still forces overall decrease: the last
        // value must be (weakly) below the first.
        assert!(
            t.last().unwrap() <= t.first().unwrap(),
            "objective grew: {t:?}"
        );
    }

    #[test]
    fn within_subspace_affinity_dominates() {
        let (data, labels) = two_lines(12, 0.01, 3);
        let res = spg_affinity(
            &data,
            &SpgConfig {
                gamma: 50.0,
                ..SpgConfig::default()
            },
        )
        .unwrap();
        let mut within = 0.0;
        let mut across = 0.0;
        let n = data.rows();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if labels[i] == labels[j] {
                    within += res.w[(i, j)];
                } else {
                    across += res.w[(i, j)];
                }
            }
        }
        assert!(
            within > 3.0 * across,
            "within {within} not dominating across {across}"
        );
    }

    #[test]
    fn distant_same_subspace_points_connected() {
        // Fig. 1's claim: subspace learning finds *distant* within-manifold
        // neighbours. Put one far-out point on line A; its largest affinity
        // row entries must still be line-A points.
        let dir_a = [1.0, 2.0, 0.0, -1.0];
        let dir_b = [0.0, 1.0, -3.0, 1.0];
        let mut rows = Vec::new();
        for i in 0..8 {
            let c = 0.5 + 0.1 * i as f64;
            rows.push(dir_a.iter().map(|d| c * d).collect::<Vec<_>>());
        }
        rows.push(dir_a.iter().map(|d| 50.0 * d).collect::<Vec<_>>()); // distant A point, index 8
        for i in 0..8 {
            let c = 0.5 + 0.1 * i as f64;
            rows.push(dir_b.iter().map(|d| c * d).collect::<Vec<_>>());
        }
        let data = Mat::from_rows(&rows).unwrap();
        let res = spg_affinity(
            &data,
            &SpgConfig {
                gamma: 100.0,
                max_iter: 300,
                ..SpgConfig::default()
            },
        )
        .unwrap();
        let far = 8usize;
        let a_mass: f64 = (0..8).map(|j| res.w[(far, j)] + res.w[(j, far)]).sum();
        let b_mass: f64 = (9..17).map(|j| res.w[(far, j)] + res.w[(j, far)]).sum();
        assert!(
            a_mass > b_mass,
            "distant point not linked to its subspace: A={a_mass} B={b_mass}"
        );
    }

    #[test]
    fn rejects_degenerate_input() {
        let one = Mat::zeros(1, 3);
        assert!(spg_affinity(&one, &SpgConfig::default()).is_err());
        let data = Mat::zeros(4, 3);
        let bad_gamma = SpgConfig {
            gamma: 0.0,
            ..SpgConfig::default()
        };
        assert!(spg_affinity(&data, &bad_gamma).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = two_lines(6, 0.05, 4);
        let a = spg_affinity(&data, &SpgConfig::default()).unwrap();
        let b = spg_affinity(&data, &SpgConfig::default()).unwrap();
        assert!(a.w.approx_eq(&b.w, 0.0));
    }

    #[test]
    fn projection_operator_eq11() {
        let mut w = Mat::from_vec(2, 2, vec![3.0, -1.0, 0.5, 2.0]).unwrap();
        project_inplace(&mut w);
        assert_eq!(w[(0, 0)], 0.0);
        assert_eq!(w[(1, 1)], 0.0);
        assert_eq!(w[(0, 1)], 0.0); // clamped negative
        assert_eq!(w[(1, 0)], 0.5);
    }

    #[test]
    fn larger_gamma_means_better_reconstruction() {
        let (data, _) = two_lines(10, 0.02, 5);
        let lo = spg_affinity(
            &data,
            &SpgConfig {
                gamma: 1.0,
                ..SpgConfig::default()
            },
        )
        .unwrap();
        let hi = spg_affinity(
            &data,
            &SpgConfig {
                gamma: 500.0,
                ..SpgConfig::default()
            },
        )
        .unwrap();
        let recon = |w: &Mat| {
            let xw = matmul(w, &data).unwrap();
            mtrl_linalg::norms::frobenius_sq_diff(&xw, &data)
        };
        assert!(
            recon(&hi.w) < recon(&lo.w),
            "gamma=500 should reconstruct better than gamma=1"
        );
    }
}
