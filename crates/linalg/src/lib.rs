//! # mtrl-linalg
//!
//! Dense linear-algebra substrate for the RHCHME reproduction
//! (Hou & Nayak, ICDE 2015).
//!
//! Every update rule in the paper — the SPG subspace solver (Algorithm 1)
//! and the multiplicative NMTF updates (Algorithm 2) — reduces to dense
//! matrix products, norms and small inversions. This crate provides those
//! primitives without any external BLAS:
//!
//! * [`Mat`] — a row-major dense `f64` matrix with cache-friendly row access;
//! * [`MatF32`] + [`Precision`] — the f32-storage / f64-accumulation
//!   backend of the mixed-precision hot loops ([`matf32`], [`precision`]);
//! * blocked and multi-threaded matrix products ([`ops`]);
//! * the scoped-thread worker pool shared by every parallel kernel in
//!   the workspace ([`par`]; `MTRL_NUM_THREADS` overrides the count);
//! * diagonal-plus-low-rank row kernels backing the sparse-first NMTF
//!   engine's implicit `R − E_R` representation ([`lowrank`]);
//! * norms used by the paper: Frobenius, `l1`, `l2,1` ([`norms`]);
//! * Gauss–Jordan inversion, Cholesky, LU solve ([`solve`]);
//! * a Jacobi symmetric eigensolver ([`eigen`]) for spectral utilities;
//! * positive/negative part splits used by Eq. (21) ([`parts`]);
//! * block-diagonal / block-structured assembly for the `R`, `W`, `G`
//!   matrices of Section I-A ([`block`]);
//! * Euclidean projection onto the probability simplex ([`simplex`]),
//!   needed by the RMC baseline's ensemble weights;
//! * seeded random matrices ([`random`]) so every experiment is
//!   deterministic.
//!
//! The crate is deliberately free of `unsafe` code; hot loops are written
//! so that bounds checks vanish after slicing rows.

pub mod block;
pub mod eigen;
pub mod error;
pub mod kmeans;
pub mod lowrank;
pub mod mat;
pub mod matf32;
pub mod norms;
pub mod ops;
pub mod par;
pub mod parts;
pub mod precision;
pub mod random;
mod serde_impl;
pub mod simplex;
pub mod solve;
pub mod vecops;

pub use block::{BlockDiag, BlockSpec};
pub use error::LinalgError;
pub use mat::Mat;
pub use matf32::MatF32;
pub use precision::Precision;

/// Numerical floor used to guard divisions in multiplicative updates.
///
/// Standard NMF practice (Lee & Seung): denominators are clamped to at
/// least this value so iterates stay finite and nonnegative.
pub const EPS: f64 = 1e-12;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
