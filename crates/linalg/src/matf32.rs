//! Dense row-major `f32` storage matrix for the mixed-precision kernels.
//!
//! [`MatF32`] is the storage half of the f32-storage / f64-accumulation
//! contract ([`crate::precision::Precision`]): hot kernels read `f32`
//! operand rows (half the bandwidth of [`Mat`]) and widen each element
//! to `f64` before it enters an accumulation chain. Widening is exact,
//! so a kernel that widens and then performs the *same* `f64` operation
//! sequence as its reference is bit-identical to that reference applied
//! to the widened operands — the property the cross-precision tests pin.
//!
//! It is intentionally not a general matrix type: no arithmetic lives
//! here, only storage, conversion and the row access the kernels need.
//! Constructors record into the same [`crate::mat::alloc_peak`] oracle
//! as [`Mat`] (element counts, conservatively ignoring the halved
//! element width), so the engine's no-`n x n`-allocation guarantee is
//! enforced in both precision modes.

use crate::mat::{alloc_peak, Mat};

/// Dense row-major matrix of `f32` — storage for the mixed-precision
/// kernels, always accumulated in `f64`.
#[derive(PartialEq, Debug)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatF32 {
    /// Create a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        alloc_peak::record(len);
        MatF32 {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Round every entry of `m` to `f32` storage.
    pub fn from_mat(m: &Mat) -> Self {
        alloc_peak::record(m.len());
        MatF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Widen back to an `f64` [`Mat`] whose entries are exactly the
    /// stored `f32` values. `MatF32::from_mat(m).widen()` is therefore
    /// the "quantise through f32" map the F32 mode applies to operands.
    pub fn widen(&self) -> Mat {
        Mat::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has zero entries (degenerate shape).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Return the transpose as a new matrix (blocked like
    /// [`Mat::transpose`]).
    pub fn transpose(&self) -> MatF32 {
        let mut t = MatF32::zeros(self.cols, self.rows);
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                let imax = (ib + B).min(self.rows);
                let jmax = (jb + B).min(self.cols);
                for i in ib..imax {
                    let src = &self.data[i * self.cols..(i + 1) * self.cols];
                    for (j, &v) in src.iter().enumerate().take(jmax).skip(jb) {
                        t.data[j * self.rows + i] = v;
                    }
                }
            }
        }
        t
    }
}

impl Clone for MatF32 {
    // Manual so the [`alloc_peak`] oracle sees clones of large matrices
    // too, matching `Mat`'s convention.
    fn clone(&self) -> Self {
        alloc_peak::record(self.data.len());
        MatF32 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_quantisation() {
        let m = Mat::from_fn(5, 3, |i, j| 0.1 * (i * 3 + j) as f64 + 1.0 / 3.0);
        let q = MatF32::from_mat(&m).widen();
        assert_eq!(q.shape(), m.shape());
        for (a, b) in q.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(*a, (*b as f32) as f64);
        }
    }

    #[test]
    fn transpose_matches_f64_transpose() {
        let m = Mat::from_fn(70, 45, |i, j| (i * 1000 + j) as f64 * 0.25);
        let t32 = MatF32::from_mat(&m).transpose();
        let t = m.transpose();
        assert_eq!(t32.widen(), t);
    }

    #[test]
    fn records_alloc_peak() {
        alloc_peak::reset();
        let _m = MatF32::zeros(10, 7);
        assert!(alloc_peak::peak_elems() >= 70);
    }
}
